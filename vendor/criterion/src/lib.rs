//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crate registry, so this vendored crate
//! provides the subset of the criterion API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`Throughput`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! warm-up-then-measure wall-clock loop. No statistics, plots, or baselines:
//! each benchmark prints one line with the mean iteration time (and
//! throughput when declared).
//!
//! Like upstream criterion, `cargo bench -- --test` runs each benchmark in
//! test mode — a single invocation, no timing report — so CI can smoke-test
//! that every benchmark still executes without paying for measurement.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value (best-effort without
/// compiler intrinsics).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared per-iteration work, used to report a rate next to the time.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; the stand-in runs one setup per
/// measured invocation regardless, so the variants only document intent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per measurement.
    PerIteration,
}

/// The benchmark driver handed to registered benchmark functions.
pub struct Criterion {
    default_sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Sets the default number of measured samples for groups created from
    /// this driver (builder form, as `criterion_group!` configs use).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
            test_mode,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let name = id.to_string();
        let sample_size = self.default_sample_size;
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name: String::new(),
            sample_size,
            throughput: None,
            test_mode,
        }
        .bench_function(name, f);
        self
    }
}

/// A named set of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples (minimum 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures one benchmark and prints its mean iteration time.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut b = Bencher {
            iters: 0,
            elapsed: Duration::ZERO,
        };
        if self.test_mode {
            // Smoke-test: one invocation, no measurement.
            f(&mut b);
            println!("test bench {label} ... ok");
            return self;
        }
        // One warm-up pass, then the measured samples.
        f(&mut b);
        b.iters = 0;
        b.elapsed = Duration::ZERO;
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean = if b.iters == 0 {
            Duration::ZERO
        } else {
            b.elapsed / b.iters as u32
        };
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
                format!("  ({:.1} Melem/s)", n as f64 / mean.as_secs_f64() / 1e6)
            }
            Some(Throughput::Bytes(n)) if mean > Duration::ZERO => {
                format!("  ({:.1} MB/s)", n as f64 / mean.as_secs_f64() / 1e6)
            }
            _ => String::new(),
        };
        println!("bench {label:<40} {mean:>12.3?}/iter{rate}");
        self
    }

    /// Ends the group (retained for API compatibility).
    pub fn finish(&mut self) {}
}

/// Times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }

    /// Measures `routine` on a fresh input from `setup` (setup untimed).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed += start.elapsed();
        self.iters += 1;
        drop(black_box(out));
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3).throughput(Throughput::Elements(10));
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default();
        let mut setups = 0u64;
        c.benchmark_group("g")
            .sample_size(2)
            .bench_function("b", |b| {
                b.iter_batched(
                    || {
                        setups += 1;
                    },
                    |()| (),
                    BatchSize::LargeInput,
                )
            });
        assert_eq!(setups, 3);
    }
}
