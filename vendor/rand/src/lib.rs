//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crate registry, so this vendored
//! crate provides exactly the deterministic subset of the `rand 0.8` API the
//! workspace uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! and [`Rng::gen_range`] / [`Rng::gen_bool`] over integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not bit-compatible
//! with upstream `rand`'s ChaCha-based `StdRng`, but a high-quality,
//! platform-independent stream that keeps every database build, parameter
//! draw, and trace fully deterministic for a given seed, which is all the
//! TPC-D generator requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level uniform word generation.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (the subset the workspace uses).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanded with SplitMix64 as
    /// upstream `rand` does.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b` over the integer
    /// types), bias-free via rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: distributions::SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        // 53 uniform mantissa bits, the same construction upstream uses.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Uniform range sampling.
pub mod distributions {
    use super::RngCore;

    /// A range that can produce uniform samples of `T`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample.
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
    }

    /// Uniform `u64` in `[0, span)` by rejection (no modulo bias).
    pub(crate) fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return rng.next_u64() & (span - 1);
        }
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    /// Integer types uniform ranges can sample (conversion through `i128`
    /// keeps the arithmetic overflow-free for every 64-bit-or-smaller type).
    pub trait SampleUniform: Copy + PartialOrd {
        /// Lossless widening.
        fn to_i128(self) -> i128;
        /// Narrowing back into the type's domain (the caller guarantees fit).
        fn from_i128(v: i128) -> Self;
    }

    macro_rules! impl_sample_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn to_i128(self) -> i128 {
                    self as i128
                }
                fn from_i128(v: i128) -> Self {
                    v as $t
                }
            }
        )*};
    }

    impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample from empty range");
            let (lo, hi) = (self.start.to_i128(), self.end.to_i128());
            let off = uniform_below(rng, (hi - lo) as u64);
            T::from_i128(lo + off as i128)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
            let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
            assert!(lo <= hi, "cannot sample from empty range");
            let span = (hi - lo) as u128 + 1;
            if span > u64::MAX as u128 {
                // Whole-domain range: every word is a valid sample.
                return T::from_i128(lo + rng.next_u64() as i128);
            }
            let off = uniform_below(rng, span as u64);
            T::from_i128(lo + off as i128)
        }
    }
}

/// The generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=u64::MAX), b.gen_range(0u64..=u64::MAX));
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0..1_000_000), c.gen_range(0..1_000_000));
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-99_999i64..=999_999);
            assert!((-99_999..=999_999).contains(&v));
            let w = rng.gen_range(1usize..8);
            assert!((1..8).contains(&w));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "≈25%, got {hits}");
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
