//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crate registry, so this vendored crate
//! implements the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`prop_oneof!`], integer-range and tuple strategies, `any::<T>()`,
//! [`collection::vec`]/[`collection::btree_set`], [`Strategy::prop_map`], and
//! [`ProptestConfig::with_cases`].
//!
//! Semantics: each test body runs `cases` times with inputs drawn from a
//! per-test deterministic generator (seeded from the test's name), and
//! `prop_assert*` failures abort the case with a panic that reports the case
//! number. Unlike upstream there is no shrinking — failures report the drawn
//! case as-is — which keeps the crate tiny while preserving the tests'
//! coverage and reproducibility.

#![allow(clippy::type_complexity)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-test random source.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates the generator for the named test: the same test always
    /// replays the same case sequence.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    fn below(&mut self, n: usize) -> usize {
        self.0.gen_range(0..n)
    }
}

/// A failed `prop_assert*` within one generated case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure carrying `msg`.
    pub fn fail(msg: String) -> Self {
        TestCaseError(msg)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Run-time configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default case count.
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy producing `f` applied to this strategy's values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.0.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.0.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// The result of [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// A `Vec` of values from `element`, with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().gen_value(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }

    /// A `BTreeSet` built from up to `len` draws of `element` (duplicates
    /// collapse, as in upstream proptest).
    pub fn btree_set<S>(element: S, len: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, len }
    }

    /// The result of [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.len.clone().gen_value(rng);
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Weighted choice between boxed strategies (built by [`prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Builds a choice from `(weight, generator)` arms.
    ///
    /// # Panics
    ///
    /// Panics if the arms are empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn gen_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, f) in &self.arms {
            if pick < *w {
                return f(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total")
    }
}

/// Boxes a strategy into a generator closure (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Fn(&mut TestRng) -> S::Value> {
    Box::new(move |rng| s.gen_value(rng))
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("property {} failed at case {}/{}: {}",
                           stringify!($name), __case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    (cfg = $cfg:expr;) => {};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not the
/// whole process) so the harness can report which case broke.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Weighted (or unweighted) choice between strategies yielding one type:
/// `prop_oneof![3 => a, 1 => b]` or `prop_oneof![a, b, c]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:literal => $s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(( $w as u32, $crate::boxed($s) )),+])
    };
    ($($s:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$(( 1u32, $crate::boxed($s) )),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in -50i32..50, (a, b) in (0u32..4, any::<bool>())) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(a < 4);
            let _ = b;
        }

        #[test]
        fn collections_respect_bounds(v in crate::collection::vec(0u64..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }
    }

    #[test]
    fn oneof_weights_cover_all_arms() {
        let strat = prop_oneof![
            3 => (0u32..1).prop_map(|_| "heavy"),
            1 => (0u32..1).prop_map(|_| "light"),
        ];
        let mut rng = crate::TestRng::from_name("oneof");
        let mut heavy = 0;
        for _ in 0..400 {
            if strat.gen_value(&mut rng) == "heavy" {
                heavy += 1;
            }
        }
        assert!(heavy > 200 && heavy < 400, "≈75% heavy, got {heavy}/400");
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        let s = crate::collection::vec(0u64..1000, 5..6);
        assert_eq!(s.gen_value(&mut a), s.gen_value(&mut b));
    }
}
