//! `dbgen` — the TPC-D population generator as a command-line tool,
//! emitting the standard pipe-delimited `.tbl` files.
//!
//! ```text
//! cargo run --release --bin dbgen -- --scale 0.01 --seed 42 --dir /tmp/tpcd
//! cargo run --release --bin dbgen -- --chunked --jobs 8 --scale 0.1 --dir /tmp/tpcd
//! ```
//!
//! The default path materializes the whole population in memory (the legacy
//! generator pinned by the golden artifacts). `--chunked` switches to the
//! bounded-memory batch-parallel generator, which fans independently seeded
//! unit batches across `--jobs` worker threads and merges them in canonical
//! order — same bytes at any `--jobs`/`--batch`, a different population
//! from the legacy generator (see `dss_tpcd::ChunkedGenerator`).

use std::path::PathBuf;
use std::process::ExitCode;

use dss_workbench::tpcd::{ChunkedGenerator, Generator};

fn main() -> ExitCode {
    let mut scale = dss_workbench::tpcd::PAPER_SCALE;
    let mut seed = 42u64;
    let mut dir = PathBuf::from("tpcd-data");
    let mut chunked = false;
    let mut jobs = 1usize;
    let mut batch: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scale" => match value("--scale").parse() {
                Ok(v) if v > 0.0 => scale = v,
                _ => {
                    eprintln!("--scale must be a positive number");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match value("--seed").parse() {
                Ok(v) => seed = v,
                Err(_) => {
                    eprintln!("--seed must be an integer");
                    return ExitCode::from(2);
                }
            },
            "--dir" => dir = PathBuf::from(value("--dir")),
            "--chunked" => chunked = true,
            "--jobs" => match value("--jobs").parse() {
                Ok(v) if v >= 1 => jobs = v,
                _ => {
                    eprintln!("--jobs must be a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--batch" => match value("--batch").parse() {
                Ok(v) if v >= 1 => batch = Some(v),
                _ => {
                    eprintln!("--batch must be a positive integer (units per batch)");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: dbgen [--scale F] [--seed N] [--dir PATH] \
                     [--chunked [--jobs N] [--batch UNITS]]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other} (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    if (jobs != 1 || batch.is_some()) && !chunked {
        eprintln!("--jobs/--batch only apply to the --chunked generator");
        return ExitCode::from(2);
    }

    let started = std::time::Instant::now();
    if chunked {
        let mut g = ChunkedGenerator::new(scale, seed);
        if let Some(units) = batch {
            g = g.batch_units(units);
        }
        let report = match g.write_dir(&dir, jobs) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("failed to write {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        };
        let total: u64 = report.rows.iter().map(|(_, n)| *n).sum();
        println!(
            "wrote {total} rows ({} bytes) across 8 tables to {} in {:.1?} \
             (chunked, scale {scale}, seed {seed}, jobs {jobs})",
            report.bytes,
            dir.display(),
            started.elapsed()
        );
        return ExitCode::SUCCESS;
    }
    let data = Generator::new(scale, seed).generate();
    if let Err(e) = data.write_tbl(&dir) {
        eprintln!("failed to write {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} rows across 8 tables to {} in {:.1?} (scale {scale}, seed {seed})",
        data.total_rows(),
        dir.display(),
        started.elapsed()
    );
    ExitCode::SUCCESS
}
