//! `dbgen` — the TPC-D population generator as a command-line tool,
//! emitting the standard pipe-delimited `.tbl` files.
//!
//! ```text
//! cargo run --release --bin dbgen -- --scale 0.01 --seed 42 --dir /tmp/tpcd
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use dss_workbench::tpcd::Generator;

fn main() -> ExitCode {
    let mut scale = dss_workbench::tpcd::PAPER_SCALE;
    let mut seed = 42u64;
    let mut dir = PathBuf::from("tpcd-data");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scale" => match value("--scale").parse() {
                Ok(v) if v > 0.0 => scale = v,
                _ => {
                    eprintln!("--scale must be a positive number");
                    return ExitCode::from(2);
                }
            },
            "--seed" => match value("--seed").parse() {
                Ok(v) => seed = v,
                Err(_) => {
                    eprintln!("--seed must be an integer");
                    return ExitCode::from(2);
                }
            },
            "--dir" => dir = PathBuf::from(value("--dir")),
            "--help" | "-h" => {
                println!("usage: dbgen [--scale F] [--seed N] [--dir PATH]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let started = std::time::Instant::now();
    let data = Generator::new(scale, seed).generate();
    if let Err(e) = data.write_tbl(&dir) {
        eprintln!("failed to write {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    println!(
        "wrote {} rows across 8 tables to {} in {:.1?} (scale {scale}, seed {seed})",
        data.total_rows(),
        dir.display(),
        started.elapsed()
    );
    ExitCode::SUCCESS
}
