//! `dssql` — an interactive shell over the emulated Postgres95.
//!
//! ```text
//! cargo run --release --bin dssql              # paper-scale database
//! cargo run --release --bin dssql -- 0.002     # custom scale factor
//! ```
//!
//! Statements end with `;`. Meta-commands:
//!
//! * `\tables` — list tables with row/page counts and indexes,
//! * `\d <table>` — describe a table's columns,
//! * `\explain <select…>;` — show the plan without running it,
//! * `\trace on|off` — print trace statistics and a baseline simulation of
//!   each statement's memory references,
//! * `\vacuum <table>` — compact tombstones and rebuild indexes,
//! * `\q` — quit.

use std::io::{self, BufRead, Write};
use std::time::Instant;

use dss_workbench::memsim::{Machine, MachineConfig};
use dss_workbench::query::{Database, Datum, DbConfig, Session, StatementOutput};
use dss_workbench::trace::TraceStats;

fn main() {
    let scale: f64 = match std::env::args().nth(1) {
        None => dss_workbench::tpcd::PAPER_SCALE,
        Some(a) => match a.parse() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("dssql: `{a}` is not a scale factor (try 0.002)");
                std::process::exit(2);
            }
        },
    };
    eprint!("building TPC-D database at scale {scale}... ");
    let started = Instant::now();
    let mut db = Database::build(&DbConfig {
        scale,
        nbuffers: (16384.0 * scale.max(0.002) / 0.01) as u32 + 1024,
        ..DbConfig::default()
    });
    eprintln!("done in {:.1?}", started.elapsed());
    eprintln!("type SQL ending with ';', or \\q to quit — try: select count(*) from lineitem;");

    let mut session = Session::new(0);
    let mut tracing = false;
    session.tracer.set_enabled(false);

    let stdin = io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            print!("dssql> ");
        } else {
            print!("   ..> ");
        }
        io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if buffer.is_empty() && line.starts_with('\\') {
            if !meta_command(line, &mut db, &mut session, &mut tracing) {
                break;
            }
            continue;
        }
        buffer.push_str(line);
        buffer.push(' ');
        if !line.ends_with(';') {
            continue;
        }
        let sql = buffer.trim().trim_end_matches(';').to_owned();
        buffer.clear();
        run_statement(&sql, &mut db, &mut session, tracing);
    }
}

/// Handles a backslash command; returns `false` to quit.
fn meta_command(line: &str, db: &mut Database, session: &mut Session, tracing: &mut bool) -> bool {
    let mut parts = line.splitn(2, ' ');
    match (
        parts.next().unwrap_or(""),
        parts.next().unwrap_or("").trim(),
    ) {
        ("\\q", _) => return false,
        ("\\tables", _) => {
            println!("{:<10} {:>9} {:>7}  indexes", "table", "rows", "pages");
            for (name, meta) in db.catalog.iter() {
                let idx: Vec<&str> = meta.indexes.iter().map(|i| i.name.as_str()).collect();
                println!(
                    "{:<10} {:>9} {:>7}  {}",
                    name,
                    meta.heap.ntuples(),
                    meta.heap.npages(),
                    idx.join(", ")
                );
            }
        }
        ("\\d", table) => match db.catalog.table(table) {
            Some(meta) => {
                for col in &meta.heap.def().columns {
                    println!("  {:<16} {:?}", col.name, col.ty);
                }
            }
            None => println!("no table {table}"),
        },
        ("\\explain", sql) => {
            let sql = sql.trim_end_matches(';');
            match db.plan_sql(sql) {
                Ok(plan) => print!("{}", plan.explain()),
                Err(e) => println!("error: {e}"),
            }
        }
        ("\\vacuum", table) => match db.vacuum(table) {
            Ok(n) => println!("vacuumed {table}: {n} dead tuples removed"),
            Err(e) => println!("error: {e}"),
        },
        ("\\trace", arg) => {
            *tracing = arg == "on";
            session.tracer.set_enabled(*tracing);
            println!("tracing {}", if *tracing { "on" } else { "off" });
        }
        (cmd, _) => {
            println!("unknown command {cmd} (try \\tables, \\d, \\explain, \\trace, \\vacuum, \\q)")
        }
    }
    true
}

fn run_statement(sql: &str, db: &mut Database, session: &mut Session, tracing: bool) {
    let started = Instant::now();
    match db.execute(sql, session) {
        Ok(StatementOutput::Rows(out)) => {
            let n = out.rows.len();
            for row in out.rows.iter().take(40) {
                let cells: Vec<String> = row.iter().map(Datum::to_string).collect();
                println!("  {}", cells.join(" | "));
            }
            if n > 40 {
                println!("  … {} more rows", n - 40);
            }
            println!("({n} rows in {:.1?})", started.elapsed());
        }
        Ok(StatementOutput::Affected(n)) => {
            println!("({n} tuples affected in {:.1?})", started.elapsed());
        }
        Err(e) => println!("error: {e}"),
    }
    if tracing {
        let trace = session.tracer.take();
        let stats = TraceStats::from_trace(&trace);
        let sim = Machine::new(MachineConfig::baseline()).run(&[trace]);
        let b = sim.time_breakdown();
        println!(
            "trace: {} refs ({} priv / {} shared); simulated {} cycles \
             (busy {:.0}% mem {:.0}%), L1 miss {:.1}%",
            stats.total_refs(),
            stats.private_refs(),
            stats.shared_refs(),
            sim.exec_cycles(),
            100.0 * b.busy,
            100.0 * b.mem,
            100.0 * sim.l1.read_miss_rate()
        );
    }
}
