//! # dss-workbench
//!
//! A from-scratch Rust reproduction of
//!
//! > P. Trancoso, J.-L. Larriba-Pey, Z. Zhang, J. Torrellas,
//! > *The Memory Performance of DSS Commercial Workloads in Shared-Memory
//! > Multiprocessors*, HPCA 1997.
//!
//! The crate is a facade re-exporting the workspace's components:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`trace`] | `dss-trace` | classified memory references, tracers, cost model |
//! | [`shmem`] | `dss-shmem` | emulated shared/private address spaces |
//! | [`tpcd`] | `dss-tpcd` | deterministic TPC-D generator and query parameters |
//! | [`bufcache`] | `dss-bufcache` | Postgres95-style buffer cache module |
//! | [`lockmgr`] | `dss-lockmgr` | lock manager with Lock/Xid hashes and `LockMgrLock` |
//! | [`btree`] | `dss-btree` | b-tree indices in buffer pages |
//! | [`sql`] | `dss-sql` | SQL subset lexer/parser |
//! | [`query`] | `dss-query` | catalog, planner, Volcano executor, TPC-D queries |
//! | [`memsim`] | `dss-memsim` | 4-node CC-NUMA memory-hierarchy simulator |
//! | [`core`] | `dss-core` | per-figure experiment runners, reports, shape checks |
//!
//! # Quickstart
//!
//! ```
//! use dss_workbench::memsim::{Machine, MachineConfig};
//! use dss_workbench::query::{Database, DbConfig, Session};
//!
//! // Build a small memory-resident TPC-D database and trace a query.
//! let mut db = Database::build(&DbConfig::tiny());
//! let mut session = Session::new(0);
//! let out = db
//!     .run("select count(*) from lineitem where l_shipmode = 'AIR'", &mut session)
//!     .expect("valid query");
//! assert_eq!(out.rows.len(), 1);
//!
//! // Simulate its memory references on the paper's baseline machine.
//! let stats = Machine::new(MachineConfig::baseline()).run(&[session.tracer.take()]);
//! assert!(stats.exec_cycles() > 0);
//! ```
//!
//! To regenerate every table and figure of the paper (`--jobs N` fans the
//! sweep points across N threads with bit-identical output):
//!
//! ```text
//! cargo run -p dss-bench --release --bin repro -- all --jobs 4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dss_btree as btree;
// The shared-trace handle, re-exported at the top level so downstream users
// can name it without reaching into `core`.
pub use dss_bufcache as bufcache;
pub use dss_core as core;
pub use dss_core::TraceSet;
pub use dss_lockmgr as lockmgr;
pub use dss_memsim as memsim;
pub use dss_query as query;
pub use dss_shmem as shmem;
pub use dss_sql as sql;
pub use dss_tpcd as tpcd;
pub use dss_trace as trace;
