//! Chunk-boundary determinism for the chunked generator: any batch size
//! yields byte-identical `.tbl` output versus the single-chunk path, and the
//! rendered text survives a parse round-trip against the schema. This is the
//! property that makes batch size and `--jobs` pure throughput knobs.

use dss_tpcd::{from_tbl, table_def, tpcd_schema, ChunkedGenerator};
use proptest::prelude::*;

/// Renders all of `table` in batches of `batch` units, concatenated.
fn render_batched(g: &ChunkedGenerator, table: &str, batch: u64) -> (String, String) {
    let units = g.unit_count(table);
    let mut primary = String::new();
    let mut secondary = String::new();
    let mut start = 0;
    while start < units {
        let end = (start + batch).min(units);
        g.render_units(table, start..end, &mut primary, &mut secondary);
        start = end;
    }
    (primary, secondary)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch size never changes the bytes: rendering unit-at-a-time, in odd
    /// batches, and in one giant chunk all agree.
    #[test]
    fn any_batch_size_is_byte_identical(batch in 1u64..64, seed in 0u64..1_000) {
        let g = ChunkedGenerator::new(0.0005, seed);
        for table in ["region", "nation", "supplier", "customer", "part", "partsupp", "orders"] {
            let whole = render_batched(&g, table, u64::MAX);
            let chunked = render_batched(&g, table, batch);
            prop_assert_eq!(&whole, &chunked, "{} differs at batch {}", table, batch);
        }
    }

    /// Any sub-range renders exactly the slice of the single-chunk text that
    /// its neighbors leave for it (no hidden state crosses a unit boundary).
    #[test]
    fn ranges_compose(split in 1u64..200, seed in 0u64..1_000) {
        let g = ChunkedGenerator::new(0.0005, seed);
        let units = g.unit_count("orders");
        let split = split.min(units - 1);
        let whole = render_batched(&g, "orders", u64::MAX);
        let mut left = (String::new(), String::new());
        g.render_units("orders", 0..split, &mut left.0, &mut left.1);
        // Continue into the same buffers from the split point.
        g.render_units("orders", split..units, &mut left.0, &mut left.1);
        prop_assert_eq!(whole, left);
    }

    /// Chunked output stays parseable row text with the schema's arity and
    /// column types, at every seed.
    #[test]
    fn output_parses_against_schema(seed in 0u64..1_000) {
        let g = ChunkedGenerator::new(0.0005, seed);
        let (orders, lineitems) = render_batched(&g, "orders", 7);
        let odef = table_def("orders").unwrap();
        let ldef = table_def("lineitem").unwrap();
        let orows = from_tbl(odef, &orders).unwrap();
        let lrows = from_tbl(ldef, &lineitems).unwrap();
        prop_assert_eq!(orows.len() as u64, g.unit_count("orders"));
        prop_assert!(lrows.len() >= orows.len() && lrows.len() <= orows.len() * 7);
    }
}

/// One full write_dir comparison on disk: serial big-batch versus parallel
/// small-batch runs produce identical files for all eight tables.
#[test]
fn files_identical_across_jobs_and_batch() {
    let base = std::env::temp_dir().join(format!("dss-chunking-a-{}", std::process::id()));
    let wide = std::env::temp_dir().join(format!("dss-chunking-b-{}", std::process::id()));
    let a = ChunkedGenerator::new(0.001, 42)
        .batch_units(100_000)
        .write_dir(&base, 1)
        .unwrap();
    let b = ChunkedGenerator::new(0.001, 42)
        .batch_units(13)
        .write_dir(&wide, 8)
        .unwrap();
    assert_eq!(a, b);
    for def in tpcd_schema() {
        let x = std::fs::read(base.join(format!("{}.tbl", def.name))).unwrap();
        let y = std::fs::read(wide.join(format!("{}.tbl", def.name))).unwrap();
        assert_eq!(x, y, "{} differs", def.name);
    }
    let _ = std::fs::remove_dir_all(&base);
    let _ = std::fs::remove_dir_all(&wide);
}
