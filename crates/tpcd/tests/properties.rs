//! Property tests for dates, the generator, and parameter draws.

use dss_tpcd::{params, Date, Generator};
use proptest::prelude::*;

proptest! {
    /// Date day-number and calendar representations roundtrip for the whole
    /// simulation-relevant range (and a wide margin around it).
    #[test]
    fn date_roundtrip(days in -20_000i32..20_000) {
        let d = Date::from_day_number(days);
        let (y, m, dd) = d.ymd();
        prop_assert_eq!(Date::from_ymd(y, m, dd), d);
        prop_assert_eq!(d.day_number(), days);
    }

    /// Adding days is additive and consistent with ordering.
    #[test]
    fn add_days_is_additive(base in -5_000i32..5_000, a in -400i32..400, b in -400i32..400) {
        let d = Date::from_day_number(base);
        prop_assert_eq!(d.add_days(a).add_days(b), d.add_days(a + b));
        prop_assert_eq!(d.add_days(a).days_since(d), a);
        if a > 0 {
            prop_assert!(d.add_days(a) > d);
        }
    }

    /// Adding months lands in the expected month with a valid day.
    #[test]
    fn add_months_lands_in_month(y in 1992i32..1999, m in 1u32..13, day in 1u32..29, months in -36i32..36) {
        let d = Date::from_ymd(y, m, day);
        let r = d.add_months(months);
        let (ry, rm, rd) = r.ymd();
        let total = y * 12 + (m as i32 - 1) + months;
        prop_assert_eq!(ry, total.div_euclid(12));
        prop_assert_eq!(rm as i32, total.rem_euclid(12) + 1);
        prop_assert!(rd >= 1 && rd <= day, "day clamps downward only");
    }

    /// Foreign-key integrity and date ordering hold for any small scale and
    /// seed.
    #[test]
    fn generator_invariants(seed in 0u64..1000, scale_millis in 1u64..4) {
        let scale = scale_millis as f64 / 1000.0;
        let db = Generator::new(scale, seed).generate();
        for o in &db.orders {
            prop_assert!(o.custkey >= 1 && o.custkey <= db.customers.len() as i64);
            prop_assert!(o.orderdate >= Date::START && o.orderdate <= Date::END);
        }
        for l in &db.lineitems {
            prop_assert!(l.orderkey >= 1 && l.orderkey <= db.orders.len() as i64);
            prop_assert!(l.shipdate < l.receiptdate);
            prop_assert!(l.receiptdate <= Date::END);
            prop_assert!((100..=5000).contains(&l.quantity));
            prop_assert!((0..=10).contains(&l.discount));
        }
    }

    /// Every query's parameters are generated for every seed without panics,
    /// and the headline parameters stay in their spec windows.
    #[test]
    fn params_within_spec(seed in 0u64..10_000) {
        for q in 1u8..=17 {
            let p = params(q, seed);
            prop_assert!(!p.is_empty());
        }
        let q3 = params(3, seed);
        let date = q3["date"].as_date().unwrap();
        prop_assert!(date >= Date::from_ymd(1995, 3, 1) && date <= Date::from_ymd(1995, 3, 31));
        let q6 = params(6, seed);
        let disc = q6["discount"].as_dec().unwrap();
        prop_assert!((2..=9).contains(&disc));
    }

    /// UF1 rows use the requested key range and preserve lineitem clustering.
    #[test]
    fn uf1_rows_are_well_formed(seed in 0u64..500, count in 1usize..20, base in 1i64..1_000_000) {
        let generator = Generator::new(0.001, 3);
        let (orders, lineitems) = generator.uf1_rows(seed, count, base);
        prop_assert_eq!(orders.len(), count);
        for (i, o) in orders.iter().enumerate() {
            prop_assert_eq!(o.orderkey, base + i as i64);
        }
        let keys: Vec<i64> = lineitems.iter().map(|l| l.orderkey).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        prop_assert_eq!(keys, sorted, "lineitems clustered by order");
        for l in &lineitems {
            prop_assert!(l.orderkey >= base && l.orderkey < base + count as i64);
        }
    }
}
