//! Fixed value lists and filler-text pools from the TPC-D specification.

use std::fmt::Write as _;

use rand::Rng;

/// The five market segments (`c_mktsegment`).
pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];

/// The seven ship modes (`l_shipmode`).
pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];

/// The four ship instructions (`l_shipinstruct`).
pub const SHIP_INSTRUCTS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];

/// The five order priorities (`o_orderpriority`).
pub const ORDER_PRIORITIES: [&str; 5] =
    ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];

/// Part type syllables (`p_type` is `<syl1> <syl2> <syl3>`).
pub const TYPE_SYL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
/// Second syllable of `p_type`.
pub const TYPE_SYL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
/// Third syllable of `p_type`.
pub const TYPE_SYL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];

/// Container syllables (`p_container` is `<syl1> <syl2>`).
pub const CONTAINER_SYL1: [&str; 5] = ["SM", "MED", "LG", "JUMBO", "WRAP"];
/// Second syllable of `p_container`.
pub const CONTAINER_SYL2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];

/// Part-name noise words (`p_name` is five of these).
pub const PART_NAME_WORDS: [&str; 30] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
];

/// The 25 nations with their region assignment (index into [`REGIONS`]).
pub const NATIONS: [(&str, usize); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

/// The five regions.
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// Word pool for comment filler text.
const COMMENT_WORDS: [&str; 40] = [
    "blithely",
    "carefully",
    "express",
    "final",
    "furiously",
    "ironic",
    "pending",
    "quickly",
    "regular",
    "slyly",
    "special",
    "unusual",
    "accounts",
    "deposits",
    "foxes",
    "ideas",
    "instructions",
    "packages",
    "pinto",
    "beans",
    "platelets",
    "requests",
    "theodolites",
    "dependencies",
    "excuses",
    "sauternes",
    "asymptotes",
    "courts",
    "dolphins",
    "multipliers",
    "sentiments",
    "daring",
    "even",
    "bold",
    "silent",
    "sleep",
    "wake",
    "nag",
    "haggle",
    "detect",
];

/// Produces comment filler of exactly `len` bytes from the TPC-D word pool.
pub fn comment<R: Rng>(rng: &mut R, len: usize) -> String {
    let mut out = String::with_capacity(len + 16);
    comment_into(rng, len, &mut out);
    out
}

/// Appends comment filler of exactly `len` bytes to `out`, drawing the same
/// word sequence as [`comment`] but reusing the caller's buffer.
pub fn comment_into<R: Rng>(rng: &mut R, len: usize, out: &mut String) {
    let start = out.len();
    while out.len() - start < len {
        if out.len() > start {
            out.push(' ');
        }
        out.push_str(COMMENT_WORDS[rng.gen_range(0..COMMENT_WORDS.len())]);
    }
    out.truncate(start + len);
}

/// Produces a phone number in the spec's `CC-NNN-NNN-NNNN` shape.
pub fn phone<R: Rng>(rng: &mut R, nationkey: i64) -> String {
    let mut out = String::with_capacity(15);
    phone_into(rng, nationkey, &mut out);
    out
}

/// Appends a phone number to `out`, drawing like [`phone`] but without
/// allocating.
pub fn phone_into<R: Rng>(rng: &mut R, nationkey: i64, out: &mut String) {
    let _ = write!(
        out,
        "{:02}-{:03}-{:03}-{:04}",
        10 + nationkey,
        rng.gen_range(100..1000),
        rng.gen_range(100..1000),
        rng.gen_range(1000..10000)
    );
}

/// Picks a random element of `choices`.
pub fn pick<'a, R: Rng>(rng: &mut R, choices: &[&'a str]) -> &'a str {
    choices[rng.gen_range(0..choices.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn comment_has_exact_length() {
        let mut rng = StdRng::seed_from_u64(7);
        for len in [1usize, 10, 27, 60, 117] {
            assert_eq!(comment(&mut rng, len).len(), len);
        }
    }

    #[test]
    fn phone_shape_matches_spec() {
        let mut rng = StdRng::seed_from_u64(7);
        let p = phone(&mut rng, 3);
        assert_eq!(p.len(), 15);
        assert!(p.starts_with("13-"));
        assert_eq!(p.matches('-').count(), 3);
    }

    #[test]
    fn nations_reference_valid_regions() {
        for (name, region) in NATIONS {
            assert!(!name.is_empty());
            assert!(region < REGIONS.len());
        }
        assert_eq!(NATIONS.len(), 25);
    }

    #[test]
    fn value_lists_match_spec_sizes() {
        assert_eq!(SEGMENTS.len(), 5);
        assert_eq!(SHIP_MODES.len(), 7);
        assert_eq!(SHIP_INSTRUCTS.len(), 4);
        assert_eq!(ORDER_PRIORITIES.len(), 5);
    }

    #[test]
    fn pick_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(pick(&mut a, &SEGMENTS), pick(&mut b, &SEGMENTS));
        }
    }
}
