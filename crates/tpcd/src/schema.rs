//! Logical schema of the eight TPC-D tables and the generic value type used
//! to hand rows to a storage engine.

use std::sync::OnceLock;

use crate::Date;

/// Column type in the TPC-D schema.
///
/// All `DECIMAL(x,2)` columns are represented as integer hundredths
/// ([`Value::Dec`]), and dates as day counts ([`Value::Date`]), matching the
/// fixed-width attribute layout the paper's database uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ColType {
    /// 8-byte signed integer.
    Int,
    /// 8-byte decimal, stored as hundredths.
    Dec,
    /// 4-byte date (days since 1992-01-01).
    Date,
    /// Fixed-width character string of the given byte width.
    Str(u16),
}

impl ColType {
    /// On-page width in bytes of a value of this type.
    pub fn width(self) -> u16 {
        match self {
            ColType::Int | ColType::Dec => 8,
            ColType::Date => 4,
            ColType::Str(n) => n,
        }
    }
}

/// One column of a table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name with its TPC-D prefix (`l_shipdate`, `c_mktsegment`, …).
    pub name: &'static str,
    /// Column type.
    pub ty: ColType,
}

/// One TPC-D table definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableDef {
    /// Table name (`lineitem`, `orders`, …).
    pub name: &'static str,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
    /// Base cardinality at scale factor 1.0 (0 for derived tables).
    pub base_cardinality: u64,
}

impl TableDef {
    /// Index of the column called `name`, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column called `name`, if present.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Total fixed row payload width in bytes (excluding tuple header).
    pub fn row_width(&self) -> u64 {
        self.columns.iter().map(|c| c.ty.width() as u64).sum()
    }
}

/// A single column value.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Decimal in hundredths (`12.34` is `Dec(1234)`).
    Dec(i64),
    /// Calendar date.
    Date(Date),
    /// Character string (stored fixed-width, space padded, on page).
    Str(String),
}

impl Value {
    /// The integer payload, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The decimal payload in hundredths, if this is a [`Value::Dec`].
    pub fn as_dec(&self) -> Option<i64> {
        match self {
            Value::Dec(v) => Some(*v),
            _ => None,
        }
    }

    /// The date payload, if this is a [`Value::Date`].
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<Date> for Value {
    fn from(d: Date) -> Self {
        Value::Date(d)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

macro_rules! columns {
    ($(($name:literal, $ty:expr)),+ $(,)?) => {
        vec![$(ColumnDef { name: $name, ty: $ty }),+]
    };
}

/// The eight TPC-D table definitions, in population order.
///
/// Built once and cached for the process: the schema is consulted on every
/// row-format operation (`.tbl` rendering, heap layout, fault classification),
/// and rebuilding eight `Vec<ColumnDef>`s per lookup dominated small-table
/// allocation profiles.
pub fn tpcd_schema() -> &'static [TableDef] {
    static SCHEMA: OnceLock<Vec<TableDef>> = OnceLock::new();
    SCHEMA.get_or_init(build_schema)
}

fn build_schema() -> Vec<TableDef> {
    use ColType::*;
    vec![
        TableDef {
            name: "region",
            base_cardinality: 5,
            columns: columns![
                ("r_regionkey", Int),
                ("r_name", Str(25)),
                ("r_comment", Str(30)),
            ],
        },
        TableDef {
            name: "nation",
            base_cardinality: 25,
            columns: columns![
                ("n_nationkey", Int),
                ("n_name", Str(25)),
                ("n_regionkey", Int),
                ("n_comment", Str(30)),
            ],
        },
        TableDef {
            name: "supplier",
            base_cardinality: 10_000,
            columns: columns![
                ("s_suppkey", Int),
                ("s_name", Str(25)),
                ("s_address", Str(40)),
                ("s_nationkey", Int),
                ("s_phone", Str(15)),
                ("s_acctbal", Dec),
                ("s_comment", Str(25)),
            ],
        },
        TableDef {
            name: "customer",
            base_cardinality: 150_000,
            columns: columns![
                ("c_custkey", Int),
                ("c_name", Str(25)),
                ("c_address", Str(40)),
                ("c_nationkey", Int),
                ("c_phone", Str(15)),
                ("c_acctbal", Dec),
                ("c_mktsegment", Str(10)),
                ("c_comment", Str(60)),
            ],
        },
        TableDef {
            name: "part",
            base_cardinality: 200_000,
            columns: columns![
                ("p_partkey", Int),
                ("p_name", Str(55)),
                ("p_mfgr", Str(25)),
                ("p_brand", Str(10)),
                ("p_type", Str(25)),
                ("p_size", Int),
                ("p_container", Str(10)),
                ("p_retailprice", Dec),
                ("p_comment", Str(14)),
            ],
        },
        TableDef {
            name: "partsupp",
            base_cardinality: 800_000,
            columns: columns![
                ("ps_partkey", Int),
                ("ps_suppkey", Int),
                ("ps_availqty", Int),
                ("ps_supplycost", Dec),
                ("ps_comment", Str(50)),
            ],
        },
        TableDef {
            name: "orders",
            base_cardinality: 1_500_000,
            columns: columns![
                ("o_orderkey", Int),
                ("o_custkey", Int),
                ("o_orderstatus", Str(1)),
                ("o_totalprice", Dec),
                ("o_orderdate", Date),
                ("o_orderpriority", Str(15)),
                ("o_clerk", Str(15)),
                ("o_shippriority", Int),
                ("o_comment", Str(30)),
            ],
        },
        TableDef {
            name: "lineitem",
            // Derived: roughly four lineitems per order.
            base_cardinality: 6_000_000,
            columns: columns![
                ("l_orderkey", Int),
                ("l_partkey", Int),
                ("l_suppkey", Int),
                ("l_linenumber", Int),
                ("l_quantity", Dec),
                ("l_extendedprice", Dec),
                ("l_discount", Dec),
                ("l_tax", Dec),
                ("l_returnflag", Str(1)),
                ("l_linestatus", Str(1)),
                ("l_shipdate", Date),
                ("l_commitdate", Date),
                ("l_receiptdate", Date),
                ("l_shipinstruct", Str(25)),
                ("l_shipmode", Str(10)),
                ("l_comment", Str(27)),
            ],
        },
    ]
}

/// Looks up a table definition by name in [`tpcd_schema`].
pub fn table_def(name: &str) -> Option<&'static TableDef> {
    tpcd_schema().iter().find(|t| t.name == name)
}

/// Rounds a base cardinality by the scale factor, with a floor of one row.
pub fn scaled_cardinality(base: u64, scale: f64) -> u64 {
    ((base as f64 * scale).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_has_eight_tables() {
        let schema = tpcd_schema();
        assert_eq!(schema.len(), 8);
        let names: Vec<_> = schema.iter().map(|t| t.name).collect();
        assert_eq!(
            names,
            [
                "region", "nation", "supplier", "customer", "part", "partsupp", "orders",
                "lineitem"
            ]
        );
    }

    #[test]
    fn lineitem_has_sixteen_columns() {
        let li = table_def("lineitem").unwrap();
        assert_eq!(li.columns.len(), 16);
        assert_eq!(li.column_index("l_shipdate"), Some(10));
        assert_eq!(li.column("l_comment").unwrap().ty, ColType::Str(27));
    }

    #[test]
    fn row_width_matches_hand_sum() {
        let li = table_def("lineitem").unwrap();
        // 8 ints/decs * 8 + 2 flags + 3 dates * 4 + 25 + 10 + 27.
        assert_eq!(li.row_width(), 8 * 8 + 2 + 12 + 25 + 10 + 27);
    }

    #[test]
    fn scaled_cardinality_rounds_and_floors() {
        assert_eq!(scaled_cardinality(150_000, 0.01), 1500);
        assert_eq!(scaled_cardinality(5, 0.01), 1);
        assert_eq!(scaled_cardinality(1_500_000, 0.01), 15_000);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Dec(1234).as_dec(), Some(1234));
        assert_eq!(Value::Int(4).as_dec(), None);
        assert_eq!(Value::from("AIR").as_str(), Some("AIR"));
        let d = Date::from_ymd(1995, 3, 15);
        assert_eq!(Value::from(d).as_date(), Some(d));
    }

    #[test]
    fn width_of_types() {
        assert_eq!(ColType::Int.width(), 8);
        assert_eq!(ColType::Dec.width(), 8);
        assert_eq!(ColType::Date.width(), 4);
        assert_eq!(ColType::Str(25).width(), 25);
    }

    #[test]
    fn unknown_table_is_none() {
        assert!(table_def("nope").is_none());
    }
}
