//! dbgen-compatible `.tbl` interchange: pipe-delimited, one row per line,
//! trailing delimiter, dates as `YYYY-MM-DD`, decimals with two places.
//!
//! The original study populated its database with the TPC Council's `dbgen`;
//! this module lets the reproduction exchange populations with any tool that
//! speaks that format.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::schema::{tpcd_schema, ColType, TableDef, Value};
use crate::{Date, DbData};

/// Renders one table's rows in `.tbl` format.
pub fn to_tbl(def: &TableDef, rows: &[Vec<Value>]) -> String {
    // Fixed-width row payload plus delimiters bounds the text length from
    // above (variable-width strings render at most their declared width), so
    // one reservation covers the whole table.
    let mut out =
        String::with_capacity(rows.len() * (def.row_width() as usize + def.columns.len() + 4));
    for row in rows {
        for value in row {
            match value {
                Value::Int(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Dec(v) => {
                    let _ = write!(out, "{}.{:02}", v / 100, (v % 100).abs());
                }
                Value::Date(d) => {
                    let _ = write!(out, "{d}");
                }
                Value::Str(s) => out.push_str(s),
            }
            out.push('|');
        }
        out.push('\n');
    }
    let _ = def;
    out
}

/// Parses `.tbl` text back into rows matching `def`'s column types.
///
/// # Errors
///
/// Returns a descriptive error for arity mismatches or unparsable fields.
pub fn from_tbl(def: &TableDef, text: &str) -> Result<Vec<Vec<Value>>, TblError> {
    let mut rows = Vec::with_capacity(text.len() / (def.row_width() as usize / 2).max(1));
    for (lineno, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let mut fields: Vec<&str> = line.split('|').collect();
        // dbgen writes a trailing delimiter, leaving one empty field.
        if fields.last() == Some(&"") {
            fields.pop();
        }
        if fields.len() != def.columns.len() {
            return Err(TblError::new(
                def.name,
                lineno + 1,
                format!(
                    "expected {} fields, found {}",
                    def.columns.len(),
                    fields.len()
                ),
            ));
        }
        let mut row = Vec::with_capacity(fields.len());
        for (field, col) in fields.iter().zip(&def.columns) {
            let value = parse_field(field, col.ty).map_err(|msg| {
                TblError::new(def.name, lineno + 1, format!("column {}: {msg}", col.name))
            })?;
            row.push(value);
        }
        rows.push(row);
    }
    Ok(rows)
}

fn parse_field(field: &str, ty: ColType) -> Result<Value, String> {
    match ty {
        ColType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| format!("bad integer {field:?}")),
        ColType::Dec => {
            let (whole, frac) = match field.split_once('.') {
                Some((w, f)) => (w, f),
                None => (field, "0"),
            };
            let sign = if whole.starts_with('-') { -1 } else { 1 };
            let whole: i64 = whole
                .parse()
                .map_err(|_| format!("bad decimal {field:?}"))?;
            let mut frac = frac.to_owned();
            frac.truncate(2);
            while frac.len() < 2 {
                frac.push('0');
            }
            let frac: i64 = frac.parse().map_err(|_| format!("bad decimal {field:?}"))?;
            Ok(Value::Dec(whole * 100 + sign * frac))
        }
        ColType::Date => {
            let parts: Vec<&str> = field.split('-').collect();
            if parts.len() != 3 {
                return Err(format!("bad date {field:?}"));
            }
            let parse = |s: &str| s.parse::<i64>().map_err(|_| format!("bad date {field:?}"));
            let (y, m, d) = (parse(parts[0])?, parse(parts[1])?, parse(parts[2])?);
            if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
                return Err(format!("bad date {field:?}"));
            }
            Ok(Value::Date(Date::from_ymd(y as i32, m as u32, d as u32)))
        }
        ColType::Str(_) => Ok(Value::Str(field.to_owned())),
    }
}

impl DbData {
    /// Writes all eight tables as `<dir>/<table>.tbl`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory is not writable.
    pub fn write_tbl(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        for def in tpcd_schema() {
            let text = to_tbl(def, &self.rows(def.name));
            fs::write(dir.join(format!("{}.tbl", def.name)), text)?;
        }
        Ok(())
    }
}

/// A `.tbl` parse failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TblError {
    table: &'static str,
    line: usize,
    message: String,
}

impl TblError {
    fn new(table: &'static str, line: usize, message: String) -> Self {
        TblError {
            table,
            line,
            message,
        }
    }
}

impl std::fmt::Display for TblError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.tbl line {}: {}", self.table, self.line, self.message)
    }
}

impl std::error::Error for TblError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{table_def, Generator};

    #[test]
    fn every_table_roundtrips() {
        let db = Generator::new(0.001, 4).generate();
        for def in tpcd_schema() {
            let rows = db.rows(def.name);
            let text = to_tbl(def, &rows);
            let back = from_tbl(def, &text).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(back, rows, "roundtrip of {}", def.name);
        }
    }

    #[test]
    fn format_matches_dbgen_conventions() {
        let def = table_def("region").unwrap();
        let rows = vec![vec![
            Value::Int(0),
            Value::Str("AFRICA".into()),
            Value::Str("nice comment".into()),
        ]];
        assert_eq!(to_tbl(def, &rows), "0|AFRICA|nice comment|\n");
    }

    #[test]
    fn decimals_and_dates_render_canonically() {
        let def = table_def("orders").unwrap();
        let db = Generator::new(0.001, 4).generate();
        let text = to_tbl(def, &db.rows("orders"));
        let first = text.lines().next().unwrap();
        let fields: Vec<&str> = first.split('|').collect();
        // o_totalprice has two decimals; o_orderdate is ISO.
        assert!(fields[3].contains('.'));
        assert_eq!(fields[3].split('.').nth(1).unwrap().len(), 2);
        assert_eq!(fields[4].len(), 10);
        assert_eq!(fields[4].matches('-').count(), 2);
    }

    #[test]
    fn negative_decimals_roundtrip() {
        let def = table_def("supplier").unwrap();
        let row = vec![
            Value::Int(1),
            Value::Str("Supplier#1".into()),
            Value::Str("addr".into()),
            Value::Int(3),
            Value::Str("11-1".into()),
            Value::Dec(-507), // -5.07
            Value::Str("c".into()),
        ];
        let text = to_tbl(def, std::slice::from_ref(&row));
        assert!(text.contains("|-5.07|"));
        assert_eq!(from_tbl(def, &text).unwrap(), vec![row]);
    }

    #[test]
    fn arity_and_type_errors_are_reported_with_position() {
        let def = table_def("region").unwrap();
        let err = from_tbl(def, "0|AFRICA|\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = from_tbl(def, "zero|AFRICA|c|\n").unwrap_err();
        assert!(err.to_string().contains("r_regionkey"));
    }

    #[test]
    fn write_tbl_creates_all_files() {
        let dir = std::env::temp_dir().join(format!("dss_tbl_{}", std::process::id()));
        let db = Generator::new(0.001, 4).generate();
        db.write_tbl(&dir).expect("writable temp dir");
        for def in tpcd_schema() {
            let path = dir.join(format!("{}.tbl", def.name));
            let text = std::fs::read_to_string(&path).expect("file written");
            assert_eq!(text.lines().count() as u64, db.rows(def.name).len() as u64);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
