//! The dbgen-equivalent population generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::{scaled_cardinality, tpcd_schema, Value};
use crate::text;
use crate::Date;

/// A generated `customer` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Customer {
    /// Primary key, 1-based and dense.
    pub custkey: i64,
    /// `Customer#<key>`.
    pub name: String,
    /// Random address text.
    pub address: String,
    /// Foreign key into `nation`.
    pub nationkey: i64,
    /// Phone number.
    pub phone: String,
    /// Account balance in hundredths.
    pub acctbal: i64,
    /// One of the five market segments.
    pub mktsegment: &'static str,
    /// Filler.
    pub comment: String,
}

/// A generated `orders` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Order {
    /// Primary key, 1-based and dense.
    pub orderkey: i64,
    /// Foreign key into `customer`.
    pub custkey: i64,
    /// `F`, `O` or `P` depending on lineitem statuses.
    pub orderstatus: char,
    /// Total price in hundredths.
    pub totalprice: i64,
    /// Order placement date.
    pub orderdate: Date,
    /// One of the five priorities.
    pub orderpriority: &'static str,
    /// `Clerk#<n>`.
    pub clerk: String,
    /// Always zero in TPC-D.
    pub shippriority: i64,
    /// Filler.
    pub comment: String,
}

/// A generated `lineitem` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Lineitem {
    /// Foreign key into `orders`.
    pub orderkey: i64,
    /// Foreign key into `part`.
    pub partkey: i64,
    /// Foreign key into `supplier`.
    pub suppkey: i64,
    /// 1-based line number within the order.
    pub linenumber: i64,
    /// Quantity in hundredths (1.00–50.00).
    pub quantity: i64,
    /// Extended price in hundredths.
    pub extendedprice: i64,
    /// Discount in hundredths (0.00–0.10).
    pub discount: i64,
    /// Tax in hundredths (0.00–0.08).
    pub tax: i64,
    /// `R`, `A` or `N`.
    pub returnflag: char,
    /// `O` or `F`.
    pub linestatus: char,
    /// Ship date.
    pub shipdate: Date,
    /// Committed delivery date.
    pub commitdate: Date,
    /// Receipt date.
    pub receiptdate: Date,
    /// One of the four instructions.
    pub shipinstruct: &'static str,
    /// One of the seven modes.
    pub shipmode: &'static str,
    /// Filler.
    pub comment: String,
}

/// A generated `part` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Part {
    /// Primary key, 1-based and dense.
    pub partkey: i64,
    /// Five noise words.
    pub name: String,
    /// `Manufacturer#<1-5>`.
    pub mfgr: String,
    /// `Brand#<mfgr><1-5>`.
    pub brand: String,
    /// Three-syllable type string.
    pub ty: String,
    /// 1–50.
    pub size: i64,
    /// Two-syllable container string.
    pub container: String,
    /// Retail price in hundredths.
    pub retailprice: i64,
    /// Filler.
    pub comment: String,
}

/// A generated `partsupp` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartSupp {
    /// Foreign key into `part`.
    pub partkey: i64,
    /// Foreign key into `supplier`.
    pub suppkey: i64,
    /// 1–9999.
    pub availqty: i64,
    /// Supply cost in hundredths.
    pub supplycost: i64,
    /// Filler.
    pub comment: String,
}

/// A generated `supplier` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Supplier {
    /// Primary key, 1-based and dense.
    pub suppkey: i64,
    /// `Supplier#<key>`.
    pub name: String,
    /// Random address text.
    pub address: String,
    /// Foreign key into `nation`.
    pub nationkey: i64,
    /// Phone number.
    pub phone: String,
    /// Account balance in hundredths.
    pub acctbal: i64,
    /// Filler.
    pub comment: String,
}

/// A generated `nation` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Nation {
    /// Primary key, 0-based like the spec.
    pub nationkey: i64,
    /// Nation name.
    pub name: &'static str,
    /// Foreign key into `region`.
    pub regionkey: i64,
    /// Filler.
    pub comment: String,
}

/// A generated `region` row.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Region {
    /// Primary key, 0-based like the spec.
    pub regionkey: i64,
    /// Region name.
    pub name: &'static str,
    /// Filler.
    pub comment: String,
}

/// A complete generated database population.
#[derive(Clone, Debug, Default)]
pub struct DbData {
    /// `region` rows.
    pub regions: Vec<Region>,
    /// `nation` rows.
    pub nations: Vec<Nation>,
    /// `supplier` rows.
    pub suppliers: Vec<Supplier>,
    /// `customer` rows.
    pub customers: Vec<Customer>,
    /// `part` rows.
    pub parts: Vec<Part>,
    /// `partsupp` rows.
    pub partsupps: Vec<PartSupp>,
    /// `orders` rows.
    pub orders: Vec<Order>,
    /// `lineitem` rows.
    pub lineitems: Vec<Lineitem>,
}

impl DbData {
    /// Rows of table `name` as generic values in schema column order.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a TPC-D table.
    pub fn rows(&self, name: &str) -> Vec<Vec<Value>> {
        match name {
            "region" => self.regions.iter().map(region_values).collect(),
            "nation" => self.nations.iter().map(nation_values).collect(),
            "supplier" => self.suppliers.iter().map(supplier_values).collect(),
            "customer" => self.customers.iter().map(customer_values).collect(),
            "part" => self.parts.iter().map(part_values).collect(),
            "partsupp" => self.partsupps.iter().map(partsupp_values).collect(),
            "orders" => self.orders.iter().map(order_values).collect(),
            "lineitem" => self.lineitems.iter().map(lineitem_values).collect(),
            other => panic!("unknown TPC-D table {other}"),
        }
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.regions.len()
            + self.nations.len()
            + self.suppliers.len()
            + self.customers.len()
            + self.parts.len()
            + self.partsupps.len()
            + self.orders.len()
            + self.lineitems.len()
    }
}

impl Order {
    /// The row as generic values in schema column order.
    pub fn values(&self) -> Vec<Value> {
        order_values(self)
    }
}

impl Lineitem {
    /// The row as generic values in schema column order.
    pub fn values(&self) -> Vec<Value> {
        lineitem_values(self)
    }
}

fn region_values(r: &Region) -> Vec<Value> {
    vec![r.regionkey.into(), r.name.into(), r.comment.clone().into()]
}

fn nation_values(n: &Nation) -> Vec<Value> {
    vec![
        n.nationkey.into(),
        n.name.into(),
        n.regionkey.into(),
        n.comment.clone().into(),
    ]
}

fn supplier_values(s: &Supplier) -> Vec<Value> {
    vec![
        s.suppkey.into(),
        s.name.clone().into(),
        s.address.clone().into(),
        s.nationkey.into(),
        s.phone.clone().into(),
        Value::Dec(s.acctbal),
        s.comment.clone().into(),
    ]
}

fn customer_values(c: &Customer) -> Vec<Value> {
    vec![
        c.custkey.into(),
        c.name.clone().into(),
        c.address.clone().into(),
        c.nationkey.into(),
        c.phone.clone().into(),
        Value::Dec(c.acctbal),
        c.mktsegment.into(),
        c.comment.clone().into(),
    ]
}

fn part_values(p: &Part) -> Vec<Value> {
    vec![
        p.partkey.into(),
        p.name.clone().into(),
        p.mfgr.clone().into(),
        p.brand.clone().into(),
        p.ty.clone().into(),
        p.size.into(),
        p.container.clone().into(),
        Value::Dec(p.retailprice),
        p.comment.clone().into(),
    ]
}

fn partsupp_values(ps: &PartSupp) -> Vec<Value> {
    vec![
        ps.partkey.into(),
        ps.suppkey.into(),
        ps.availqty.into(),
        Value::Dec(ps.supplycost),
        ps.comment.clone().into(),
    ]
}

fn order_values(o: &Order) -> Vec<Value> {
    vec![
        o.orderkey.into(),
        o.custkey.into(),
        o.orderstatus.to_string().into(),
        Value::Dec(o.totalprice),
        o.orderdate.into(),
        o.orderpriority.into(),
        o.clerk.clone().into(),
        o.shippriority.into(),
        o.comment.clone().into(),
    ]
}

fn lineitem_values(l: &Lineitem) -> Vec<Value> {
    vec![
        l.orderkey.into(),
        l.partkey.into(),
        l.suppkey.into(),
        l.linenumber.into(),
        Value::Dec(l.quantity),
        Value::Dec(l.extendedprice),
        Value::Dec(l.discount),
        Value::Dec(l.tax),
        l.returnflag.to_string().into(),
        l.linestatus.to_string().into(),
        l.shipdate.into(),
        l.commitdate.into(),
        l.receiptdate.into(),
        l.shipinstruct.into(),
        l.shipmode.into(),
        l.comment.clone().into(),
    ]
}

/// The deterministic TPC-D population generator.
///
/// Reproduces dbgen's value distributions (uniform dates within the 1992–1998
/// population window, spec price formulas, per-order lineitem fan-out of one
/// to seven) at an arbitrary scale factor. The paper scales the standard data
/// set down 100×, i.e. `scale = 0.01`, producing a ~15 MB heap image whose
/// `lineitem` table is ~70 % of the data.
///
/// # Example
///
/// ```
/// use dss_tpcd::Generator;
///
/// let db = Generator::new(0.001, 42).generate();
/// assert_eq!(db.customers.len(), 150);
/// assert!(!db.lineitems.is_empty());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Generator {
    scale: f64,
    seed: u64,
}

impl Generator {
    /// Creates a generator for the given scale factor and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn new(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0, "scale factor must be positive");
        Generator { scale, seed }
    }

    /// The configured scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Generates the full population.
    pub fn generate(&self) -> DbData {
        let mut db = DbData {
            regions: self.regions(),
            nations: self.nations(),
            suppliers: self.suppliers(),
            customers: self.customers(),
            parts: self.parts(),
            partsupps: Vec::new(),
            orders: Vec::new(),
            lineitems: Vec::new(),
        };
        db.partsupps = self.partsupps(db.parts.len() as i64, db.suppliers.len() as i64);
        let (orders, lineitems) = self.orders_and_lineitems(
            db.customers.len() as i64,
            db.parts.len() as i64,
            db.suppliers.len() as i64,
        );
        db.orders = orders;
        db.lineitems = lineitems;
        db
    }

    fn cardinality_of(&self, table: &str) -> u64 {
        let def = tpcd_schema()
            .iter()
            .find(|t| t.name == table)
            .expect("known table");
        match table {
            // Fixed-size tables do not scale.
            "region" | "nation" => def.base_cardinality,
            _ => scaled_cardinality(def.base_cardinality, self.scale),
        }
    }

    fn rng_for(&self, table: &str) -> StdRng {
        // Independent, stable stream per table so adding columns to one table
        // never perturbs another.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in table.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }

    fn regions(&self) -> Vec<Region> {
        let mut rng = self.rng_for("region");
        text::REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| Region {
                regionkey: i as i64,
                name,
                comment: text::comment(&mut rng, 30),
            })
            .collect()
    }

    fn nations(&self) -> Vec<Nation> {
        let mut rng = self.rng_for("nation");
        text::NATIONS
            .iter()
            .enumerate()
            .map(|(i, (name, region))| Nation {
                nationkey: i as i64,
                name,
                regionkey: *region as i64,
                comment: text::comment(&mut rng, 30),
            })
            .collect()
    }

    fn suppliers(&self) -> Vec<Supplier> {
        let mut rng = self.rng_for("supplier");
        (1..=self.cardinality_of("supplier") as i64)
            .map(|k| {
                let nationkey = rng.gen_range(0..25);
                Supplier {
                    suppkey: k,
                    name: format!("Supplier#{k:09}"),
                    address: text::comment(&mut rng, 24),
                    nationkey,
                    phone: text::phone(&mut rng, nationkey),
                    acctbal: rng.gen_range(-99_999..=999_999),
                    comment: text::comment(&mut rng, 25),
                }
            })
            .collect()
    }

    fn customers(&self) -> Vec<Customer> {
        let mut rng = self.rng_for("customer");
        (1..=self.cardinality_of("customer") as i64)
            .map(|k| {
                let nationkey = rng.gen_range(0..25);
                Customer {
                    custkey: k,
                    name: format!("Customer#{k:09}"),
                    address: text::comment(&mut rng, 24),
                    nationkey,
                    phone: text::phone(&mut rng, nationkey),
                    acctbal: rng.gen_range(-99_999..=999_999),
                    mktsegment: text::pick(&mut rng, &text::SEGMENTS),
                    comment: text::comment(&mut rng, 60),
                }
            })
            .collect()
    }

    fn parts(&self) -> Vec<Part> {
        let mut rng = self.rng_for("part");
        (1..=self.cardinality_of("part") as i64)
            .map(|k| {
                let mfgr = rng.gen_range(1..=5);
                let brand = mfgr * 10 + rng.gen_range(1..=5);
                let mut name_words: Vec<&str> = Vec::with_capacity(5);
                for _ in 0..5 {
                    name_words.push(text::pick(&mut rng, &text::PART_NAME_WORDS));
                }
                Part {
                    partkey: k,
                    name: name_words.join(" "),
                    mfgr: format!("Manufacturer#{mfgr}"),
                    brand: format!("Brand#{brand}"),
                    ty: format!(
                        "{} {} {}",
                        text::pick(&mut rng, &text::TYPE_SYL1),
                        text::pick(&mut rng, &text::TYPE_SYL2),
                        text::pick(&mut rng, &text::TYPE_SYL3)
                    ),
                    size: rng.gen_range(1..=50),
                    container: format!(
                        "{} {}",
                        text::pick(&mut rng, &text::CONTAINER_SYL1),
                        text::pick(&mut rng, &text::CONTAINER_SYL2)
                    ),
                    retailprice: retail_price(k),
                    comment: text::comment(&mut rng, 14),
                }
            })
            .collect()
    }

    fn partsupps(&self, parts: i64, suppliers: i64) -> Vec<PartSupp> {
        let mut rng = self.rng_for("partsupp");
        let mut out = Vec::with_capacity(parts as usize * 4);
        for partkey in 1..=parts {
            for i in 0..4i64 {
                out.push(PartSupp {
                    partkey,
                    suppkey: partsupp_suppkey(partkey, i, suppliers),
                    availqty: rng.gen_range(1..=9999),
                    supplycost: rng.gen_range(100..=100_000),
                    comment: text::comment(&mut rng, 50),
                });
            }
        }
        out
    }

    fn orders_and_lineitems(
        &self,
        customers: i64,
        parts: i64,
        suppliers: i64,
    ) -> (Vec<Order>, Vec<Lineitem>) {
        let mut rng = self.rng_for("orders");
        let n_orders = self.cardinality_of("orders") as i64;
        let mut orders = Vec::with_capacity(n_orders as usize);
        let mut lineitems = Vec::with_capacity(n_orders as usize * 4);
        for orderkey in 1..=n_orders {
            let (o, ls) = gen_order(&mut rng, orderkey, customers, parts, suppliers);
            orders.push(o);
            lineitems.extend(ls);
        }
        (orders, lineitems)
    }

    /// Generates the rows inserted by TPC-D's update function UF1: `count`
    /// new orders (with their lineitems) keyed from `base_orderkey`, drawn
    /// from the same distributions as the base population.
    ///
    /// The paper declines to trace the update functions; this supports the
    /// reproduction's update-workload extension experiment.
    pub fn uf1_rows(
        &self,
        seed: u64,
        count: usize,
        base_orderkey: i64,
    ) -> (Vec<Order>, Vec<Lineitem>) {
        let customers = self.cardinality_of("customer") as i64;
        let parts = self.cardinality_of("part") as i64;
        let suppliers = self.cardinality_of("supplier") as i64;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7531_9d4a_11aa_22bb);
        let mut orders = Vec::with_capacity(count);
        let mut lineitems = Vec::new();
        for i in 0..count as i64 {
            let (o, ls) = gen_order(&mut rng, base_orderkey + i, customers, parts, suppliers);
            orders.push(o);
            lineitems.extend(ls);
        }
        (orders, lineitems)
    }
}

/// Generates one order and its lineitems from the spec distributions.
fn gen_order(
    rng: &mut StdRng,
    orderkey: i64,
    customers: i64,
    parts: i64,
    suppliers: i64,
) -> (Order, Vec<Lineitem>) {
    // Latest order date leaves room for ship+receipt offsets (151 days).
    let order_window = Date::END.days_since(Date::START) - 151;
    let custkey = rng.gen_range(1..=customers);
    let orderdate = Date::START.add_days(rng.gen_range(0..=order_window));
    let lines = rng.gen_range(1..=7);
    let mut totalprice = 0i64;
    let mut shipped = 0;
    let mut lineitems = Vec::with_capacity(lines as usize);
    for linenumber in 1..=lines {
        let partkey = rng.gen_range(1..=parts);
        let quantity = rng.gen_range(1..=50) * 100;
        let extendedprice = retail_price(partkey) * (quantity / 100);
        let discount = rng.gen_range(0..=10);
        let tax = rng.gen_range(0..=8);
        let shipdate = orderdate.add_days(rng.gen_range(1..=121));
        let commitdate = orderdate.add_days(rng.gen_range(30..=90));
        let receiptdate = shipdate.add_days(rng.gen_range(1..=30));
        let linestatus = if shipdate > Date::CURRENT { 'O' } else { 'F' };
        let returnflag = if receiptdate <= Date::CURRENT {
            if rng.gen_bool(0.5) {
                'R'
            } else {
                'A'
            }
        } else {
            'N'
        };
        if linestatus == 'F' {
            shipped += 1;
        }
        totalprice += extendedprice * (100 - discount) / 100 * (100 + tax) / 100;
        lineitems.push(Lineitem {
            orderkey,
            partkey,
            suppkey: partsupp_suppkey(partkey, rng.gen_range(0..4), suppliers),
            linenumber,
            quantity,
            extendedprice,
            discount,
            tax,
            returnflag,
            linestatus,
            shipdate,
            commitdate,
            receiptdate,
            shipinstruct: text::pick(rng, &text::SHIP_INSTRUCTS),
            shipmode: text::pick(rng, &text::SHIP_MODES),
            comment: text::comment(rng, 27),
        });
    }
    let orderstatus = if shipped == lines {
        'F'
    } else if shipped == 0 {
        'O'
    } else {
        'P'
    };
    let order = Order {
        orderkey,
        custkey,
        orderstatus,
        totalprice,
        orderdate,
        orderpriority: text::pick(rng, &text::ORDER_PRIORITIES),
        clerk: format!("Clerk#{:09}", rng.gen_range(1..=1000)),
        shippriority: 0,
        comment: text::comment(rng, 30),
    };
    (order, lineitems)
}

/// The spec's retail price formula: `(90000 + ((partkey/10) % 20001) +
/// 100 * (partkey % 1000)) / 100` dollars, kept in hundredths.
pub(crate) fn retail_price(partkey: i64) -> i64 {
    90_000 + (partkey / 10) % 20_001 + 100 * (partkey % 1000)
}

/// The spec's partsupp supplier spreading formula.
pub(crate) fn partsupp_suppkey(partkey: i64, i: i64, suppliers: i64) -> i64 {
    let s = suppliers;
    (partkey + i * (s / 4 + (partkey - 1) / s)) % s + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> DbData {
        Generator::new(0.001, 7).generate()
    }

    #[test]
    fn cardinalities_scale() {
        let db = small_db();
        assert_eq!(db.regions.len(), 5);
        assert_eq!(db.nations.len(), 25);
        assert_eq!(db.suppliers.len(), 10);
        assert_eq!(db.customers.len(), 150);
        assert_eq!(db.parts.len(), 200);
        assert_eq!(db.partsupps.len(), 800);
        assert_eq!(db.orders.len(), 1500);
        // One to seven lineitems per order, averaging four.
        assert!(db.lineitems.len() >= db.orders.len());
        assert!(db.lineitems.len() <= db.orders.len() * 7);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Generator::new(0.001, 7).generate();
        let b = Generator::new(0.001, 7).generate();
        assert_eq!(a.lineitems, b.lineitems);
        assert_eq!(a.customers, b.customers);
        let c = Generator::new(0.001, 8).generate();
        assert_ne!(a.lineitems, c.lineitems);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let db = small_db();
        for o in &db.orders {
            assert!(o.custkey >= 1 && o.custkey <= db.customers.len() as i64);
        }
        for l in &db.lineitems {
            assert!(l.orderkey >= 1 && l.orderkey <= db.orders.len() as i64);
            assert!(l.partkey >= 1 && l.partkey <= db.parts.len() as i64);
            assert!(l.suppkey >= 1 && l.suppkey <= db.suppliers.len() as i64);
        }
        for ps in &db.partsupps {
            assert!(ps.suppkey >= 1 && ps.suppkey <= db.suppliers.len() as i64);
        }
    }

    #[test]
    fn date_invariants_hold() {
        let db = small_db();
        let orders_by_key = &db.orders;
        for l in &db.lineitems {
            let o = &orders_by_key[(l.orderkey - 1) as usize];
            assert!(l.shipdate > o.orderdate);
            assert!(l.receiptdate > l.shipdate);
            assert!(l.commitdate >= o.orderdate.add_days(30));
            assert!(l.shipdate <= Date::END);
            // Status flags follow the current-date rule.
            if l.shipdate > Date::CURRENT {
                assert_eq!(l.linestatus, 'O');
            } else {
                assert_eq!(l.linestatus, 'F');
            }
            if l.receiptdate > Date::CURRENT {
                assert_eq!(l.returnflag, 'N');
            }
        }
    }

    #[test]
    fn lineitems_are_clustered_by_orderkey() {
        // dbgen emits lineitems grouped by order, which is what gives the
        // sequential scan its streaming behavior over orderkey.
        let db = small_db();
        let keys: Vec<i64> = db.lineitems.iter().map(|l| l.orderkey).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn values_match_schema_arity() {
        let db = small_db();
        for table in tpcd_schema() {
            let rows = db.rows(table.name);
            assert!(!rows.is_empty(), "{} empty", table.name);
            for row in &rows {
                assert_eq!(row.len(), table.columns.len(), "arity of {}", table.name);
            }
        }
    }

    #[test]
    fn all_segments_appear_at_tiny_scale() {
        let db = small_db();
        let mut seen: std::collections::HashSet<&str> = Default::default();
        for c in &db.customers {
            seen.insert(c.mktsegment);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn retail_price_formula_matches_spec() {
        assert_eq!(retail_price(1), 90_100);
        assert_eq!(retail_price(10), 90_001 + 100 * 10);
    }

    #[test]
    fn partsupp_suppkeys_in_range() {
        for partkey in 1..=100 {
            for i in 0..4 {
                let k = partsupp_suppkey(partkey, i, 10);
                assert!((1..=10).contains(&k));
            }
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_rejected() {
        Generator::new(0.0, 1);
    }
}
