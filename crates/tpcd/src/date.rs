//! Civil dates for the TPC-D workload.
//!
//! TPC-D's data population spans 1992-01-01 through 1998-12-31 with a fixed
//! "current date" of 1995-06-17. Dates are stored as a day count since
//! 1992-01-01 so they order and subtract cheaply, exactly like the 4-byte
//! date columns of the paper's database.

use std::fmt;

/// A calendar date, stored as days since 1992-01-01.
///
/// # Example
///
/// ```
/// use dss_tpcd::Date;
///
/// let d = Date::from_ymd(1995, 3, 15);
/// assert_eq!(d.ymd(), (1995, 3, 15));
/// assert_eq!(d.add_days(17), Date::from_ymd(1995, 4, 1));
/// assert!(d < Date::CURRENT);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(i32);

/// Day number (since civil epoch 1970-01-01) of 1992-01-01.
const TPCD_EPOCH_CIVIL: i64 = 8035;

impl Date {
    /// First date populated by dbgen (1992-01-01).
    pub const START: Date = Date(0);
    /// TPC-D's fixed current date, 1995-06-17.
    pub const CURRENT: Date = Date(1263);
    /// Last date populated by dbgen (1998-12-31).
    pub const END: Date = Date(2556);

    /// Builds a date from a calendar year, month (1–12) and day (1–31).
    ///
    /// # Panics
    ///
    /// Panics if the month or day is out of range for the given year.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Date {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            day >= 1 && day <= days_in_month(year, month),
            "day {day} invalid for {year}-{month}"
        );
        Date((days_from_civil(year, month, day) - TPCD_EPOCH_CIVIL) as i32)
    }

    /// Builds a date directly from a day count since 1992-01-01.
    pub fn from_day_number(days: i32) -> Date {
        Date(days)
    }

    /// The day count since 1992-01-01 (may be negative for earlier dates).
    pub fn day_number(self) -> i32 {
        self.0
    }

    /// Decomposes into `(year, month, day)`.
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0 as i64 + TPCD_EPOCH_CIVIL)
    }

    /// This date plus `days` (which may be negative).
    pub fn add_days(self, days: i32) -> Date {
        Date(self.0 + days)
    }

    /// This date plus `months`, clamping the day to the target month's length
    /// (so Jan 31 + 1 month = Feb 28/29), as the TPC-D parameter rules do.
    pub fn add_months(self, months: i32) -> Date {
        let (y, m, d) = self.ymd();
        let total = y * 12 + (m as i32 - 1) + months;
        let ny = total.div_euclid(12);
        let nm = (total.rem_euclid(12) + 1) as u32;
        let nd = d.min(days_in_month(ny, nm));
        Date::from_ymd(ny, nm, nd)
    }

    /// Days elapsed from `other` to `self`.
    pub fn days_since(self, other: Date) -> i32 {
        self.0 - other.0
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => unreachable!("month validated by callers"),
    }
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = y as i64 - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = (m as i64 + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of `days_from_civil`).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    ((y + if m <= 2 { 1 } else { 0 }) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_constants_are_correct() {
        assert_eq!(Date::START.ymd(), (1992, 1, 1));
        assert_eq!(Date::CURRENT.ymd(), (1995, 6, 17));
        assert_eq!(Date::END.ymd(), (1998, 12, 31));
        assert_eq!(Date::from_ymd(1992, 1, 1).day_number(), 0);
    }

    #[test]
    fn roundtrip_across_range() {
        for days in (-365..4000).step_by(13) {
            let d = Date::from_day_number(days);
            let (y, m, dd) = d.ymd();
            assert_eq!(Date::from_ymd(y, m, dd), d);
        }
    }

    #[test]
    fn leap_years_handled() {
        assert_eq!(
            Date::from_ymd(1992, 2, 29).add_days(1),
            Date::from_ymd(1992, 3, 1)
        );
        assert_eq!(
            Date::from_ymd(1993, 2, 28).add_days(1),
            Date::from_ymd(1993, 3, 1)
        );
        // 2000 is a leap year (divisible by 400), 1900 was not.
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
    }

    #[test]
    fn add_months_clamps_day() {
        assert_eq!(
            Date::from_ymd(1995, 1, 31).add_months(1),
            Date::from_ymd(1995, 2, 28)
        );
        assert_eq!(
            Date::from_ymd(1995, 3, 1).add_months(12),
            Date::from_ymd(1996, 3, 1)
        );
        assert_eq!(
            Date::from_ymd(1995, 3, 1).add_months(-3),
            Date::from_ymd(1994, 12, 1)
        );
    }

    #[test]
    fn ordering_follows_calendar() {
        assert!(Date::from_ymd(1994, 2, 3) < Date::from_ymd(1995, 2, 3));
        assert!(Date::from_ymd(1995, 2, 3) < Date::from_ymd(1995, 2, 4));
        assert_eq!(
            Date::from_ymd(1995, 2, 4).days_since(Date::from_ymd(1995, 2, 1)),
            3
        );
    }

    #[test]
    fn display_is_iso() {
        assert_eq!(Date::from_ymd(1995, 6, 17).to_string(), "1995-06-17");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_month_rejected() {
        Date::from_ymd(1995, 13, 1);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn bad_day_rejected() {
        Date::from_ymd(1995, 2, 29);
    }
}
