//! Chunked, parallel, allocation-lean `.tbl` generation.
//!
//! [`crate::Generator`] materializes the whole population in memory before a
//! single byte reaches disk — fine at the paper's 100×-reduced scale, but the
//! wrong shape for the streaming pipeline, which wants table data produced in
//! bounded memory at any scale factor. This module instead defines the
//! population as a sequence of independently seeded **units** — one row for
//! the entity tables, one part's four `partsupp` rows, one order with its one
//! to seven lineitems — where unit `u` of table `t` draws from
//! `StdRng::seed_from_u64(seed ^ fnv1a(t, u))`. Any contiguous range of
//! units can be rendered without generating its predecessors, so batch size
//! and worker count are pure throughput knobs: the bytes written are
//! identical for every [`ChunkedGenerator::batch_units`] and `jobs` choice
//! (pinned by `tests/chunking.rs`).
//!
//! Rows are rendered straight into reused `String` buffers — no per-row
//! `Vec<Value>`, no per-field allocation beyond the buffers themselves — and
//! each table streams through a temp-then-rename writer, so a killed run
//! never leaves a torn `.tbl` behind. Peak memory is one batch of text per
//! worker regardless of scale factor.
//!
//! The unit streams are intentionally a *different* population from
//! [`crate::Generator`], which draws each table from one sequential RNG; the
//! golden artifacts pin the legacy generator, and the chunked generator pins
//! its own bytes through the chunking property suite.

use std::fmt::Write as _;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write as _};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::{partsupp_suppkey, retail_price};
use crate::schema::{scaled_cardinality, table_def};
use crate::{text, Date};

/// Default units per rendering batch: large enough to amortize dispatch,
/// small enough that a worker's text buffer stays around a megabyte.
pub const DEFAULT_BATCH_UNITS: usize = 4096;

/// The seven independent generation tasks, in schema order. The `orders`
/// task also produces `lineitem` (an order and its lineitems are one unit).
const TASKS: [&str; 7] = [
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders",
];

/// Row counts and output size from a [`ChunkedGenerator::write_dir`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenReport {
    /// Rows written per table, in schema order (all eight tables).
    pub rows: Vec<(&'static str, u64)>,
    /// Total `.tbl` bytes written.
    pub bytes: u64,
}

impl GenReport {
    /// Rows written for `table`, if it was generated.
    pub fn rows_for(&self, table: &str) -> Option<u64> {
        self.rows.iter().find(|(t, _)| *t == table).map(|(_, n)| *n)
    }
}

/// The chunked, parallel `.tbl` generator.
///
/// # Example
///
/// ```
/// use dss_tpcd::ChunkedGenerator;
///
/// let g = ChunkedGenerator::new(0.001, 42);
/// assert_eq!(g.unit_count("customer"), 150);
///
/// // Any batching yields the same bytes.
/// let mut one = (String::new(), String::new());
/// let mut many = (String::new(), String::new());
/// g.render_units("orders", 0..g.unit_count("orders"), &mut one.0, &mut one.1);
/// for u in 0..g.unit_count("orders") {
///     g.render_units("orders", u..u + 1, &mut many.0, &mut many.1);
/// }
/// assert_eq!(one, many);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ChunkedGenerator {
    scale: f64,
    seed: u64,
    batch: usize,
}

/// Scaled cardinalities the order generator needs for foreign keys.
#[derive(Clone, Copy)]
struct Cards {
    customers: i64,
    parts: i64,
    suppliers: i64,
}

impl ChunkedGenerator {
    /// Creates a generator for the given scale factor and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn new(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0, "scale factor must be positive");
        ChunkedGenerator {
            scale,
            seed,
            batch: DEFAULT_BATCH_UNITS,
        }
    }

    /// Sets the units rendered per batch (a pure throughput/memory knob).
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    pub fn batch_units(mut self, units: usize) -> Self {
        assert!(units > 0, "batch must hold at least one unit");
        self.batch = units;
        self
    }

    /// The configured scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The configured seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of generation units for `table` at this scale factor.
    ///
    /// A unit is one row, except `partsupp` (one part's four rows) and
    /// `orders` (one order plus its lineitems). `lineitem` has no unit
    /// stream of its own — it rides on `orders`.
    ///
    /// # Panics
    ///
    /// Panics for `lineitem` or an unknown table.
    pub fn unit_count(&self, table: &str) -> u64 {
        match table {
            "region" | "nation" => table_def(table).expect("fixed table").base_cardinality,
            "partsupp" => self.unit_count("part"),
            "supplier" | "customer" | "part" | "orders" => scaled_cardinality(
                table_def(table).expect("scaled table").base_cardinality,
                self.scale,
            ),
            other => panic!("no unit stream for table {other:?} (lineitem rides on orders)"),
        }
    }

    /// The per-unit RNG: `seed ^ fnv1a(table bytes, unit index)`. Every unit
    /// is an independent stream, which is what makes chunk boundaries
    /// invisible in the output.
    fn unit_rng(&self, table: &str, unit: u64) -> StdRng {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in table.bytes().chain(unit.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        StdRng::seed_from_u64(self.seed ^ h)
    }

    fn cards(&self) -> Cards {
        Cards {
            customers: self.unit_count("customer") as i64,
            parts: self.unit_count("part") as i64,
            suppliers: self.unit_count("supplier") as i64,
        }
    }

    /// Appends the `.tbl` text of units `range` of `table` to `primary`
    /// (and, for the `orders` task, lineitem rows to `secondary`), returning
    /// `(primary, secondary)` row counts. Ranges past the unit count are
    /// clamped; buffers are appended to, not cleared.
    ///
    /// # Panics
    ///
    /// Panics for `lineitem` or an unknown table (see [`Self::unit_count`]).
    pub fn render_units(
        &self,
        table: &str,
        range: Range<u64>,
        primary: &mut String,
        secondary: &mut String,
    ) -> (u64, u64) {
        let end = range.end.min(self.unit_count(table));
        let cards = self.cards();
        let mut rows = (0u64, 0u64);
        for unit in range.start..end {
            let mut rng = self.unit_rng(table, unit);
            match table {
                "region" => rows.0 += region_unit(unit, &mut rng, primary),
                "nation" => rows.0 += nation_unit(unit, &mut rng, primary),
                "supplier" => rows.0 += supplier_unit(unit, &mut rng, primary),
                "customer" => rows.0 += customer_unit(unit, &mut rng, primary),
                "part" => rows.0 += part_unit(unit, &mut rng, primary),
                "partsupp" => rows.0 += partsupp_unit(unit, &mut rng, cards, primary),
                "orders" => {
                    let (o, l) = order_unit(unit, &mut rng, cards, primary, secondary);
                    rows.0 += o;
                    rows.1 += l;
                }
                other => unreachable!("unit_count admitted {other:?}"),
            }
        }
        rows
    }

    /// Generates all eight `.tbl` files under `dir` with up to `jobs` worker
    /// threads (clamped to the seven independent tasks; zero means one).
    ///
    /// Each table streams through a temp-then-rename writer, so a crashed or
    /// killed run leaves either no `.tbl` or a complete one. Output bytes
    /// are identical for every `jobs` and batch size.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error from any writer.
    pub fn write_dir(&self, dir: &Path, jobs: usize) -> io::Result<GenReport> {
        fs::create_dir_all(dir)?;
        let jobs = jobs.clamp(1, TASKS.len());
        let next = AtomicUsize::new(0);
        let outs = std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| {
                    s.spawn(|| {
                        let mut outs = Vec::new();
                        let mut primary = String::new();
                        let mut secondary = String::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(table) = TASKS.get(i) else { break };
                            outs.push(self.run_task(dir, table, &mut primary, &mut secondary));
                        }
                        outs
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("generator worker panicked"))
                .collect::<Vec<_>>()
        });
        let mut per_table = Vec::new();
        let mut bytes = 0;
        for out in outs {
            let (tables, b) = out?;
            per_table.extend(tables);
            bytes += b;
        }
        // Deterministic report order regardless of which worker ran what.
        let mut rows = Vec::with_capacity(8);
        for def in crate::schema::tpcd_schema() {
            let n = per_table
                .iter()
                .find(|(t, _)| *t == def.name)
                .map(|(_, n)| *n)
                .expect("every table generated");
            rows.push((def.name, n));
        }
        Ok(GenReport { rows, bytes })
    }

    /// Generates one task's file(s), batch by batch, through atomic writers.
    fn run_task(
        &self,
        dir: &Path,
        table: &'static str,
        primary: &mut String,
        secondary: &mut String,
    ) -> io::Result<(Vec<(&'static str, u64)>, u64)> {
        let mut main = AtomicFile::create(dir.join(format!("{table}.tbl")))?;
        let mut side = match table {
            "orders" => Some(AtomicFile::create(dir.join("lineitem.tbl"))?),
            _ => None,
        };
        let units = self.unit_count(table);
        let batch = self.batch as u64;
        let mut rows = (0u64, 0u64);
        let mut start = 0u64;
        while start < units {
            let end = (start + batch).min(units);
            primary.clear();
            secondary.clear();
            let (p, l) = self.render_units(table, start..end, primary, secondary);
            rows.0 += p;
            rows.1 += l;
            main.write(primary)?;
            if let Some(f) = side.as_mut() {
                f.write(secondary)?;
            }
            start = end;
        }
        let mut bytes = main.commit()?;
        let mut tables = vec![(table, rows.0)];
        if let Some(mut f) = side {
            bytes += f.commit()?;
            tables.push(("lineitem", rows.1));
        }
        Ok((tables, bytes))
    }
}

/// A streaming temp-then-rename file: bytes land in a `.tmp.<pid>` sibling
/// and only an explicit [`AtomicFile::commit`] renames them into place, so
/// readers never observe a torn table. (The same protocol as the workbench's
/// `write_atomic`, restated here because the generator streams its contents
/// instead of holding them in memory.)
struct AtomicFile {
    out: BufWriter<File>,
    tmp: PathBuf,
    dest: PathBuf,
    bytes: u64,
    committed: bool,
}

impl AtomicFile {
    fn create(dest: PathBuf) -> io::Result<AtomicFile> {
        let mut name = dest
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(format!(".tmp.{}", std::process::id()));
        let tmp = dest.with_file_name(name);
        let file = File::create(&tmp)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", tmp.display())))?;
        Ok(AtomicFile {
            out: BufWriter::new(file),
            tmp,
            dest,
            bytes: 0,
            committed: false,
        })
    }

    fn write(&mut self, text: &str) -> io::Result<()> {
        self.bytes += text.len() as u64;
        self.out.write_all(text.as_bytes())
    }

    fn commit(&mut self) -> io::Result<u64> {
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        fs::rename(&self.tmp, &self.dest)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", self.dest.display())))?;
        self.committed = true;
        Ok(self.bytes)
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if !self.committed {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// Appends `v` in hundredths as `.tbl` decimal text plus the delimiter.
fn push_dec(out: &mut String, v: i64) {
    let _ = write!(out, "{}.{:02}|", v / 100, (v % 100).abs());
}

fn region_unit(unit: u64, rng: &mut StdRng, out: &mut String) -> u64 {
    let _ = write!(out, "{unit}|{}|", text::REGIONS[unit as usize]);
    text::comment_into(rng, 30, out);
    out.push_str("|\n");
    1
}

fn nation_unit(unit: u64, rng: &mut StdRng, out: &mut String) -> u64 {
    let (name, region) = text::NATIONS[unit as usize];
    let _ = write!(out, "{unit}|{name}|{region}|");
    text::comment_into(rng, 30, out);
    out.push_str("|\n");
    1
}

fn supplier_unit(unit: u64, rng: &mut StdRng, out: &mut String) -> u64 {
    let key = unit as i64 + 1;
    let nationkey: i64 = rng.gen_range(0..25);
    let _ = write!(out, "{key}|Supplier#{key:09}|");
    text::comment_into(rng, 24, out);
    let _ = write!(out, "|{nationkey}|");
    text::phone_into(rng, nationkey, out);
    out.push('|');
    push_dec(out, rng.gen_range(-99_999..=999_999));
    text::comment_into(rng, 25, out);
    out.push_str("|\n");
    1
}

fn customer_unit(unit: u64, rng: &mut StdRng, out: &mut String) -> u64 {
    let key = unit as i64 + 1;
    let nationkey: i64 = rng.gen_range(0..25);
    let _ = write!(out, "{key}|Customer#{key:09}|");
    text::comment_into(rng, 24, out);
    let _ = write!(out, "|{nationkey}|");
    text::phone_into(rng, nationkey, out);
    out.push('|');
    push_dec(out, rng.gen_range(-99_999..=999_999));
    let _ = write!(out, "{}|", text::pick(rng, &text::SEGMENTS));
    text::comment_into(rng, 60, out);
    out.push_str("|\n");
    1
}

fn part_unit(unit: u64, rng: &mut StdRng, out: &mut String) -> u64 {
    let key = unit as i64 + 1;
    let mfgr: i64 = rng.gen_range(1..=5);
    let brand = mfgr * 10 + rng.gen_range(1..=5);
    let _ = write!(out, "{key}|");
    for i in 0..5 {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(text::pick(rng, &text::PART_NAME_WORDS));
    }
    let _ = write!(
        out,
        "|Manufacturer#{mfgr}|Brand#{brand}|{} {} {}|{}|{} {}|",
        text::pick(rng, &text::TYPE_SYL1),
        text::pick(rng, &text::TYPE_SYL2),
        text::pick(rng, &text::TYPE_SYL3),
        rng.gen_range(1..=50),
        text::pick(rng, &text::CONTAINER_SYL1),
        text::pick(rng, &text::CONTAINER_SYL2),
    );
    push_dec(out, retail_price(key));
    text::comment_into(rng, 14, out);
    out.push_str("|\n");
    1
}

fn partsupp_unit(unit: u64, rng: &mut StdRng, cards: Cards, out: &mut String) -> u64 {
    let partkey = unit as i64 + 1;
    for i in 0..4i64 {
        let suppkey = partsupp_suppkey(partkey, i, cards.suppliers);
        let _ = write!(out, "{partkey}|{suppkey}|{}|", rng.gen_range(1..=9999));
        push_dec(out, rng.gen_range(100..=100_000));
        text::comment_into(rng, 50, out);
        out.push_str("|\n");
    }
    4
}

/// One order plus its lineitems, mirroring the spec distributions of
/// [`crate::Generator`]'s `gen_order` (dates in the population window,
/// one-to-seven lines, status flags from the fixed current date).
fn order_unit(
    unit: u64,
    rng: &mut StdRng,
    cards: Cards,
    orders: &mut String,
    lineitems: &mut String,
) -> (u64, u64) {
    let orderkey = unit as i64 + 1;
    let order_window = Date::END.days_since(Date::START) - 151;
    let custkey = rng.gen_range(1..=cards.customers);
    let orderdate = Date::START.add_days(rng.gen_range(0..=order_window));
    let lines: i64 = rng.gen_range(1..=7);
    let mut totalprice = 0i64;
    let mut shipped = 0;
    for linenumber in 1..=lines {
        let partkey = rng.gen_range(1..=cards.parts);
        let quantity = rng.gen_range(1..=50) * 100;
        let extendedprice = retail_price(partkey) * (quantity / 100);
        let discount = rng.gen_range(0..=10);
        let tax = rng.gen_range(0..=8);
        let shipdate = orderdate.add_days(rng.gen_range(1..=121));
        let commitdate = orderdate.add_days(rng.gen_range(30..=90));
        let receiptdate = shipdate.add_days(rng.gen_range(1..=30));
        let linestatus = if shipdate > Date::CURRENT { 'O' } else { 'F' };
        let returnflag = if receiptdate <= Date::CURRENT {
            if rng.gen_bool(0.5) {
                'R'
            } else {
                'A'
            }
        } else {
            'N'
        };
        if linestatus == 'F' {
            shipped += 1;
        }
        totalprice += extendedprice * (100 - discount) / 100 * (100 + tax) / 100;
        let suppkey = partsupp_suppkey(partkey, rng.gen_range(0..4), cards.suppliers);
        let _ = write!(lineitems, "{orderkey}|{partkey}|{suppkey}|{linenumber}|");
        push_dec(lineitems, quantity);
        push_dec(lineitems, extendedprice);
        push_dec(lineitems, discount);
        push_dec(lineitems, tax);
        let _ = write!(
            lineitems,
            "{returnflag}|{linestatus}|{shipdate}|{commitdate}|{receiptdate}|{}|{}|",
            text::pick(rng, &text::SHIP_INSTRUCTS),
            text::pick(rng, &text::SHIP_MODES),
        );
        text::comment_into(rng, 27, lineitems);
        lineitems.push_str("|\n");
    }
    let orderstatus = if shipped == lines {
        'F'
    } else if shipped == 0 {
        'O'
    } else {
        'P'
    };
    let _ = write!(orders, "{orderkey}|{custkey}|{orderstatus}|");
    push_dec(orders, totalprice);
    let _ = write!(
        orders,
        "{orderdate}|{}|Clerk#{:09}|0|",
        text::pick(rng, &text::ORDER_PRIORITIES),
        rng.gen_range(1..=1000),
    );
    text::comment_into(rng, 30, orders);
    orders.push_str("|\n");
    (1, lines as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_tbl, tpcd_schema};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dss-chunk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cardinalities_match_legacy_scaling() {
        let g = ChunkedGenerator::new(0.001, 7);
        assert_eq!(g.unit_count("region"), 5);
        assert_eq!(g.unit_count("nation"), 25);
        assert_eq!(g.unit_count("supplier"), 10);
        assert_eq!(g.unit_count("customer"), 150);
        assert_eq!(g.unit_count("part"), 200);
        assert_eq!(g.unit_count("partsupp"), 200); // units of four rows
        assert_eq!(g.unit_count("orders"), 1500);
    }

    #[test]
    fn every_table_parses_against_the_schema() {
        let g = ChunkedGenerator::new(0.001, 7);
        let mut primary = String::new();
        let mut secondary = String::new();
        for def in tpcd_schema() {
            if def.name == "lineitem" {
                continue;
            }
            primary.clear();
            secondary.clear();
            let (rows, lines) = g.render_units(
                def.name,
                0..g.unit_count(def.name),
                &mut primary,
                &mut secondary,
            );
            let parsed = from_tbl(def, &primary).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(parsed.len() as u64, rows, "{}", def.name);
            if def.name == "orders" {
                let li = table_def("lineitem").unwrap();
                let parsed = from_tbl(li, &secondary).unwrap_or_else(|e| panic!("{e}"));
                assert_eq!(parsed.len() as u64, lines);
                assert!(lines >= rows && lines <= rows * 7);
            }
        }
    }

    #[test]
    fn write_dir_is_invariant_to_jobs_and_batch() {
        let base = temp_dir("base");
        let wide = temp_dir("wide");
        let a = ChunkedGenerator::new(0.001, 7)
            .batch_units(10_000)
            .write_dir(&base, 1)
            .unwrap();
        let b = ChunkedGenerator::new(0.001, 7)
            .batch_units(17)
            .write_dir(&wide, 7)
            .unwrap();
        assert_eq!(a, b);
        for def in tpcd_schema() {
            let x = fs::read(base.join(format!("{}.tbl", def.name))).unwrap();
            let y = fs::read(wide.join(format!("{}.tbl", def.name))).unwrap();
            assert_eq!(x, y, "{} differs across jobs/batch", def.name);
            assert!(!x.is_empty());
        }
        let _ = fs::remove_dir_all(&base);
        let _ = fs::remove_dir_all(&wide);
    }

    #[test]
    fn report_counts_rows_in_schema_order() {
        let dir = temp_dir("report");
        let report = ChunkedGenerator::new(0.001, 7).write_dir(&dir, 4).unwrap();
        let names: Vec<_> = report.rows.iter().map(|(t, _)| *t).collect();
        assert_eq!(
            names,
            [
                "region", "nation", "supplier", "customer", "part", "partsupp", "orders",
                "lineitem"
            ]
        );
        assert_eq!(report.rows_for("partsupp"), Some(800));
        assert_eq!(report.rows_for("orders"), Some(1500));
        let li = report.rows_for("lineitem").unwrap();
        assert!((1500..=1500 * 7).contains(&li));
        assert!(report.bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeds_produce_different_populations() {
        let g7 = ChunkedGenerator::new(0.001, 7);
        let g8 = ChunkedGenerator::new(0.001, 8);
        let mut a = (String::new(), String::new());
        let mut b = (String::new(), String::new());
        g7.render_units("customer", 0..10, &mut a.0, &mut a.1);
        g8.render_units("customer", 0..10, &mut b.0, &mut b.1);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn no_torn_tbl_left_behind_on_drop() {
        let dir = temp_dir("torn");
        let mut f = AtomicFile::create(dir.join("orders.tbl")).unwrap();
        f.write("1|partial").unwrap();
        drop(f);
        assert!(fs::read_dir(&dir).unwrap().next().is_none(), "temp cleaned");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "lineitem rides on orders")]
    fn lineitem_has_no_unit_stream() {
        ChunkedGenerator::new(0.001, 7).unit_count("lineitem");
    }
}
