//! Chunked, parallel, allocation-lean `.tbl` generation.
//!
//! [`crate::Generator`] materializes the whole population in memory before a
//! single byte reaches disk — fine at the paper's 100×-reduced scale, but the
//! wrong shape for the streaming pipeline, which wants table data produced in
//! bounded memory at any scale factor. This module instead defines the
//! population as a sequence of independently seeded **units** — one row for
//! the entity tables, one part's four `partsupp` rows, one order with its one
//! to seven lineitems — where unit `u` of table `t` draws from
//! `StdRng::seed_from_u64(seed ^ fnv1a(t, u))`. Any contiguous range of
//! units can be rendered without generating its predecessors, so batch size
//! and worker count are pure throughput knobs: the bytes written are
//! identical for every [`ChunkedGenerator::batch_units`] and `jobs` choice
//! (pinned by `tests/chunking.rs`).
//!
//! Rows are rendered straight into reused `String` buffers — no per-row
//! `Vec<Value>`, no per-field allocation beyond the buffers themselves — and
//! each table streams through a temp-then-rename writer, so a killed run
//! never leaves a torn `.tbl` behind. Peak memory is one batch of text per
//! worker regardless of scale factor.
//!
//! The unit streams are intentionally a *different* population from
//! [`crate::Generator`], which draws each table from one sequential RNG; the
//! golden artifacts pin the legacy generator, and the chunked generator pins
//! its own bytes through the chunking property suite.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write as _};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::gen::{partsupp_suppkey, retail_price};
use crate::schema::{scaled_cardinality, table_def};
use crate::{text, Date};

/// Default units per rendering batch: large enough to amortize dispatch,
/// small enough that a worker's text buffer stays around a megabyte.
pub const DEFAULT_BATCH_UNITS: usize = 4096;

/// The seven independent generation tasks, in schema order. The `orders`
/// task also produces `lineitem` (an order and its lineitems are one unit).
const TASKS: [&str; 7] = [
    "region", "nation", "supplier", "customer", "part", "partsupp", "orders",
];

/// Row counts and output size from a [`ChunkedGenerator::write_dir`] run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GenReport {
    /// Rows written per table, in schema order (all eight tables).
    pub rows: Vec<(&'static str, u64)>,
    /// Total `.tbl` bytes written.
    pub bytes: u64,
}

impl GenReport {
    /// Rows written for `table`, if it was generated.
    pub fn rows_for(&self, table: &str) -> Option<u64> {
        self.rows.iter().find(|(t, _)| *t == table).map(|(_, n)| *n)
    }
}

/// The chunked, parallel `.tbl` generator.
///
/// # Example
///
/// ```
/// use dss_tpcd::ChunkedGenerator;
///
/// let g = ChunkedGenerator::new(0.001, 42);
/// assert_eq!(g.unit_count("customer"), 150);
///
/// // Any batching yields the same bytes.
/// let mut one = (String::new(), String::new());
/// let mut many = (String::new(), String::new());
/// g.render_units("orders", 0..g.unit_count("orders"), &mut one.0, &mut one.1);
/// for u in 0..g.unit_count("orders") {
///     g.render_units("orders", u..u + 1, &mut many.0, &mut many.1);
/// }
/// assert_eq!(one, many);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct ChunkedGenerator {
    scale: f64,
    seed: u64,
    batch: usize,
}

/// Scaled cardinalities the order generator needs for foreign keys.
#[derive(Clone, Copy)]
struct Cards {
    customers: i64,
    parts: i64,
    suppliers: i64,
}

impl ChunkedGenerator {
    /// Creates a generator for the given scale factor and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive.
    pub fn new(scale: f64, seed: u64) -> Self {
        assert!(scale > 0.0, "scale factor must be positive");
        ChunkedGenerator {
            scale,
            seed,
            batch: DEFAULT_BATCH_UNITS,
        }
    }

    /// Sets the units rendered per batch (a pure throughput/memory knob).
    ///
    /// # Panics
    ///
    /// Panics if `units` is zero.
    pub fn batch_units(mut self, units: usize) -> Self {
        assert!(units > 0, "batch must hold at least one unit");
        self.batch = units;
        self
    }

    /// The configured scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The configured seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of generation units for `table` at this scale factor.
    ///
    /// A unit is one row, except `partsupp` (one part's four rows) and
    /// `orders` (one order plus its lineitems). `lineitem` has no unit
    /// stream of its own — it rides on `orders`.
    ///
    /// # Panics
    ///
    /// Panics for `lineitem` or an unknown table.
    pub fn unit_count(&self, table: &str) -> u64 {
        match table {
            "region" | "nation" => table_def(table).expect("fixed table").base_cardinality,
            "partsupp" => self.unit_count("part"),
            "supplier" | "customer" | "part" | "orders" => scaled_cardinality(
                table_def(table).expect("scaled table").base_cardinality,
                self.scale,
            ),
            other => panic!("no unit stream for table {other:?} (lineitem rides on orders)"),
        }
    }

    /// The per-unit RNG: `seed ^ fnv1a(table bytes, unit index)`. Every unit
    /// is an independent stream, which is what makes chunk boundaries
    /// invisible in the output.
    fn unit_rng(&self, table: &str, unit: u64) -> StdRng {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in table.bytes().chain(unit.to_le_bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
        StdRng::seed_from_u64(self.seed ^ h)
    }

    fn cards(&self) -> Cards {
        Cards {
            customers: self.unit_count("customer") as i64,
            parts: self.unit_count("part") as i64,
            suppliers: self.unit_count("supplier") as i64,
        }
    }

    /// Appends the `.tbl` text of units `range` of `table` to `primary`
    /// (and, for the `orders` task, lineitem rows to `secondary`), returning
    /// `(primary, secondary)` row counts. Ranges past the unit count are
    /// clamped; buffers are appended to, not cleared.
    ///
    /// # Panics
    ///
    /// Panics for `lineitem` or an unknown table (see [`Self::unit_count`]).
    pub fn render_units(
        &self,
        table: &str,
        range: Range<u64>,
        primary: &mut String,
        secondary: &mut String,
    ) -> (u64, u64) {
        let end = range.end.min(self.unit_count(table));
        let cards = self.cards();
        let mut rows = (0u64, 0u64);
        for unit in range.start..end {
            let mut rng = self.unit_rng(table, unit);
            match table {
                "region" => rows.0 += region_unit(unit, &mut rng, primary),
                "nation" => rows.0 += nation_unit(unit, &mut rng, primary),
                "supplier" => rows.0 += supplier_unit(unit, &mut rng, primary),
                "customer" => rows.0 += customer_unit(unit, &mut rng, primary),
                "part" => rows.0 += part_unit(unit, &mut rng, primary),
                "partsupp" => rows.0 += partsupp_unit(unit, &mut rng, cards, primary),
                "orders" => {
                    let (o, l) = order_unit(unit, &mut rng, cards, primary, secondary);
                    rows.0 += o;
                    rows.1 += l;
                }
                other => unreachable!("unit_count admitted {other:?}"),
            }
        }
        rows
    }

    /// Generates all eight `.tbl` files under `dir` with up to `jobs` worker
    /// threads (zero means one).
    ///
    /// Parallelism is *batch*-grained, not table-grained: every batch of
    /// every table is an independent work item (the per-unit RNG makes unit
    /// ranges self-contained), so eight cores stay busy even though one
    /// table — `orders`/`lineitem` — dominates the output. Workers pull
    /// batches table-major off a shared queue and hand rendered text to a
    /// per-table in-order merge that writes batch `k` only after batch
    /// `k-1`, so the bytes on disk are identical for every `jobs` and batch
    /// size. Each table streams through a temp-then-rename writer, so a
    /// crashed or killed run leaves either no `.tbl` or a complete one.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error from any writer, or an error if a worker
    /// thread panicked (no file is committed in that case).
    pub fn write_dir(&self, dir: &Path, jobs: usize) -> io::Result<GenReport> {
        fs::create_dir_all(dir)?;
        // One merge (and output file) per task, created up front so an
        // early failure never leaves a half-written table behind.
        let mut merges = Vec::with_capacity(TASKS.len());
        for table in TASKS {
            let main = AtomicFile::create(dir.join(format!("{table}.tbl")))?;
            let side = match table {
                "orders" => Some(AtomicFile::create(dir.join("lineitem.tbl"))?),
                _ => None,
            };
            merges.push(Mutex::new(Merge {
                next: 0,
                pending: BTreeMap::new(),
                main,
                side,
                rows: (0, 0),
                error: None,
            }));
        }
        // The flat batch queue, table-major: workers near each other in the
        // queue render neighboring batches, so each table's in-order merge
        // holds at most about `jobs` pending batches.
        let batch = self.batch as u64;
        let mut tasks = Vec::new();
        let mut total_batches = vec![0u64; TASKS.len()];
        for (ti, table) in TASKS.iter().enumerate() {
            let units = self.unit_count(table);
            let mut start = 0u64;
            while start < units {
                let end = (start + batch).min(units);
                tasks.push(BatchTask {
                    ti,
                    index: total_batches[ti],
                    units: start..end,
                });
                total_batches[ti] += 1;
                start = end;
            }
        }
        let jobs = jobs.max(1).min(tasks.len().max(1));
        let next = AtomicUsize::new(0);
        let pool: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
        let clean = std::thread::scope(|s| {
            let handles: Vec<_> = (0..jobs)
                .map(|_| s.spawn(|| self.run_batches(&tasks, &next, &merges, &pool)))
                .collect();
            handles.into_iter().all(|h| h.join().is_ok())
        });
        if !clean {
            return Err(io::Error::other("a generator worker thread panicked"));
        }
        // Commit in schema order; refuse to commit anything incomplete.
        let mut per_table = Vec::with_capacity(8);
        let mut bytes = 0;
        for ((mutex, table), total) in merges.into_iter().zip(TASKS).zip(total_batches) {
            let mut m = mutex.into_inner().unwrap_or_else(|e| e.into_inner());
            if let Some(e) = m.error.take() {
                return Err(e);
            }
            if m.next != total {
                return Err(io::Error::other(format!(
                    "table {table}: only {} of {total} batches were merged",
                    m.next
                )));
            }
            bytes += m.main.commit()?;
            per_table.push((table, m.rows.0));
            if let Some(mut f) = m.side.take() {
                bytes += f.commit()?;
                per_table.push(("lineitem", m.rows.1));
            }
        }
        // Deterministic report order regardless of which worker ran what.
        let mut rows = Vec::with_capacity(8);
        for def in crate::schema::tpcd_schema() {
            let n = per_table
                .iter()
                .find(|(t, _)| *t == def.name)
                .map(|(_, n)| *n)
                .expect("every table generated");
            rows.push((def.name, n));
        }
        Ok(GenReport { rows, bytes })
    }

    /// One worker's loop: pull batches off the queue, render into pooled
    /// buffers, hand the text to the owning table's in-order merge.
    fn run_batches(
        &self,
        tasks: &[BatchTask],
        next: &AtomicUsize,
        merges: &[Mutex<Merge>],
        pool: &Mutex<Vec<(String, String)>>,
    ) {
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(task) = tasks.get(i) else { break };
            let Some(merge) = merges.get(task.ti) else {
                break;
            };
            let Some(table) = TASKS.get(task.ti) else {
                break;
            };
            // If this table already failed, don't waste cycles rendering
            // batches that will be discarded.
            if lock_clean(merge).error.is_some() {
                continue;
            }
            let (mut primary, mut secondary) = lock_clean(pool).pop().unwrap_or_default();
            primary.clear();
            secondary.clear();
            let rows = self.render_units(table, task.units.clone(), &mut primary, &mut secondary);
            let mut m = lock_clean(merge);
            if m.error.is_some() {
                drop(m);
                lock_clean(pool).push((primary, secondary));
                continue;
            }
            m.pending.insert(
                task.index,
                Rendered {
                    primary,
                    secondary,
                    rows,
                },
            );
            // Drain everything now in order — whichever worker completes the
            // gap writes the whole run, so writes never wait on a scheduler.
            loop {
                let due = m.next;
                let Some(r) = m.pending.remove(&due) else {
                    break;
                };
                let mut wrote = m.main.write(&r.primary);
                if let (Ok(()), Some(f)) = (&wrote, m.side.as_mut()) {
                    wrote = f.write(&r.secondary);
                }
                if let Err(e) = wrote {
                    m.error = Some(e);
                    break;
                }
                m.rows.0 += r.rows.0;
                m.rows.1 += r.rows.1;
                m.next += 1;
                lock_clean(pool).push((r.primary, r.secondary));
            }
        }
    }
}

/// One unit range of one table, ready to render independently.
struct BatchTask {
    /// Index into [`TASKS`].
    ti: usize,
    /// Batch sequence number within the table (the merge key).
    index: u64,
    /// The unit range this batch renders.
    units: Range<u64>,
}

/// Rendered batch text parked in a merge until its turn to be written.
struct Rendered {
    primary: String,
    secondary: String,
    rows: (u64, u64),
}

/// Per-table in-order merge state: batches may arrive in any order, but
/// batch `k` reaches the file only after `k-1` has.
struct Merge {
    next: u64,
    pending: BTreeMap<u64, Rendered>,
    main: AtomicFile,
    side: Option<AtomicFile>,
    rows: (u64, u64),
    error: Option<io::Error>,
}

/// Locks a mutex, treating poisoning (a panicked peer) as survivable — the
/// guarded state is either discarded wholesale or checked for completeness
/// before use.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A streaming temp-then-rename file: bytes land in a `.tmp.<pid>` sibling
/// and only an explicit [`AtomicFile::commit`] renames them into place, so
/// readers never observe a torn table. (The same protocol as the workbench's
/// `write_atomic`, restated here because the generator streams its contents
/// instead of holding them in memory.)
struct AtomicFile {
    out: BufWriter<File>,
    tmp: PathBuf,
    dest: PathBuf,
    bytes: u64,
    committed: bool,
}

impl AtomicFile {
    fn create(dest: PathBuf) -> io::Result<AtomicFile> {
        let mut name = dest
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(format!(".tmp.{}", std::process::id()));
        let tmp = dest.with_file_name(name);
        let file = File::create(&tmp)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", tmp.display())))?;
        Ok(AtomicFile {
            out: BufWriter::new(file),
            tmp,
            dest,
            bytes: 0,
            committed: false,
        })
    }

    fn write(&mut self, text: &str) -> io::Result<()> {
        self.bytes += text.len() as u64;
        self.out.write_all(text.as_bytes())
    }

    fn commit(&mut self) -> io::Result<u64> {
        self.out.flush()?;
        self.out.get_ref().sync_all()?;
        fs::rename(&self.tmp, &self.dest)
            .map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", self.dest.display())))?;
        self.committed = true;
        Ok(self.bytes)
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if !self.committed {
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// Appends `v` in hundredths as `.tbl` decimal text plus the delimiter.
fn push_dec(out: &mut String, v: i64) {
    let _ = write!(out, "{}.{:02}|", v / 100, (v % 100).abs());
}

fn region_unit(unit: u64, rng: &mut StdRng, out: &mut String) -> u64 {
    let _ = write!(out, "{unit}|{}|", text::REGIONS[unit as usize]);
    text::comment_into(rng, 30, out);
    out.push_str("|\n");
    1
}

fn nation_unit(unit: u64, rng: &mut StdRng, out: &mut String) -> u64 {
    let (name, region) = text::NATIONS[unit as usize];
    let _ = write!(out, "{unit}|{name}|{region}|");
    text::comment_into(rng, 30, out);
    out.push_str("|\n");
    1
}

fn supplier_unit(unit: u64, rng: &mut StdRng, out: &mut String) -> u64 {
    let key = unit as i64 + 1;
    let nationkey: i64 = rng.gen_range(0..25);
    let _ = write!(out, "{key}|Supplier#{key:09}|");
    text::comment_into(rng, 24, out);
    let _ = write!(out, "|{nationkey}|");
    text::phone_into(rng, nationkey, out);
    out.push('|');
    push_dec(out, rng.gen_range(-99_999..=999_999));
    text::comment_into(rng, 25, out);
    out.push_str("|\n");
    1
}

fn customer_unit(unit: u64, rng: &mut StdRng, out: &mut String) -> u64 {
    let key = unit as i64 + 1;
    let nationkey: i64 = rng.gen_range(0..25);
    let _ = write!(out, "{key}|Customer#{key:09}|");
    text::comment_into(rng, 24, out);
    let _ = write!(out, "|{nationkey}|");
    text::phone_into(rng, nationkey, out);
    out.push('|');
    push_dec(out, rng.gen_range(-99_999..=999_999));
    let _ = write!(out, "{}|", text::pick(rng, &text::SEGMENTS));
    text::comment_into(rng, 60, out);
    out.push_str("|\n");
    1
}

fn part_unit(unit: u64, rng: &mut StdRng, out: &mut String) -> u64 {
    let key = unit as i64 + 1;
    let mfgr: i64 = rng.gen_range(1..=5);
    let brand = mfgr * 10 + rng.gen_range(1..=5);
    let _ = write!(out, "{key}|");
    for i in 0..5 {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(text::pick(rng, &text::PART_NAME_WORDS));
    }
    let _ = write!(
        out,
        "|Manufacturer#{mfgr}|Brand#{brand}|{} {} {}|{}|{} {}|",
        text::pick(rng, &text::TYPE_SYL1),
        text::pick(rng, &text::TYPE_SYL2),
        text::pick(rng, &text::TYPE_SYL3),
        rng.gen_range(1..=50),
        text::pick(rng, &text::CONTAINER_SYL1),
        text::pick(rng, &text::CONTAINER_SYL2),
    );
    push_dec(out, retail_price(key));
    text::comment_into(rng, 14, out);
    out.push_str("|\n");
    1
}

fn partsupp_unit(unit: u64, rng: &mut StdRng, cards: Cards, out: &mut String) -> u64 {
    let partkey = unit as i64 + 1;
    for i in 0..4i64 {
        let suppkey = partsupp_suppkey(partkey, i, cards.suppliers);
        let _ = write!(out, "{partkey}|{suppkey}|{}|", rng.gen_range(1..=9999));
        push_dec(out, rng.gen_range(100..=100_000));
        text::comment_into(rng, 50, out);
        out.push_str("|\n");
    }
    4
}

/// One order plus its lineitems, mirroring the spec distributions of
/// [`crate::Generator`]'s `gen_order` (dates in the population window,
/// one-to-seven lines, status flags from the fixed current date).
fn order_unit(
    unit: u64,
    rng: &mut StdRng,
    cards: Cards,
    orders: &mut String,
    lineitems: &mut String,
) -> (u64, u64) {
    let orderkey = unit as i64 + 1;
    let order_window = Date::END.days_since(Date::START) - 151;
    let custkey = rng.gen_range(1..=cards.customers);
    let orderdate = Date::START.add_days(rng.gen_range(0..=order_window));
    let lines: i64 = rng.gen_range(1..=7);
    let mut totalprice = 0i64;
    let mut shipped = 0;
    for linenumber in 1..=lines {
        let partkey = rng.gen_range(1..=cards.parts);
        let quantity = rng.gen_range(1..=50) * 100;
        let extendedprice = retail_price(partkey) * (quantity / 100);
        let discount = rng.gen_range(0..=10);
        let tax = rng.gen_range(0..=8);
        let shipdate = orderdate.add_days(rng.gen_range(1..=121));
        let commitdate = orderdate.add_days(rng.gen_range(30..=90));
        let receiptdate = shipdate.add_days(rng.gen_range(1..=30));
        let linestatus = if shipdate > Date::CURRENT { 'O' } else { 'F' };
        let returnflag = if receiptdate <= Date::CURRENT {
            if rng.gen_bool(0.5) {
                'R'
            } else {
                'A'
            }
        } else {
            'N'
        };
        if linestatus == 'F' {
            shipped += 1;
        }
        totalprice += extendedprice * (100 - discount) / 100 * (100 + tax) / 100;
        let suppkey = partsupp_suppkey(partkey, rng.gen_range(0..4), cards.suppliers);
        let _ = write!(lineitems, "{orderkey}|{partkey}|{suppkey}|{linenumber}|");
        push_dec(lineitems, quantity);
        push_dec(lineitems, extendedprice);
        push_dec(lineitems, discount);
        push_dec(lineitems, tax);
        let _ = write!(
            lineitems,
            "{returnflag}|{linestatus}|{shipdate}|{commitdate}|{receiptdate}|{}|{}|",
            text::pick(rng, &text::SHIP_INSTRUCTS),
            text::pick(rng, &text::SHIP_MODES),
        );
        text::comment_into(rng, 27, lineitems);
        lineitems.push_str("|\n");
    }
    let orderstatus = if shipped == lines {
        'F'
    } else if shipped == 0 {
        'O'
    } else {
        'P'
    };
    let _ = write!(orders, "{orderkey}|{custkey}|{orderstatus}|");
    push_dec(orders, totalprice);
    let _ = write!(
        orders,
        "{orderdate}|{}|Clerk#{:09}|0|",
        text::pick(rng, &text::ORDER_PRIORITIES),
        rng.gen_range(1..=1000),
    );
    text::comment_into(rng, 30, orders);
    orders.push_str("|\n");
    (1, lines as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{from_tbl, tpcd_schema};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dss-chunk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn cardinalities_match_legacy_scaling() {
        let g = ChunkedGenerator::new(0.001, 7);
        assert_eq!(g.unit_count("region"), 5);
        assert_eq!(g.unit_count("nation"), 25);
        assert_eq!(g.unit_count("supplier"), 10);
        assert_eq!(g.unit_count("customer"), 150);
        assert_eq!(g.unit_count("part"), 200);
        assert_eq!(g.unit_count("partsupp"), 200); // units of four rows
        assert_eq!(g.unit_count("orders"), 1500);
    }

    #[test]
    fn every_table_parses_against_the_schema() {
        let g = ChunkedGenerator::new(0.001, 7);
        let mut primary = String::new();
        let mut secondary = String::new();
        for def in tpcd_schema() {
            if def.name == "lineitem" {
                continue;
            }
            primary.clear();
            secondary.clear();
            let (rows, lines) = g.render_units(
                def.name,
                0..g.unit_count(def.name),
                &mut primary,
                &mut secondary,
            );
            let parsed = from_tbl(def, &primary).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(parsed.len() as u64, rows, "{}", def.name);
            if def.name == "orders" {
                let li = table_def("lineitem").unwrap();
                let parsed = from_tbl(li, &secondary).unwrap_or_else(|e| panic!("{e}"));
                assert_eq!(parsed.len() as u64, lines);
                assert!(lines >= rows && lines <= rows * 7);
            }
        }
    }

    #[test]
    fn write_dir_is_invariant_to_jobs_and_batch() {
        let base = temp_dir("base");
        let wide = temp_dir("wide");
        let swarm = temp_dir("swarm");
        let a = ChunkedGenerator::new(0.001, 7)
            .batch_units(10_000)
            .write_dir(&base, 1)
            .unwrap();
        let b = ChunkedGenerator::new(0.001, 7)
            .batch_units(17)
            .write_dir(&wide, 7)
            .unwrap();
        // More workers than tables and batches small enough that every
        // table's in-order merge sees out-of-order arrivals.
        let c = ChunkedGenerator::new(0.001, 7)
            .batch_units(3)
            .write_dir(&swarm, 16)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        for def in tpcd_schema() {
            let x = fs::read(base.join(format!("{}.tbl", def.name))).unwrap();
            let y = fs::read(wide.join(format!("{}.tbl", def.name))).unwrap();
            let z = fs::read(swarm.join(format!("{}.tbl", def.name))).unwrap();
            assert_eq!(x, y, "{} differs across jobs/batch", def.name);
            assert_eq!(x, z, "{} differs under batch-grain fan-out", def.name);
            assert!(!x.is_empty());
        }
        let _ = fs::remove_dir_all(&base);
        let _ = fs::remove_dir_all(&wide);
        let _ = fs::remove_dir_all(&swarm);
    }

    #[test]
    fn report_counts_rows_in_schema_order() {
        let dir = temp_dir("report");
        let report = ChunkedGenerator::new(0.001, 7).write_dir(&dir, 4).unwrap();
        let names: Vec<_> = report.rows.iter().map(|(t, _)| *t).collect();
        assert_eq!(
            names,
            [
                "region", "nation", "supplier", "customer", "part", "partsupp", "orders",
                "lineitem"
            ]
        );
        assert_eq!(report.rows_for("partsupp"), Some(800));
        assert_eq!(report.rows_for("orders"), Some(1500));
        let li = report.rows_for("lineitem").unwrap();
        assert!((1500..=1500 * 7).contains(&li));
        assert!(report.bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeds_produce_different_populations() {
        let g7 = ChunkedGenerator::new(0.001, 7);
        let g8 = ChunkedGenerator::new(0.001, 8);
        let mut a = (String::new(), String::new());
        let mut b = (String::new(), String::new());
        g7.render_units("customer", 0..10, &mut a.0, &mut a.1);
        g8.render_units("customer", 0..10, &mut b.0, &mut b.1);
        assert_ne!(a.0, b.0);
    }

    #[test]
    fn no_torn_tbl_left_behind_on_drop() {
        let dir = temp_dir("torn");
        let mut f = AtomicFile::create(dir.join("orders.tbl")).unwrap();
        f.write("1|partial").unwrap();
        drop(f);
        assert!(fs::read_dir(&dir).unwrap().next().is_none(), "temp cleaned");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "lineitem rides on orders")]
    fn lineitem_has_no_unit_stream() {
        ChunkedGenerator::new(0.001, 7).unit_count("lineitem");
    }
}
