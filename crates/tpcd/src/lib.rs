//! A deterministic TPC-D (dbgen) workload generator.
//!
//! The HPCA'97 study populates its database with the TPC Council's `dbgen`
//! tool and then scales the data set down 100×, yielding a ~20 MB
//! memory-resident database whose `lineitem` table is about 70 % of the data.
//! This crate reproduces that population from scratch:
//!
//! * [`tpcd_schema`] — the eight benchmark tables with the spec's columns,
//!   held as fixed-width attributes (decimals in hundredths, 4-byte dates).
//! * [`Generator`] — the dbgen equivalent: deterministic, seeded, scale-factor
//!   aware, with the spec's value distributions, price formulas, and
//!   lineitem-per-order fan-out.
//! * [`params`] — per-query substitution parameters (clause 2.4), used to
//!   give each simulated processor a different instance of the same query.
//! * [`ChunkedGenerator`] — the bounded-memory path: independently seeded
//!   generation units rendered straight to `.tbl` text in reused buffers, in
//!   parallel across tables, with output invariant to batch size and worker
//!   count.
//!
//! # Example
//!
//! ```
//! use dss_tpcd::{params, Generator};
//!
//! // The paper's configuration is scale 0.01 (100× smaller than standard).
//! let db = Generator::new(0.005, 1).generate();
//! assert_eq!(db.orders.len(), 7500);
//!
//! // Four processors, four different Q6 parameter draws.
//! let draws: Vec<_> = (0..4).map(|p| params(6, p)).collect();
//! assert_ne!(draws[0], draws[1]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunk;
mod date;
mod gen;
mod params;
mod schema;
mod tbl;
pub mod text;

pub use chunk::{ChunkedGenerator, GenReport, DEFAULT_BATCH_UNITS};
pub use date::Date;
pub use gen::{
    Customer, DbData, Generator, Lineitem, Nation, Order, Part, PartSupp, Region, Supplier,
};
pub use params::{params, ParamSet};
pub use schema::{scaled_cardinality, table_def, tpcd_schema, ColType, ColumnDef, TableDef, Value};
pub use tbl::{from_tbl, to_tbl, TblError};

/// The paper's scale factor: the standard 1.0 data set scaled down 100×.
pub const PAPER_SCALE: f64 = 0.01;
