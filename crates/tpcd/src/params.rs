//! Query substitution parameters (TPC-D clause 2.4).
//!
//! Every TPC-D query template has named substitution parameters drawn from
//! spec-defined distributions. The paper runs "one query of the same type on
//! each node … each of them has different parameters, chosen according to the
//! TPC-D specifications"; [`params`] with a per-processor seed reproduces
//! that.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::schema::Value;
use crate::text;
use crate::Date;

/// A set of named substitution parameters for one query instance.
pub type ParamSet = BTreeMap<String, Value>;

/// Draws the substitution parameters for read-only query `query` (1–17)
/// from the spec's distributions, using `seed` as the RNG seed.
///
/// # Panics
///
/// Panics if `query` is not in `1..=17`.
pub fn params(query: u8, seed: u64) -> ParamSet {
    assert!(
        (1..=17).contains(&query),
        "TPC-D read-only queries are Q1..Q17"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ (query as u64) << 32);
    let mut p = ParamSet::new();
    let mut set = |k: &str, v: Value| {
        p.insert(k.to_owned(), v);
    };
    match query {
        1 => {
            // DELTA days before end-of-population.
            let delta = rng.gen_range(60..=120);
            set("date", Value::Date(Date::END.add_days(-delta)));
        }
        2 => {
            set("size", Value::Int(rng.gen_range(1..=50)));
            set("type", Value::from(text::pick(&mut rng, &text::TYPE_SYL3)));
            set("region", Value::from(text::pick(&mut rng, &text::REGIONS)));
        }
        3 => {
            set(
                "segment",
                Value::from(text::pick(&mut rng, &text::SEGMENTS)),
            );
            let date = Date::from_ymd(1995, 3, rng.gen_range(1..=31));
            set("date", Value::Date(date));
        }
        4 => {
            let months = rng.gen_range(0..=57); // 1993-01 .. 1997-10
            set(
                "date",
                Value::Date(Date::from_ymd(1993, 1, 1).add_months(months)),
            );
        }
        5 => {
            set("region", Value::from(text::pick(&mut rng, &text::REGIONS)));
            set(
                "date",
                Value::Date(Date::from_ymd(rng.gen_range(1993..=1997), 1, 1)),
            );
        }
        6 => {
            set(
                "date",
                Value::Date(Date::from_ymd(rng.gen_range(1993..=1997), 1, 1)),
            );
            set("discount", Value::Dec(rng.gen_range(2..=9)));
            set("quantity", Value::Dec(rng.gen_range(24..=25) * 100));
        }
        7 => {
            let (a, b) = two_distinct_nations(&mut rng);
            set("nation1", Value::from(a));
            set("nation2", Value::from(b));
        }
        8 => {
            let nation = text::NATIONS[rng.gen_range(0..25)];
            set("nation", Value::from(nation.0));
            set("region", Value::from(text::REGIONS[nation.1]));
            set(
                "type",
                Value::Str(format!(
                    "{} {} {}",
                    text::pick(&mut rng, &text::TYPE_SYL1),
                    text::pick(&mut rng, &text::TYPE_SYL2),
                    text::pick(&mut rng, &text::TYPE_SYL3)
                )),
            );
        }
        9 => {
            set(
                "color",
                Value::from(text::pick(&mut rng, &text::PART_NAME_WORDS)),
            );
        }
        10 => {
            let months = rng.gen_range(0..=23); // 1993-02 .. 1995-01
            set(
                "date",
                Value::Date(Date::from_ymd(1993, 2, 1).add_months(months)),
            );
        }
        11 => {
            set("nation", Value::from(text::NATIONS[rng.gen_range(0..25)].0));
            set("fraction", Value::Dec(1)); // 0.0001 scaled by SF in the template
        }
        12 => {
            let m1 = rng.gen_range(0..text::SHIP_MODES.len());
            let mut m2 = rng.gen_range(0..text::SHIP_MODES.len() - 1);
            if m2 >= m1 {
                m2 += 1;
            }
            set("shipmode1", Value::from(text::SHIP_MODES[m1]));
            set("shipmode2", Value::from(text::SHIP_MODES[m2]));
            set(
                "date",
                Value::Date(Date::from_ymd(rng.gen_range(1993..=1997), 1, 1)),
            );
        }
        13 => {
            set(
                "date",
                Value::Date(Date::from_ymd(rng.gen_range(1993..=1997), 6, 1)),
            );
            set(
                "priority",
                Value::from(text::pick(&mut rng, &text::ORDER_PRIORITIES)),
            );
        }
        14 => {
            let months = rng.gen_range(0..=59); // 1993-01 .. 1997-12
            set(
                "date",
                Value::Date(Date::from_ymd(1993, 1, 1).add_months(months)),
            );
        }
        15 => {
            let months = rng.gen_range(0..=57);
            set(
                "date",
                Value::Date(Date::from_ymd(1993, 1, 1).add_months(months)),
            );
        }
        16 => {
            let mfgr = rng.gen_range(1..=5);
            set(
                "brand",
                Value::Str(format!("Brand#{}", mfgr * 10 + rng.gen_range(1..=5))),
            );
            set(
                "type",
                Value::Str(format!(
                    "{} {}",
                    text::pick(&mut rng, &text::TYPE_SYL1),
                    text::pick(&mut rng, &text::TYPE_SYL2)
                )),
            );
            set("size", Value::Int(rng.gen_range(1..=50)));
        }
        17 => {
            let mfgr = rng.gen_range(1..=5);
            set(
                "brand",
                Value::Str(format!("Brand#{}", mfgr * 10 + rng.gen_range(1..=5))),
            );
            set(
                "container",
                Value::Str(format!(
                    "{} {}",
                    text::pick(&mut rng, &text::CONTAINER_SYL1),
                    text::pick(&mut rng, &text::CONTAINER_SYL2)
                )),
            );
        }
        _ => unreachable!("validated above"),
    }
    p
}

fn two_distinct_nations<R: Rng>(rng: &mut R) -> (&'static str, &'static str) {
    let a = rng.gen_range(0..25);
    let mut b = rng.gen_range(0..24);
    if b >= a {
        b += 1;
    }
    (text::NATIONS[a].0, text::NATIONS[b].0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q3_params_within_spec_window() {
        for seed in 0..32 {
            let p = params(3, seed);
            let date = p["date"].as_date().unwrap();
            assert!(date >= Date::from_ymd(1995, 3, 1));
            assert!(date <= Date::from_ymd(1995, 3, 31));
            assert!(text::SEGMENTS.contains(&p["segment"].as_str().unwrap()));
        }
    }

    #[test]
    fn q6_params_within_spec_window() {
        for seed in 0..32 {
            let p = params(6, seed);
            let (y, m, d) = p["date"].as_date().unwrap().ymd();
            assert!((1993..=1997).contains(&y));
            assert_eq!((m, d), (1, 1));
            let disc = p["discount"].as_dec().unwrap();
            assert!((2..=9).contains(&disc));
            let qty = p["quantity"].as_dec().unwrap();
            assert!(qty == 2400 || qty == 2500);
        }
    }

    #[test]
    fn q12_ship_modes_are_distinct() {
        for seed in 0..64 {
            let p = params(12, seed);
            assert_ne!(p["shipmode1"], p["shipmode2"]);
        }
    }

    #[test]
    fn params_are_deterministic_per_seed() {
        assert_eq!(params(3, 9), params(3, 9));
        assert_ne!(params(3, 9), params(3, 10));
    }

    #[test]
    fn every_query_has_params() {
        for q in 1..=17 {
            // Must not panic, and must produce at least one parameter.
            assert!(!params(q, 0).is_empty(), "Q{q} generated no parameters");
        }
    }

    #[test]
    #[should_panic(expected = "Q1..Q17")]
    fn query_zero_rejected() {
        params(0, 0);
    }

    #[test]
    #[should_panic(expected = "Q1..Q17")]
    fn query_eighteen_rejected() {
        params(18, 0);
    }
}
