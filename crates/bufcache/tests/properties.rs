//! Property tests: pin accounting and content integrity of the buffer pool.

use dss_bufcache::{BufferPool, PageId};
use dss_shmem::AddressSpace;
use dss_trace::Tracer;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reference counts always equal pins minus unpins per buffer, for any
    /// interleaving across any number of pages.
    #[test]
    fn refcounts_match_a_counter(
        npages in 1u32..40,
        ops in proptest::collection::vec((any::<u32>(), any::<bool>()), 1..300),
    ) {
        let mut space = AddressSpace::new();
        let mut pool = BufferPool::new(&mut space, 64);
        let pages: Vec<PageId> = (0..npages).map(|_| pool.alloc_page(1)).collect();
        let t = Tracer::disabled();
        let mut counts = vec![0u32; npages as usize];
        for (raw, unpin) in ops {
            let i = (raw % npages) as usize;
            if unpin && counts[i] > 0 {
                let buf = pool.lookup(pages[i]).unwrap();
                pool.unpin(buf, &t);
                counts[i] -= 1;
            } else if !unpin {
                pool.pin(pages[i], &t);
                counts[i] += 1;
            }
        }
        for (i, page) in pages.iter().enumerate() {
            let buf = pool.lookup(*page).unwrap();
            prop_assert_eq!(pool.refcount(buf), counts[i], "page {}", i);
        }
    }

    /// Page contents written through the pool read back exactly, across
    /// many pages and offsets.
    #[test]
    fn contents_roundtrip(
        writes in proptest::collection::vec((0u32..16, 0usize..1000, any::<u64>()), 1..100),
    ) {
        let mut space = AddressSpace::new();
        let mut pool = BufferPool::new(&mut space, 32);
        let pages: Vec<PageId> = (0..16).map(|_| pool.alloc_page(7)).collect();
        let mut shadow = std::collections::HashMap::new();
        for (page, off8, value) in writes {
            let buf = pool.lookup(pages[page as usize]).unwrap();
            let off = off8 * 8;
            pool.put_u64(buf, off, value);
            shadow.insert((page, off), value);
        }
        for ((page, off), value) in shadow {
            let buf = pool.lookup(pages[page as usize]).unwrap();
            prop_assert_eq!(pool.get_u64(buf, off), value);
        }
    }

    /// Every page's emulated address is block-aligned, unique, and
    /// classified as database data.
    #[test]
    fn page_addresses_unique_and_classified(npages in 1u32..60) {
        let mut space = AddressSpace::new();
        let mut pool = BufferPool::new(&mut space, 64);
        let mut seen = std::collections::HashSet::new();
        for rel in 1..=2u32 {
            for _ in 0..npages / 2 + 1 {
                let page = pool.alloc_page(rel);
                let buf = pool.lookup(page).unwrap();
                let addr = pool.page_addr(buf, 0);
                prop_assert_eq!(addr % dss_bufcache::BLOCK_SIZE, 0);
                prop_assert!(seen.insert(addr), "duplicate page address");
                prop_assert_eq!(space.classify(addr), Some(dss_trace::DataClass::Data));
            }
        }
    }
}
