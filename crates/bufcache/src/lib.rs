//! The Buffer Cache Module of the emulated Postgres95.
//!
//! Postgres95 keeps all application data and indices in 8-Kbyte shared
//! **buffer blocks**, managed by **buffer descriptors** (control structures),
//! found through the **buffer lookup hash**, and protected by the
//! **`BufMgrLock`** spinlock. The HPCA'97 paper attributes misses to exactly
//! these structures, so this crate models each of them with its own region of
//! the emulated shared segment and emits classified references for every
//! operation:
//!
//! * [`BufferPool::pin`] — acquires `BufMgrLock`, probes the lookup hash
//!   (bucket read + chain walk), touches the descriptor tag and bumps its
//!   reference count, then releases the lock. This is the metadata access
//!   pattern behind the paper's `BufDesc`/`BufLook`/metalock miss categories.
//! * Page *content* accessors ([`BufferPool::get_u64`] …) read and write real
//!   bytes but emit **no** references — content classification (database
//!   `Data` vs. `Index`) is only known to the heap and b-tree layers, which
//!   emit those references themselves against [`BufferPool::page_addr`].
//!
//! The database is memory-resident (the paper's setup), so the pool never
//! evicts and a pin never misses.
//!
//! # Example
//!
//! ```
//! use dss_bufcache::{BufferPool, PageId, BLOCK_SIZE};
//! use dss_shmem::AddressSpace;
//! use dss_trace::Tracer;
//!
//! let mut space = AddressSpace::new();
//! let mut pool = BufferPool::new(&mut space, 64);
//! let tracer = Tracer::new(0);
//!
//! let page = pool.alloc_page(1);
//! let buf = pool.pin(page, &tracer);
//! pool.put_u64(buf, 0, 0xdead_beef);
//! assert_eq!(pool.get_u64(buf, 0), 0xdead_beef);
//! pool.unpin(buf, &tracer);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use dss_shmem::AddressSpace;
use dss_trace::{CostModel, DataClass, LockClass, LockToken, Tracer};

/// Size of one buffer block (page), as in Postgres95.
pub const BLOCK_SIZE: u64 = 8192;

/// Modeled size of one buffer descriptor (one L2 line).
pub const DESC_SIZE: u64 = 64;

/// Modeled size of one lookup-hash chain entry (tag + pointer + next).
pub const HASH_ENTRY_SIZE: u64 = 24;

/// Byte offset of the tag within a descriptor.
const DESC_TAG_OFF: u64 = 0;
/// Byte offset of the reference count within a descriptor.
const DESC_REFCOUNT_OFF: u64 = 8;

/// Identifies a page: a relation id plus a block number within it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId {
    /// Owning relation.
    pub rel: u32,
    /// Block number within the relation (0-based).
    pub block: u32,
}

impl PageId {
    /// Creates a page id.
    pub fn new(rel: u32, block: u32) -> Self {
        PageId { rel, block }
    }
}

/// A pinned buffer handle (index into the pool).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BufId(u32);

impl BufId {
    /// The raw pool index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Clone, Debug)]
struct BufferDesc {
    tag: PageId,
    refcount: u32,
}

/// The shared buffer pool.
///
/// Holds real page bytes (so the engine computes real query results) plus the
/// emulated addresses of every modeled structure, and emits classified
/// references for all metadata traffic.
#[derive(Debug)]
pub struct BufferPool {
    nbuffers: u32,
    nbuckets: u64,
    blocks_base: u64,
    desc_base: u64,
    buckets_base: u64,
    entries_base: u64,
    lock: LockToken,
    cost: CostModel,
    blocks: Vec<Box<[u8]>>,
    descs: Vec<BufferDesc>,
    /// Lookup-hash buckets: chain of buffer ids, walked in order on probe.
    buckets: Vec<Vec<u32>>,
    /// Fast mirror of the hash table for assertions and loading.
    map: HashMap<PageId, u32>,
    next_free: u32,
    /// Next block number per relation, for `alloc_page`.
    rel_next_block: HashMap<u32, u32>,
}

impl BufferPool {
    /// Creates a pool of `nbuffers` blocks, mapping its four shared regions
    /// (blocks, descriptors, hash buckets, hash entries) plus `BufMgrLock`
    /// into `space`.
    ///
    /// # Panics
    ///
    /// Panics if `nbuffers` is zero.
    pub fn new(space: &mut AddressSpace, nbuffers: u32) -> Self {
        assert!(nbuffers > 0, "pool must have at least one buffer");
        let nbuckets = (2 * nbuffers as u64).next_power_of_two();
        let lock_addr = space.map_region("BufMgrLock", DataClass::BufMgrLock, 64, 64);
        let desc_base = space.map_region(
            "buffer descriptors",
            DataClass::BufDesc,
            nbuffers as u64 * DESC_SIZE,
            64,
        );
        let buckets_base = space.map_region(
            "buffer lookup buckets",
            DataClass::BufLookup,
            nbuckets * 8,
            64,
        );
        let entries_base = space.map_region(
            "buffer lookup entries",
            DataClass::BufLookup,
            nbuffers as u64 * HASH_ENTRY_SIZE,
            64,
        );
        let blocks_base = space.map_region(
            "buffer blocks",
            DataClass::Data,
            nbuffers as u64 * BLOCK_SIZE,
            BLOCK_SIZE,
        );
        BufferPool {
            nbuffers,
            nbuckets,
            blocks_base,
            desc_base,
            buckets_base,
            entries_base,
            lock: LockToken::new(lock_addr, LockClass::BufMgr),
            cost: CostModel::default(),
            blocks: (0..nbuffers)
                .map(|_| vec![0u8; BLOCK_SIZE as usize].into_boxed_slice())
                .collect(),
            descs: (0..nbuffers)
                .map(|_| BufferDesc {
                    tag: PageId::new(u32::MAX, u32::MAX),
                    refcount: 0,
                })
                .collect(),
            buckets: vec![Vec::new(); nbuckets as usize],
            map: HashMap::new(),
            next_free: 0,
            rel_next_block: HashMap::new(),
        }
    }

    /// Number of buffers in the pool.
    pub fn nbuffers(&self) -> u32 {
        self.nbuffers
    }

    /// Number of buffers currently holding a page.
    pub fn used_buffers(&self) -> u32 {
        self.next_free
    }

    /// Number of pages allocated to relation `rel`.
    pub fn rel_len(&self, rel: u32) -> u32 {
        self.rel_next_block.get(&rel).copied().unwrap_or(0)
    }

    /// The spinlock protecting this pool.
    pub fn lock_token(&self) -> LockToken {
        self.lock
    }

    /// Allocates the next page of relation `rel` (used while loading the
    /// database; emits no references).
    ///
    /// # Panics
    ///
    /// Panics if the pool is full — the study's database is memory-resident,
    /// so the pool must be sized to hold it entirely.
    pub fn alloc_page(&mut self, rel: u32) -> PageId {
        assert!(
            self.next_free < self.nbuffers,
            "buffer pool exhausted: size it to hold the whole database"
        );
        let block = self.rel_next_block.entry(rel).or_insert(0);
        let page = PageId::new(rel, *block);
        *block += 1;
        let buf = self.next_free;
        self.next_free += 1;
        self.descs[buf as usize] = BufferDesc {
            tag: page,
            refcount: 0,
        };
        let bucket = self.bucket_of(page);
        self.buckets[bucket].push(buf);
        self.map.insert(page, buf);
        page
    }

    /// Pins `page`, emitting the Postgres95 metadata access pattern:
    /// `BufMgrLock` acquire, lookup-hash bucket read and chain walk,
    /// descriptor tag read and refcount bump, `BufMgrLock` release.
    ///
    /// # Panics
    ///
    /// Panics if the page was never allocated (the database is
    /// memory-resident, so a miss is a bug).
    pub fn pin(&mut self, page: PageId, t: &Tracer) -> BufId {
        t.lock_acquire(self.lock);
        t.busy(self.cost.buffer_call);
        let bucket = self.bucket_of(page);
        t.read(
            self.buckets_base + bucket as u64 * 8,
            8,
            DataClass::BufLookup,
        );
        let mut found = None;
        for &buf in &self.buckets[bucket] {
            // Read the chain entry's tag (and implicitly its next pointer).
            t.read(
                self.entries_base + buf as u64 * HASH_ENTRY_SIZE,
                16,
                DataClass::BufLookup,
            );
            if self.descs[buf as usize].tag == page {
                found = Some(buf);
                break;
            }
        }
        let buf = found.unwrap_or_else(|| panic!("page {page:?} not resident"));
        let desc_addr = self.desc_base + buf as u64 * DESC_SIZE;
        t.read(desc_addr + DESC_TAG_OFF, 8, DataClass::BufDesc);
        let desc = &mut self.descs[buf as usize];
        desc.refcount += 1;
        t.write(desc_addr + DESC_REFCOUNT_OFF, 8, DataClass::BufDesc);
        t.lock_release(self.lock);
        BufId(buf)
    }

    /// Unpins a buffer, dropping its reference count under `BufMgrLock`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is not pinned.
    pub fn unpin(&mut self, buf: BufId, t: &Tracer) {
        let desc = &mut self.descs[buf.index()];
        assert!(desc.refcount > 0, "unpin of unpinned buffer {buf:?}");
        desc.refcount -= 1;
        t.lock_acquire(self.lock);
        t.busy(self.cost.buffer_call);
        let desc_addr = self.desc_base + buf.0 as u64 * DESC_SIZE;
        t.write(desc_addr + DESC_REFCOUNT_OFF, 8, DataClass::BufDesc);
        t.lock_release(self.lock);
    }

    /// Pin count of a buffer (for tests).
    pub fn refcount(&self, buf: BufId) -> u32 {
        self.descs[buf.index()].refcount
    }

    /// Looks up the buffer holding `page` without pinning or tracing.
    pub fn lookup(&self, page: PageId) -> Option<BufId> {
        self.map.get(&page).map(|&b| BufId(b))
    }

    /// Emulated address of byte `off` within the block held by `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `off` is outside the block.
    pub fn page_addr(&self, buf: BufId, off: u64) -> u64 {
        assert!(off < BLOCK_SIZE, "offset {off} beyond block");
        self.blocks_base + buf.0 as u64 * BLOCK_SIZE + off
    }

    /// Reads a little-endian `u64` from a block (no references emitted).
    pub fn get_u64(&self, buf: BufId, off: usize) -> u64 {
        let b = &self.blocks[buf.index()][off..off + 8];
        u64::from_le_bytes(b.try_into().expect("8 bytes"))
    }

    /// Writes a little-endian `u64` to a block (no references emitted).
    pub fn put_u64(&mut self, buf: BufId, off: usize, v: u64) {
        self.blocks[buf.index()][off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u32` from a block (no references emitted).
    pub fn get_u32(&self, buf: BufId, off: usize) -> u32 {
        let b = &self.blocks[buf.index()][off..off + 4];
        u32::from_le_bytes(b.try_into().expect("4 bytes"))
    }

    /// Writes a little-endian `u32` to a block (no references emitted).
    pub fn put_u32(&mut self, buf: BufId, off: usize, v: u32) {
        self.blocks[buf.index()][off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Copies bytes out of a block (no references emitted).
    pub fn get_bytes(&self, buf: BufId, off: usize, out: &mut [u8]) {
        out.copy_from_slice(&self.blocks[buf.index()][off..off + out.len()]);
    }

    /// Copies bytes into a block (no references emitted).
    pub fn put_bytes(&mut self, buf: BufId, off: usize, data: &[u8]) {
        self.blocks[buf.index()][off..off + data.len()].copy_from_slice(data);
    }

    fn bucket_of(&self, page: PageId) -> usize {
        let h = (page.rel as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((page.block as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f));
        (h % self.nbuckets) as usize
    }
}

/// Deliberate lock-order bug behind the `lock-order-drill` feature gate.
///
/// The two fns below bracket `BufMgrLock` and `LockMgrLock` in *opposite*
/// orders — the canonical AB/BA deadlock. The feature is never enabled by a
/// build; the site exists so the fault campaign's
/// `check.locks.inverted-pair` drill can arm the gate *statically* (the
/// lock pass analyzes feature-gated source with the gate open) and prove
/// `dss-check locks` reports the cycle with its exact rule string.
#[cfg(feature = "lock-order-drill")]
pub mod lock_order_drill {
    use dss_trace::{LockClass, LockToken, Tracer};

    const BUF_LOCK: u64 = 0x100;
    const LCK_LOCK: u64 = 0x140;

    /// Takes `BufMgrLock` then `LockMgrLock` — one half of the inversion.
    pub fn pin_then_lock(t: &Tracer) {
        t.lock_acquire(LockToken::new(BUF_LOCK, LockClass::BufMgr));
        t.lock_acquire(LockToken::new(LCK_LOCK, LockClass::LockMgr));
        t.lock_release(LockToken::new(LCK_LOCK, LockClass::LockMgr));
        t.lock_release(LockToken::new(BUF_LOCK, LockClass::BufMgr));
    }

    /// Takes `LockMgrLock` then `BufMgrLock` — the inverted half.
    pub fn lock_then_pin(t: &Tracer) {
        t.lock_acquire(LockToken::new(LCK_LOCK, LockClass::LockMgr));
        t.lock_acquire(LockToken::new(BUF_LOCK, LockClass::BufMgr));
        t.lock_release(LockToken::new(BUF_LOCK, LockClass::BufMgr));
        t.lock_release(LockToken::new(LCK_LOCK, LockClass::LockMgr));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_trace::{Event, TraceStats};

    fn pool_with_space() -> (AddressSpace, BufferPool) {
        let mut space = AddressSpace::new();
        let pool = BufferPool::new(&mut space, 128);
        (space, pool)
    }

    #[test]
    fn alloc_assigns_sequential_blocks_per_rel() {
        let (_s, mut pool) = pool_with_space();
        assert_eq!(pool.alloc_page(1), PageId::new(1, 0));
        assert_eq!(pool.alloc_page(1), PageId::new(1, 1));
        assert_eq!(pool.alloc_page(2), PageId::new(2, 0));
        assert_eq!(pool.rel_len(1), 2);
        assert_eq!(pool.rel_len(2), 1);
        assert_eq!(pool.used_buffers(), 3);
    }

    #[test]
    fn pin_emits_lock_hash_and_desc_traffic() {
        let (_s, mut pool) = pool_with_space();
        let page = pool.alloc_page(1);
        let t = Tracer::new(0);
        let buf = pool.pin(page, &t);
        assert_eq!(pool.refcount(buf), 1);
        let trace = t.take();
        let stats = TraceStats::from_trace(&trace);
        assert_eq!(stats.lock_acquires, 1);
        assert_eq!(stats.lock_releases, 1);
        assert!(
            stats.reads(DataClass::BufLookup) >= 2,
            "bucket + chain entry"
        );
        assert_eq!(stats.reads(DataClass::BufDesc), 1);
        assert_eq!(stats.writes(DataClass::BufDesc), 1);
        // Lock ordering: acquire first, release last.
        assert!(matches!(trace.events.first(), Some(Event::LockAcquire(_))));
        assert!(matches!(trace.events.last(), Some(Event::LockRelease(_))));
    }

    #[test]
    fn unpin_restores_refcount() {
        let (_s, mut pool) = pool_with_space();
        let page = pool.alloc_page(1);
        let t = Tracer::disabled();
        let buf = pool.pin(page, &t);
        let buf2 = pool.pin(page, &t);
        assert_eq!(buf, buf2);
        assert_eq!(pool.refcount(buf), 2);
        pool.unpin(buf, &t);
        pool.unpin(buf, &t);
        assert_eq!(pool.refcount(buf), 0);
    }

    #[test]
    #[should_panic(expected = "not resident")]
    fn pin_of_unallocated_page_panics() {
        let (_s, mut pool) = pool_with_space();
        pool.pin(PageId::new(9, 9), &Tracer::disabled());
    }

    #[test]
    #[should_panic(expected = "unpin of unpinned")]
    fn double_unpin_panics() {
        let (_s, mut pool) = pool_with_space();
        let page = pool.alloc_page(1);
        let t = Tracer::disabled();
        let buf = pool.pin(page, &t);
        pool.unpin(buf, &t);
        pool.unpin(buf, &t);
    }

    #[test]
    fn content_roundtrips() {
        let (_s, mut pool) = pool_with_space();
        let page = pool.alloc_page(1);
        let buf = pool.lookup(page).unwrap();
        pool.put_u64(buf, 100, 0x0123_4567_89ab_cdef);
        pool.put_u32(buf, 200, 42);
        pool.put_bytes(buf, 300, b"hello");
        assert_eq!(pool.get_u64(buf, 100), 0x0123_4567_89ab_cdef);
        assert_eq!(pool.get_u32(buf, 200), 42);
        let mut out = [0u8; 5];
        pool.get_bytes(buf, 300, &mut out);
        assert_eq!(&out, b"hello");
    }

    #[test]
    fn page_addresses_are_disjoint_per_buffer() {
        let (_s, mut pool) = pool_with_space();
        let p1 = pool.alloc_page(1);
        let p2 = pool.alloc_page(1);
        let b1 = pool.lookup(p1).unwrap();
        let b2 = pool.lookup(p2).unwrap();
        let a1 = pool.page_addr(b1, 0);
        let a2 = pool.page_addr(b2, 0);
        assert_eq!(a2 - a1, BLOCK_SIZE);
        assert_eq!(a1 % BLOCK_SIZE, 0, "blocks are page aligned");
    }

    #[test]
    fn addresses_classify_back_to_their_regions() {
        let mut space = AddressSpace::new();
        let mut pool = BufferPool::new(&mut space, 16);
        let page = pool.alloc_page(1);
        let buf = pool.lookup(page).unwrap();
        assert_eq!(
            space.classify(pool.page_addr(buf, 0)),
            Some(DataClass::Data)
        );
        assert_eq!(
            space.classify(pool.lock_token().addr),
            Some(DataClass::BufMgrLock)
        );
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn overflow_panics() {
        let mut space = AddressSpace::new();
        let mut pool = BufferPool::new(&mut space, 2);
        pool.alloc_page(1);
        pool.alloc_page(1);
        pool.alloc_page(1);
    }

    #[test]
    fn chain_walk_length_reflects_collisions() {
        // With many pages, at least some buckets chain; the pin of a page at
        // chain position k must read k+1 entries.
        let (_s, mut pool) = pool_with_space();
        let pages: Vec<PageId> = (0..100).map(|_| pool.alloc_page(1)).collect();
        let mut max_entry_reads = 0;
        for page in pages {
            let t = Tracer::new(0);
            let buf = pool.pin(page, &t);
            pool.unpin(buf, &Tracer::disabled());
            let stats = TraceStats::from_trace(&t.take());
            // Each chain entry read is 16 bytes => two 8-byte refs.
            let entry_reads = stats.reads(DataClass::BufLookup).saturating_sub(1) / 2;
            max_entry_reads = max_entry_reads.max(entry_reads);
        }
        assert!(max_entry_reads >= 1);
    }
}
