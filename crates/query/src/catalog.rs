//! The system catalog: tables, indices, and column statistics.

use std::collections::{BTreeMap, HashSet};

use dss_btree::{BTree, Key, TupleId};
use dss_bufcache::BufferPool;
use dss_tpcd::{tpcd_schema, DbData, Value};

use crate::{Datum, Heap};

/// Per-column statistics gathered at load time, used by the planner's
/// selectivity estimates.
#[derive(Clone, Debug)]
pub struct ColumnStats {
    /// Smallest value, if the table is non-empty.
    pub min: Option<Datum>,
    /// Largest value, if the table is non-empty.
    pub max: Option<Datum>,
    /// Number of distinct values.
    pub ndistinct: u64,
}

/// A b-tree index over one column of a table.
#[derive(Clone, Debug)]
pub struct IndexMeta {
    /// Index name (`lineitem_l_orderkey_idx`).
    pub name: String,
    /// The indexed column's position in the table.
    pub column: usize,
    /// The tree itself (pages live in the buffer pool).
    pub tree: BTree,
}

/// A table: its heap, indices, and statistics.
#[derive(Clone, Debug)]
pub struct TableMeta {
    /// Heap storage.
    pub heap: Heap,
    /// Secondary structures.
    pub indexes: Vec<IndexMeta>,
    /// Per-column statistics (parallel to the schema's columns).
    pub stats: Vec<ColumnStats>,
}

impl TableMeta {
    /// The index whose key is `column`, if one exists.
    pub fn index_on(&self, column: usize) -> Option<&IndexMeta> {
        self.indexes.iter().find(|i| i.column == column)
    }
}

/// Encodes a datum as a b-tree key (see [`dss_btree::Key`] for ordering
/// guarantees per type).
pub fn index_key(d: &Datum) -> Key {
    match d {
        Datum::Int(v) | Datum::Dec(v) => Key::int(*v),
        Datum::Date(dt) => Key::int(dt.day_number() as i64),
        Datum::Str(s) => Key::str8(s),
    }
}

/// The default index set of the study.
///
/// The paper notes that which select algorithm each query uses "is a function
/// of the set of indices that we added"; this set — primary keys plus the
/// foreign keys and selective attributes the Index queries probe — reproduces
/// the paper's Table 1 operator matrix.
pub fn paper_index_set() -> Vec<(&'static str, &'static str)> {
    vec![
        ("customer", "c_custkey"),
        ("customer", "c_mktsegment"),
        ("customer", "c_nationkey"),
        ("orders", "o_orderkey"),
        ("orders", "o_custkey"),
        ("lineitem", "l_orderkey"),
        ("lineitem", "l_partkey"),
        ("part", "p_partkey"),
        ("part", "p_size"),
        ("supplier", "s_suppkey"),
        ("supplier", "s_nationkey"),
        ("partsupp", "ps_partkey"),
        ("partsupp", "ps_suppkey"),
        ("nation", "n_nationkey"),
        ("nation", "n_regionkey"),
        ("nation", "n_name"),
        ("region", "r_regionkey"),
        ("region", "r_name"),
    ]
}

/// The system catalog.
///
/// Owns every table's heap and index metadata; the page contents live in the
/// shared buffer pool.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableMeta>,
    next_rel: u32,
}

impl Catalog {
    /// Builds the catalog by loading a generated TPC-D population into the
    /// pool and bulk-building the given `(table, column)` indices.
    ///
    /// Loading is untraced: the paper populates the database before tracing
    /// begins.
    ///
    /// # Panics
    ///
    /// Panics if an index names an unknown table or column, or if the pool is
    /// too small to hold the database.
    pub fn load(pool: &mut BufferPool, data: &DbData, index_set: &[(&str, &str)]) -> Self {
        let mut cat = Catalog {
            tables: BTreeMap::new(),
            next_rel: 1,
        };
        for def in tpcd_schema() {
            let rel = cat.next_rel;
            cat.next_rel += 1;
            let mut heap = Heap::create(rel, def.clone());
            let rows = data.rows(def.name);
            let mut tids = Vec::with_capacity(rows.len());
            for row in &rows {
                tids.push(heap.append(pool, row));
            }
            let stats = column_stats(&rows, def.columns.len());
            cat.tables.insert(
                def.name.to_owned(),
                TableMeta {
                    heap,
                    indexes: Vec::new(),
                    stats,
                },
            );
            // Indexes for this table.
            for (tname, cname) in index_set.iter().filter(|(t, _)| *t == def.name) {
                let column = def
                    .column_index(cname)
                    .unwrap_or_else(|| panic!("index column {cname} not in {tname}"));
                let mut entries: Vec<(Key, TupleId)> = rows
                    .iter()
                    .zip(&tids)
                    .map(|(row, tid)| (index_key(&Datum::from(&row[column])), *tid))
                    .collect();
                entries.sort();
                let index_rel = cat.next_rel;
                cat.next_rel += 1;
                let tree = BTree::bulk_build(pool, index_rel, &entries);
                cat.tables
                    .get_mut(def.name)
                    .expect("just inserted")
                    .indexes
                    .push(IndexMeta {
                        name: format!("{tname}_{cname}_idx"),
                        column,
                        tree,
                    });
            }
        }
        cat
    }

    /// The table called `name`.
    pub fn table(&self, name: &str) -> Option<&TableMeta> {
        self.tables.get(name)
    }

    /// Mutable access to the table called `name` (for inserts and deletes).
    pub fn table_mut(&mut self, name: &str) -> Option<&mut TableMeta> {
        self.tables.get_mut(name)
    }

    /// Iterates over `(name, meta)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TableMeta)> {
        self.tables.iter().map(|(n, m)| (n.as_str(), m))
    }

    /// Resolves a possibly-qualified column to `(table, column index)`.
    ///
    /// TPC-D column names carry their table prefix (`l_`, `o_`, …), so bare
    /// names are unambiguous; qualified names are checked against the table.
    pub fn resolve_column(&self, table: Option<&str>, name: &str) -> Option<(&str, usize)> {
        match table {
            Some(t) => {
                let meta = self.tables.get_key_value(t)?;
                let idx = meta.1.heap.def().column_index(name)?;
                Some((meta.0.as_str(), idx))
            }
            None => {
                for (t, meta) in &self.tables {
                    if let Some(idx) = meta.heap.def().column_index(name) {
                        return Some((t.as_str(), idx));
                    }
                }
                None
            }
        }
    }

    /// Total heap pages across all tables (for footprint reports).
    pub fn total_heap_pages(&self) -> u64 {
        self.tables.values().map(|t| t.heap.npages() as u64).sum()
    }
}

/// Recomputes per-column statistics from a row set (vacuum support).
pub(crate) fn recompute_stats(rows: &[Vec<Value>], ncols: usize) -> Vec<ColumnStats> {
    column_stats(rows, ncols)
}

fn column_stats(rows: &[Vec<Value>], ncols: usize) -> Vec<ColumnStats> {
    (0..ncols)
        .map(|c| {
            let mut min: Option<Datum> = None;
            let mut max: Option<Datum> = None;
            let mut distinct: HashSet<u64> = HashSet::new();
            for row in rows {
                let d = Datum::from(&row[c]);
                distinct.insert(d.hash64());
                match &min {
                    None => min = Some(d.clone()),
                    Some(m) if d.compare(m).is_lt() => min = Some(d.clone()),
                    _ => {}
                }
                match &max {
                    None => max = Some(d.clone()),
                    Some(m) if d.compare(m).is_gt() => max = Some(d),
                    _ => {}
                }
            }
            ColumnStats {
                min,
                max,
                ndistinct: distinct.len() as u64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_shmem::AddressSpace;
    use dss_tpcd::Generator;

    fn tiny_catalog() -> (BufferPool, Catalog) {
        let mut space = AddressSpace::new();
        let mut pool = BufferPool::new(&mut space, 512);
        let data = Generator::new(0.001, 3).generate();
        let cat = Catalog::load(&mut pool, &data, &paper_index_set());
        (pool, cat)
    }

    #[test]
    fn all_tables_load_with_row_counts() {
        let (_pool, cat) = tiny_catalog();
        assert_eq!(cat.table("customer").unwrap().heap.ntuples(), 150);
        assert_eq!(cat.table("orders").unwrap().heap.ntuples(), 1500);
        assert!(cat.table("lineitem").unwrap().heap.ntuples() >= 1500);
        assert_eq!(cat.table("region").unwrap().heap.ntuples(), 5);
        assert!(cat.table("bogus").is_none());
    }

    #[test]
    fn paper_index_set_builds() {
        let (_pool, cat) = tiny_catalog();
        let li = cat.table("lineitem").unwrap();
        assert_eq!(li.indexes.len(), 2);
        let okey_col = li.heap.def().column_index("l_orderkey").unwrap();
        let idx = li.index_on(okey_col).unwrap();
        assert_eq!(idx.tree.len(), li.heap.ntuples());
        assert!(idx.name.contains("l_orderkey"));
    }

    #[test]
    fn index_probes_find_heap_tuples() {
        let (mut pool, cat) = tiny_catalog();
        let orders = cat.table("orders").unwrap();
        let col = orders.heap.def().column_index("o_orderkey").unwrap();
        let idx = orders.index_on(col).unwrap();
        let t = dss_trace::Tracer::disabled();
        let hits = idx
            .tree
            .lookup_range(&mut pool, &t, Key::int(700), Key::int(700));
        assert_eq!(hits.len(), 1);
        let (_, tid) = hits[0];
        let buf = pool.lookup(orders.heap.page(tid.block)).unwrap();
        assert_eq!(
            orders.heap.attr_value(&pool, buf, tid.slot, col),
            Datum::Int(700)
        );
    }

    #[test]
    fn bare_column_names_resolve_via_prefix() {
        let (_pool, cat) = tiny_catalog();
        let (table, idx) = cat.resolve_column(None, "l_shipdate").unwrap();
        assert_eq!(table, "lineitem");
        assert_eq!(idx, 10);
        let (table, _) = cat.resolve_column(Some("orders"), "o_custkey").unwrap();
        assert_eq!(table, "orders");
        assert!(cat.resolve_column(Some("orders"), "l_shipdate").is_none());
        assert!(cat.resolve_column(None, "nonexistent").is_none());
    }

    #[test]
    fn stats_reflect_domains() {
        let (_pool, cat) = tiny_catalog();
        let customer = cat.table("customer").unwrap();
        let seg = customer.heap.def().column_index("c_mktsegment").unwrap();
        assert_eq!(customer.stats[seg].ndistinct, 5);
        let key = customer.heap.def().column_index("c_custkey").unwrap();
        assert_eq!(customer.stats[key].ndistinct, 150);
        assert_eq!(customer.stats[key].min, Some(Datum::Int(1)));
        assert_eq!(customer.stats[key].max, Some(Datum::Int(150)));
    }

    #[test]
    fn string_index_groups_scan() {
        let (mut pool, cat) = tiny_catalog();
        let customer = cat.table("customer").unwrap();
        let seg_col = customer.heap.def().column_index("c_mktsegment").unwrap();
        let idx = customer.index_on(seg_col).unwrap();
        let t = dss_trace::Tracer::disabled();
        let probe = index_key(&Datum::Str("BUILDING".into()));
        let hits = idx
            .tree
            .lookup_range(&mut pool, &t, probe.min_in_group(), probe.max_in_group());
        assert!(!hits.is_empty());
        // Every hit really is a BUILDING customer.
        for (_, tid) in hits {
            let buf = pool.lookup(customer.heap.page(tid.block)).unwrap();
            assert_eq!(
                customer.heap.attr_value(&pool, buf, tid.slot, seg_col),
                Datum::Str("BUILDING".into())
            );
        }
    }
}
