//! Heap table storage: fixed-width tuples in 8 KB buffer pages.

use dss_btree::TupleId;
use dss_bufcache::{BufId, BufferPool, PageId, BLOCK_SIZE};
use dss_tpcd::{ColType, Date, TableDef, Value};
use dss_trace::{DataClass, Tracer};

use crate::Datum;

/// Bytes of page header (tuple count plus reserved space).
pub const PAGE_HEADER: u64 = 16;

/// Bytes of per-tuple header, sized like Postgres95's `HeapTupleHeader`
/// (transaction ids, ctid, null bitmap). Its presence matters: it is why the
/// paper's 100×-scaled database still occupies ~20 MB.
pub const TUPLE_HEADER: u64 = 40;

/// Reads of string attributes during predicate evaluation are capped at this
/// many bytes — a comparison resolves within the first words.
const STRING_PROBE_BYTES: u64 = 16;

/// Number of leading attributes whose offsets Postgres95 caches (fixed-width
/// columns before the first variable-width one); see
/// [`Heap::read_attr_walking`].
pub const CACHED_OFFSET_ATTRS: usize = 4;

/// Tuple-header flag marking a deleted tuple (Postgres marks deletion in the
/// header and leaves the slot for a later vacuum; index entries keep pointing
/// at it and scans re-check visibility).
const FLAG_DEAD: u32 = 1;

/// A heap table: metadata plus accessors over its pages in the buffer pool.
///
/// All tuple bytes really live in the pool's blocks, so queries compute real
/// answers; accessors that take a [`Tracer`] also emit
/// [`DataClass::Data`] references at the tuple's emulated address.
#[derive(Clone, Debug)]
pub struct Heap {
    rel: u32,
    def: TableDef,
    attr_offsets: Vec<u64>,
    row_width: u64,
    tuples_per_page: u32,
    ntuples: u64,
    ndead: u64,
}

impl Heap {
    /// Creates an empty heap for relation `rel` with `def`'s schema.
    pub fn create(rel: u32, def: TableDef) -> Self {
        let mut attr_offsets = Vec::with_capacity(def.columns.len());
        let mut off = 0u64;
        for c in &def.columns {
            attr_offsets.push(off);
            off += c.ty.width() as u64;
        }
        let slot = TUPLE_HEADER + off;
        let tuples_per_page = ((BLOCK_SIZE - PAGE_HEADER) / slot) as u32;
        assert!(tuples_per_page > 0, "tuple wider than a page");
        Heap {
            rel,
            def,
            attr_offsets,
            row_width: off,
            tuples_per_page,
            ntuples: 0,
            ndead: 0,
        }
    }

    /// The heap's relation id.
    pub fn rel(&self) -> u32 {
        self.rel
    }

    /// The table definition.
    pub fn def(&self) -> &TableDef {
        &self.def
    }

    /// Total tuples stored (including dead ones awaiting vacuum).
    pub fn ntuples(&self) -> u64 {
        self.ntuples
    }

    /// Tuples marked deleted.
    pub fn ndead(&self) -> u64 {
        self.ndead
    }

    /// Tuple payload width (excluding the header).
    pub fn row_width(&self) -> u64 {
        self.row_width
    }

    /// Tuples that fit on one page.
    pub fn tuples_per_page(&self) -> u32 {
        self.tuples_per_page
    }

    /// Number of heap pages.
    pub fn npages(&self) -> u32 {
        self.ntuples.div_ceil(self.tuples_per_page as u64) as u32
    }

    /// The page id of heap block `block`.
    pub fn page(&self, block: u32) -> PageId {
        PageId::new(self.rel, block)
    }

    /// Appends a row during load (no references emitted).
    ///
    /// # Panics
    ///
    /// Panics if the row does not match the schema.
    pub fn append(&mut self, pool: &mut BufferPool, row: &[Value]) -> TupleId {
        assert_eq!(row.len(), self.def.columns.len(), "row arity mismatch");
        let slot_in_page = (self.ntuples % self.tuples_per_page as u64) as u32;
        let block = (self.ntuples / self.tuples_per_page as u64) as u32;
        let buf = if slot_in_page == 0 {
            if block < pool.rel_len(self.rel) {
                // Reusing a page truncated by vacuum.
                pool.lookup(self.page(block)).expect("page exists")
            } else {
                let page = pool.alloc_page(self.rel);
                debug_assert_eq!(page.block, block);
                pool.lookup(page).expect("just allocated")
            }
        } else {
            pool.lookup(self.page(block)).expect("page exists")
        };
        let base = self.slot_off(slot_in_page) + TUPLE_HEADER;
        for (i, v) in row.iter().enumerate() {
            let off = (base + self.attr_offsets[i]) as usize;
            let ty = self.def.columns[i].ty;
            match (v, ty) {
                (Value::Int(x), ColType::Int) | (Value::Dec(x), ColType::Dec) => {
                    pool.put_u64(buf, off, *x as u64);
                }
                (Value::Date(d), ColType::Date) => {
                    pool.put_u32(buf, off, d.day_number() as u32);
                }
                (Value::Str(s), ColType::Str(w)) => {
                    let mut bytes = vec![b' '; w as usize];
                    let n = s.len().min(w as usize);
                    bytes[..n].copy_from_slice(&s.as_bytes()[..n]);
                    pool.put_bytes(buf, off, &bytes);
                }
                (v, ty) => panic!("value {v:?} does not fit column type {ty:?}"),
            }
        }
        pool.put_u32(buf, 0, slot_in_page + 1); // tuple count on this page
        pool.put_u32(buf, (self.slot_off(slot_in_page)) as usize, 0); // live header
        self.ntuples += 1;
        TupleId::new(block, slot_in_page)
    }

    /// Resets the heap to empty, keeping its allocated pages for reuse
    /// (vacuum support; untraced maintenance).
    pub fn truncate(&mut self) {
        self.ntuples = 0;
        self.ndead = 0;
    }

    /// Tuples stored on the page held by `buf`, reading the page header
    /// (one traced 4-byte [`DataClass::Data`] load).
    pub fn tuples_on_page(&self, pool: &BufferPool, buf: BufId, t: &Tracer) -> u32 {
        t.read(pool.page_addr(buf, 0), 4, DataClass::Data);
        pool.get_u32(buf, 0)
    }

    /// Emulated address of attribute `attr` of the tuple in `slot`.
    pub fn attr_addr(&self, pool: &BufferPool, buf: BufId, slot: u32, attr: usize) -> u64 {
        pool.page_addr(
            buf,
            self.slot_off(slot) + TUPLE_HEADER + self.attr_offsets[attr],
        )
    }

    /// On-page width of attribute `attr`.
    pub fn attr_width(&self, attr: usize) -> u64 {
        self.def.columns[attr].ty.width() as u64
    }

    /// Decodes attribute `attr` without emitting references.
    pub fn attr_value(&self, pool: &BufferPool, buf: BufId, slot: u32, attr: usize) -> Datum {
        let off = (self.slot_off(slot) + TUPLE_HEADER + self.attr_offsets[attr]) as usize;
        match self.def.columns[attr].ty {
            ColType::Int => Datum::Int(pool.get_u64(buf, off) as i64),
            ColType::Dec => Datum::Dec(pool.get_u64(buf, off) as i64),
            ColType::Date => Datum::Date(Date::from_day_number(pool.get_u32(buf, off) as i32)),
            ColType::Str(w) => {
                let mut bytes = vec![0u8; w as usize];
                pool.get_bytes(buf, off, &mut bytes);
                let s = String::from_utf8_lossy(&bytes);
                Datum::Str(s.trim_end_matches(' ').to_owned())
            }
        }
    }

    /// Reads attribute `attr` for a predicate check: decodes the value and
    /// emits a [`DataClass::Data`] load at its address (string reads capped
    /// at 16 bytes — a comparison resolves within the first words).
    pub fn read_attr(
        &self,
        pool: &BufferPool,
        buf: BufId,
        slot: u32,
        attr: usize,
        t: &Tracer,
    ) -> Datum {
        let width = self.attr_width(attr).min(STRING_PROBE_BYTES);
        t.read(
            self.attr_addr(pool, buf, slot, attr),
            width,
            DataClass::Data,
        );
        self.attr_value(pool, buf, slot, attr)
    }

    /// Reads attribute `attr` with Postgres-style tuple deforming.
    ///
    /// Postgres95 caches the offsets of the first few fixed-width attributes
    /// but must *walk* the tuple — touching every intervening byte — to reach
    /// attributes beyond a variable-width column (`nocachegetattr`). This is
    /// the source of the strong intra-tuple spatial locality the paper
    /// measures: fetching one late attribute streams through the tuple
    /// prefix. `deformed_to` tracks how far this tuple has already been
    /// deformed, so later attributes of the same tuple emit only the
    /// incremental walk.
    pub fn read_attr_walking(
        &self,
        pool: &BufferPool,
        buf: BufId,
        slot: u32,
        attr: usize,
        deformed_to: &mut usize,
        t: &Tracer,
    ) -> Datum {
        if attr < CACHED_OFFSET_ATTRS || attr < *deformed_to {
            return self.read_attr(pool, buf, slot, attr, t);
        }
        let from = (*deformed_to).max(CACHED_OFFSET_ATTRS);
        let start = self.attr_offsets[from];
        let end = self.attr_offsets[attr] + self.attr_width(attr).min(STRING_PROBE_BYTES);
        t.read(
            self.attr_addr(pool, buf, slot, from),
            end - start,
            DataClass::Data,
        );
        *deformed_to = attr + 1;
        self.attr_value(pool, buf, slot, attr)
    }

    /// Appends a row *with tracing*: the insert's stores to the page (tuple
    /// header plus every attribute, copied from the private scratch buffer at
    /// `src_addr`) are emitted as [`DataClass::Data`] writes. Pins the target
    /// page through the buffer manager like any other access.
    pub fn append_traced(
        &mut self,
        pool: &mut BufferPool,
        row: &[Value],
        src_addr: u64,
        t: &Tracer,
    ) -> TupleId {
        let tid = self.append(pool, row);
        let buf = pool.pin(self.page(tid.block), t);
        let base = self.slot_off(tid.slot);
        // Tuple header (xmin/xmax/ctid) and the page's tuple count.
        t.write(pool.page_addr(buf, base), 16, DataClass::Data);
        t.write(pool.page_addr(buf, 0), 4, DataClass::Data);
        let mut src_off = 0;
        for attr in 0..self.def.columns.len() {
            let width = self.attr_width(attr);
            t.copy(
                src_addr + src_off,
                DataClass::PrivHeap,
                self.attr_addr(pool, buf, tid.slot, attr),
                DataClass::Data,
                width,
            );
            src_off += width;
        }
        pool.unpin(buf, t);
        tid
    }

    /// Marks the tuple dead (traced header write). The slot remains until a
    /// vacuum; index entries keep pointing at it and visibility checks hide
    /// it from scans.
    ///
    /// # Panics
    ///
    /// Panics if the tuple is already dead.
    pub fn tombstone(&mut self, pool: &mut BufferPool, buf: BufId, slot: u32, t: &Tracer) {
        let off = self.slot_off(slot) as usize;
        assert_eq!(pool.get_u32(buf, off), 0, "tuple already deleted");
        pool.put_u32(buf, off, FLAG_DEAD);
        t.write(pool.page_addr(buf, off as u64), 4, DataClass::Data);
        self.ndead += 1;
    }

    /// Whether the tuple is live, without tracing (for loads and tests).
    pub fn is_live(&self, pool: &BufferPool, buf: BufId, slot: u32) -> bool {
        pool.get_u32(buf, self.slot_off(slot) as usize) == 0
    }

    /// Visibility check as the executor performs it: reads the tuple header
    /// (one traced 4-byte [`DataClass::Data`] load, as Postgres reads xmin/
    /// xmax on every fetch) and reports whether the tuple is live.
    pub fn visible(&self, pool: &BufferPool, buf: BufId, slot: u32, t: &Tracer) -> bool {
        let off = self.slot_off(slot);
        t.read(pool.page_addr(buf, off), 4, DataClass::Data);
        self.is_live(pool, buf, slot)
    }

    fn slot_off(&self, slot: u32) -> u64 {
        PAGE_HEADER + slot as u64 * (TUPLE_HEADER + self.row_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_shmem::AddressSpace;
    use dss_tpcd::table_def;
    use dss_trace::TraceStats;

    fn region_heap() -> (BufferPool, Heap) {
        let mut space = AddressSpace::new();
        let pool = BufferPool::new(&mut space, 64);
        let heap = Heap::create(3, table_def("region").unwrap().clone());
        (pool, heap)
    }

    #[test]
    fn append_and_read_roundtrip() {
        let (mut pool, mut heap) = region_heap();
        let tid = heap.append(
            &mut pool,
            &[
                Value::Int(0),
                Value::Str("AFRICA".into()),
                Value::Str("vast".into()),
            ],
        );
        assert_eq!(tid, TupleId::new(0, 0));
        let buf = pool.lookup(heap.page(0)).unwrap();
        assert_eq!(heap.attr_value(&pool, buf, 0, 0), Datum::Int(0));
        assert_eq!(
            heap.attr_value(&pool, buf, 0, 1),
            Datum::Str("AFRICA".into())
        );
        assert_eq!(heap.attr_value(&pool, buf, 0, 2), Datum::Str("vast".into()));
        assert_eq!(heap.ntuples(), 1);
    }

    #[test]
    fn rows_cross_page_boundaries() {
        let (mut pool, mut heap) = region_heap();
        let per_page = heap.tuples_per_page() as u64;
        for i in 0..per_page + 3 {
            heap.append(
                &mut pool,
                &[
                    Value::Int(i as i64),
                    Value::Str(format!("R{i}")),
                    Value::Str("c".into()),
                ],
            );
        }
        assert_eq!(heap.npages(), 2);
        let buf0 = pool.lookup(heap.page(0)).unwrap();
        let buf1 = pool.lookup(heap.page(1)).unwrap();
        let t = Tracer::disabled();
        assert_eq!(heap.tuples_on_page(&pool, buf0, &t), per_page as u32);
        assert_eq!(heap.tuples_on_page(&pool, buf1, &t), 3);
        assert_eq!(
            heap.attr_value(&pool, buf1, 0, 0),
            Datum::Int(per_page as i64)
        );
    }

    #[test]
    fn lineitem_rows_per_page_matches_paper_footprint() {
        let heap = Heap::create(1, table_def("lineitem").unwrap().clone());
        // 140-byte payload + 40-byte header => 45 tuples per 8 KB page, so
        // ~60k lineitems occupy ~1340 pages ≈ 11 MB, the paper's "about 12
        // Mbytes" for the scaled lineitem table.
        assert_eq!(heap.row_width(), 140);
        assert_eq!(heap.tuples_per_page(), 45);
    }

    #[test]
    fn read_attr_emits_data_refs_at_the_right_address() {
        let (mut pool, mut heap) = region_heap();
        heap.append(
            &mut pool,
            &[
                Value::Int(4),
                Value::Str("ASIA".into()),
                Value::Str("c".into()),
            ],
        );
        let buf = pool.lookup(heap.page(0)).unwrap();
        let t = Tracer::new(0);
        let v = heap.read_attr(&pool, buf, 0, 0, &t);
        assert_eq!(v, Datum::Int(4));
        let trace = t.take();
        let stats = TraceStats::from_trace(&trace);
        assert_eq!(stats.reads(DataClass::Data), 1);
        match trace.events[0] {
            dss_trace::Event::Ref(r) => {
                assert_eq!(r.addr, heap.attr_addr(&pool, buf, 0, 0));
                assert_eq!(r.size, 8);
            }
            ref other => panic!("expected ref, got {other:?}"),
        }
    }

    #[test]
    fn string_probe_reads_are_capped() {
        let (mut pool, mut heap) = region_heap();
        heap.append(
            &mut pool,
            &[
                Value::Int(0),
                Value::Str("AMERICA".into()),
                Value::Str("c".into()),
            ],
        );
        let buf = pool.lookup(heap.page(0)).unwrap();
        let t = Tracer::new(0);
        // r_name is CHAR(25) but a probe reads at most 16 bytes (2 refs).
        heap.read_attr(&pool, buf, 0, 1, &t);
        assert_eq!(t.take().events.len(), 2);
    }

    #[test]
    fn strings_are_space_padded_and_trimmed() {
        let (mut pool, mut heap) = region_heap();
        heap.append(
            &mut pool,
            &[
                Value::Int(0),
                Value::Str("EUROPE".into()),
                Value::Str("x".into()),
            ],
        );
        let buf = pool.lookup(heap.page(0)).unwrap();
        // On page, padded to 25 chars; decoded, trimmed back.
        assert_eq!(
            heap.attr_value(&pool, buf, 0, 1),
            Datum::Str("EUROPE".into())
        );
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn wrong_arity_rejected() {
        let (mut pool, mut heap) = region_heap();
        heap.append(&mut pool, &[Value::Int(0)]);
    }
}
