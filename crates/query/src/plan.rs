//! Physical query plans.
//!
//! The optimizer produces left-deep trees of these nodes, mirroring
//! Postgres95's executor repertoire: sequential and index scan selects,
//! nested-loop / merge / hash joins, sort, group, and aggregate (the paper's
//! Section 2.1.1).

use dss_sql::AggFunc;
use dss_tpcd::ColType;

use crate::catalog::Catalog;
use crate::expr::Scalar;
use crate::row::RowShape;
use crate::Datum;

/// One aggregate computed by a [`Plan::Group`] or [`Plan::Aggregate`] node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggSpec {
    /// The function.
    pub func: AggFunc,
    /// Bound argument over the input row (`None` only for `count(*)`).
    pub arg: Option<Scalar>,
    /// `distinct` qualifier.
    pub distinct: bool,
}

/// A physical plan node.
#[derive(Clone, Debug, PartialEq)]
pub enum Plan {
    /// Sequential scan select: visit every tuple, apply conjuncts in order,
    /// project the surviving tuples' attributes into private slots.
    SeqScan {
        /// Table name.
        table: String,
        /// Conjunctive predicates over table attributes (slot = attribute).
        preds: Vec<Scalar>,
        /// Attribute indices projected, in output order.
        project: Vec<usize>,
        /// Heap blocks `[lo, hi)` to scan; `None` scans the whole table.
        /// Used by the intra-query-parallelism extension to partition a scan
        /// across processors (the paper's future work).
        block_range: Option<(u32, u32)>,
    },
    /// Index scan select: probe/range-scan a b-tree, fetch matching heap
    /// tuples, re-check conjuncts, project.
    IndexScan {
        /// Table name.
        table: String,
        /// Indexed attribute (must have an index in the catalog).
        index_column: usize,
        /// Static lower bound on the key column (inclusive), if any.
        lo: Option<Datum>,
        /// Static upper bound on the key column (inclusive), if any.
        hi: Option<Datum>,
        /// `true` when this scan is the inner of a nested-loop join and its
        /// equality bound arrives at rescan time from the outer row.
        parameterized: bool,
        /// Conjunctive predicates re-checked on the heap tuple.
        preds: Vec<Scalar>,
        /// Attribute indices projected, in output order.
        project: Vec<usize>,
    },
    /// Nested-loop join: for each outer row, rescan the parameterized inner
    /// index scan with the outer join key.
    NestLoop {
        /// Outer (left) input.
        outer: Box<Plan>,
        /// Inner input: a `parameterized` [`Plan::IndexScan`].
        inner: Box<Plan>,
        /// Output column of the outer feeding the inner's key.
        outer_key: usize,
    },
    /// Merge join of two inputs ordered on their join keys.
    MergeJoin {
        /// Outer (left) input, sorted on `outer_key`.
        outer: Box<Plan>,
        /// Outer join-key column.
        outer_key: usize,
        /// Inner input, sorted on `inner_key` (e.g. a full-range index scan).
        inner: Box<Plan>,
        /// Inner join-key column.
        inner_key: usize,
    },
    /// Hash join: build a private hash table on the inner, probe with outer.
    HashJoin {
        /// Probe (left) input.
        outer: Box<Plan>,
        /// Probe join-key column.
        outer_key: usize,
        /// Build (right) input.
        inner: Box<Plan>,
        /// Build join-key column.
        inner_key: usize,
    },
    /// Filter rows by a residual predicate.
    Filter {
        /// Input.
        input: Box<Plan>,
        /// Conjuncts over the input row.
        preds: Vec<Scalar>,
    },
    /// Sort by output columns.
    Sort {
        /// Input.
        input: Box<Plan>,
        /// `(column, descending)` sort keys, major first.
        keys: Vec<(usize, bool)>,
    },
    /// Grouped aggregation over an input sorted on the group keys
    /// (Postgres95's Group + Aggregate pair).
    Group {
        /// Input, sorted by `keys`.
        input: Box<Plan>,
        /// Group-key columns; they prefix the output row.
        keys: Vec<usize>,
        /// Aggregates appended after the keys.
        aggs: Vec<AggSpec>,
    },
    /// Ungrouped (scalar) aggregation producing exactly one row.
    Aggregate {
        /// Input.
        input: Box<Plan>,
        /// Aggregates computed.
        aggs: Vec<AggSpec>,
    },
    /// Compute output expressions over the input row.
    Project {
        /// Input.
        input: Box<Plan>,
        /// One expression per output column.
        exprs: Vec<Scalar>,
    },
    /// Stop after `n` rows.
    Limit {
        /// Input.
        input: Box<Plan>,
        /// Maximum rows produced.
        n: u64,
    },
}

/// Which operator families a plan uses — one row of the paper's Table 1.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanFeatures {
    /// Sequential-scan select present.
    pub seq_scan: bool,
    /// Index-scan select present.
    pub index_scan: bool,
    /// Nested-loop join present.
    pub nest_loop: bool,
    /// Merge join present.
    pub merge_join: bool,
    /// Hash join present.
    pub hash_join: bool,
    /// Sort present.
    pub sort: bool,
    /// Group present.
    pub group: bool,
    /// Aggregate present.
    pub aggregate: bool,
}

impl PlanFeatures {
    /// Renders the Table 1 row: `SS IS NL M H Sort Group Aggr` checkmarks.
    pub fn row(&self) -> String {
        let mark = |b: bool| if b { "x" } else { "." };
        format!(
            "{} {} {} {} {} {} {} {}",
            mark(self.seq_scan),
            mark(self.index_scan),
            mark(self.nest_loop),
            mark(self.merge_join),
            mark(self.hash_join),
            mark(self.sort),
            mark(self.group),
            mark(self.aggregate),
        )
    }
}

impl Plan {
    /// The output row layout of this node.
    ///
    /// # Panics
    ///
    /// Panics if the plan references tables or columns missing from the
    /// catalog (the planner guarantees well-formedness).
    pub fn shape(&self, cat: &Catalog) -> RowShape {
        match self {
            Plan::SeqScan { table, project, .. } | Plan::IndexScan { table, project, .. } => {
                let def = cat
                    .table(table)
                    .expect("planned table exists")
                    .heap
                    .def()
                    .clone();
                RowShape::new(project.iter().map(|&a| def.columns[a].ty).collect())
            }
            Plan::NestLoop { outer, inner, .. }
            | Plan::MergeJoin { outer, inner, .. }
            | Plan::HashJoin { outer, inner, .. } => outer.shape(cat).concat(&inner.shape(cat)),
            Plan::Filter { input, .. } | Plan::Sort { input, .. } | Plan::Limit { input, .. } => {
                input.shape(cat)
            }
            Plan::Group { input, keys, aggs } => {
                let inner = input.shape(cat);
                let mut types: Vec<ColType> = keys.iter().map(|&k| inner.types[k]).collect();
                types.extend(aggs.iter().map(|a| agg_type(a, &inner)));
                RowShape::new(types)
            }
            Plan::Aggregate { input, aggs } => {
                let inner = input.shape(cat);
                RowShape::new(aggs.iter().map(|a| agg_type(a, &inner)).collect())
            }
            Plan::Project { input, exprs } => {
                let inner = input.shape(cat);
                RowShape::new(exprs.iter().map(|e| infer_type(e, &inner)).collect())
            }
        }
    }

    /// Collects the operator families used (one Table 1 row).
    pub fn features(&self) -> PlanFeatures {
        let mut f = PlanFeatures::default();
        self.walk(&mut |node| match node {
            Plan::SeqScan { .. } => f.seq_scan = true,
            Plan::IndexScan { .. } => f.index_scan = true,
            Plan::NestLoop { .. } => f.nest_loop = true,
            Plan::MergeJoin { .. } => f.merge_join = true,
            Plan::HashJoin { .. } => f.hash_join = true,
            Plan::Sort { .. } => f.sort = true,
            Plan::Group { aggs, .. } => {
                f.group = true;
                if !aggs.is_empty() {
                    f.aggregate = true;
                }
            }
            Plan::Aggregate { .. } => f.aggregate = true,
            Plan::Filter { .. } | Plan::Project { .. } | Plan::Limit { .. } => {}
        });
        f
    }

    /// Visits every node, parents before children.
    pub fn walk(&self, f: &mut dyn FnMut(&Plan)) {
        f(self);
        match self {
            Plan::NestLoop { outer, inner, .. }
            | Plan::MergeJoin { outer, inner, .. }
            | Plan::HashJoin { outer, inner, .. } => {
                outer.walk(f);
                inner.walk(f);
            }
            Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Group { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Project { input, .. }
            | Plan::Limit { input, .. } => input.walk(f),
            Plan::SeqScan { .. } | Plan::IndexScan { .. } => {}
        }
    }

    /// Renders an `EXPLAIN`-style tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::SeqScan {
                table,
                preds,
                project,
                block_range,
            } => {
                let part = match block_range {
                    Some((lo, hi)) => format!(", blocks {lo}..{hi}"),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "{pad}Seq Scan on {table} ({} preds, {} cols{part})\n",
                    preds.len(),
                    project.len()
                ));
            }
            Plan::IndexScan {
                table,
                index_column,
                parameterized,
                preds,
                ..
            } => {
                let param = if *parameterized {
                    ", parameterized"
                } else {
                    ""
                };
                out.push_str(&format!(
                    "{pad}Index Scan on {table} (key col {index_column}{param}, {} preds)\n",
                    preds.len()
                ));
            }
            Plan::NestLoop {
                outer,
                inner,
                outer_key,
            } => {
                out.push_str(&format!("{pad}Nested Loop Join (outer key {outer_key})\n"));
                outer.explain_into(out, depth + 1);
                inner.explain_into(out, depth + 1);
            }
            Plan::MergeJoin {
                outer,
                inner,
                outer_key,
                inner_key,
            } => {
                out.push_str(&format!(
                    "{pad}Merge Join (keys {outer_key} = {inner_key})\n"
                ));
                outer.explain_into(out, depth + 1);
                inner.explain_into(out, depth + 1);
            }
            Plan::HashJoin {
                outer,
                inner,
                outer_key,
                inner_key,
            } => {
                out.push_str(&format!(
                    "{pad}Hash Join (keys {outer_key} = {inner_key})\n"
                ));
                outer.explain_into(out, depth + 1);
                inner.explain_into(out, depth + 1);
            }
            Plan::Filter { input, preds } => {
                out.push_str(&format!("{pad}Filter ({} preds)\n", preds.len()));
                input.explain_into(out, depth + 1);
            }
            Plan::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort ({} keys)\n", keys.len()));
                input.explain_into(out, depth + 1);
            }
            Plan::Group { input, keys, aggs } => {
                out.push_str(&format!(
                    "{pad}Group ({} keys, {} aggs)\n",
                    keys.len(),
                    aggs.len()
                ));
                input.explain_into(out, depth + 1);
            }
            Plan::Aggregate { input, aggs } => {
                out.push_str(&format!("{pad}Aggregate ({} aggs)\n", aggs.len()));
                input.explain_into(out, depth + 1);
            }
            Plan::Project { input, exprs } => {
                out.push_str(&format!("{pad}Project ({} cols)\n", exprs.len()));
                input.explain_into(out, depth + 1);
            }
            Plan::Limit { input, n } => {
                out.push_str(&format!("{pad}Limit ({n} rows)\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

/// Result type of an aggregate.
fn agg_type(spec: &AggSpec, input: &RowShape) -> ColType {
    match spec.func {
        AggFunc::Count => ColType::Int,
        AggFunc::Avg => ColType::Dec,
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => spec
            .arg
            .as_ref()
            .map(|a| infer_type(a, input))
            .unwrap_or(ColType::Int),
    }
}

/// Static type of a bound scalar over `input`.
pub(crate) fn infer_type(e: &Scalar, input: &RowShape) -> ColType {
    match e {
        Scalar::Slot(i) => input.types[*i],
        Scalar::Const(Datum::Int(_)) => ColType::Int,
        Scalar::Const(Datum::Dec(_)) => ColType::Dec,
        Scalar::Const(Datum::Date(_)) => ColType::Date,
        Scalar::Const(Datum::Str(s)) => ColType::Str(s.len() as u16),
        Scalar::Binary { lhs, rhs, .. } => match (infer_type(lhs, input), infer_type(rhs, input)) {
            (ColType::Int, ColType::Int) => ColType::Int,
            _ => ColType::Dec,
        },
        // Predicates never appear in projections; any width works.
        _ => ColType::Int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(table: &str) -> Plan {
        Plan::SeqScan {
            table: table.into(),
            preds: vec![],
            project: vec![0, 1],
            block_range: None,
        }
    }

    #[test]
    fn features_collect_across_tree() {
        let plan = Plan::Sort {
            input: Box::new(Plan::Group {
                input: Box::new(Plan::NestLoop {
                    outer: Box::new(scan("customer")),
                    inner: Box::new(Plan::IndexScan {
                        table: "orders".into(),
                        index_column: 1,
                        lo: None,
                        hi: None,
                        parameterized: true,
                        preds: vec![],
                        project: vec![0],
                    }),
                    outer_key: 0,
                }),
                keys: vec![0],
                aggs: vec![AggSpec {
                    func: AggFunc::Sum,
                    arg: Some(Scalar::Slot(1)),
                    distinct: false,
                }],
            }),
            keys: vec![(1, true)],
        };
        let f = plan.features();
        assert!(f.seq_scan && f.index_scan && f.nest_loop && f.sort && f.group && f.aggregate);
        assert!(!f.merge_join && !f.hash_join);
        assert_eq!(f.row(), "x x x . . x x x");
    }

    #[test]
    fn explain_renders_tree() {
        let plan = Plan::Aggregate {
            input: Box::new(scan("lineitem")),
            aggs: vec![AggSpec {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            }],
        };
        let text = plan.explain();
        assert!(text.contains("Aggregate"));
        assert!(text.contains("Seq Scan on lineitem"));
        assert!(text.find("Aggregate").unwrap() < text.find("Seq Scan").unwrap());
    }

    #[test]
    fn infer_types_for_expressions() {
        let shape = RowShape::new(vec![ColType::Dec, ColType::Int]);
        let mul = Scalar::Binary {
            op: dss_sql::BinOp::Mul,
            lhs: Box::new(Scalar::Slot(0)),
            rhs: Box::new(Scalar::Slot(1)),
        };
        assert_eq!(infer_type(&mul, &shape), ColType::Dec);
        let int_add = Scalar::Binary {
            op: dss_sql::BinOp::Add,
            lhs: Box::new(Scalar::Slot(1)),
            rhs: Box::new(Scalar::Const(Datum::Int(1))),
        };
        assert_eq!(infer_type(&int_add, &shape), ColType::Int);
    }
}
