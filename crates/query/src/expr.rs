//! Bound (executable) scalar expressions.

use dss_sql::{BinOp, Expr};
use dss_tpcd::Date;
use dss_trace::{CostModel, Tracer};

use crate::datum::like_match;
use crate::{Datum, PlanError};

/// Supplies slot values during evaluation, emitting the appropriate
/// references: heap attributes emit `Data` loads, materialized rows emit
/// `Priv` loads.
pub trait SlotSource {
    /// Loads slot `i`, emitting its traced references.
    fn load(&mut self, i: usize, t: &Tracer) -> Datum;
}

/// A bound scalar expression whose column references have been resolved to
/// slot numbers of some [`SlotSource`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Scalar {
    /// Input slot `i`.
    Slot(usize),
    /// Literal.
    Const(Datum),
    /// Arithmetic, comparison, or logical operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Scalar>,
        /// Right operand.
        rhs: Box<Scalar>,
    },
    /// Logical negation.
    Not(Box<Scalar>),
    /// `expr [not] between lo and hi` (bounds are literals in TPC-D).
    Between {
        /// Tested expression.
        expr: Box<Scalar>,
        /// Inclusive lower bound.
        lo: Box<Scalar>,
        /// Inclusive upper bound.
        hi: Box<Scalar>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [not] in (…)`.
    InList {
        /// Tested expression.
        expr: Box<Scalar>,
        /// Candidates.
        list: Vec<Scalar>,
        /// Negated form.
        negated: bool,
    },
    /// `expr [not] like 'pattern'`.
    Like {
        /// Tested expression.
        expr: Box<Scalar>,
        /// Pattern with `%`/`_` wildcards.
        pattern: String,
        /// Negated form.
        negated: bool,
    },
}

impl Scalar {
    /// Evaluates a value-producing expression.
    ///
    /// # Panics
    ///
    /// Panics if the expression is boolean-valued (planner bug).
    pub fn eval_value(&self, src: &mut dyn SlotSource, t: &Tracer, cost: &CostModel) -> Datum {
        match self {
            Scalar::Slot(i) => src.load(*i, t),
            Scalar::Const(d) => d.clone(),
            Scalar::Binary { op, lhs, rhs } => {
                let a = lhs.eval_value(src, t, cost);
                let b = rhs.eval_value(src, t, cost);
                t.busy(cost.arithmetic);
                arith(*op, &a, &b)
            }
            other => panic!("boolean expression {other:?} used as a value"),
        }
    }

    /// Evaluates a predicate.
    ///
    /// # Panics
    ///
    /// Panics if the expression is value-typed at the top level.
    pub fn eval_bool(&self, src: &mut dyn SlotSource, t: &Tracer, cost: &CostModel) -> bool {
        match self {
            Scalar::Binary { op, lhs, rhs } if op.is_comparison() => {
                let a = lhs.eval_value(src, t, cost);
                let b = rhs.eval_value(src, t, cost);
                t.busy(cost.predicate_eval);
                let ord = a.compare(&b);
                match op {
                    BinOp::Eq => ord.is_eq(),
                    BinOp::Ne => ord.is_ne(),
                    BinOp::Lt => ord.is_lt(),
                    BinOp::Le => ord.is_le(),
                    BinOp::Gt => ord.is_gt(),
                    BinOp::Ge => ord.is_ge(),
                    _ => unreachable!(),
                }
            }
            Scalar::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => lhs.eval_bool(src, t, cost) && rhs.eval_bool(src, t, cost),
            Scalar::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } => lhs.eval_bool(src, t, cost) || rhs.eval_bool(src, t, cost),
            Scalar::Not(e) => !e.eval_bool(src, t, cost),
            Scalar::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let v = expr.eval_value(src, t, cost);
                let lo = lo.eval_value(src, t, cost);
                let hi = hi.eval_value(src, t, cost);
                t.busy(2 * cost.predicate_eval);
                let inside = v.compare(&lo).is_ge() && v.compare(&hi).is_le();
                inside != *negated
            }
            Scalar::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_value(src, t, cost);
                let mut found = false;
                for cand in list {
                    let c = cand.eval_value(src, t, cost);
                    t.busy(cost.predicate_eval);
                    if v.compare(&c).is_eq() {
                        found = true;
                        break;
                    }
                }
                found != *negated
            }
            Scalar::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval_value(src, t, cost);
                t.busy(cost.predicate_eval + pattern.len() as u32);
                like_match(v.str(), pattern) != *negated
            }
            other => panic!("value expression {other:?} used as a predicate"),
        }
    }

    /// Slots this expression reads.
    pub fn slots(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.walk_slots(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn walk_slots(&self, out: &mut Vec<usize>) {
        match self {
            Scalar::Slot(i) => out.push(*i),
            Scalar::Const(_) => {}
            Scalar::Binary { lhs, rhs, .. } => {
                lhs.walk_slots(out);
                rhs.walk_slots(out);
            }
            Scalar::Not(e) => e.walk_slots(out),
            Scalar::Between { expr, lo, hi, .. } => {
                expr.walk_slots(out);
                lo.walk_slots(out);
                hi.walk_slots(out);
            }
            Scalar::InList { expr, list, .. } => {
                expr.walk_slots(out);
                for e in list {
                    e.walk_slots(out);
                }
            }
            Scalar::Like { expr, .. } => expr.walk_slots(out),
        }
    }
}

fn arith(op: BinOp, a: &Datum, b: &Datum) -> Datum {
    if let (Datum::Int(x), Datum::Int(y)) = (a, b) {
        return Datum::Int(match op {
            BinOp::Add => x + y,
            BinOp::Sub => x - y,
            BinOp::Mul => x * y,
            BinOp::Div => x / y,
            other => panic!("operator {other:?} in arithmetic"),
        });
    }
    let (x, y) = (a.as_hundredths(), b.as_hundredths());
    Datum::Dec(match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y / 100,
        BinOp::Div => x * 100 / y,
        other => panic!("operator {other:?} in arithmetic"),
    })
}

/// Binds an AST expression against a column scope.
///
/// `scope` maps `(table qualifier, column name)` to a slot number.
/// Aggregate calls are rejected — the planner extracts them before binding.
///
/// # Errors
///
/// Returns [`PlanError`] for unresolvable columns or embedded aggregates.
pub fn bind(
    expr: &Expr,
    scope: &dyn Fn(Option<&str>, &str) -> Option<usize>,
) -> Result<Scalar, PlanError> {
    Ok(match expr {
        Expr::Column { table, name } => {
            let slot = scope(table.as_deref(), name).ok_or_else(|| {
                PlanError::new(format!(
                    "unknown column {}{name}",
                    match table {
                        Some(t) => format!("{t}."),
                        None => String::new(),
                    }
                ))
            })?;
            Scalar::Slot(slot)
        }
        Expr::Int(v) => Scalar::Const(Datum::Int(*v)),
        Expr::Dec(v) => Scalar::Const(Datum::Dec(*v)),
        Expr::Str(s) => Scalar::Const(Datum::Str(s.clone())),
        Expr::DateLit { year, month, day } => {
            Scalar::Const(Datum::Date(Date::from_ymd(*year, *month, *day)))
        }
        Expr::Binary { op, lhs, rhs } => Scalar::Binary {
            op: *op,
            lhs: Box::new(bind(lhs, scope)?),
            rhs: Box::new(bind(rhs, scope)?),
        },
        Expr::Not(e) => Scalar::Not(Box::new(bind(e, scope)?)),
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Scalar::Between {
            expr: Box::new(bind(expr, scope)?),
            lo: Box::new(bind(lo, scope)?),
            hi: Box::new(bind(hi, scope)?),
            negated: *negated,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => Scalar::InList {
            expr: Box::new(bind(expr, scope)?),
            list: list
                .iter()
                .map(|e| bind(e, scope))
                .collect::<Result<_, _>>()?,
            negated: *negated,
        },
        Expr::Like {
            expr,
            pattern,
            negated,
        } => Scalar::Like {
            expr: Box::new(bind(expr, scope)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::Agg { .. } => {
            return Err(PlanError::new(
                "aggregate in a non-aggregate context".to_owned(),
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Vals(Vec<Datum>);
    impl SlotSource for Vals {
        fn load(&mut self, i: usize, _t: &Tracer) -> Datum {
            self.0[i].clone()
        }
    }

    fn free() -> CostModel {
        CostModel::free()
    }

    fn scope_none(_: Option<&str>, _: &str) -> Option<usize> {
        None
    }

    #[test]
    fn arithmetic_over_decimals() {
        // l_extendedprice * (1 - l_discount): 100.00 * (1 - 0.05) = 95.00
        let e = Scalar::Binary {
            op: BinOp::Mul,
            lhs: Box::new(Scalar::Slot(0)),
            rhs: Box::new(Scalar::Binary {
                op: BinOp::Sub,
                lhs: Box::new(Scalar::Const(Datum::Int(1))),
                rhs: Box::new(Scalar::Slot(1)),
            }),
        };
        let mut src = Vals(vec![Datum::Dec(10_000), Datum::Dec(5)]);
        let t = Tracer::disabled();
        assert_eq!(e.eval_value(&mut src, &t, &free()), Datum::Dec(9_500));
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let e = Scalar::Binary {
            op: BinOp::Add,
            lhs: Box::new(Scalar::Const(Datum::Int(2))),
            rhs: Box::new(Scalar::Const(Datum::Int(3))),
        };
        let t = Tracer::disabled();
        assert_eq!(e.eval_value(&mut Vals(vec![]), &t, &free()), Datum::Int(5));
    }

    #[test]
    fn comparisons_and_connectives() {
        let lt = Scalar::Binary {
            op: BinOp::Lt,
            lhs: Box::new(Scalar::Slot(0)),
            rhs: Box::new(Scalar::Const(Datum::Int(10))),
        };
        let t = Tracer::disabled();
        assert!(lt.eval_bool(&mut Vals(vec![Datum::Int(5)]), &t, &free()));
        assert!(!lt.eval_bool(&mut Vals(vec![Datum::Int(15)]), &t, &free()));
        let not = Scalar::Not(Box::new(lt.clone()));
        assert!(not.eval_bool(&mut Vals(vec![Datum::Int(15)]), &t, &free()));
        let or = Scalar::Binary {
            op: BinOp::Or,
            lhs: Box::new(lt.clone()),
            rhs: Box::new(Scalar::Not(Box::new(lt))),
        };
        assert!(or.eval_bool(&mut Vals(vec![Datum::Int(7)]), &t, &free()));
    }

    #[test]
    fn between_in_like() {
        let t = Tracer::disabled();
        let between = Scalar::Between {
            expr: Box::new(Scalar::Slot(0)),
            lo: Box::new(Scalar::Const(Datum::Dec(4))),
            hi: Box::new(Scalar::Const(Datum::Dec(6))),
            negated: false,
        };
        assert!(between.eval_bool(&mut Vals(vec![Datum::Dec(5)]), &t, &free()));
        assert!(!between.eval_bool(&mut Vals(vec![Datum::Dec(7)]), &t, &free()));

        let inlist = Scalar::InList {
            expr: Box::new(Scalar::Slot(0)),
            list: vec![
                Scalar::Const(Datum::Str("MAIL".into())),
                Scalar::Const(Datum::Str("SHIP".into())),
            ],
            negated: false,
        };
        assert!(inlist.eval_bool(&mut Vals(vec![Datum::Str("SHIP".into())]), &t, &free()));
        assert!(!inlist.eval_bool(&mut Vals(vec![Datum::Str("AIR".into())]), &t, &free()));

        let like = Scalar::Like {
            expr: Box::new(Scalar::Slot(0)),
            pattern: "PROMO%".into(),
            negated: true,
        };
        assert!(like.eval_bool(
            &mut Vals(vec![Datum::Str("STANDARD TIN".into())]),
            &t,
            &free()
        ));
    }

    #[test]
    fn binding_resolves_columns() {
        let ast = dss_sql::parse("select 1 from t where l_quantity < 24").unwrap();
        let scope = |_: Option<&str>, name: &str| (name == "l_quantity").then_some(4);
        let bound = bind(ast.where_clause.as_ref().unwrap(), &scope).unwrap();
        assert_eq!(bound.slots(), vec![4]);
    }

    #[test]
    fn binding_unknown_column_errors() {
        let ast = dss_sql::parse("select 1 from t where mystery < 24").unwrap();
        let err = bind(ast.where_clause.as_ref().unwrap(), &scope_none).unwrap_err();
        assert!(err.to_string().contains("mystery"));
    }

    #[test]
    fn date_literals_bind_to_dates() {
        let ast = dss_sql::parse("select 1 from t where a >= date '1994-01-01'").unwrap();
        let scope = |_: Option<&str>, _: &str| Some(0);
        let bound = bind(ast.where_clause.as_ref().unwrap(), &scope).unwrap();
        let t = Tracer::disabled();
        let mut src = Vals(vec![Datum::Date(Date::from_ymd(1995, 6, 1))]);
        assert!(bound.eval_bool(&mut src, &t, &free()));
    }
}
