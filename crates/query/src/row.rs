//! Materialized rows in private memory.

use dss_tpcd::ColType;

use crate::Datum;

/// Physical layout of a materialized row: one fixed-width field per column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RowShape {
    /// Column types.
    pub types: Vec<ColType>,
    /// Byte offset of each field.
    pub offsets: Vec<u64>,
    /// Total row width in bytes.
    pub width: u64,
}

impl RowShape {
    /// Computes the layout for the given column types.
    pub fn new(types: Vec<ColType>) -> Self {
        let mut offsets = Vec::with_capacity(types.len());
        let mut off = 0;
        for t in &types {
            offsets.push(off);
            off += t.width() as u64;
        }
        RowShape {
            types,
            offsets,
            width: off,
        }
    }

    /// Concatenates two shapes (join output: outer columns then inner).
    pub fn concat(&self, other: &RowShape) -> RowShape {
        let mut types = self.types.clone();
        types.extend(other.types.iter().copied());
        RowShape::new(types)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.types.len()
    }

    /// Width of field `i` in bytes.
    pub fn field_width(&self, i: usize) -> u64 {
        self.types[i].width() as u64
    }
}

/// A materialized row: decoded values plus the private-memory address where
/// its bytes live (the source of `Priv` references).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Row {
    /// Base address of the row's private slot.
    pub addr: u64,
    /// Decoded field values.
    pub vals: Vec<Datum>,
}

impl Row {
    /// Creates a row at `addr` with the given values.
    pub fn new(addr: u64, vals: Vec<Datum>) -> Self {
        Row { addr, vals }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_prefix_sums() {
        let s = RowShape::new(vec![
            ColType::Int,
            ColType::Date,
            ColType::Str(10),
            ColType::Dec,
        ]);
        assert_eq!(s.offsets, vec![0, 8, 12, 22]);
        assert_eq!(s.width, 30);
        assert_eq!(s.arity(), 4);
        assert_eq!(s.field_width(2), 10);
    }

    #[test]
    fn concat_appends_columns() {
        let a = RowShape::new(vec![ColType::Int]);
        let b = RowShape::new(vec![ColType::Date, ColType::Dec]);
        let c = a.concat(&b);
        assert_eq!(c.arity(), 3);
        assert_eq!(c.offsets, vec![0, 8, 12]);
        assert_eq!(c.width, 20);
    }

    #[test]
    fn empty_shape_is_zero_width() {
        let s = RowShape::new(vec![]);
        assert_eq!(s.width, 0);
        assert_eq!(s.arity(), 0);
    }
}
