//! Runtime values.

use std::cmp::Ordering;
use std::fmt;

use dss_tpcd::{ColType, Date, Value};

/// A runtime value flowing through the executor.
///
/// Mirrors [`dss_tpcd::Value`] but is the engine's own type so operators can
/// carry evaluation results (e.g. decimal arithmetic) without reaching back
/// into the generator crate.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Datum {
    /// 8-byte integer.
    Int(i64),
    /// Decimal in hundredths.
    Dec(i64),
    /// Calendar date.
    Date(Date),
    /// Character string.
    Str(String),
}

impl Datum {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not an [`Datum::Int`]; the planner type-checks
    /// expressions, so a mismatch is an engine bug.
    pub fn int(&self) -> i64 {
        match self {
            Datum::Int(v) => *v,
            other => panic!("expected Int, found {other:?}"),
        }
    }

    /// The decimal payload in hundredths.
    ///
    /// # Panics
    ///
    /// Panics if this is not a [`Datum::Dec`].
    pub fn dec(&self) -> i64 {
        match self {
            Datum::Dec(v) => *v,
            other => panic!("expected Dec, found {other:?}"),
        }
    }

    /// The date payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not a [`Datum::Date`].
    pub fn date(&self) -> Date {
        match self {
            Datum::Date(d) => *d,
            other => panic!("expected Date, found {other:?}"),
        }
    }

    /// The string payload.
    ///
    /// # Panics
    ///
    /// Panics if this is not a [`Datum::Str`].
    pub fn str(&self) -> &str {
        match self {
            Datum::Str(s) => s,
            other => panic!("expected Str, found {other:?}"),
        }
    }

    /// The on-page width of this value under `ty`.
    pub fn width(ty: ColType) -> u64 {
        ty.width() as u64
    }

    /// Compares two datums of the same kind.
    ///
    /// # Panics
    ///
    /// Panics on a kind mismatch (planner bug).
    pub fn compare(&self, other: &Datum) -> Ordering {
        match (self, other) {
            (Datum::Int(a), Datum::Int(b)) => a.cmp(b),
            (Datum::Dec(a), Datum::Dec(b)) => a.cmp(b),
            (Datum::Date(a), Datum::Date(b)) => a.cmp(b),
            (Datum::Str(a), Datum::Str(b)) => a.as_str().cmp(b.as_str()),
            // Int/Dec mix arises from literals like `1 - l_discount`.
            (Datum::Int(a), Datum::Dec(b)) => (a * 100).cmp(b),
            (Datum::Dec(a), Datum::Int(b)) => a.cmp(&(b * 100)),
            (a, b) => panic!("type mismatch comparing {a:?} and {b:?}"),
        }
    }

    /// Numeric value scaled to hundredths, for arithmetic. Dates are their
    /// day number times 100 (so date subtraction yields day counts).
    ///
    /// # Panics
    ///
    /// Panics for strings.
    pub fn as_hundredths(&self) -> i64 {
        match self {
            Datum::Int(v) => v * 100,
            Datum::Dec(v) => *v,
            Datum::Date(d) => d.day_number() as i64 * 100,
            Datum::Str(s) => panic!("string {s:?} in arithmetic"),
        }
    }

    /// A 64-bit hash used by hash joins; deterministic.
    pub fn hash64(&self) -> u64 {
        match self {
            Datum::Int(v) | Datum::Dec(v) => (*v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            Datum::Date(d) => (d.day_number() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            Datum::Str(s) => {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in s.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            }
        }
    }
}

impl From<&Value> for Datum {
    fn from(v: &Value) -> Self {
        match v {
            Value::Int(i) => Datum::Int(*i),
            Value::Dec(d) => Datum::Dec(*d),
            Value::Date(d) => Datum::Date(*d),
            Value::Str(s) => Datum::Str(s.clone()),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Int(v) => write!(f, "{v}"),
            Datum::Dec(v) => {
                let sign = if *v < 0 { "-" } else { "" };
                write!(f, "{sign}{}.{:02}", (v / 100).abs(), (v % 100).abs())
            }
            Datum::Date(d) => write!(f, "{d}"),
            Datum::Str(s) => write!(f, "{s}"),
        }
    }
}

/// SQL `like` matching with `%` (any run) and `_` (any char) wildcards.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[u8], p: &[u8]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some(b'%') => {
                // Match zero or more characters.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some(b'_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    rec(s.as_bytes(), pattern.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_same_kinds() {
        assert_eq!(Datum::Int(1).compare(&Datum::Int(2)), Ordering::Less);
        assert_eq!(
            Datum::Str("AIR".into()).compare(&Datum::Str("AIR".into())),
            Ordering::Equal
        );
        let a = Datum::Date(Date::from_ymd(1995, 1, 1));
        let b = Datum::Date(Date::from_ymd(1995, 1, 2));
        assert_eq!(a.compare(&b), Ordering::Less);
    }

    #[test]
    fn int_dec_comparisons_scale() {
        assert_eq!(Datum::Int(1).compare(&Datum::Dec(100)), Ordering::Equal);
        assert_eq!(Datum::Dec(99).compare(&Datum::Int(1)), Ordering::Less);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn cross_kind_comparison_panics() {
        Datum::Int(1).compare(&Datum::Str("x".into()));
    }

    #[test]
    fn display_formats_decimals() {
        assert_eq!(Datum::Dec(1234).to_string(), "12.34");
        assert_eq!(Datum::Dec(-5).to_string(), "-0.05");
        assert_eq!(Datum::Dec(5).to_string(), "0.05");
    }

    #[test]
    fn like_semantics() {
        assert!(like_match("MEDIUM POLISHED TIN", "MEDIUM%"));
        assert!(like_match("MEDIUM POLISHED TIN", "%TIN"));
        assert!(like_match("MEDIUM POLISHED TIN", "%POLISHED%"));
        assert!(!like_match("SMALL BRUSHED TIN", "MEDIUM%"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("anything", "%%"));
    }

    #[test]
    fn value_conversion() {
        assert_eq!(Datum::from(&Value::Int(7)), Datum::Int(7));
        assert_eq!(Datum::from(&Value::Str("x".into())), Datum::Str("x".into()));
    }

    #[test]
    fn hash_is_deterministic_and_spreads() {
        assert_eq!(Datum::Int(5).hash64(), Datum::Int(5).hash64());
        assert_ne!(Datum::Int(5).hash64(), Datum::Int(6).hash64());
        assert_ne!(
            Datum::Str("AIR".into()).hash64(),
            Datum::Str("RAIL".into()).hash64()
        );
    }
}
