//! The left-deep query optimizer.
//!
//! Reproduces the planning behavior the paper attributes to Postgres95: the
//! optimizer "generates left-deep trees … built based on heuristics and cost
//! analysis". Scan selection chooses an index scan when a selective predicate
//! matches an indexed column, and join algorithm selection follows the
//! paper's observed choices: nested loop with a parameterized inner index
//! scan for small outers, merge join against a full-range ordered index scan
//! for large outers joining a unique key, and hash join when the outer is
//! very large or the inner column has no index.

use dss_sql::{BinOp, Expr, Query};

use crate::catalog::Catalog;
use crate::expr::{bind, Scalar};
use crate::plan::{AggSpec, Plan};
use crate::{Datum, PlanError};

/// Index scans are chosen when the predicate keeps no more than this
/// fraction of the table.
const INDEX_SEL_THRESHOLD: f64 = 0.25;

/// Outer cardinalities above this prefer a hash join (build the inner in a
/// private hash table) over probing an index per outer row.
const HASH_OUTER_LIMIT: f64 = 6000.0;

/// Merge join is preferred over nested loop when the outer estimate exceeds
/// this and the inner is an unfiltered scan of a large unique index.
const MERGE_OUTER_LIMIT: f64 = 600.0;

/// Inner tables smaller than this never use merge join (an index probe per
/// outer row is cheaper than scanning the whole index).
const MERGE_INNER_MIN_ROWS: u64 = 1000;

/// One column of a plan node's output.
#[derive(Clone, Debug)]
struct OutCol {
    table: String,
    name: String,
}

type Scope = Vec<OutCol>;

fn resolve(scope: &Scope, qual: Option<&str>, name: &str) -> Option<usize> {
    scope
        .iter()
        .position(|c| c.name == name && qual.is_none_or(|q| q == c.table))
}

/// Plans a parsed query against the catalog.
///
/// # Errors
///
/// Returns [`PlanError`] for unknown tables/columns, cross products (no join
/// predicate between a table and the tables before it), or unsupported
/// constructs (grouping by non-columns).
pub fn plan_query(cat: &Catalog, q: &Query) -> Result<Plan, PlanError> {
    Planner { cat }.plan(q)
}

struct Planner<'a> {
    cat: &'a Catalog,
}

impl<'a> Planner<'a> {
    fn plan(&self, q: &Query) -> Result<Plan, PlanError> {
        // Validate the FROM list.
        for t in &q.from {
            if self.cat.table(t).is_none() {
                return Err(PlanError::new(format!("unknown table {t}")));
            }
        }
        if q.from.is_empty() {
            return Err(PlanError::new("empty from list".to_owned()));
        }
        // Desugar `select *` into the full column list, in FROM order.
        let expanded;
        let q = if q.star {
            if !q.group_by.is_empty() {
                return Err(PlanError::new("select * cannot be grouped".to_owned()));
            }
            let mut items = Vec::new();
            for t in &q.from {
                let def = self.cat.table(t).expect("validated").heap.def();
                for c in &def.columns {
                    items.push(dss_sql::SelectItem {
                        expr: Expr::qcol(t, c.name),
                        alias: None,
                    });
                }
            }
            expanded = Query {
                items,
                star: false,
                ..q.clone()
            };
            &expanded
        } else {
            q
        };

        // Partition the WHERE conjuncts.
        let conjuncts: Vec<&Expr> = q
            .where_clause
            .as_ref()
            .map(|w| w.conjuncts())
            .unwrap_or_default();
        let mut single: Vec<Vec<&Expr>> = vec![Vec::new(); q.from.len()];
        let mut joins: Vec<JoinPred> = Vec::new();
        let mut residual: Vec<&Expr> = Vec::new();
        for c in conjuncts {
            match self.classify(q, c)? {
                Classified::Single(ti) => single[ti].push(c),
                Classified::Join(jp) => joins.push(jp),
                Classified::Residual => residual.push(c),
            }
        }

        // Which attributes each table must project: everything the query
        // references.
        let needed = self.needed_columns(q, &joins, &residual)?;

        // Left-deep join construction in FROM order.
        let mut joins_left = joins;
        let (mut plan, mut scope) = self.scan(&q.from[0], &single[0], &needed[0])?;
        let mut est = self.estimate_scan(&q.from[0], &single[0]);
        let mut joined: Vec<usize> = vec![0];
        for ti in 1..q.from.len() {
            let table = &q.from[ti];
            // Find the first join predicate linking the joined set to this
            // table (clause order matters, as in Postgres95).
            let jp_pos = joins_left
                .iter()
                .position(|jp| {
                    (jp.left_table == ti && joined.contains(&jp.right_table))
                        || (jp.right_table == ti && joined.contains(&jp.left_table))
                })
                .ok_or_else(|| {
                    PlanError::new(format!(
                        "no join predicate connects {table} (cross products unsupported)"
                    ))
                })?;
            let jp = joins_left.remove(jp_pos);
            // Orient: outer side is the already-joined plan.
            let (outer_col_name, outer_qual, inner_col_name) = if joined.contains(&jp.left_table) {
                (&jp.left_col, &q.from[jp.left_table], &jp.right_col)
            } else {
                (&jp.right_col, &q.from[jp.right_table], &jp.left_col)
            };
            let outer_key = resolve(&scope, Some(outer_qual), outer_col_name).ok_or_else(|| {
                PlanError::new(format!("join key {outer_col_name} not projected"))
            })?;

            let meta = self.cat.table(table).expect("validated");
            let inner_col = meta
                .heap
                .def()
                .column_index(inner_col_name)
                .ok_or_else(|| PlanError::new(format!("unknown join column {inner_col_name}")))?;
            let inner_rows = meta.heap.ntuples();
            let inner_has_index = meta.index_on(inner_col).is_some();
            let inner_unique = meta.stats[inner_col].ndistinct == inner_rows && inner_rows > 0;
            let inner_has_preds = !single[ti].is_empty();
            let inner_est = self.estimate_scan(table, &single[ti]);

            let use_hash = est > HASH_OUTER_LIMIT || !inner_has_index;
            let use_merge = !use_hash
                && inner_has_index
                && inner_unique
                && !inner_has_preds
                && inner_rows >= MERGE_INNER_MIN_ROWS
                && est > MERGE_OUTER_LIMIT;

            let (new_plan, inner_scope) = if use_hash {
                let (inner_plan, inner_scope) = self.scan(table, &single[ti], &needed[ti])?;
                let inner_key =
                    resolve(&inner_scope, Some(table.as_str()), inner_col_name).expect("projected");
                (
                    Plan::HashJoin {
                        outer: Box::new(plan),
                        outer_key,
                        inner: Box::new(inner_plan),
                        inner_key,
                    },
                    inner_scope,
                )
            } else if use_merge {
                let (inner_plan, inner_scope) = self.index_scan(
                    table,
                    inner_col,
                    &single[ti],
                    &needed[ti],
                    None,
                    None,
                    false,
                )?;
                let inner_key =
                    resolve(&inner_scope, Some(table.as_str()), inner_col_name).expect("projected");
                let sorted_outer = Plan::Sort {
                    input: Box::new(plan),
                    keys: vec![(outer_key, false)],
                };
                (
                    Plan::MergeJoin {
                        outer: Box::new(sorted_outer),
                        outer_key,
                        inner: Box::new(inner_plan),
                        inner_key,
                    },
                    inner_scope,
                )
            } else {
                // Nested loop with a parameterized inner index scan.
                let (inner_plan, inner_scope) =
                    self.index_scan(table, inner_col, &single[ti], &needed[ti], None, None, true)?;
                (
                    Plan::NestLoop {
                        outer: Box::new(plan),
                        inner: Box::new(inner_plan),
                        outer_key,
                    },
                    inner_scope,
                )
            };
            plan = new_plan;
            scope.extend(inner_scope);
            joined.push(ti);
            // Rough join-output estimate: outer × per-probe fanout.
            let fanout = if meta.stats[inner_col].ndistinct > 0 {
                inner_est / meta.stats[inner_col].ndistinct as f64
            } else {
                1.0
            };
            est *= fanout.max(0.001);
        }

        // Residual cross-table predicates, plus any join predicates not
        // consumed while building the tree (e.g. a second equality between
        // two already-joined tables) applied as equality filters.
        if !residual.is_empty() || !joins_left.is_empty() {
            let scope_ref = &scope;
            let mut preds = residual
                .iter()
                .map(|e| bind(e, &|q2, n| resolve(scope_ref, q2, n)))
                .collect::<Result<Vec<_>, _>>()?;
            for jp in &joins_left {
                let l = resolve(scope_ref, Some(&q.from[jp.left_table]), &jp.left_col).ok_or_else(
                    || PlanError::new(format!("join column {} not projected", jp.left_col)),
                )?;
                let r = resolve(scope_ref, Some(&q.from[jp.right_table]), &jp.right_col)
                    .ok_or_else(|| {
                        PlanError::new(format!("join column {} not projected", jp.right_col))
                    })?;
                preds.push(Scalar::Binary {
                    op: BinOp::Eq,
                    lhs: Box::new(Scalar::Slot(l)),
                    rhs: Box::new(Scalar::Slot(r)),
                });
            }
            plan = Plan::Filter {
                input: Box::new(plan),
                preds,
            };
        }

        // Grouping and aggregation.
        let aggs_in_items = collect_aggs(q);
        let has_group = !q.group_by.is_empty();
        let mut agg_scope: Option<(Vec<usize>, usize)> = None; // (key slots, n keys)
        if has_group || !aggs_in_items.is_empty() {
            let scope_ref = &scope;
            let key_slots: Vec<usize> = q
                .group_by
                .iter()
                .map(|g| match g {
                    Expr::Column { table, name } => resolve(scope_ref, table.as_deref(), name)
                        .ok_or_else(|| PlanError::new(format!("unknown group column {name}"))),
                    _ => Err(PlanError::new("group by requires plain columns".to_owned())),
                })
                .collect::<Result<_, _>>()?;
            let specs: Vec<AggSpec> = aggs_in_items
                .iter()
                .map(|a| self.bind_agg(a, scope_ref))
                .collect::<Result<_, _>>()?;
            if has_group {
                // Postgres95 groups a sorted stream: Sort → Group (+ Aggregate).
                plan = Plan::Sort {
                    input: Box::new(plan),
                    keys: key_slots.iter().map(|&k| (k, false)).collect(),
                };
                plan = Plan::Group {
                    input: Box::new(plan),
                    keys: key_slots.clone(),
                    aggs: specs,
                };
            } else {
                plan = Plan::Aggregate {
                    input: Box::new(plan),
                    aggs: specs,
                };
            }
            agg_scope = Some((key_slots, q.group_by.len()));
        }

        // HAVING: a filter over the grouped output.
        if let Some(h) = &q.having {
            let (key_slots, _) = agg_scope
                .as_ref()
                .ok_or_else(|| PlanError::new("having requires group by".to_owned()))?;
            let pred =
                rewrite_post_agg(h, &q.group_by, key_slots, &aggs_in_items).map_err(|_| {
                    PlanError::new(
                        "having must reference group keys or selected aggregates".to_owned(),
                    )
                })?;
            plan = Plan::Filter {
                input: Box::new(plan),
                preds: vec![pred],
            };
        }

        // Final projection to the SELECT item list.
        let items: Vec<Scalar> = match &agg_scope {
            Some((key_slots, _)) => {
                let aggs = &aggs_in_items;
                q.items
                    .iter()
                    .map(|item| rewrite_post_agg(&item.expr, &q.group_by, key_slots, aggs))
                    .collect::<Result<_, _>>()?
            }
            None => {
                let scope_ref = &scope;
                q.items
                    .iter()
                    .map(|i| bind(&i.expr, &|q2, n| resolve(scope_ref, q2, n)))
                    .collect::<Result<_, _>>()?
            }
        };
        let needs_project = items
            .iter()
            .enumerate()
            .any(|(i, e)| !matches!(e, Scalar::Slot(s) if *s == i))
            || {
                // Narrow wider outputs down to the item list.
                let current_arity = match &agg_scope {
                    Some((keys, _)) => keys.len() + aggs_in_items.len(),
                    None => scope.len(),
                };
                current_arity != q.items.len()
            };
        if needs_project {
            plan = Plan::Project {
                input: Box::new(plan),
                exprs: items,
            };
        }

        // ORDER BY over the final item list.
        if !q.order_by.is_empty() {
            let keys = q
                .order_by
                .iter()
                .map(|k| {
                    let idx = find_order_target(q, &k.expr)?;
                    Ok((idx, k.desc))
                })
                .collect::<Result<Vec<_>, PlanError>>()?;
            plan = Plan::Sort {
                input: Box::new(plan),
                keys,
            };
        }
        if let Some(n) = q.limit {
            plan = Plan::Limit {
                input: Box::new(plan),
                n,
            };
        }
        Ok(plan)
    }

    /// Builds the cheapest scan for one table.
    fn scan(
        &self,
        table: &str,
        preds: &[&Expr],
        needed: &[usize],
    ) -> Result<(Plan, Scope), PlanError> {
        let meta = self.cat.table(table).expect("validated");
        // Candidate index: the indexed column whose extracted bounds are most
        // selective.
        let mut best: Option<(usize, f64)> = None;
        for idx in &meta.indexes {
            let sel = self.bounds_selectivity(table, idx.column, preds);
            if let Some(sel) = sel {
                if sel <= INDEX_SEL_THRESHOLD && best.is_none_or(|(_, s)| sel < s) {
                    best = Some((idx.column, sel));
                }
            }
        }
        match best {
            Some((col, _)) => {
                let (lo, hi) = self.extract_bounds(table, col, preds);
                self.index_scan(table, col, preds, needed, lo, hi, false)
            }
            None => {
                let scope_cols = self.scan_scope(table, needed);
                let def = meta.heap.def();
                let bound = preds
                    .iter()
                    .map(|e| {
                        bind(e, &|q2, n| {
                            (q2.is_none_or(|q2| q2 == table))
                                .then(|| def.column_index(n))
                                .flatten()
                        })
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((
                    Plan::SeqScan {
                        table: table.to_owned(),
                        preds: bound,
                        project: needed.to_vec(),
                        block_range: None,
                    },
                    scope_cols,
                ))
            }
        }
    }

    // Mirrors IndexScanExec::new's parameter list one-to-one; grouping them
    // here would just move the argument count into a throwaway struct.
    #[allow(clippy::too_many_arguments)]
    fn index_scan(
        &self,
        table: &str,
        column: usize,
        preds: &[&Expr],
        needed: &[usize],
        lo: Option<Datum>,
        hi: Option<Datum>,
        parameterized: bool,
    ) -> Result<(Plan, Scope), PlanError> {
        let meta = self.cat.table(table).expect("validated");
        if meta.index_on(column).is_none() {
            return Err(PlanError::new(format!(
                "no index on column {column} of {table}"
            )));
        }
        let def = meta.heap.def();
        let bound = preds
            .iter()
            .map(|e| {
                bind(e, &|q2, n| {
                    (q2.is_none_or(|q2| q2 == table))
                        .then(|| def.column_index(n))
                        .flatten()
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((
            Plan::IndexScan {
                table: table.to_owned(),
                index_column: column,
                lo,
                hi,
                parameterized,
                preds: bound,
                project: needed.to_vec(),
            },
            self.scan_scope(table, needed),
        ))
    }

    fn scan_scope(&self, table: &str, needed: &[usize]) -> Scope {
        let def = self.cat.table(table).expect("validated").heap.def().clone();
        needed
            .iter()
            .map(|&a| OutCol {
                table: table.to_owned(),
                name: def.columns[a].name.to_owned(),
            })
            .collect()
    }

    /// Which attributes of each FROM table the query touches.
    fn needed_columns(
        &self,
        q: &Query,
        joins: &[JoinPred],
        residual: &[&Expr],
    ) -> Result<Vec<Vec<usize>>, PlanError> {
        let mut needed: Vec<Vec<usize>> = vec![Vec::new(); q.from.len()];
        let mut add = |planner: &Self, qual: Option<&str>, name: &str| -> Result<(), PlanError> {
            let (table, col) = planner
                .cat
                .resolve_column(qual, name)
                .ok_or_else(|| PlanError::new(format!("unknown column {name}")))?;
            if let Some(ti) = q.from.iter().position(|f| f == table) {
                if !needed[ti].contains(&col) {
                    needed[ti].push(col);
                }
                Ok(())
            } else {
                Err(PlanError::new(format!(
                    "column {name} belongs to {table}, not in FROM"
                )))
            }
        };
        let mut exprs: Vec<&Expr> = Vec::new();
        for item in &q.items {
            exprs.push(&item.expr);
        }
        if let Some(w) = &q.where_clause {
            exprs.push(w);
        }
        exprs.extend(q.group_by.iter());
        for k in &q.order_by {
            exprs.push(&k.expr);
        }
        exprs.extend(residual.iter().copied());
        for e in exprs {
            for (qual, name) in e.columns() {
                // Order-by items naming aliases resolve later; skip unknowns
                // that match an alias.
                if qual.is_none() && q.items.iter().any(|i| i.alias.as_deref() == Some(name)) {
                    continue;
                }
                add(self, qual.as_deref(), name)?;
            }
        }
        for jp in joins {
            add(self, Some(&q.from[jp.left_table]), &jp.left_col)?;
            add(self, Some(&q.from[jp.right_table]), &jp.right_col)?;
        }
        for n in &mut needed {
            n.sort_unstable();
        }
        Ok(needed)
    }

    fn classify(&self, q: &Query, e: &Expr) -> Result<Classified, PlanError> {
        // Equality between two columns of two different FROM tables is a join
        // predicate.
        if let Expr::Binary {
            op: BinOp::Eq,
            lhs,
            rhs,
        } = e
        {
            if let (
                Expr::Column {
                    table: t1,
                    name: n1,
                },
                Expr::Column {
                    table: t2,
                    name: n2,
                },
            ) = (lhs.as_ref(), rhs.as_ref())
            {
                let (tbl1, _) = self
                    .cat
                    .resolve_column(t1.as_deref(), n1)
                    .ok_or_else(|| PlanError::new(format!("unknown column {n1}")))?;
                let (tbl2, _) = self
                    .cat
                    .resolve_column(t2.as_deref(), n2)
                    .ok_or_else(|| PlanError::new(format!("unknown column {n2}")))?;
                if tbl1 != tbl2 {
                    let ti1 = q.from.iter().position(|f| f == tbl1);
                    let ti2 = q.from.iter().position(|f| f == tbl2);
                    if let (Some(a), Some(b)) = (ti1, ti2) {
                        return Ok(Classified::Join(JoinPred {
                            left_table: a,
                            left_col: n1.to_owned(),
                            right_table: b,
                            right_col: n2.to_owned(),
                        }));
                    }
                }
            }
        }
        // Otherwise: single-table if all its columns resolve to one table.
        let mut tables: Vec<&str> = Vec::new();
        for (qual, name) in e.columns() {
            let (tbl, _) = self
                .cat
                .resolve_column(qual.as_deref(), name)
                .ok_or_else(|| PlanError::new(format!("unknown column {name}")))?;
            if !tables.contains(&tbl) {
                tables.push(tbl);
            }
        }
        match tables.len() {
            0 | 1 => {
                let ti = tables
                    .first()
                    .and_then(|t| q.from.iter().position(|f| f == t))
                    .unwrap_or(0);
                Ok(Classified::Single(ti))
            }
            _ => Ok(Classified::Residual),
        }
    }

    fn bind_agg(&self, agg: &Expr, scope: &Scope) -> Result<AggSpec, PlanError> {
        match agg {
            Expr::Agg {
                func,
                arg,
                distinct,
            } => Ok(AggSpec {
                func: *func,
                arg: arg
                    .as_ref()
                    .map(|a| bind(a, &|q2, n| resolve(scope, q2, n)))
                    .transpose()?,
                distinct: *distinct,
            }),
            other => Err(PlanError::new(format!(
                "expected aggregate, found {other:?}"
            ))),
        }
    }

    /// Estimated output rows of scanning `table` under `preds`.
    ///
    /// Range conjuncts on the same column are combined into one interval
    /// (so `c >= lo and c < hi` estimates the window, not the product of two
    /// independent half-lines); all other conjuncts multiply independently.
    fn estimate_scan(&self, table: &str, preds: &[&Expr]) -> f64 {
        let meta = self.cat.table(table).expect("validated");
        let def = meta.heap.def();
        let mut est = meta.heap.ntuples() as f64;
        let mut bounded: Vec<&str> = Vec::new();
        for (ci, col) in def.columns.iter().enumerate() {
            if let Some(sel) = self.bounds_selectivity(table, ci, preds) {
                est *= sel;
                bounded.push(col.name);
            }
        }
        for p in preds {
            if !Self::is_bound_conjunct(p, &bounded) {
                est *= self.selectivity(table, p);
            }
        }
        est
    }

    /// Whether `e` is a simple literal bound on one of the columns already
    /// accounted for by interval estimation.
    fn is_bound_conjunct(e: &Expr, bounded: &[&str]) -> bool {
        match e {
            Expr::Binary { op, lhs, rhs } if op.is_comparison() && *op != BinOp::Ne => {
                match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::Column { name, .. }, k) | (k, Expr::Column { name, .. }) => {
                        literal_datum(k).is_some() && bounded.contains(&name.as_str())
                    }
                    _ => false,
                }
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated: false,
            } => match expr.as_ref() {
                Expr::Column { name, .. } => {
                    literal_datum(lo).is_some()
                        && literal_datum(hi).is_some()
                        && bounded.contains(&name.as_str())
                }
                _ => false,
            },
            _ => false,
        }
    }

    /// Heuristic selectivity of one conjunct.
    fn selectivity(&self, table: &str, e: &Expr) -> f64 {
        let meta = self.cat.table(table).expect("validated");
        let def = meta.heap.def();
        match e {
            Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
                let (col, konst) = match (lhs.as_ref(), rhs.as_ref()) {
                    (Expr::Column { name, .. }, k) if literal_datum(k).is_some() => (Some(name), k),
                    (k, Expr::Column { name, .. }) if literal_datum(k).is_some() => (Some(name), k),
                    _ => (None, e),
                };
                match col.and_then(|c| def.column_index(c)) {
                    Some(ci) => match op {
                        BinOp::Eq => 1.0 / meta.stats[ci].ndistinct.max(1) as f64,
                        BinOp::Ne => 1.0 - 1.0 / meta.stats[ci].ndistinct.max(1) as f64,
                        _ => self
                            .range_fraction(table, ci, *op, literal_datum(konst))
                            .unwrap_or(0.33),
                    },
                    // Column-to-column comparisons (commitdate < receiptdate).
                    None => 0.33,
                }
            }
            Expr::Between {
                expr,
                lo,
                hi,
                negated,
            } => {
                let inside = match expr.as_ref() {
                    Expr::Column { name, .. } => def
                        .column_index(name)
                        .and_then(|ci| {
                            let lo = literal_datum(lo)?;
                            let hi = literal_datum(hi)?;
                            let below = self.fraction_below(table, ci, &hi)?;
                            let above = self.fraction_below(table, ci, &lo)?;
                            Some((below - above).clamp(0.001, 1.0))
                        })
                        .unwrap_or(0.25),
                    _ => 0.25,
                };
                if *negated {
                    1.0 - inside
                } else {
                    inside
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let base = match expr.as_ref() {
                    Expr::Column { name, .. } => def
                        .column_index(name)
                        .map(|ci| list.len() as f64 / meta.stats[ci].ndistinct.max(1) as f64)
                        .unwrap_or(0.25),
                    _ => 0.25,
                };
                if *negated {
                    1.0 - base
                } else {
                    base
                }
            }
            Expr::Like { negated, .. } => {
                if *negated {
                    0.8
                } else {
                    0.2
                }
            }
            Expr::Not(inner) => 1.0 - self.selectivity(table, inner),
            Expr::Binary {
                op: BinOp::And,
                lhs,
                rhs,
            } => self.selectivity(table, lhs) * self.selectivity(table, rhs),
            Expr::Binary {
                op: BinOp::Or,
                lhs,
                rhs,
            } => {
                let a = self.selectivity(table, lhs);
                let b = self.selectivity(table, rhs);
                (a + b - a * b).min(1.0)
            }
            _ => 0.33,
        }
    }

    fn range_fraction(&self, table: &str, ci: usize, op: BinOp, k: Option<Datum>) -> Option<f64> {
        let k = k?;
        let below = self.fraction_below(table, ci, &k)?;
        Some(match op {
            BinOp::Lt | BinOp::Le => below.clamp(0.001, 1.0),
            BinOp::Gt | BinOp::Ge => (1.0 - below).clamp(0.001, 1.0),
            _ => return None,
        })
    }

    /// Fraction of the column's [min, max] range lying below `k`.
    fn fraction_below(&self, table: &str, ci: usize, k: &Datum) -> Option<f64> {
        let meta = self.cat.table(table).expect("validated");
        let stats = &meta.stats[ci];
        let (min, max) = (stats.min.as_ref()?, stats.max.as_ref()?);
        let to_f = |d: &Datum| -> Option<f64> {
            Some(match d {
                Datum::Int(v) | Datum::Dec(v) => *v as f64,
                Datum::Date(d) => d.day_number() as f64,
                Datum::Str(_) => return None,
            })
        };
        let (lo, hi, x) = (to_f(min)?, to_f(max)?, to_f(k)?);
        if hi <= lo {
            return Some(0.5);
        }
        Some(((x - lo) / (hi - lo)).clamp(0.0, 1.0))
    }

    /// The most selective bounds preds place on `column`, if any.
    fn bounds_selectivity(&self, table: &str, column: usize, preds: &[&Expr]) -> Option<f64> {
        let (lo, hi) = self.extract_bounds(table, column, preds);
        if lo.is_none() && hi.is_none() {
            return None;
        }
        let meta = self.cat.table(table).expect("validated");
        if let (Some(l), Some(h)) = (&lo, &hi) {
            if l.compare(h).is_eq() {
                return Some(1.0 / meta.stats[column].ndistinct.max(1) as f64);
            }
        }
        let below_hi = match &hi {
            Some(h) => self.fraction_below(table, column, h).unwrap_or(1.0),
            None => 1.0,
        };
        let below_lo = match &lo {
            Some(l) => self.fraction_below(table, column, l).unwrap_or(0.0),
            None => 0.0,
        };
        Some((below_hi - below_lo).clamp(0.001, 1.0))
    }

    /// Extracts constant `[lo, hi]` bounds on `column` from the conjuncts.
    fn extract_bounds(
        &self,
        table: &str,
        column: usize,
        preds: &[&Expr],
    ) -> (Option<Datum>, Option<Datum>) {
        let def = self.cat.table(table).expect("validated").heap.def();
        let col_name = def.columns[column].name;
        let mut lo: Option<Datum> = None;
        let mut hi: Option<Datum> = None;
        let mut tighten_lo = |d: Datum| match &lo {
            Some(cur) if d.compare(cur).is_le() => {}
            _ => lo = Some(d),
        };
        let mut tighten_hi = |d: Datum| match &hi {
            Some(cur) if d.compare(cur).is_ge() => {}
            _ => hi = Some(d),
        };
        for p in preds {
            match p {
                Expr::Binary { op, lhs, rhs } if op.is_comparison() => {
                    let (name, k, flipped) = match (lhs.as_ref(), rhs.as_ref()) {
                        (Expr::Column { name, .. }, k) => (name.as_str(), literal_datum(k), false),
                        (k, Expr::Column { name, .. }) => (name.as_str(), literal_datum(k), true),
                        _ => continue,
                    };
                    if name != col_name {
                        continue;
                    }
                    let Some(k) = k else { continue };
                    let op = if flipped { flip(*op) } else { *op };
                    match op {
                        BinOp::Eq => {
                            tighten_lo(k.clone());
                            tighten_hi(k);
                        }
                        // Open bounds become closed: the heap re-check makes
                        // the boundary tuples harmless.
                        BinOp::Lt | BinOp::Le => tighten_hi(k),
                        BinOp::Gt | BinOp::Ge => tighten_lo(k),
                        _ => {}
                    }
                }
                Expr::Between {
                    expr,
                    lo: l,
                    hi: h,
                    negated: false,
                } => {
                    if let Expr::Column { name, .. } = expr.as_ref() {
                        if name == col_name {
                            if let (Some(l), Some(h)) = (literal_datum(l), literal_datum(h)) {
                                tighten_lo(l);
                                tighten_hi(h);
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        (lo, hi)
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// A literal AST node as a datum.
fn literal_datum(e: &Expr) -> Option<Datum> {
    Some(match e {
        Expr::Int(v) => Datum::Int(*v),
        Expr::Dec(v) => Datum::Dec(*v),
        Expr::Str(s) => Datum::Str(s.clone()),
        Expr::DateLit { year, month, day } => {
            Datum::Date(dss_tpcd::Date::from_ymd(*year, *month, *day))
        }
        _ => return None,
    })
}

enum Classified {
    Single(usize),
    Join(JoinPred),
    Residual,
}

struct JoinPred {
    left_table: usize,
    left_col: String,
    right_table: usize,
    right_col: String,
}

/// All aggregate sub-expressions of the select items, in item order.
fn collect_aggs(q: &Query) -> Vec<Expr> {
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Agg { .. } => out.push(e.clone()),
            Expr::Binary { lhs, rhs, .. } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            Expr::Not(inner) => walk(inner, out),
            _ => {}
        }
    }
    let mut out = Vec::new();
    for item in &q.items {
        walk(&item.expr, &mut out);
    }
    out
}

/// Rewrites a select item over the Group/Aggregate output: group-by columns
/// become key slots, aggregate calls become agg slots.
fn rewrite_post_agg(
    e: &Expr,
    group_by: &[Expr],
    key_slots: &[usize],
    aggs: &[Expr],
) -> Result<Scalar, PlanError> {
    // The Group node outputs keys (in group-by order) then aggs.
    if let Some(pos) = group_by.iter().position(|g| g == e) {
        let _ = key_slots;
        return Ok(Scalar::Slot(pos));
    }
    if let Some(pos) = aggs.iter().position(|a| a == e) {
        return Ok(Scalar::Slot(group_by.len() + pos));
    }
    match e {
        Expr::Binary { op, lhs, rhs } => Ok(Scalar::Binary {
            op: *op,
            lhs: Box::new(rewrite_post_agg(lhs, group_by, key_slots, aggs)?),
            rhs: Box::new(rewrite_post_agg(rhs, group_by, key_slots, aggs)?),
        }),
        Expr::Int(v) => Ok(Scalar::Const(Datum::Int(*v))),
        Expr::Dec(v) => Ok(Scalar::Const(Datum::Dec(*v))),
        Expr::Str(s) => Ok(Scalar::Const(Datum::Str(s.clone()))),
        Expr::Column { name, .. } => Err(PlanError::new(format!(
            "column {name} must appear in group by"
        ))),
        other => Err(PlanError::new(format!(
            "unsupported post-aggregate expression {other:?}"
        ))),
    }
}

/// Resolves an order-by expression to an output item index (alias, identical
/// expression, or bare column matching an item).
fn find_order_target(q: &Query, e: &Expr) -> Result<usize, PlanError> {
    if let Expr::Column { table: None, name } = e {
        if let Some(i) = q
            .items
            .iter()
            .position(|it| it.alias.as_deref() == Some(name.as_str()))
        {
            return Ok(i);
        }
    }
    if let Some(i) = q.items.iter().position(|it| &it.expr == e) {
        return Ok(i);
    }
    // A bare column that appears inside exactly one item.
    if let Expr::Column { name, .. } = e {
        if let Some(i) = q
            .items
            .iter()
            .position(|it| matches!(&it.expr, Expr::Column { name: n, .. } if n == name))
        {
            return Ok(i);
        }
    }
    Err(PlanError::new(format!(
        "order by target {e:?} is not in the select list"
    )))
}
