//! Sequential and index scan selects.

use dss_btree::{BTree, Cursor};
use dss_bufcache::BufId;
use dss_lockmgr::{LockMode, LockResult};
use dss_trace::{DataClass, Tracer};

use crate::catalog::{index_key, Catalog};
use crate::expr::{Scalar, SlotSource};
use crate::heap::Heap;
use crate::row::{Row, RowShape};
use crate::Datum;

use super::{Arena, ExecCtx, ExecNode, ARENA_SIZE};

/// A [`SlotSource`] over a heap tuple: loads emit `Data` reads with
/// Postgres-style tuple deforming (see [`Heap::read_attr_walking`]). One
/// `HeapSrc` is created per tuple, so the deforming state resets per tuple.
struct HeapSrc<'a> {
    heap: &'a Heap,
    pool: &'a dss_bufcache::BufferPool,
    buf: BufId,
    slot: u32,
    deformed_to: usize,
}

impl<'a> HeapSrc<'a> {
    fn new(heap: &'a Heap, pool: &'a dss_bufcache::BufferPool, buf: BufId, slot: u32) -> Self {
        HeapSrc {
            heap,
            pool,
            buf,
            slot,
            deformed_to: 0,
        }
    }
}

impl SlotSource for HeapSrc<'_> {
    fn load(&mut self, i: usize, t: &Tracer) -> Datum {
        self.heap
            .read_attr_walking(self.pool, self.buf, self.slot, i, &mut self.deformed_to, t)
    }
}

/// Projects the given attributes of a heap tuple into a private output slot,
/// emitting the shared-to-private word copies (the paper: a selected tuple's
/// attributes are "read again and copied to private storage").
// The per-tuple path threads its context as scalars; bundling them into a
// struct would add a construction per tuple on the hot path.
#[allow(clippy::too_many_arguments)]
fn project_tuple(
    heap: &Heap,
    pool: &dss_bufcache::BufferPool,
    buf: BufId,
    slot: u32,
    project: &[usize],
    shape: &RowShape,
    slot_addr: u64,
    t: &Tracer,
) -> Row {
    let mut vals = Vec::with_capacity(project.len());
    for (k, &attr) in project.iter().enumerate() {
        let src = heap.attr_addr(pool, buf, slot, attr);
        let width = heap.attr_width(attr);
        t.copy(
            src,
            DataClass::Data,
            slot_addr + shape.offsets[k],
            DataClass::PrivHeap,
            width,
        );
        vals.push(heap.attr_value(pool, buf, slot, attr));
    }
    Row::new(slot_addr, vals)
}

/// Sequential scan select: visits every tuple of the table in heap order.
pub struct SeqScanExec {
    heap: Heap,
    preds: Vec<Scalar>,
    project: Vec<usize>,
    shape: RowShape,
    arena: Option<Arena>,
    slot_addr: u64,
    /// Scanned block range `[lo, hi)` (the whole heap unless partitioned).
    range: (u32, u32),
    block: u32,
    slot: u32,
    page_tuples: u32,
    buf: Option<BufId>,
}

impl SeqScanExec {
    pub(crate) fn new(
        cat: &Catalog,
        table: &str,
        preds: Vec<Scalar>,
        project: Vec<usize>,
        block_range: Option<(u32, u32)>,
    ) -> Self {
        let heap = cat.table(table).expect("planned table").heap.clone();
        let def = heap.def();
        let shape = RowShape::new(project.iter().map(|&a| def.columns[a].ty).collect());
        let range = match block_range {
            Some((lo, hi)) => (lo.min(heap.npages()), hi.min(heap.npages())),
            None => (0, heap.npages()),
        };
        SeqScanExec {
            heap,
            preds,
            project,
            shape,
            arena: None,
            slot_addr: 0,
            range,
            block: range.0,
            slot: 0,
            page_tuples: 0,
            buf: None,
        }
    }
}

impl ExecNode for SeqScanExec {
    fn open(&mut self, ctx: &mut ExecCtx<'_>) {
        let granted = ctx
            .lockmgr
            .acquire(ctx.xid, self.heap.rel(), LockMode::Read, &ctx.t);
        assert_eq!(
            granted,
            LockResult::Granted,
            "read locks never conflict here"
        );
        ctx.t.busy(ctx.cost.scan_start);
        self.arena = Some(Arena::new(ctx.mem, ARENA_SIZE));
        self.slot_addr = ctx.mem.alloc(self.shape.width.max(8));
        self.block = self.range.0;
        self.slot = 0;
        self.buf = None;
    }

    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row> {
        let arena = self.arena.as_mut().expect("opened");
        loop {
            let buf = match self.buf {
                Some(b) => b,
                None => {
                    if self.block >= self.range.1 {
                        return None;
                    }
                    ctx.t.busy(ctx.cost.page_advance);
                    let b = ctx.pool.pin(self.heap.page(self.block), &ctx.t);
                    self.page_tuples = self.heap.tuples_on_page(ctx.pool, b, &ctx.t);
                    self.slot = 0;
                    self.buf = Some(b);
                    b
                }
            };
            if self.slot >= self.page_tuples {
                ctx.pool.unpin(buf, &ctx.t);
                self.buf = None;
                self.block += 1;
                continue;
            }
            let slot = self.slot;
            self.slot += 1;
            ctx.t.busy(ctx.cost.tuple_overhead);
            if !self.heap.visible(ctx.pool, buf, slot, &ctx.t) {
                continue;
            }
            arena.touch(&ctx.t, 12);
            let mut src = HeapSrc::new(&self.heap, ctx.pool, buf, slot);
            let mut pass = true;
            for p in &self.preds {
                arena.touch(&ctx.t, 6);
                if !p.eval_bool(&mut src, &ctx.t, &ctx.cost) {
                    pass = false;
                    break;
                }
            }
            if !pass {
                continue;
            }
            arena.touch(&ctx.t, 3 * self.project.len() as u32);
            return Some(project_tuple(
                &self.heap,
                ctx.pool,
                buf,
                slot,
                &self.project,
                &self.shape,
                self.slot_addr,
                &ctx.t,
            ));
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_>) {
        if let Some(buf) = self.buf.take() {
            ctx.pool.unpin(buf, &ctx.t);
        }
        if let Some(arena) = self.arena.take() {
            arena.free(ctx.mem);
            ctx.mem.free(self.slot_addr, self.shape.width.max(8));
        }
    }

    fn shape(&self) -> &RowShape {
        &self.shape
    }
}

/// Index scan select: walks a key range of a b-tree and fetches the matching
/// heap tuples. When `parameterized`, the range is an equality on the key
/// delivered by [`ExecNode::rescan`] from a nested-loop join.
pub struct IndexScanExec {
    heap: Heap,
    tree: BTree,
    index_column: usize,
    lo: Option<Datum>,
    hi: Option<Datum>,
    parameterized: bool,
    param: Option<Datum>,
    preds: Vec<Scalar>,
    project: Vec<usize>,
    shape: RowShape,
    arena: Option<Arena>,
    slot_addr: u64,
    cursor: Option<Cursor>,
    /// Cached heap pin: Postgres95's scan-level buffer reuse
    /// (`ReleaseAndReadBuffer` plus private reference counts) skips the
    /// buffer manager when consecutive fetches hit the same heap page.
    heap_pin: Option<(u32, BufId)>,
}

impl IndexScanExec {
    // The planner hands every scan parameter individually; a builder for the
    // one caller would be churn without clarity.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cat: &Catalog,
        table: &str,
        index_column: usize,
        lo: Option<Datum>,
        hi: Option<Datum>,
        parameterized: bool,
        preds: Vec<Scalar>,
        project: Vec<usize>,
    ) -> Self {
        let meta = cat.table(table).expect("planned table");
        let heap = meta.heap.clone();
        let tree = meta
            .index_on(index_column)
            .expect("planned index")
            .tree
            .clone();
        let def = heap.def();
        let shape = RowShape::new(project.iter().map(|&a| def.columns[a].ty).collect());
        IndexScanExec {
            heap,
            tree,
            index_column,
            lo,
            hi,
            parameterized,
            param: None,
            preds,
            project,
            shape,
            arena: None,
            slot_addr: 0,
            cursor: None,
            heap_pin: None,
        }
    }

    /// Pins the heap page holding `block`, reusing the cached pin when the
    /// page is unchanged.
    fn heap_buf(&mut self, ctx: &mut ExecCtx<'_>, block: u32) -> BufId {
        match self.heap_pin {
            Some((b, buf)) if b == block => buf,
            _ => {
                if let Some((_, old)) = self.heap_pin.take() {
                    ctx.pool.unpin(old, &ctx.t);
                }
                let buf = ctx.pool.pin(self.heap.page(block), &ctx.t);
                self.heap_pin = Some((block, buf));
                buf
            }
        }
    }

    fn drop_heap_pin(&mut self, ctx: &mut ExecCtx<'_>) {
        if let Some((_, buf)) = self.heap_pin.take() {
            ctx.pool.unpin(buf, &ctx.t);
        }
    }

    /// Opens the b-tree cursor for the current bounds. Models Postgres95's
    /// scan start: lock-manager interactions for both the heap and the index
    /// relation (the paper's continuously accessed `LockMgrLock`) followed by
    /// the index descent.
    fn start_scan(&mut self, ctx: &mut ExecCtx<'_>) {
        let granted = ctx
            .lockmgr
            .acquire(ctx.xid, self.heap.rel(), LockMode::Read, &ctx.t);
        assert_eq!(
            granted,
            LockResult::Granted,
            "read locks never conflict here"
        );
        let granted = ctx
            .lockmgr
            .acquire(ctx.xid, self.tree.rel(), LockMode::Read, &ctx.t);
        assert_eq!(
            granted,
            LockResult::Granted,
            "index read locks never conflict"
        );
        ctx.t.busy(ctx.cost.scan_start);
        let (lo_key, hi_key) = match (&self.param, &self.lo, &self.hi) {
            (Some(p), _, _) => {
                let k = index_key(p);
                (k.min_in_group(), k.max_in_group())
            }
            (None, lo, hi) => {
                let lo_key = match lo {
                    Some(d) => index_key(d).min_in_group(),
                    None => dss_btree::Key::MIN,
                };
                let hi_key = match hi {
                    Some(d) => index_key(d).max_in_group(),
                    None => dss_btree::Key::MAX,
                };
                (lo_key, hi_key)
            }
        };
        if let Some(mut old) = self.cursor.take() {
            old.close(ctx.pool, &ctx.t);
        }
        self.cursor = Some(self.tree.scan_range(ctx.pool, &ctx.t, lo_key, hi_key));
    }
}

impl ExecNode for IndexScanExec {
    fn open(&mut self, ctx: &mut ExecCtx<'_>) {
        self.arena = Some(Arena::new(ctx.mem, ARENA_SIZE));
        self.slot_addr = ctx.mem.alloc(self.shape.width.max(8));
        if !self.parameterized {
            self.start_scan(ctx);
        }
    }

    fn rescan(&mut self, ctx: &mut ExecCtx<'_>, key: &Datum) {
        assert!(self.parameterized, "rescan of a static index scan");
        self.param = Some(key.clone());
        self.start_scan(ctx);
    }

    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row> {
        loop {
            let cursor = self.cursor.as_mut()?;
            let Some((_key, tid)) = cursor.next(ctx.pool, &ctx.t) else {
                self.drop_heap_pin(ctx);
                return None;
            };
            ctx.t.busy(ctx.cost.tuple_overhead);
            let buf = self.heap_buf(ctx, tid.block);
            if !self.heap.visible(ctx.pool, buf, tid.slot, &ctx.t) {
                // A dangling index entry to a deleted tuple.
                continue;
            }
            let arena = self.arena.as_mut().expect("opened");
            arena.touch(&ctx.t, 16);
            // Re-check the key attribute: string index keys are 8-byte
            // prefixes, and parameterized scans verify the join equality.
            let mut src = HeapSrc::new(&self.heap, ctx.pool, buf, tid.slot);
            let mut pass = true;
            if let Some(p) = &self.param {
                let v = src.load(self.index_column, &ctx.t);
                pass = v.compare(p).is_eq();
            }
            if pass {
                for p in &self.preds {
                    arena.touch(&ctx.t, 6);
                    if !p.eval_bool(&mut src, &ctx.t, &ctx.cost) {
                        pass = false;
                        break;
                    }
                }
            }
            if !pass {
                continue;
            }
            arena.touch(&ctx.t, 3 * self.project.len() as u32);
            let row = project_tuple(
                &self.heap,
                ctx.pool,
                buf,
                tid.slot,
                &self.project,
                &self.shape,
                self.slot_addr,
                &ctx.t,
            );
            return Some(row);
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_>) {
        self.drop_heap_pin(ctx);
        if let Some(mut cursor) = self.cursor.take() {
            cursor.close(ctx.pool, &ctx.t);
        }
        if let Some(arena) = self.arena.take() {
            arena.free(ctx.mem);
            ctx.mem.free(self.slot_addr, self.shape.width.max(8));
        }
    }

    fn shape(&self) -> &RowShape {
        &self.shape
    }
}
