//! The sort operator.

use crate::row::{Row, RowShape};

use super::{copy_row_to, Arena, ExecCtx, ExecNode, ARENA_SIZE};

/// Sorts its input by materializing every row into a private workspace — the
/// paper's "temporary tables … to store the whole input data" — then
/// emitting rows in key order. Comparator key reads and the workspace copies
/// are the main source of private-data traffic in sorting queries.
pub struct SortExec {
    input: Box<dyn ExecNode>,
    keys: Vec<(usize, bool)>,
    shape: RowShape,
    arena: Option<Arena>,
    slot_addr: u64,
    stored: Vec<(u64, Row)>,
    emit_order: Vec<usize>,
    emit_pos: usize,
    loaded: bool,
}

impl SortExec {
    pub(crate) fn new(input: Box<dyn ExecNode>, keys: Vec<(usize, bool)>) -> Self {
        let shape = input.shape().clone();
        SortExec {
            input,
            keys,
            shape,
            arena: None,
            slot_addr: 0,
            stored: Vec::new(),
            emit_order: Vec::new(),
            emit_pos: 0,
            loaded: false,
        }
    }

    fn load_and_sort(&mut self, ctx: &mut ExecCtx<'_>) {
        let width = self.shape.width.max(8);
        while let Some(r) = self.input.next(ctx) {
            let addr = ctx.mem.alloc(width);
            let stored = copy_row_to(&ctx.t, &r, &self.shape, addr);
            self.stored.push((addr, stored));
        }
        let mut order: Vec<usize> = (0..self.stored.len()).collect();
        // Stable sort with a tracing comparator: each comparison reads the
        // key fields of both rows from the private workspace.
        let stored = &self.stored;
        let keys = &self.keys;
        let shape = &self.shape;
        let t = ctx.t.clone();
        let cost = ctx.cost;
        order.sort_by(|&a, &b| {
            t.busy(cost.sort_compare);
            let ra = &stored[a].1;
            let rb = &stored[b].1;
            for (k, desc) in keys {
                let w = shape.field_width(*k).clamp(1, 8);
                t.read(
                    ra.addr + shape.offsets[*k],
                    w,
                    dss_trace::DataClass::PrivHeap,
                );
                t.read(
                    rb.addr + shape.offsets[*k],
                    w,
                    dss_trace::DataClass::PrivHeap,
                );
                let ord = ra.vals[*k].compare(&rb.vals[*k]);
                let ord = if *desc { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.emit_order = order;
        self.emit_pos = 0;
        self.loaded = true;
    }
}

impl ExecNode for SortExec {
    fn open(&mut self, ctx: &mut ExecCtx<'_>) {
        self.input.open(ctx);
        self.arena = Some(Arena::new(ctx.mem, ARENA_SIZE));
        self.slot_addr = ctx.mem.alloc(self.shape.width.max(8));
        self.load_and_sort(ctx);
    }

    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row> {
        assert!(self.loaded, "next before open");
        if self.emit_pos >= self.emit_order.len() {
            return None;
        }
        let idx = self.emit_order[self.emit_pos];
        self.emit_pos += 1;
        ctx.t.busy(ctx.cost.tuple_overhead);
        self.arena.as_mut().expect("opened").touch(&ctx.t, 4);
        let row = self.stored[idx].1.clone();
        Some(copy_row_to(&ctx.t, &row, &self.shape, self.slot_addr))
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_>) {
        let width = self.shape.width.max(8);
        for (addr, _) in self.stored.drain(..) {
            ctx.mem.free(addr, width);
        }
        self.input.close(ctx);
        if let Some(arena) = self.arena.take() {
            arena.free(ctx.mem);
            ctx.mem.free(self.slot_addr, width);
        }
    }

    fn shape(&self) -> &RowShape {
        &self.shape
    }
}
