//! Grouping, aggregation, filtering, and projection.

use std::collections::HashSet;

use dss_sql::AggFunc;
use dss_trace::DataClass;

use crate::plan::AggSpec;
use crate::row::{Row, RowShape};
use crate::Datum;

use super::{eval_preds, Arena, ExecCtx, ExecNode, RowSrc, ARENA_SIZE};

/// Running state of one aggregate.
#[derive(Clone, Debug)]
struct AggState {
    count: i64,
    sum: i64,
    sum_is_dec: bool,
    min: Option<Datum>,
    max: Option<Datum>,
    distinct: HashSet<Datum>,
}

impl AggState {
    fn new() -> Self {
        AggState {
            count: 0,
            sum: 0,
            sum_is_dec: false,
            min: None,
            max: None,
            distinct: HashSet::new(),
        }
    }

    fn update(&mut self, spec: &AggSpec, v: Option<Datum>) {
        match (&spec.func, v) {
            (AggFunc::Count, v) => {
                if spec.distinct {
                    if let Some(v) = v {
                        self.distinct.insert(v);
                    }
                } else {
                    self.count += 1;
                }
            }
            (AggFunc::Sum | AggFunc::Avg, Some(v)) => {
                self.count += 1;
                match v {
                    Datum::Int(x) => self.sum += x,
                    Datum::Dec(x) => {
                        self.sum += x;
                        self.sum_is_dec = true;
                    }
                    other => panic!("sum over non-numeric {other:?}"),
                }
            }
            (AggFunc::Min, Some(v)) => match &self.min {
                Some(cur) if v.compare(cur).is_ge() => {}
                _ => self.min = Some(v),
            },
            (AggFunc::Max, Some(v)) => match &self.max {
                Some(cur) if v.compare(cur).is_le() => {}
                _ => self.max = Some(v),
            },
            (f, None) => panic!("aggregate {f:?} without an argument"),
        }
    }

    fn finish(&self, spec: &AggSpec) -> Datum {
        match spec.func {
            AggFunc::Count => {
                if spec.distinct {
                    Datum::Int(self.distinct.len() as i64)
                } else {
                    Datum::Int(self.count)
                }
            }
            AggFunc::Sum => {
                if self.sum_is_dec {
                    Datum::Dec(self.sum)
                } else {
                    Datum::Int(self.sum)
                }
            }
            AggFunc::Avg => {
                let n = self.count.max(1);
                if self.sum_is_dec {
                    Datum::Dec(self.sum / n)
                } else {
                    Datum::Dec(self.sum * 100 / n)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Datum::Int(0)),
            AggFunc::Max => self.max.clone().unwrap_or(Datum::Int(0)),
        }
    }
}

/// Shared core of grouped and scalar aggregation.
struct AggCore {
    specs: Vec<AggSpec>,
    states: Vec<AggState>,
    /// Private block holding the accumulators (8 bytes per aggregate).
    acc_addr: u64,
}

impl AggCore {
    fn new(specs: Vec<AggSpec>, ctx: &mut ExecCtx<'_>) -> Self {
        let n = specs.len().max(1) as u64;
        AggCore {
            states: vec![AggState::new(); specs.len()],
            specs,
            acc_addr: ctx.mem.alloc(n * 8),
        }
    }

    fn reset(&mut self) {
        self.states = vec![AggState::new(); self.specs.len()];
    }

    /// Feeds one input row: evaluates each argument (private reads of the
    /// row's fields) and updates the accumulator (read + write + arithmetic).
    fn update(&mut self, ctx: &mut ExecCtx<'_>, row: &Row, shape: &RowShape) {
        for (i, spec) in self.specs.iter().enumerate() {
            let v = spec.arg.as_ref().map(|a| {
                let mut src = RowSrc::new(row, shape);
                a.eval_value(&mut src, &ctx.t, &ctx.cost)
            });
            let addr = self.acc_addr + i as u64 * 8;
            ctx.t.read(addr, 8, DataClass::PrivHeap);
            ctx.t.busy(ctx.cost.arithmetic);
            ctx.t.write(addr, 8, DataClass::PrivHeap);
            self.states[i].update(spec, v);
        }
    }

    fn finish(&self) -> Vec<Datum> {
        self.specs
            .iter()
            .zip(&self.states)
            .map(|(s, st)| st.finish(s))
            .collect()
    }

    fn free(self, ctx: &mut ExecCtx<'_>) {
        ctx.mem
            .free(self.acc_addr, self.specs.len().max(1) as u64 * 8);
    }
}

/// Grouped aggregation over a sorted input — Postgres95's Group + Aggregate
/// node pair, fused.
pub struct GroupExec {
    input: Box<dyn ExecNode>,
    keys: Vec<usize>,
    specs: Vec<AggSpec>,
    shape: RowShape,
    arena: Option<Arena>,
    slot_addr: u64,
    core: Option<AggCore>,
    cur_keys: Option<Vec<Datum>>,
    lookahead: Option<Row>,
    done: bool,
}

impl GroupExec {
    pub(crate) fn new(
        input: Box<dyn ExecNode>,
        keys: Vec<usize>,
        specs: Vec<AggSpec>,
        shape: RowShape,
    ) -> Self {
        GroupExec {
            input,
            keys,
            specs,
            shape,
            arena: None,
            slot_addr: 0,
            core: None,
            cur_keys: None,
            lookahead: None,
            done: false,
        }
    }

    fn emit(&mut self, ctx: &mut ExecCtx<'_>, keys: Vec<Datum>) -> Row {
        let core = self.core.as_mut().expect("opened");
        let mut vals = keys;
        vals.extend(core.finish());
        core.reset();
        // Write the result row into the output slot.
        for (i, off) in self.shape.offsets.iter().enumerate() {
            let w = self.shape.field_width(i).clamp(1, 8);
            ctx.t.write(self.slot_addr + off, w, DataClass::PrivHeap);
        }
        Row::new(self.slot_addr, vals)
    }
}

impl ExecNode for GroupExec {
    fn open(&mut self, ctx: &mut ExecCtx<'_>) {
        self.input.open(ctx);
        self.arena = Some(Arena::new(ctx.mem, ARENA_SIZE));
        self.slot_addr = ctx.mem.alloc(self.shape.width.max(8));
        self.core = Some(AggCore::new(self.specs.clone(), ctx));
    }

    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row> {
        if self.done {
            return None;
        }
        loop {
            let row = match self.lookahead.take() {
                Some(r) => Some(r),
                None => self.input.next(ctx),
            };
            match row {
                Some(r) => {
                    let input_shape = self.input.shape().clone();
                    // Read this row's group keys (private reads + compares).
                    let row_keys: Vec<Datum> = {
                        use crate::expr::SlotSource;
                        let mut src = RowSrc::new(&r, &input_shape);
                        self.keys
                            .iter()
                            .map(|&k| {
                                ctx.t.busy(ctx.cost.predicate_eval);
                                src.load(k, &ctx.t)
                            })
                            .collect()
                    };
                    self.arena.as_mut().expect("opened").touch(&ctx.t, 4);
                    match &self.cur_keys {
                        Some(cur)
                            if cur.iter().zip(&row_keys).all(|(a, b)| a.compare(b).is_eq()) =>
                        {
                            self.core
                                .as_mut()
                                .expect("opened")
                                .update(ctx, &r, &input_shape);
                        }
                        Some(_) => {
                            // Boundary: emit the finished group, start anew.
                            let finished = self.cur_keys.replace(row_keys).expect("checked");
                            let out = self.emit(ctx, finished);
                            self.core
                                .as_mut()
                                .expect("opened")
                                .update(ctx, &r, &input_shape);
                            self.lookahead = None;
                            let _ = &out;
                            // The consumed row already updated the new group.
                            return Some(out);
                        }
                        None => {
                            self.cur_keys = Some(row_keys);
                            self.core
                                .as_mut()
                                .expect("opened")
                                .update(ctx, &r, &input_shape);
                        }
                    }
                }
                None => {
                    self.done = true;
                    return self.cur_keys.take().map(|keys| self.emit(ctx, keys));
                }
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_>) {
        self.input.close(ctx);
        if let Some(core) = self.core.take() {
            core.free(ctx);
        }
        if let Some(arena) = self.arena.take() {
            arena.free(ctx.mem);
            ctx.mem.free(self.slot_addr, self.shape.width.max(8));
        }
    }

    fn shape(&self) -> &RowShape {
        &self.shape
    }
}

/// Scalar aggregation: one output row over the whole input (even when the
/// input is empty, counts are zero — sums of empty inputs report zero).
pub struct AggregateExec {
    input: Box<dyn ExecNode>,
    specs: Vec<AggSpec>,
    shape: RowShape,
    arena: Option<Arena>,
    slot_addr: u64,
    core: Option<AggCore>,
    done: bool,
}

impl AggregateExec {
    pub(crate) fn new(input: Box<dyn ExecNode>, specs: Vec<AggSpec>, shape: RowShape) -> Self {
        AggregateExec {
            input,
            specs,
            shape,
            arena: None,
            slot_addr: 0,
            core: None,
            done: false,
        }
    }
}

impl ExecNode for AggregateExec {
    fn open(&mut self, ctx: &mut ExecCtx<'_>) {
        self.input.open(ctx);
        self.arena = Some(Arena::new(ctx.mem, ARENA_SIZE));
        self.slot_addr = ctx.mem.alloc(self.shape.width.max(8));
        self.core = Some(AggCore::new(self.specs.clone(), ctx));
    }

    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row> {
        if self.done {
            return None;
        }
        let input_shape = self.input.shape().clone();
        while let Some(r) = self.input.next(ctx) {
            self.arena.as_mut().expect("opened").touch(&ctx.t, 4);
            self.core
                .as_mut()
                .expect("opened")
                .update(ctx, &r, &input_shape);
        }
        self.done = true;
        let vals = self.core.as_ref().expect("opened").finish();
        for (i, off) in self.shape.offsets.iter().enumerate() {
            let w = self.shape.field_width(i).clamp(1, 8);
            ctx.t.write(self.slot_addr + off, w, DataClass::PrivHeap);
        }
        Some(Row::new(self.slot_addr, vals))
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_>) {
        self.input.close(ctx);
        if let Some(core) = self.core.take() {
            core.free(ctx);
        }
        if let Some(arena) = self.arena.take() {
            arena.free(ctx.mem);
            ctx.mem.free(self.slot_addr, self.shape.width.max(8));
        }
    }

    fn shape(&self) -> &RowShape {
        &self.shape
    }
}

/// Residual predicate filter (pass-through rows).
pub struct FilterExec {
    input: Box<dyn ExecNode>,
    preds: Vec<crate::expr::Scalar>,
    shape: RowShape,
    arena: Option<Arena>,
}

impl FilterExec {
    pub(crate) fn new(input: Box<dyn ExecNode>, preds: Vec<crate::expr::Scalar>) -> Self {
        let shape = input.shape().clone();
        FilterExec {
            input,
            preds,
            shape,
            arena: None,
        }
    }
}

impl ExecNode for FilterExec {
    fn open(&mut self, ctx: &mut ExecCtx<'_>) {
        self.input.open(ctx);
        self.arena = Some(Arena::new(ctx.mem, ARENA_SIZE));
    }

    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row> {
        loop {
            let row = self.input.next(ctx)?;
            self.arena.as_mut().expect("opened").touch(&ctx.t, 3);
            if eval_preds(&self.preds, &row, &self.shape, &ctx.t, &ctx.cost) {
                return Some(row);
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_>) {
        self.input.close(ctx);
        if let Some(arena) = self.arena.take() {
            arena.free(ctx.mem);
        }
    }

    fn shape(&self) -> &RowShape {
        &self.shape
    }
}

/// Computes output expressions into a fresh private slot.
pub struct ProjectExec {
    input: Box<dyn ExecNode>,
    exprs: Vec<crate::expr::Scalar>,
    shape: RowShape,
    arena: Option<Arena>,
    slot_addr: u64,
}

impl ProjectExec {
    pub(crate) fn new(
        input: Box<dyn ExecNode>,
        exprs: Vec<crate::expr::Scalar>,
        shape: RowShape,
    ) -> Self {
        ProjectExec {
            input,
            exprs,
            shape,
            arena: None,
            slot_addr: 0,
        }
    }
}

impl ExecNode for ProjectExec {
    fn open(&mut self, ctx: &mut ExecCtx<'_>) {
        self.input.open(ctx);
        self.arena = Some(Arena::new(ctx.mem, ARENA_SIZE));
        self.slot_addr = ctx.mem.alloc(self.shape.width.max(8));
    }

    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row> {
        let row = self.input.next(ctx)?;
        let input_shape = self.input.shape().clone();
        self.arena.as_mut().expect("opened").touch(&ctx.t, 1);
        let mut vals = Vec::with_capacity(self.exprs.len());
        for (i, e) in self.exprs.iter().enumerate() {
            let v = {
                let mut src = RowSrc::new(&row, &input_shape);
                e.eval_value(&mut src, &ctx.t, &ctx.cost)
            };
            let w = self.shape.field_width(i).clamp(1, 8);
            ctx.t.write(
                self.slot_addr + self.shape.offsets[i],
                w,
                DataClass::PrivHeap,
            );
            vals.push(v);
        }
        Some(Row::new(self.slot_addr, vals))
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_>) {
        self.input.close(ctx);
        if let Some(arena) = self.arena.take() {
            arena.free(ctx.mem);
            ctx.mem.free(self.slot_addr, self.shape.width.max(8));
        }
    }

    fn shape(&self) -> &RowShape {
        &self.shape
    }
}

/// Stops after a fixed number of rows.
pub struct LimitExec {
    input: Box<dyn ExecNode>,
    n: u64,
    produced: u64,
    shape: RowShape,
}

impl LimitExec {
    pub(crate) fn new(input: Box<dyn ExecNode>, n: u64) -> Self {
        let shape = input.shape().clone();
        LimitExec {
            input,
            n,
            produced: 0,
            shape,
        }
    }
}

impl ExecNode for LimitExec {
    fn open(&mut self, ctx: &mut ExecCtx<'_>) {
        self.input.open(ctx);
        self.produced = 0;
    }

    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row> {
        if self.produced >= self.n {
            return None;
        }
        let row = self.input.next(ctx)?;
        self.produced += 1;
        Some(row)
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_>) {
        self.input.close(ctx);
    }

    fn shape(&self) -> &RowShape {
        &self.shape
    }
}
