//! Nested-loop, merge, and hash joins.

use dss_trace::DataClass;

use crate::row::{Row, RowShape};
use crate::Datum;

use super::{copy_row_to, Arena, ExecCtx, ExecNode, ARENA_SIZE};

/// Forms the join output row: outer fields then inner fields, copied into the
/// node's private slot (the paper: joins build result tuples in private
/// storage).
fn combine(
    ctx: &mut ExecCtx<'_>,
    slot_addr: u64,
    outer: &Row,
    outer_shape: &RowShape,
    inner: &Row,
    inner_shape: &RowShape,
) -> Row {
    ctx.t.busy(ctx.cost.tuple_overhead);
    if outer_shape.width > 0 {
        ctx.t.copy(
            outer.addr,
            DataClass::PrivHeap,
            slot_addr,
            DataClass::PrivHeap,
            outer_shape.width,
        );
    }
    if inner_shape.width > 0 {
        ctx.t.copy(
            inner.addr,
            DataClass::PrivHeap,
            slot_addr + outer_shape.width,
            DataClass::PrivHeap,
            inner_shape.width,
        );
    }
    let mut vals = outer.vals.clone();
    vals.extend(inner.vals.iter().cloned());
    Row::new(slot_addr, vals)
}

/// Nested-loop join: rescans a parameterized inner index scan once per outer
/// row (the paper's Q3 pattern).
pub struct NestLoopExec {
    outer: Box<dyn ExecNode>,
    inner: Box<dyn ExecNode>,
    outer_key: usize,
    shape: RowShape,
    arena: Option<Arena>,
    slot_addr: u64,
    cur_outer: Option<Row>,
}

impl NestLoopExec {
    pub(crate) fn new(
        outer: Box<dyn ExecNode>,
        inner: Box<dyn ExecNode>,
        outer_key: usize,
    ) -> Self {
        let shape = outer.shape().concat(inner.shape());
        NestLoopExec {
            outer,
            inner,
            outer_key,
            shape,
            arena: None,
            slot_addr: 0,
            cur_outer: None,
        }
    }
}

impl ExecNode for NestLoopExec {
    fn open(&mut self, ctx: &mut ExecCtx<'_>) {
        self.outer.open(ctx);
        self.inner.open(ctx);
        self.arena = Some(Arena::new(ctx.mem, ARENA_SIZE));
        self.slot_addr = ctx.mem.alloc(self.shape.width.max(8));
        self.cur_outer = None;
    }

    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row> {
        loop {
            if self.cur_outer.is_none() {
                let row = self.outer.next(ctx)?;
                let key = row.vals[self.outer_key].clone();
                self.inner.rescan(ctx, &key);
                self.arena.as_mut().expect("opened").touch(&ctx.t, 8);
                self.cur_outer = Some(row);
            }
            match self.inner.next(ctx) {
                Some(inner_row) => {
                    let outer_row = self.cur_outer.as_ref().expect("set above").clone();
                    let (os, is) = (self.outer.shape().clone(), self.inner.shape().clone());
                    return Some(combine(
                        ctx,
                        self.slot_addr,
                        &outer_row,
                        &os,
                        &inner_row,
                        &is,
                    ));
                }
                None => self.cur_outer = None,
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_>) {
        self.outer.close(ctx);
        self.inner.close(ctx);
        if let Some(arena) = self.arena.take() {
            arena.free(ctx.mem);
            ctx.mem.free(self.slot_addr, self.shape.width.max(8));
        }
    }

    fn shape(&self) -> &RowShape {
        &self.shape
    }
}

/// Merge join of two inputs ordered on their join keys; buffers the current
/// inner key group in private memory to handle duplicates on both sides.
pub struct MergeJoinExec {
    outer: Box<dyn ExecNode>,
    outer_key: usize,
    inner: Box<dyn ExecNode>,
    inner_key: usize,
    shape: RowShape,
    arena: Option<Arena>,
    slot_addr: u64,
    cur_outer: Option<Row>,
    group_key: Option<Datum>,
    group: Vec<(u64, Row)>,
    group_idx: usize,
    inner_ahead: Option<Row>,
    inner_done: bool,
}

impl MergeJoinExec {
    pub(crate) fn new(
        outer: Box<dyn ExecNode>,
        outer_key: usize,
        inner: Box<dyn ExecNode>,
        inner_key: usize,
    ) -> Self {
        let shape = outer.shape().concat(inner.shape());
        MergeJoinExec {
            outer,
            outer_key,
            inner,
            inner_key,
            shape,
            arena: None,
            slot_addr: 0,
            cur_outer: None,
            group_key: None,
            group: Vec::new(),
            group_idx: 0,
            inner_ahead: None,
            inner_done: false,
        }
    }

    fn free_group(&mut self, ctx: &mut ExecCtx<'_>) {
        let width = self.inner.shape().width.max(8);
        for (addr, _) in self.group.drain(..) {
            ctx.mem.free(addr, width);
        }
    }
}

impl ExecNode for MergeJoinExec {
    fn open(&mut self, ctx: &mut ExecCtx<'_>) {
        self.outer.open(ctx);
        self.inner.open(ctx);
        self.arena = Some(Arena::new(ctx.mem, ARENA_SIZE));
        self.slot_addr = ctx.mem.alloc(self.shape.width.max(8));
    }

    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row> {
        loop {
            if self.cur_outer.is_none() {
                self.cur_outer = Some(self.outer.next(ctx)?);
                self.group_idx = 0;
            }
            let okey = {
                let row = self.cur_outer.as_ref().expect("set above");
                row.vals[self.outer_key].clone()
            };
            self.arena.as_mut().expect("opened").touch(&ctx.t, 4);
            // Emit from the buffered group when it matches this outer key.
            if self.group_key.as_ref().map(|k| k.compare(&okey).is_eq()) == Some(true) {
                if self.group_idx < self.group.len() {
                    let inner_row = self.group[self.group_idx].1.clone();
                    self.group_idx += 1;
                    let outer_row = self.cur_outer.as_ref().expect("set").clone();
                    let (os, is) = (self.outer.shape().clone(), self.inner.shape().clone());
                    return Some(combine(
                        ctx,
                        self.slot_addr,
                        &outer_row,
                        &os,
                        &inner_row,
                        &is,
                    ));
                }
                self.cur_outer = None;
                continue;
            }
            // The group is behind this outer key: advance the inner side.
            if self.group_key.as_ref().map(|k| k.compare(&okey).is_lt()) != Some(false) {
                // Skip inner rows below the outer key.
                loop {
                    if self.inner_ahead.is_none() && !self.inner_done {
                        self.inner_ahead = self.inner.next(ctx);
                        if self.inner_ahead.is_none() {
                            self.inner_done = true;
                        }
                    }
                    match &self.inner_ahead {
                        Some(r) => {
                            ctx.t.busy(ctx.cost.sort_compare);
                            if r.vals[self.inner_key].compare(&okey).is_lt() {
                                self.inner_ahead = None;
                                continue;
                            }
                            break;
                        }
                        None => break,
                    }
                }
                // Collect the group equal to the outer key.
                self.free_group(ctx);
                self.group_key = Some(okey.clone());
                self.group_idx = 0;
                let inner_width = self.inner.shape().width.max(8);
                loop {
                    if self.inner_ahead.is_none() && !self.inner_done {
                        self.inner_ahead = self.inner.next(ctx);
                        if self.inner_ahead.is_none() {
                            self.inner_done = true;
                        }
                    }
                    match self.inner_ahead.take() {
                        Some(r) => {
                            ctx.t.busy(ctx.cost.sort_compare);
                            if r.vals[self.inner_key].compare(&okey).is_eq() {
                                let addr = ctx.mem.alloc(inner_width);
                                let shape = self.inner.shape().clone();
                                let stored = copy_row_to(&ctx.t, &r, &shape, addr);
                                self.group.push((addr, stored));
                            } else {
                                self.inner_ahead = Some(r);
                                break;
                            }
                        }
                        None => break,
                    }
                }
                if self.group.is_empty() {
                    // No inner match for this outer row.
                    self.cur_outer = None;
                }
                continue;
            }
            // Group key is ahead of the outer key: no match for this outer.
            self.cur_outer = None;
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_>) {
        self.free_group(ctx);
        self.outer.close(ctx);
        self.inner.close(ctx);
        if let Some(arena) = self.arena.take() {
            arena.free(ctx.mem);
            ctx.mem.free(self.slot_addr, self.shape.width.max(8));
        }
    }

    fn shape(&self) -> &RowShape {
        &self.shape
    }
}

/// Hash join: materializes the inner (build) side into a private hash table
/// at open, then probes it once per outer row.
pub struct HashJoinExec {
    outer: Box<dyn ExecNode>,
    outer_key: usize,
    inner: Box<dyn ExecNode>,
    inner_key: usize,
    shape: RowShape,
    arena: Option<Arena>,
    slot_addr: u64,
    buckets_addr: u64,
    nbuckets: u64,
    /// bucket -> entries of (entry address, key, stored row).
    table: Vec<Vec<(u64, Datum, Row)>>,
    cur_outer: Option<Row>,
    chain_idx: usize,
    built: bool,
}

impl HashJoinExec {
    pub(crate) fn new(
        outer: Box<dyn ExecNode>,
        outer_key: usize,
        inner: Box<dyn ExecNode>,
        inner_key: usize,
    ) -> Self {
        let shape = outer.shape().concat(inner.shape());
        HashJoinExec {
            outer,
            outer_key,
            inner,
            inner_key,
            shape,
            arena: None,
            slot_addr: 0,
            buckets_addr: 0,
            nbuckets: 0,
            table: Vec::new(),
            cur_outer: None,
            chain_idx: 0,
            built: false,
        }
    }

    fn build_table(&mut self, ctx: &mut ExecCtx<'_>) {
        let mut rows = Vec::new();
        let inner_shape = self.inner.shape().clone();
        let entry_width = inner_shape.width.max(8) + 16; // header + next pointer
        while let Some(r) = self.inner.next(ctx) {
            ctx.t.busy(ctx.cost.hash_step);
            let addr = ctx.mem.alloc(entry_width);
            let stored = copy_row_to(&ctx.t, &r, &inner_shape, addr + 16);
            let key = r.vals[self.inner_key].clone();
            rows.push((addr, key, stored));
        }
        self.nbuckets = (rows.len() as u64 * 2).next_power_of_two().max(64);
        self.buckets_addr = ctx.mem.alloc(self.nbuckets * 8);
        self.table = vec![Vec::new(); self.nbuckets as usize];
        for (addr, key, row) in rows {
            let b = (key.hash64() % self.nbuckets) as usize;
            // Link into the bucket: write the bucket head and entry header.
            ctx.t
                .write(self.buckets_addr + b as u64 * 8, 8, DataClass::PrivHeap);
            ctx.t.write(addr, 8, DataClass::PrivHeap);
            self.table[b].push((addr, key, row));
        }
        self.built = true;
    }
}

impl ExecNode for HashJoinExec {
    fn open(&mut self, ctx: &mut ExecCtx<'_>) {
        self.outer.open(ctx);
        self.inner.open(ctx);
        self.arena = Some(Arena::new(ctx.mem, ARENA_SIZE));
        self.slot_addr = ctx.mem.alloc(self.shape.width.max(8));
        self.build_table(ctx);
    }

    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row> {
        assert!(self.built, "next before open");
        loop {
            if self.cur_outer.is_none() {
                let row = self.outer.next(ctx)?;
                ctx.t.busy(ctx.cost.hash_step);
                self.arena.as_mut().expect("opened").touch(&ctx.t, 6);
                let b = (row.vals[self.outer_key].hash64() % self.nbuckets) as usize;
                ctx.t
                    .read(self.buckets_addr + b as u64 * 8, 8, DataClass::PrivHeap);
                self.cur_outer = Some(row);
                self.chain_idx = 0;
            }
            let outer_row = self.cur_outer.as_ref().expect("set above").clone();
            let okey = outer_row.vals[self.outer_key].clone();
            let b = (okey.hash64() % self.nbuckets) as usize;
            let chain = &self.table[b];
            let mut matched = None;
            while self.chain_idx < chain.len() {
                let (addr, key, row) = &chain[self.chain_idx];
                self.chain_idx += 1;
                // Read the entry's key field for the comparison.
                ctx.t.read(*addr + 16, 8, DataClass::PrivHeap);
                ctx.t.busy(ctx.cost.predicate_eval);
                if key.compare(&okey).is_eq() {
                    matched = Some(row.clone());
                    break;
                }
            }
            match matched {
                Some(inner_row) => {
                    let (os, is) = (self.outer.shape().clone(), self.inner.shape().clone());
                    return Some(combine(
                        ctx,
                        self.slot_addr,
                        &outer_row,
                        &os,
                        &inner_row,
                        &is,
                    ));
                }
                None => self.cur_outer = None,
            }
        }
    }

    fn close(&mut self, ctx: &mut ExecCtx<'_>) {
        let inner_width = self.inner.shape().width.max(8) + 16;
        for chain in self.table.drain(..) {
            for (addr, _, _) in chain {
                ctx.mem.free(addr, inner_width);
            }
        }
        if self.nbuckets > 0 {
            ctx.mem.free(self.buckets_addr, self.nbuckets * 8);
        }
        self.outer.close(ctx);
        self.inner.close(ctx);
        if let Some(arena) = self.arena.take() {
            arena.free(ctx.mem);
            ctx.mem.free(self.slot_addr, self.shape.width.max(8));
        }
    }

    fn shape(&self) -> &RowShape {
        &self.shape
    }
}
