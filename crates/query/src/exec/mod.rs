//! The Volcano-style executor.
//!
//! Each plan node becomes an [`ExecNode`] pulled tuple-at-a-time, exactly as
//! the paper describes Postgres95's pipelined execution of left-deep trees.
//! All operator state — tuple slots, sort workspaces, hash tables, aggregate
//! accumulators, and the per-node "machinery" (expression nodes, slot
//! descriptors) — lives in the session's private heap, so the executor's
//! private references reproduce the paper's observation of roughly five times
//! more private than shared accesses, with a private working set that
//! overflows a 4 KB L1 but sits comfortably in a 128 KB L2.

mod agg;
mod join;
mod scan;
mod sort;

use dss_bufcache::BufferPool;
use dss_lockmgr::{LockMgr, Xid};
use dss_shmem::PrivateHeap;
use dss_trace::{CostModel, DataClass, Tracer};

use crate::catalog::Catalog;
use crate::expr::{Scalar, SlotSource};
use crate::plan::Plan;
use crate::row::{Row, RowShape};
use crate::Datum;

pub(crate) use agg::{AggregateExec, FilterExec, GroupExec, LimitExec, ProjectExec};
pub(crate) use join::{HashJoinExec, MergeJoinExec, NestLoopExec};
pub(crate) use scan::{IndexScanExec, SeqScanExec};
pub(crate) use sort::SortExec;

/// Everything an operator needs while running: the shared database state,
/// this processor's tracer, private heap, and transaction id.
pub struct ExecCtx<'a> {
    /// The shared buffer pool.
    pub pool: &'a mut BufferPool,
    /// The shared lock manager.
    pub lockmgr: &'a mut LockMgr,
    /// The catalog (read-only during execution).
    pub cat: &'a Catalog,
    /// This processor's private heap.
    pub mem: &'a mut PrivateHeap,
    /// This processor's tracer.
    pub t: Tracer,
    /// Busy-cycle charges.
    pub cost: CostModel,
    /// The executing transaction.
    pub xid: Xid,
}

/// A per-node private arena standing in for the executor machinery Postgres95
/// touches for every tuple: expression trees, slot descriptors, function-call
/// scratch. Touches walk deterministic scattered offsets so the arena behaves
/// like real pointer-linked executor state.
#[derive(Clone, Debug)]
pub struct Arena {
    base: u64,
    size: u64,
    cursor: u64,
}

/// Default arena size per plan node (a few KB of executor state, so a plan
/// tree's combined machinery overflows a 4 KB L1 but fits an L2).
pub const ARENA_SIZE: u64 = 8 * 1024;

/// Span of the frequently revisited part of an arena (slot headers,
/// expression-context fields). Touches stride through it coarsely —
/// executor state is pointer-linked structs, not streams — so private data
/// shows the paper's poor spatial locality in a small L1.
const ARENA_HOT_BYTES: u64 = 6528;

/// Stride between consecutive hot touches (wider than a cache line, so
/// longer lines do not help private data).
const ARENA_HOT_STRIDE: u64 = 136;

impl Arena {
    /// Allocates an arena from the private heap.
    pub fn new(mem: &mut PrivateHeap, size: u64) -> Self {
        Arena {
            base: mem.alloc(size),
            size,
            cursor: 0,
        }
    }

    /// Emits `n` machinery references (mostly reads, some writes). Touches
    /// stride coarsely through the hot region — pointer-linked executor
    /// structs, one field per struct — with an occasional excursion over the
    /// whole arena. The resulting private working set has the paper's poor
    /// spatial locality: wider cache lines do not capture more useful state,
    /// they only shrink the number of lines a small L1 can hold.
    pub fn touch(&mut self, t: &Tracer, n: u32) {
        for _ in 0..n {
            self.cursor += 1;
            let off = if self.cursor.is_multiple_of(16) {
                // Occasional visit to one of the colder structs further out.
                ((self.cursor / 16).wrapping_mul(264) % (self.size - 8)) & !7
            } else {
                // One field of each of 48 hot structs, round robin: the spot
                // set is fixed, one cache line apart or more, so line size
                // buys nothing while cache capacity (in lines) decides.
                ((self.cursor % 48).wrapping_mul(ARENA_HOT_STRIDE)
                    % ARENA_HOT_BYTES.min(self.size - 8))
                    & !7
            };
            if self.cursor % 3 == 2 {
                t.write(self.base + off, 8, DataClass::PrivHeap);
            } else {
                t.read(self.base + off, 8, DataClass::PrivHeap);
            }
        }
    }

    /// Releases the arena back to the heap.
    pub fn free(self, mem: &mut PrivateHeap) {
        mem.free(self.base, self.size);
    }
}

/// A [`SlotSource`] over a materialized row: loads emit `Priv` reads at the
/// row's slot address.
pub struct RowSrc<'a> {
    row: &'a Row,
    shape: &'a RowShape,
}

impl<'a> RowSrc<'a> {
    /// Wraps a row and its layout.
    pub fn new(row: &'a Row, shape: &'a RowShape) -> Self {
        RowSrc { row, shape }
    }
}

impl SlotSource for RowSrc<'_> {
    fn load(&mut self, i: usize, t: &Tracer) -> Datum {
        let width = self.shape.field_width(i).clamp(1, 8);
        t.read(
            self.row.addr + self.shape.offsets[i],
            width,
            DataClass::PrivHeap,
        );
        self.row.vals[i].clone()
    }
}

/// Copies a row into a destination slot, emitting the private-to-private
/// word copies, and returns the new row at the destination.
pub fn copy_row_to(t: &Tracer, row: &Row, shape: &RowShape, dst: u64) -> Row {
    if shape.width > 0 {
        t.copy(
            row.addr,
            DataClass::PrivHeap,
            dst,
            DataClass::PrivHeap,
            shape.width,
        );
    }
    Row::new(dst, row.vals.clone())
}

/// One executable operator.
pub trait ExecNode {
    /// Prepares for execution: acquires locks, allocates private state.
    fn open(&mut self, ctx: &mut ExecCtx<'_>);
    /// Produces the next row, or `None` when exhausted.
    fn next(&mut self, ctx: &mut ExecCtx<'_>) -> Option<Row>;
    /// Repositions a parameterized scan on a new key (nested-loop inners).
    ///
    /// # Panics
    ///
    /// Panics on nodes that are not parameterized index scans.
    fn rescan(&mut self, _ctx: &mut ExecCtx<'_>, _key: &Datum) {
        panic!("rescan on a non-parameterized node");
    }
    /// Releases private state and pins.
    fn close(&mut self, ctx: &mut ExecCtx<'_>);
    /// Output layout.
    fn shape(&self) -> &RowShape;
}

/// Instantiates the executor tree for a plan.
pub fn build(plan: &Plan, cat: &Catalog) -> Box<dyn ExecNode> {
    match plan {
        Plan::SeqScan {
            table,
            preds,
            project,
            block_range,
        } => Box::new(SeqScanExec::new(
            cat,
            table,
            preds.clone(),
            project.clone(),
            *block_range,
        )),
        Plan::IndexScan {
            table,
            index_column,
            lo,
            hi,
            parameterized,
            preds,
            project,
        } => Box::new(IndexScanExec::new(
            cat,
            table,
            *index_column,
            lo.clone(),
            hi.clone(),
            *parameterized,
            preds.clone(),
            project.clone(),
        )),
        Plan::NestLoop {
            outer,
            inner,
            outer_key,
        } => Box::new(NestLoopExec::new(
            build(outer, cat),
            build(inner, cat),
            *outer_key,
        )),
        Plan::MergeJoin {
            outer,
            outer_key,
            inner,
            inner_key,
        } => Box::new(MergeJoinExec::new(
            build(outer, cat),
            *outer_key,
            build(inner, cat),
            *inner_key,
        )),
        Plan::HashJoin {
            outer,
            outer_key,
            inner,
            inner_key,
        } => Box::new(HashJoinExec::new(
            build(outer, cat),
            *outer_key,
            build(inner, cat),
            *inner_key,
        )),
        Plan::Filter { input, preds } => {
            Box::new(FilterExec::new(build(input, cat), preds.clone()))
        }
        Plan::Sort { input, keys } => Box::new(SortExec::new(build(input, cat), keys.clone())),
        Plan::Group { input, keys, aggs } => {
            let shape = plan.shape(cat);
            Box::new(GroupExec::new(
                build(input, cat),
                keys.clone(),
                aggs.clone(),
                shape,
            ))
        }
        Plan::Aggregate { input, aggs } => {
            let shape = plan.shape(cat);
            Box::new(AggregateExec::new(build(input, cat), aggs.clone(), shape))
        }
        Plan::Project { input, exprs } => {
            let shape = plan.shape(cat);
            Box::new(ProjectExec::new(build(input, cat), exprs.clone(), shape))
        }
        Plan::Limit { input, n } => Box::new(LimitExec::new(build(input, cat), *n)),
    }
}

/// Opens `root`, drains every row, closes it, and returns the decoded rows.
pub fn run_to_completion(root: &mut dyn ExecNode, ctx: &mut ExecCtx<'_>) -> Vec<Vec<Datum>> {
    root.open(ctx);
    let mut out = Vec::new();
    while let Some(row) = root.next(ctx) {
        out.push(row.vals);
    }
    root.close(ctx);
    out
}

/// Evaluates a conjunct list against a row, short-circuiting on failure.
pub(crate) fn eval_preds(
    preds: &[Scalar],
    row: &Row,
    shape: &RowShape,
    t: &Tracer,
    cost: &CostModel,
) -> bool {
    let mut src = RowSrc::new(row, shape);
    preds.iter().all(|p| p.eval_bool(&mut src, t, cost))
}
