//! The top-level database engine: build once, run queries per session.

use std::fmt;

use dss_bufcache::BufferPool;
use dss_lockmgr::{LockMgr, LockMode, LockResult, Xid};
use dss_shmem::{AddressSpace, PrivateHeap};
use dss_tpcd::{DbData, Generator};
use dss_trace::{CostModel, Tracer};

use crate::catalog::{index_key, paper_index_set, Catalog};
use crate::exec::{build, run_to_completion, ExecCtx};
use crate::expr::{bind, SlotSource};
use crate::plan::Plan;
use crate::planner::plan_query;
use crate::{Datum, PlanError};

/// Configuration for building a database image.
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// TPC-D scale factor (the paper uses 0.01 — the standard set scaled
    /// down 100×).
    pub scale: f64,
    /// Data generation seed.
    pub seed: u64,
    /// Buffer pool size in 8 KB blocks; must hold the whole database (the
    /// study's database is memory-resident).
    pub nbuffers: u32,
    /// `(table, column)` pairs to index.
    pub indexes: Vec<(&'static str, &'static str)>,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            scale: dss_tpcd::PAPER_SCALE,
            seed: 42,
            nbuffers: 6144, // 48 MB of blocks: the ~20 MB database plus indices
            indexes: paper_index_set(),
        }
    }
}

impl DbConfig {
    /// A small configuration for tests (scale 1/1000).
    pub fn tiny() -> Self {
        DbConfig {
            scale: 0.001,
            seed: 42,
            nbuffers: 1024,
            indexes: paper_index_set(),
        }
    }
}

/// A built, memory-resident TPC-D database: shared address space, buffer
/// pool, lock manager, and catalog.
///
/// # Example
///
/// ```
/// use dss_query::{Database, DbConfig, Session};
///
/// let mut db = Database::build(&DbConfig::tiny());
/// let mut session = Session::new(0);
/// let out = db.run("select count(*) from region", &mut session).unwrap();
/// assert_eq!(out.rows[0][0], dss_query::Datum::Int(5));
/// ```
pub struct Database {
    /// The emulated shared segment's region table.
    pub space: AddressSpace,
    /// The shared buffer pool holding all pages.
    pub pool: BufferPool,
    /// The shared lock manager.
    pub lockmgr: LockMgr,
    /// Tables, indices, statistics.
    pub catalog: Catalog,
}

impl Database {
    /// Generates the TPC-D population and loads it (untraced).
    pub fn build(config: &DbConfig) -> Database {
        let data = Generator::new(config.scale, config.seed).generate();
        Self::build_from(config, &data)
    }

    /// Loads a pre-generated population (untraced).
    pub fn build_from(config: &DbConfig, data: &DbData) -> Database {
        let mut space = AddressSpace::new();
        let mut lockmgr = LockMgr::new(&mut space, 4096);
        let mut pool = BufferPool::new(&mut space, config.nbuffers);
        let catalog = Catalog::load(&mut pool, data, &config.indexes);
        // Pre-size the lock manager's structures (no-op placeholder for
        // symmetric construction order).
        let _ = &mut lockmgr;
        Database {
            space,
            pool,
            lockmgr,
            catalog,
        }
    }

    /// Parses and executes any statement: `select` returns rows, `insert`
    /// and `delete` return the number of affected tuples. Writes take
    /// relation-level write locks — the locking granularity Postgres95
    /// actually implements, which the paper notes "clearly limits the level
    /// of concurrency in write-intensive queries".
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for parse, plan, typing, or lock-conflict
    /// failures.
    ///
    /// # Example
    ///
    /// ```
    /// use dss_query::{Database, DbConfig, Session};
    ///
    /// let mut db = Database::build(&DbConfig::tiny());
    /// let mut session = Session::new(0);
    /// let n = db
    ///     .execute("insert into region values (7, 'MU', 'lost')", &mut session)?
    ///     .affected();
    /// assert_eq!(n, Some(1));
    /// let n = db
    ///     .execute("delete from region where r_regionkey = 7", &mut session)?
    ///     .affected();
    /// assert_eq!(n, Some(1));
    /// assert_eq!(db.vacuum("region").unwrap(), 1);
    /// # Ok::<(), dss_query::EngineError>(())
    /// ```
    pub fn execute(
        &mut self,
        sql: &str,
        session: &mut Session,
    ) -> Result<StatementOutput, EngineError> {
        match dss_sql::parse_statement(sql)? {
            dss_sql::Statement::Select(ast) => {
                let plan = plan_query(&self.catalog, &ast)?;
                Ok(StatementOutput::Rows(self.run_plan(&plan, session)))
            }
            dss_sql::Statement::Insert { table, rows } => self
                .insert_rows(&table, &rows, session)
                .map(StatementOutput::Affected),
            dss_sql::Statement::Delete {
                table,
                where_clause,
            } => self
                .delete_where(&table, where_clause.as_ref(), session)
                .map(StatementOutput::Affected),
        }
    }

    fn insert_rows(
        &mut self,
        table: &str,
        rows: &[Vec<dss_sql::Expr>],
        session: &mut Session,
    ) -> Result<u64, EngineError> {
        let t = session.tracer.clone();
        let cost = session.cost;
        let Database {
            pool,
            lockmgr,
            catalog,
            ..
        } = self;
        let meta = catalog
            .table_mut(table)
            .ok_or_else(|| PlanError::new(format!("unknown table {table}")))?;
        let def = meta.heap.def().clone();
        // Validate every row before taking any lock, so failures leave no
        // state behind.
        let mut typed_rows = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != def.columns.len() {
                return Err(PlanError::new(format!(
                    "insert arity {} does not match {} columns",
                    row.len(),
                    def.columns.len()
                ))
                .into());
            }
            let vals = row
                .iter()
                .zip(&def.columns)
                .map(|(e, c)| literal_value(e, c.ty))
                .collect::<Result<Vec<_>, _>>()?;
            typed_rows.push(vals);
        }
        let xid = session.begin();
        if lockmgr.acquire(xid, meta.heap.rel(), LockMode::Write, &t) != LockResult::Granted {
            return Err(PlanError::new(format!("write lock on {table} unavailable")).into());
        }
        for idx in &meta.indexes {
            if lockmgr.acquire(xid, idx.tree.rel(), LockMode::Write, &t) != LockResult::Granted {
                lockmgr.release_all(xid, &t);
                return Err(PlanError::new("index write lock unavailable".into()).into());
            }
        }
        let width = meta.heap.row_width();
        let scratch = session.mem.alloc(width.max(8));
        let mut affected = 0;
        for vals in typed_rows {
            // Form the tuple in private scratch, then copy it into the page.
            t.busy(cost.tuple_overhead);
            t.write(scratch, width, dss_trace::DataClass::PrivHeap);
            let tid = meta.heap.append_traced(pool, &vals, scratch, &t);
            for idx in &mut meta.indexes {
                t.busy(cost.btree_step);
                let key = index_key(&Datum::from(&vals[idx.column]));
                idx.tree.insert(pool, &t, key, tid);
            }
            affected += 1;
        }
        session.mem.free(scratch, width.max(8));
        lockmgr.release_all(xid, &t);
        Ok(affected)
    }

    fn delete_where(
        &mut self,
        table: &str,
        pred: Option<&dss_sql::Expr>,
        session: &mut Session,
    ) -> Result<u64, EngineError> {
        let t = session.tracer.clone();
        let cost = session.cost;
        let Database {
            pool,
            lockmgr,
            catalog,
            ..
        } = self;
        let meta = catalog
            .table_mut(table)
            .ok_or_else(|| PlanError::new(format!("unknown table {table}")))?;
        let def = meta.heap.def().clone();
        // Bind before locking so failures leave no state behind.
        let bound = pred
            .map(|p| {
                bind(p, &|qual, name| {
                    qual.is_none_or(|q| q == table)
                        .then(|| def.column_index(name))
                        .flatten()
                })
            })
            .transpose()?;
        let xid = session.begin();
        if lockmgr.acquire(xid, meta.heap.rel(), LockMode::Write, &t) != LockResult::Granted {
            return Err(PlanError::new(format!("write lock on {table} unavailable")).into());
        }
        t.busy(cost.scan_start);
        let mut affected = 0;
        // A deleting sequential scan, as UF2 performs (index entries stay;
        // later scans hide the tombstoned tuples via visibility checks).
        for block in 0..meta.heap.npages() {
            t.busy(cost.page_advance);
            let buf = pool.pin(meta.heap.page(block), &t);
            let n = meta.heap.tuples_on_page(pool, buf, &t);
            for slot in 0..n {
                t.busy(cost.tuple_overhead);
                if !meta.heap.visible(pool, buf, slot, &t) {
                    continue;
                }
                let matches = match &bound {
                    Some(p) => {
                        let mut src = DeleteSrc {
                            heap: &meta.heap,
                            pool,
                            buf,
                            slot,
                            deformed: 0,
                        };
                        p.eval_bool(&mut src, &t, &cost)
                    }
                    None => true,
                };
                if matches {
                    meta.heap.tombstone(pool, buf, slot, &t);
                    affected += 1;
                }
            }
            pool.unpin(buf, &t);
        }
        lockmgr.release_all(xid, &t);
        Ok(affected)
    }

    /// Vacuums a table: compacts live tuples to the front of the heap,
    /// rebuilds its indexes, and refreshes the planner statistics. Untraced
    /// maintenance, like the initial load (the paper's database is built
    /// before tracing starts).
    ///
    /// Returns the number of dead tuples removed.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for an unknown table.
    pub fn vacuum(&mut self, table: &str) -> Result<u64, EngineError> {
        let Database { pool, catalog, .. } = self;
        let meta = catalog
            .table_mut(table)
            .ok_or_else(|| PlanError::new(format!("unknown table {table}")))?;
        let dead = meta.heap.ndead();
        if dead == 0 {
            return Ok(0);
        }
        // Collect live rows.
        let ncols = meta.heap.def().columns.len();
        let mut live: Vec<Vec<dss_tpcd::Value>> = Vec::new();
        for block in 0..meta.heap.npages() {
            let buf = pool.lookup(meta.heap.page(block)).expect("resident");
            let count = pool.get_u32(buf, 0);
            let upto = ((meta.heap.ntuples() - block as u64 * meta.heap.tuples_per_page() as u64)
                .min(meta.heap.tuples_per_page() as u64)) as u32;
            let _ = count;
            for slot in 0..upto {
                if meta.heap.is_live(pool, buf, slot) {
                    let row: Vec<dss_tpcd::Value> = (0..ncols)
                        .map(|attr| datum_to_value(&meta.heap.attr_value(pool, buf, slot, attr)))
                        .collect();
                    live.push(row);
                }
            }
        }
        // Rewrite the heap front-to-back over its existing pages.
        meta.heap.truncate();
        let mut tids = Vec::with_capacity(live.len());
        for row in &live {
            tids.push(meta.heap.append(pool, row));
        }
        // Rebuild every index from the compacted heap.
        for idx in &mut meta.indexes {
            let mut entries: Vec<(dss_btree::Key, dss_btree::TupleId)> = live
                .iter()
                .zip(&tids)
                .map(|(row, tid)| (index_key(&Datum::from(&row[idx.column])), *tid))
                .collect();
            entries.sort();
            let index_rel = idx.tree.rel();
            idx.tree = dss_btree::BTree::bulk_build(pool, index_rel, &entries);
        }
        // Refresh statistics.
        meta.stats = crate::catalog::recompute_stats(&live, ncols);
        Ok(dead)
    }

    /// Parses and plans a query without executing it.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for parse or plan failures.
    pub fn plan_sql(&self, sql: &str) -> Result<Plan, EngineError> {
        let ast = dss_sql::parse(sql)?;
        Ok(plan_query(&self.catalog, &ast)?)
    }

    /// Plans and executes `sql` in `session`, returning the result rows and
    /// the plan. All shared and private memory references are recorded by
    /// the session's tracer.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for parse or plan failures.
    pub fn run(&mut self, sql: &str, session: &mut Session) -> Result<QueryOutput, EngineError> {
        let plan = self.plan_sql(sql)?;
        Ok(self.run_plan(&plan, session))
    }

    /// Executes a plan once per session, partitioning every sequential scan
    /// by heap-block range — intra-query parallelism, the paper's closing
    /// future-work item. Partition `i` of `sessions.len()` scans blocks
    /// `[n*i/k, n*(i+1)/k)` of each sequentially scanned table.
    ///
    /// The caller combines the partial results (for distributive aggregates
    /// like the sum/count of Q6, summing the partials is exact; see the
    /// `intra_query_experiment` in `dss-core`).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] for parse or plan failures.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty.
    pub fn run_partitioned(
        &mut self,
        sql: &str,
        sessions: &mut [&mut Session],
    ) -> Result<Vec<QueryOutput>, EngineError> {
        assert!(!sessions.is_empty(), "need at least one session");
        let plan = self.plan_sql(sql)?;
        let k = sessions.len() as u32;
        let mut outputs = Vec::with_capacity(sessions.len());
        for (i, session) in sessions.iter_mut().enumerate() {
            let mut part = plan.clone();
            let catalog = &self.catalog;
            partition_scans(&mut part, i as u32, k, catalog);
            outputs.push(self.run_plan(&part, session));
        }
        Ok(outputs)
    }

    /// Executes an already-built plan in `session`.
    pub fn run_plan(&mut self, plan: &Plan, session: &mut Session) -> QueryOutput {
        let xid = session.begin();
        let mut root = build(plan, &self.catalog);
        let rows = {
            let mut ctx = ExecCtx {
                pool: &mut self.pool,
                lockmgr: &mut self.lockmgr,
                cat: &self.catalog,
                mem: &mut session.mem,
                t: session.tracer.clone(),
                cost: session.cost,
                xid,
            };
            run_to_completion(root.as_mut(), &mut ctx)
        };
        // Transaction end: release every lock (Postgres95's LockReleaseAll).
        self.lockmgr.release_all(xid, &session.tracer);
        QueryOutput {
            rows,
            plan: plan.clone(),
        }
    }
}

/// One simulated processor's execution context: its tracer, private heap,
/// and transaction counter. The paper runs one query stream per processor.
pub struct Session {
    /// The simulated processor id.
    pub proc_id: usize,
    /// The tracer recording this processor's references.
    pub tracer: Tracer,
    /// The processor's private heap.
    pub mem: PrivateHeap,
    /// Busy-cycle charges used by this session's queries.
    pub cost: CostModel,
    next_xid: u32,
}

impl Session {
    /// Creates a session for processor `proc_id` with an enabled tracer.
    pub fn new(proc_id: usize) -> Session {
        Session {
            proc_id,
            tracer: Tracer::new(proc_id),
            mem: PrivateHeap::new(proc_id),
            cost: CostModel::default(),
            next_xid: 1,
        }
    }

    /// Creates a session that records nothing (for result-correctness tests).
    pub fn untraced(proc_id: usize) -> Session {
        let mut s = Session::new(proc_id);
        s.tracer = Tracer::disabled();
        s
    }

    fn begin(&mut self) -> Xid {
        let xid = Xid(self.proc_id as u32 * 100_000 + self.next_xid);
        self.next_xid += 1;
        xid
    }
}

/// The result of executing one statement.
#[derive(Clone, Debug)]
pub enum StatementOutput {
    /// A `select`'s result rows.
    Rows(QueryOutput),
    /// Tuples inserted or deleted.
    Affected(u64),
}

impl StatementOutput {
    /// The affected count, if this was a write.
    pub fn affected(&self) -> Option<u64> {
        match self {
            StatementOutput::Affected(n) => Some(*n),
            StatementOutput::Rows(_) => None,
        }
    }
}

/// Rewrites every sequential scan in `plan` to cover partition `i` of `k`.
fn partition_scans(plan: &mut Plan, i: u32, k: u32, catalog: &Catalog) {
    match plan {
        Plan::SeqScan {
            table, block_range, ..
        } => {
            let npages = catalog.table(table).expect("planned table").heap.npages();
            let lo = npages * i / k;
            let hi = npages * (i + 1) / k;
            *block_range = Some((lo, hi));
        }
        Plan::NestLoop { outer, inner, .. }
        | Plan::MergeJoin { outer, inner, .. }
        | Plan::HashJoin { outer, inner, .. } => {
            partition_scans(outer, i, k, catalog);
            partition_scans(inner, i, k, catalog);
        }
        Plan::Filter { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Group { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Project { input, .. }
        | Plan::Limit { input, .. } => partition_scans(input, i, k, catalog),
        Plan::IndexScan { .. } => {}
    }
}

/// Heap-tuple slot source used by the deleting scan.
struct DeleteSrc<'a> {
    heap: &'a crate::Heap,
    pool: &'a BufferPool,
    buf: dss_bufcache::BufId,
    slot: u32,
    deformed: usize,
}

impl SlotSource for DeleteSrc<'_> {
    fn load(&mut self, i: usize, t: &Tracer) -> Datum {
        self.heap
            .read_attr_walking(self.pool, self.buf, self.slot, i, &mut self.deformed, t)
    }
}

/// Converts a runtime datum back to a storable value (vacuum support).
fn datum_to_value(d: &Datum) -> dss_tpcd::Value {
    match d {
        Datum::Int(v) => dss_tpcd::Value::Int(*v),
        Datum::Dec(v) => dss_tpcd::Value::Dec(*v),
        Datum::Date(dt) => dss_tpcd::Value::Date(*dt),
        Datum::Str(s) => dss_tpcd::Value::Str(s.clone()),
    }
}

/// Converts a literal AST expression to a storable value of column type `ty`
/// (integers widen into decimals; everything else must match exactly).
fn literal_value(e: &dss_sql::Expr, ty: dss_tpcd::ColType) -> Result<dss_tpcd::Value, PlanError> {
    use dss_sql::Expr;
    use dss_tpcd::{ColType, Value};
    Ok(match (e, ty) {
        (Expr::Int(v), ColType::Int) => Value::Int(*v),
        (Expr::Int(v), ColType::Dec) => Value::Dec(v * 100),
        (Expr::Dec(v), ColType::Dec) => Value::Dec(*v),
        (Expr::Str(s), ColType::Str(_)) => Value::Str(s.clone()),
        (Expr::DateLit { year, month, day }, ColType::Date) => {
            Value::Date(dss_tpcd::Date::from_ymd(*year, *month, *day))
        }
        (e, ty) => {
            return Err(PlanError::new(format!(
                "literal {e:?} does not fit column type {ty:?}"
            )))
        }
    })
}

/// The result of one query execution.
#[derive(Clone, Debug)]
pub struct QueryOutput {
    /// Result rows in output order.
    pub rows: Vec<Vec<Datum>>,
    /// The plan that produced them.
    pub plan: Plan,
}

/// Errors surfaced by [`Database::run`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The SQL text failed to parse.
    Parse(dss_sql::ParseError),
    /// The query could not be planned.
    Plan(PlanError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Parse(e) => Some(e),
            EngineError::Plan(e) => Some(e),
        }
    }
}

impl From<dss_sql::ParseError> for EngineError {
    fn from(e: dss_sql::ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<PlanError> for EngineError {
    fn from(e: PlanError) -> Self {
        EngineError::Plan(e)
    }
}
