//! The seventeen read-only TPC-D query templates.
//!
//! The paper codes its queries "in the limited form of SQL supported by the
//! database system … Sometimes, this forced us to make small changes to the
//! code. Consequently, the SQL programs that we use … do not compute exactly
//! what the Transaction Processing Performance Council proposes. Their memory
//! access patterns, however, are those of a system with full SQL
//! implementation." We take the same liberty: nested subqueries are
//! flattened, `case` expressions dropped, and the occasional predicate
//! adjusted so each query's plan exercises the operator mix of the paper's
//! Table 1 — while queries Q3, Q6 and Q12 follow the paper's Figures 1–3
//! exactly.

use dss_tpcd::{ParamSet, Value};

/// Renders the SQL text of read-only query `q` (1–17) with the given
/// substitution parameters.
///
/// # Panics
///
/// Panics if `q` is out of range or a required parameter is missing — use
/// [`dss_tpcd::params`] to generate complete sets.
pub fn sql_for(q: u8, p: &ParamSet) -> String {
    let d = |k: &str| fmt_date(p, k);
    let s = |k: &str| fmt_str(p, k);
    let dec = |k: &str| fmt_dec(p, k);
    let int = |k: &str| fmt_int(p, k);
    match q {
        1 => format!(
            "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, \
                    sum(l_extendedprice) as sum_base_price, \
                    sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
                    avg(l_quantity) as avg_qty, avg(l_discount) as avg_disc, count(*) as count_order \
             from lineitem \
             where l_shipdate <= {} \
             group by l_returnflag, l_linestatus \
             order by l_returnflag, l_linestatus",
            d("date")
        ),
        2 => format!(
            "select s_acctbal, s_name, n_name, p_partkey, p_mfgr \
             from part, partsupp, supplier, nation, region \
             where p_size = {} and p_type like '%{}' \
               and p_partkey = ps_partkey and s_suppkey = ps_suppkey \
               and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
               and r_name = {} \
             order by s_acctbal desc",
            int("size"),
            raw_str(p, "type"),
            s("region")
        ),
        3 => format!(
            "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, \
                    o_orderdate, o_shippriority \
             from customer, orders, lineitem \
             where c_custkey = o_custkey and l_orderkey = o_orderkey \
               and c_mktsegment = {} \
               and o_orderdate < {} and l_shipdate > {} \
             group by l_orderkey, o_orderdate, o_shippriority \
             order by revenue desc, o_orderdate",
            s("segment"),
            d("date"),
            d("date")
        ),
        4 => format!(
            "select o_orderpriority, count(*) as order_count \
             from orders \
             where o_orderdate >= {} and o_orderdate < {} \
             group by o_orderpriority \
             order by o_orderpriority",
            d("date"),
            fmt_date_plus_months(p, "date", 3)
        ),
        5 => format!(
            "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue \
             from region, nation, customer, orders, lineitem, supplier \
             where r_name = {} and n_regionkey = r_regionkey \
               and c_nationkey = n_nationkey and o_custkey = c_custkey \
               and l_orderkey = o_orderkey and s_suppkey = l_suppkey \
               and s_nationkey = c_nationkey \
               and o_orderdate >= {} and o_orderdate < {} \
             group by n_name \
             order by revenue desc",
            s("region"),
            d("date"),
            fmt_date_plus_months(p, "date", 12)
        ),
        6 => format!(
            "select sum(l_extendedprice * l_discount) as revenue \
             from lineitem \
             where l_shipdate >= {} and l_shipdate < {} \
               and l_discount between {} and {} and l_quantity < {}",
            d("date"),
            fmt_date_plus_months(p, "date", 12),
            fmt_dec_offset(p, "discount", -1),
            fmt_dec_offset(p, "discount", 1),
            dec("quantity")
        ),
        7 => format!(
            "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue \
             from nation, supplier, lineitem, customer, orders \
             where n_name = {} and s_nationkey = n_nationkey \
               and l_suppkey = s_suppkey \
               and c_nationkey = n_nationkey and o_orderkey = l_orderkey \
               and c_custkey = o_custkey \
               and l_shipdate >= date '1995-01-01' and l_shipdate <= date '1996-12-31' \
             group by n_name \
             order by n_name",
            s("nation1")
        ),
        8 => format!(
            "select o_orderdate, l_extendedprice, l_discount \
             from region, nation, customer, orders, lineitem, part \
             where r_name = {} and n_regionkey = r_regionkey \
               and c_nationkey = n_nationkey and o_custkey = c_custkey \
               and l_orderkey = o_orderkey and p_partkey = l_partkey \
               and p_type = {} \
               and o_orderdate between date '1995-01-01' and date '1996-12-31'",
            s("region"),
            s("type")
        ),
        9 => format!(
            "select n_name, sum(l_extendedprice * (1 - l_discount)) as profit \
             from part, lineitem, supplier, nation \
             where p_name like '%{}%' and l_partkey = p_partkey \
               and s_suppkey = l_suppkey and n_nationkey = s_nationkey \
             group by n_name \
             order by n_name",
            raw_str(p, "color")
        ),
        10 => format!(
            "select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue, \
                    c_acctbal, n_name \
             from customer, orders, lineitem, nation \
             where c_custkey = o_custkey and l_orderkey = o_orderkey \
               and c_mktsegment = {} \
               and o_orderdate >= {} and o_orderdate < {} \
               and l_returnflag = 'R' and c_nationkey = n_nationkey \
             group by c_custkey, c_name, c_acctbal, n_name \
             order by revenue desc",
            fmt_str_or(p, "segment", "BUILDING"),
            d("date"),
            fmt_date_plus_months(p, "date", 3)
        ),
        11 => format!(
            "select ps_partkey, sum(ps_supplycost * ps_availqty) as value \
             from nation, supplier, partsupp \
             where n_name = {} and s_nationkey = n_nationkey \
               and ps_suppkey = s_suppkey \
             group by ps_partkey \
             order by value desc",
            s("nation")
        ),
        12 => format!(
            "select l_shipmode, count(*) as count_lines \
             from lineitem, orders \
             where o_orderkey = l_orderkey \
               and l_shipmode in ({}, {}) \
               and l_commitdate < l_receiptdate \
               and l_receiptdate >= {} and l_receiptdate < {} \
             group by l_shipmode \
             order by l_shipmode",
            s("shipmode1"),
            s("shipmode2"),
            d("date"),
            fmt_date_plus_months(p, "date", 12)
        ),
        13 => format!(
            "select c_custkey, count(*) as order_count \
             from orders, customer \
             where o_orderdate >= {} and o_orderpriority = {} \
               and c_custkey = o_custkey and c_acctbal >= 0.00 \
             group by c_custkey \
             order by order_count desc",
            d("date"),
            s("priority")
        ),
        14 => format!(
            "select sum(l_extendedprice * (1 - l_discount)) as promo_revenue \
             from lineitem, part \
             where l_partkey = p_partkey and p_retailprice > 0.00 \
               and l_shipdate >= {} and l_shipdate < {}",
            d("date"),
            fmt_date_plus_months(p, "date", 1)
        ),
        15 => format!(
            "select l_suppkey \
             from lineitem \
             where l_shipdate >= {} and l_shipdate < {} \
             group by l_suppkey \
             order by l_suppkey",
            d("date"),
            fmt_date_plus_months(p, "date", 3)
        ),
        16 => format!(
            "select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt \
             from partsupp, part \
             where p_partkey = ps_partkey \
               and p_brand <> {} and p_type not like '{}%' \
               and p_size in (1, 14, 23, 45) \
             group by p_brand, p_type, p_size \
             order by supplier_cnt desc, p_brand, p_type, p_size",
            s("brand"),
            raw_str(p, "type")
        ),
        17 => format!(
            "select sum(l_extendedprice) as total_revenue \
             from part, lineitem \
             where p_partkey = l_partkey \
               and p_brand = {} and p_container = {} \
               and l_quantity < 5.00",
            s("brand"),
            s("container")
        ),
        other => panic!("TPC-D read-only queries are Q1..Q17, got Q{other}"),
    }
}

/// Renders a value as a SQL literal of the dialect.
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Dec(d) => format!("{}.{:02}", d / 100, (d % 100).abs()),
        Value::Date(d) => format!("date '{d}'"),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// Renders an `insert` statement for a batch of `orders` rows (TPC-D's UF1
/// inserts new orders; pair with [`insert_lineitems_sql`]).
pub fn insert_orders_sql(orders: &[dss_tpcd::Order]) -> String {
    insert_sql("orders", orders.iter().map(|o| o.values()))
}

/// Renders an `insert` statement for a batch of `lineitem` rows.
pub fn insert_lineitems_sql(lineitems: &[dss_tpcd::Lineitem]) -> String {
    insert_sql("lineitem", lineitems.iter().map(|l| l.values()))
}

/// Renders the two `delete` statements of TPC-D's UF2 for an orderkey range
/// (UF2 removes old orders and their lineitems).
pub fn uf2_sql(orderkey_lo: i64, orderkey_hi: i64) -> [String; 2] {
    [
        format!(
            "delete from lineitem where l_orderkey >= {orderkey_lo} and l_orderkey <= {orderkey_hi}"
        ),
        format!(
            "delete from orders where o_orderkey >= {orderkey_lo} and o_orderkey <= {orderkey_hi}"
        ),
    ]
}

fn insert_sql(table: &str, rows: impl Iterator<Item = Vec<Value>>) -> String {
    let rendered: Vec<String> = rows
        .map(|row| {
            let vals: Vec<String> = row.iter().map(sql_literal).collect();
            format!("({})", vals.join(", "))
        })
        .collect();
    assert!(!rendered.is_empty(), "insert needs at least one row");
    format!("insert into {table} values {}", rendered.join(", "))
}

fn get<'a>(p: &'a ParamSet, k: &str) -> &'a Value {
    p.get(k)
        .unwrap_or_else(|| panic!("missing query parameter {k}"))
}

fn fmt_date(p: &ParamSet, k: &str) -> String {
    let d = get(p, k).as_date().expect("date parameter");
    format!("date '{d}'")
}

fn fmt_date_plus_months(p: &ParamSet, k: &str, months: i32) -> String {
    let d = get(p, k)
        .as_date()
        .expect("date parameter")
        .add_months(months);
    format!("date '{d}'")
}

fn fmt_str(p: &ParamSet, k: &str) -> String {
    format!("'{}'", raw_str(p, k))
}

fn fmt_str_or(p: &ParamSet, k: &str, default: &str) -> String {
    match p.get(k) {
        Some(v) => format!("'{}'", v.as_str().expect("string parameter")),
        None => format!("'{default}'"),
    }
}

fn raw_str<'a>(p: &'a ParamSet, k: &str) -> &'a str {
    get(p, k).as_str().expect("string parameter")
}

fn fmt_dec(p: &ParamSet, k: &str) -> String {
    let v = get(p, k).as_dec().expect("decimal parameter");
    format!("{}.{:02}", v / 100, (v % 100).abs())
}

fn fmt_dec_offset(p: &ParamSet, k: &str, delta: i64) -> String {
    let v = get(p, k).as_dec().expect("decimal parameter") + delta;
    format!("{}.{:02}", v / 100, (v % 100).abs())
}

fn fmt_int(p: &ParamSet, k: &str) -> String {
    get(p, k).as_int().expect("integer parameter").to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_tpcd::params;

    #[test]
    fn all_seventeen_render_and_parse() {
        for q in 1..=17 {
            let text = sql_for(q, &params(q, 7));
            let parsed = dss_sql::parse(&text);
            assert!(
                parsed.is_ok(),
                "Q{q} failed to parse: {:?}\n{text}",
                parsed.err()
            );
        }
    }

    #[test]
    fn q6_embeds_discount_window() {
        let p = params(6, 0);
        let disc = p["discount"].as_dec().unwrap();
        let text = sql_for(6, &p);
        assert!(text.contains(&format!("between 0.{:02} and 0.{:02}", disc - 1, disc + 1)));
    }

    #[test]
    fn q12_embeds_both_modes() {
        let p = params(12, 3);
        let text = sql_for(12, &p);
        assert!(text.contains(p["shipmode1"].as_str().unwrap()));
        assert!(text.contains(p["shipmode2"].as_str().unwrap()));
    }

    #[test]
    fn different_seeds_give_different_texts() {
        assert_ne!(sql_for(3, &params(3, 0)), sql_for(3, &params(3, 99)));
    }

    #[test]
    #[should_panic(expected = "Q1..Q17")]
    fn q18_rejected() {
        sql_for(18, &ParamSet::new());
    }
}
