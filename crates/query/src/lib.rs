//! The emulated Postgres95 relational engine.
//!
//! This crate is the database half of the HPCA'97 reproduction: a real (if
//! compact) relational engine whose every data-structure access emits a
//! classified memory reference. It computes genuine TPC-D query answers over
//! pages in the shared buffer cache while producing the reference traces the
//! memory-hierarchy simulator consumes.
//!
//! Components:
//!
//! * [`Catalog`] / [`Heap`] — tables as fixed-width tuples in 8 KB buffer
//!   pages, with b-tree indices and per-column statistics.
//! * [`plan_query`] — the left-deep optimizer (scan selection, nested-loop /
//!   merge / hash join choice), reproducing Postgres95's planning behavior.
//! * [`exec`] — the Volcano executor, with private-memory slots, sort
//!   workspaces, hash tables, and per-node machinery arenas.
//! * [`sql_for`] — the seventeen read-only TPC-D query templates.
//! * [`Database`] / [`Session`] — the top-level build-once, run-per-processor
//!   API.
//!
//! See [`Database`] for a complete example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod datum;
mod engine;
pub mod exec;
mod expr;
mod heap;
mod plan;
mod planner;
mod queries;
mod row;

pub use catalog::{index_key, paper_index_set, Catalog, ColumnStats, IndexMeta, TableMeta};
pub use datum::{like_match, Datum};
pub use engine::{Database, DbConfig, EngineError, QueryOutput, Session, StatementOutput};
pub use expr::{bind, Scalar, SlotSource};
pub use heap::{Heap, PAGE_HEADER, TUPLE_HEADER};
pub use plan::{AggSpec, Plan, PlanFeatures};
pub use planner::plan_query;
pub use queries::{insert_lineitems_sql, insert_orders_sql, sql_for, sql_literal, uf2_sql};
pub use row::{Row, RowShape};

/// A planning failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanError {
    message: String,
}

impl PlanError {
    /// Creates a planning error.
    pub fn new(message: String) -> Self {
        PlanError { message }
    }
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan error: {}", self.message)
    }
}

impl std::error::Error for PlanError {}
