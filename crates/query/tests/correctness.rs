//! End-to-end correctness: engine answers equal straight-Rust reference
//! computations over the generated population.

use std::collections::BTreeMap;

use dss_query::{sql_for, Database, Datum, DbConfig, Session};
use dss_tpcd::{params, Date, DbData, Generator};

struct Fixture {
    db: Database,
    data: DbData,
}

fn fixture() -> Fixture {
    let config = DbConfig {
        scale: 0.004,
        seed: 11,
        nbuffers: 2048,
        ..DbConfig::default()
    };
    let data = Generator::new(config.scale, config.seed).generate();
    let db = Database::build_from(&config, &data);
    Fixture { db, data }
}

fn run(db: &mut Database, sql: &str) -> Vec<Vec<Datum>> {
    let mut session = Session::untraced(0);
    db.run(sql, &mut session)
        .unwrap_or_else(|e| panic!("{e}\n{sql}"))
        .rows
}

#[test]
fn counts_match_generator() {
    let Fixture { mut db, data } = fixture();
    let rows = run(&mut db, "select count(*) from lineitem");
    assert_eq!(rows, vec![vec![Datum::Int(data.lineitems.len() as i64)]]);
    let rows = run(&mut db, "select count(*) from orders");
    assert_eq!(rows, vec![vec![Datum::Int(data.orders.len() as i64)]]);
}

#[test]
fn q6_revenue_matches_reference() {
    let Fixture { mut db, data } = fixture();
    for seed in 0..4 {
        let p = params(6, seed);
        let date = p["date"].as_date().unwrap();
        let end = date.add_months(12);
        let disc = p["discount"].as_dec().unwrap();
        let qty = p["quantity"].as_dec().unwrap();
        let expected: i64 = data
            .lineitems
            .iter()
            .filter(|l| {
                l.shipdate >= date
                    && l.shipdate < end
                    && l.discount >= disc - 1
                    && l.discount <= disc + 1
                    && l.quantity < qty
            })
            .map(|l| l.extendedprice * l.discount / 100)
            .sum();
        let rows = run(&mut db, &sql_for(6, &p));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Datum::Dec(expected), "Q6 seed {seed}");
    }
}

#[test]
fn q3_result_matches_reference() {
    let Fixture { mut db, data } = fixture();
    let p = params(3, 5);
    let segment = p["segment"].as_str().unwrap().to_owned();
    let date = p["date"].as_date().unwrap();

    // Reference: group revenue by (orderkey, orderdate, shippriority).
    let mut expected: BTreeMap<i64, (i64, Date, i64)> = BTreeMap::new();
    for o in &data.orders {
        let c = &data.customers[(o.custkey - 1) as usize];
        if c.mktsegment != segment || o.orderdate >= date {
            continue;
        }
        for l in data.lineitems.iter().filter(|l| l.orderkey == o.orderkey) {
            if l.shipdate > date {
                let e = expected
                    .entry(o.orderkey)
                    .or_insert((0, o.orderdate, o.shippriority));
                e.0 += l.extendedprice * (100 - l.discount) / 100;
            }
        }
    }

    let rows = run(&mut db, &sql_for(3, &p));
    assert_eq!(rows.len(), expected.len(), "Q3 group count");
    // Spot-check contents and global ordering (revenue desc, then date asc).
    for row in &rows {
        let orderkey = row[0].clone();
        let revenue = row[1].clone();
        let (exp_rev, exp_date, exp_prio) = expected[&orderkey.int()];
        assert_eq!(revenue, Datum::Dec(exp_rev), "revenue of order {orderkey}");
        assert_eq!(row[2], Datum::Date(exp_date));
        assert_eq!(row[3], Datum::Int(exp_prio));
    }
    for w in rows.windows(2) {
        let (r1, r2) = (w[0][1].dec(), w[1][1].dec());
        assert!(
            r1 > r2 || (r1 == r2 && w[0][2].date() <= w[1][2].date()),
            "order-by violated: {w:?}"
        );
    }
}

#[test]
fn q12_counts_match_reference() {
    let Fixture { mut db, data } = fixture();
    let p = params(12, 9);
    let m1 = p["shipmode1"].as_str().unwrap().to_owned();
    let m2 = p["shipmode2"].as_str().unwrap().to_owned();
    let date = p["date"].as_date().unwrap();
    let end = date.add_months(12);

    let mut expected: BTreeMap<&str, i64> = BTreeMap::new();
    for l in &data.lineitems {
        if (l.shipmode == m1 || l.shipmode == m2)
            && l.commitdate < l.receiptdate
            && l.receiptdate >= date
            && l.receiptdate < end
        {
            // Every lineitem's orderkey exists in orders (FK integrity), so
            // the join keeps all of them.
            *expected.entry(l.shipmode).or_insert(0) += 1;
        }
    }

    let rows = run(&mut db, &sql_for(12, &p));
    let got: BTreeMap<String, i64> = rows
        .iter()
        .map(|r| (r[0].str().to_owned(), r[1].int()))
        .collect();
    assert_eq!(got.len(), expected.len());
    for (mode, count) in expected {
        assert_eq!(got.get(mode), Some(&count), "count for {mode}");
    }
}

#[test]
fn q1_grouped_aggregates_match_reference() {
    let Fixture { mut db, data } = fixture();
    let p = params(1, 2);
    let date = p["date"].as_date().unwrap();

    let mut expected: BTreeMap<(char, char), (i64, i64, i64, i64)> = BTreeMap::new();
    for l in data.lineitems.iter().filter(|l| l.shipdate <= date) {
        let e = expected
            .entry((l.returnflag, l.linestatus))
            .or_insert((0, 0, 0, 0));
        e.0 += l.quantity;
        e.1 += l.extendedprice;
        e.2 += l.extendedprice * (100 - l.discount) / 100;
        e.3 += 1;
    }

    let rows = run(&mut db, &sql_for(1, &p));
    assert_eq!(rows.len(), expected.len());
    for row in &rows {
        let key = (
            row[0].str().chars().next().unwrap(),
            row[1].str().chars().next().unwrap(),
        );
        let (qty, base, disc, n) = expected[&key];
        assert_eq!(row[2], Datum::Dec(qty), "sum_qty for {key:?}");
        assert_eq!(row[3], Datum::Dec(base), "sum_base for {key:?}");
        assert_eq!(row[4], Datum::Dec(disc), "sum_disc for {key:?}");
        assert_eq!(row[7], Datum::Int(n), "count for {key:?}");
        // Averages derive from sum/count.
        assert_eq!(row[5], Datum::Dec(qty / n), "avg_qty for {key:?}");
    }
    // Sorted by the two group keys.
    for w in rows.windows(2) {
        assert!(
            (w[0][0].str(), w[0][1].str()) <= (w[1][0].str(), w[1][1].str()),
            "group ordering"
        );
    }
}

#[test]
fn hash_join_query_matches_reference() {
    // Q16 uses the hash join path: count distinct suppliers per part group.
    let Fixture { mut db, data } = fixture();
    let p = params(16, 3);
    let brand = p["brand"].as_str().unwrap().to_owned();
    let ty = p["type"].as_str().unwrap().to_owned();
    let sizes = [1i64, 14, 23, 45];

    let mut expected: BTreeMap<(String, String, i64), std::collections::BTreeSet<i64>> =
        BTreeMap::new();
    for ps in &data.partsupps {
        let part = &data.parts[(ps.partkey - 1) as usize];
        if part.brand != brand && !part.ty.starts_with(&ty) && sizes.contains(&part.size) {
            expected
                .entry((part.brand.clone(), part.ty.clone(), part.size))
                .or_default()
                .insert(ps.suppkey);
        }
    }

    let rows = run(&mut db, &sql_for(16, &p));
    assert_eq!(rows.len(), expected.len(), "Q16 group count");
    for row in &rows {
        let key = (
            row[0].str().to_owned(),
            row[1].str().to_owned(),
            row[2].int(),
        );
        let suppliers = &expected[&key];
        assert_eq!(
            row[3],
            Datum::Int(suppliers.len() as i64),
            "distinct count for {key:?}"
        );
    }
}

#[test]
fn every_query_executes_without_panicking() {
    let Fixture { mut db, .. } = fixture();
    for q in 1..=17u8 {
        let sql = sql_for(q, &params(q, 1));
        let rows = run(&mut db, &sql);
        // Aggregate-only queries always emit one row; others may be empty at
        // tiny scale, which is fine — this is a smoke test.
        if matches!(q, 1 | 6 | 14 | 17) {
            assert!(!rows.is_empty(), "Q{q} produced no rows");
        }
    }
}

#[test]
fn order_by_desc_is_respected() {
    let Fixture { mut db, .. } = fixture();
    let rows = run(
        &mut db,
        "select s_acctbal, s_name from supplier where s_acctbal > 0.00 order by s_acctbal desc",
    );
    assert!(!rows.is_empty());
    for w in rows.windows(2) {
        assert!(w[0][0].dec() >= w[1][0].dec());
    }
}

#[test]
fn locks_are_released_after_each_query() {
    let Fixture { mut db, .. } = fixture();
    let mut session = Session::untraced(0);
    db.run(&sql_for(3, &params(3, 0)), &mut session).unwrap();
    db.run(&sql_for(6, &params(6, 0)), &mut session).unwrap();
    // All relations unlocked once queries complete.
    for rel in 1..30 {
        assert_eq!(
            db.lockmgr.granted(rel),
            [0, 0],
            "relation {rel} still locked"
        );
    }
}

#[test]
fn all_pins_released_after_each_query() {
    let Fixture { mut db, .. } = fixture();
    let mut session = Session::untraced(0);
    for q in [3u8, 6, 12, 16] {
        db.run(&sql_for(q, &params(q, 0)), &mut session).unwrap();
    }
    for (name, meta) in db.catalog.iter() {
        for block in 0..meta.heap.npages() {
            let buf = db.pool.lookup(meta.heap.page(block)).unwrap();
            assert_eq!(
                db.pool.refcount(buf),
                0,
                "{name} block {block} still pinned"
            );
        }
    }
}

#[test]
fn private_memory_is_reused_across_queries() {
    // The paper: "the same private storage is reused for all the selected
    // tuples" and across queries. After a query completes, its private
    // allocations return to the free lists, so a second identical query must
    // not grow the heap footprint.
    let Fixture { mut db, .. } = fixture();
    let mut session = Session::untraced(0);
    db.run(&sql_for(6, &params(6, 0)), &mut session).unwrap();
    let after_first = session.mem.footprint();
    db.run(&sql_for(6, &params(6, 1)), &mut session).unwrap();
    assert_eq!(
        session.mem.footprint(),
        after_first,
        "private heap grew on re-run"
    );
    assert_eq!(session.mem.live_bytes(), 0, "leaked private allocations");
}

#[test]
fn select_star_expands_all_columns() {
    let Fixture { mut db, data } = fixture();
    let rows = run(&mut db, "select * from region order by r_regionkey");
    assert_eq!(rows.len(), 5);
    assert_eq!(rows[0].len(), 3, "all region columns");
    assert_eq!(rows[0][1], Datum::Str(data.regions[0].name.into()));
}

#[test]
fn having_filters_groups() {
    let Fixture { mut db, data } = fixture();
    let rows = run(
        &mut db,
        "select c_nationkey, count(*) as n from customer \
         group by c_nationkey having count(*) >= 10 order by c_nationkey",
    );
    let mut expected: BTreeMap<i64, i64> = BTreeMap::new();
    for c in &data.customers {
        *expected.entry(c.nationkey).or_insert(0) += 1;
    }
    expected.retain(|_, n| *n >= 10);
    assert_eq!(rows.len(), expected.len());
    for row in &rows {
        assert_eq!(expected.get(&row[0].int()), Some(&row[1].int()));
        assert!(row[1].int() >= 10);
    }
}

#[test]
fn limit_truncates_after_order() {
    let Fixture { mut db, .. } = fixture();
    let all = run(&mut db, "select o_orderkey from orders order by o_orderkey");
    let limited = run(
        &mut db,
        "select o_orderkey from orders order by o_orderkey limit 7",
    );
    assert_eq!(limited.len(), 7);
    assert_eq!(&all[..7], &limited[..]);
    // Limit larger than the result is harmless.
    let generous = run(
        &mut db,
        "select r_regionkey from region order by r_regionkey limit 1000",
    );
    assert_eq!(generous.len(), 5);
    // Limit zero yields nothing.
    assert!(run(&mut db, "select r_regionkey from region limit 0").is_empty());
}

#[test]
fn having_over_scalar_aggregate_is_legal_but_requires_aggregation() {
    let Fixture { mut db, .. } = fixture();
    // HAVING without GROUP BY filters the single aggregate row (legal SQL).
    let rows = run(&mut db, "select count(*) from orders having count(*) > 1");
    assert_eq!(rows.len(), 1);
    let rows = run(&mut db, "select count(*) from orders having count(*) < 0");
    assert!(rows.is_empty());
    // But HAVING on a plain (non-aggregate) query is rejected.
    assert!(db
        .plan_sql("select o_orderkey from orders having o_orderkey > 1")
        .is_err());
}

#[test]
fn run_partitioned_partials_combine_to_the_full_answer() {
    use dss_tpcd::params;
    let Fixture { mut db, .. } = fixture();
    let sql = sql_for(6, &params(6, 1));
    let full = run(&mut db, &sql)[0][0].dec();

    let mut s0 = Session::untraced(0);
    let mut s1 = Session::untraced(1);
    let mut s2 = Session::untraced(2);
    let mut s3 = Session::untraced(3);
    let mut sessions: Vec<&mut Session> = vec![&mut s0, &mut s1, &mut s2, &mut s3];
    let outputs = db
        .run_partitioned(&sql, &mut sessions)
        .expect("partitions run");
    assert_eq!(outputs.len(), 4);
    let partial_sum: i64 = outputs.iter().map(|o| o.rows[0][0].dec()).sum();
    assert_eq!(partial_sum, full, "distributive aggregate combines exactly");
}

#[test]
fn run_partitioned_covers_every_block_exactly_once() {
    let Fixture { mut db, data } = fixture();
    let sql = "select count(*) from lineitem";
    let mut s0 = Session::untraced(0);
    let mut s1 = Session::untraced(1);
    let mut s2 = Session::untraced(2);
    let mut sessions: Vec<&mut Session> = vec![&mut s0, &mut s1, &mut s2];
    let outputs = db
        .run_partitioned(sql, &mut sessions)
        .expect("partitions run");
    let total: i64 = outputs.iter().map(|o| o.rows[0][0].int()).sum();
    assert_eq!(total, data.lineitems.len() as i64);
}

#[test]
fn partition_counts_are_invariant_in_k() {
    // Property: for k = 1..=5 partitions, partial counts always sum to the
    // full table count.
    let Fixture { mut db, data } = fixture();
    let sql = "select count(*) from lineitem";
    for k in 1..=5usize {
        let mut owned: Vec<Session> = (0..k).map(Session::untraced).collect();
        let mut sessions: Vec<&mut Session> = owned.iter_mut().collect();
        let outputs = db
            .run_partitioned(sql, &mut sessions)
            .expect("partitions run");
        let total: i64 = outputs.iter().map(|o| o.rows[0][0].int()).sum();
        assert_eq!(total, data.lineitems.len() as i64, "k={k}");
    }
}

#[test]
fn min_max_aggregates_match_reference() {
    let Fixture { mut db, data } = fixture();
    let rows = run(
        &mut db,
        "select min(o_totalprice), max(o_totalprice), min(o_orderdate), max(o_orderdate) \
         from orders",
    );
    let min_price = data.orders.iter().map(|o| o.totalprice).min().unwrap();
    let max_price = data.orders.iter().map(|o| o.totalprice).max().unwrap();
    let min_date = data.orders.iter().map(|o| o.orderdate).min().unwrap();
    let max_date = data.orders.iter().map(|o| o.orderdate).max().unwrap();
    assert_eq!(rows[0][0], Datum::Dec(min_price));
    assert_eq!(rows[0][1], Datum::Dec(max_price));
    assert_eq!(rows[0][2], Datum::Date(min_date));
    assert_eq!(rows[0][3], Datum::Date(max_date));
}

#[test]
fn multi_key_order_by_with_mixed_directions() {
    let Fixture { mut db, data } = fixture();
    let rows = run(
        &mut db,
        "select c_nationkey, c_acctbal from customer \
         order by c_nationkey asc, c_acctbal desc limit 500",
    );
    // Verify against a reference sort.
    let mut expected: Vec<(i64, i64)> = data
        .customers
        .iter()
        .map(|c| (c.nationkey, c.acctbal))
        .collect();
    expected.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
    expected.truncate(500);
    let got: Vec<(i64, i64)> = rows.iter().map(|r| (r[0].int(), r[1].dec())).collect();
    assert_eq!(got, expected);
}

#[test]
fn not_and_in_predicates_match_reference() {
    let Fixture { mut db, data } = fixture();
    let rows = run(
        &mut db,
        "select count(*) from lineitem \
         where l_shipmode not in ('AIR', 'MAIL') and not l_quantity < 25.00",
    );
    let expected = data
        .lineitems
        .iter()
        .filter(|l| l.shipmode != "AIR" && l.shipmode != "MAIL" && l.quantity >= 2500)
        .count();
    assert_eq!(rows[0][0], Datum::Int(expected as i64));
}
