//! Plan-shape tests: the operator matrix of the paper's Table 1 and the
//! query plan trees of its Figures 1–3.

use dss_query::{sql_for, Database, DbConfig, Plan};
use dss_tpcd::params;

fn paper_db() -> Database {
    Database::build(&DbConfig::default())
}

/// The paper's Table 1, transcribed: columns are
/// `SS IS NL M H Sort Group Aggr`.
///
/// Two documented deltas from the printed table: our Q12 also reports `Aggr`
/// (it computes a count per group), and Q7/Q9 report the sort/group/aggregate
/// operators of the full queries (the printed row legibly marks only the
/// select and join columns).
const EXPECTED: [(u8, &str); 17] = [
    (1, "x . . . . x x x"),
    (2, ". x x . . x . ."),
    (3, ". x x . . x x x"),
    (4, "x . . . . x x x"),
    (5, ". x x . . x x x"),
    (6, "x . . . . . . x"),
    (7, "x x x . x x x x"),
    (8, ". x x . . . . ."),
    (9, "x x x . x x x x"),
    (10, ". x x . . x x x"),
    (11, ". x x . . x x x"),
    (12, "x x . x . x x x"),
    (13, "x x x . . x x x"),
    (14, "x x x . . . . x"),
    (15, "x . . . . x x ."),
    (16, "x . . . x x x x"),
    (17, "x x x . . . . x"),
];

#[test]
fn table1_operator_matrix_matches_paper() {
    let db = paper_db();
    for (q, expected) in EXPECTED {
        let plan = db.plan_sql(&sql_for(q, &params(q, 1))).unwrap_or_else(|e| {
            panic!("Q{q} failed to plan: {e}");
        });
        assert_eq!(plan.features().row(), expected, "Q{q} operator row");
    }
}

#[test]
fn plans_are_stable_across_parameter_seeds() {
    // The paper runs the same query type with different parameters on each
    // processor; the plan shape must not flip between them.
    let db = paper_db();
    for q in [3u8, 6, 12] {
        let baseline = db.plan_sql(&sql_for(q, &params(q, 0))).unwrap().features();
        for seed in 1..8 {
            let f = db
                .plan_sql(&sql_for(q, &params(q, seed)))
                .unwrap()
                .features();
            assert_eq!(f, baseline, "Q{q} plan changed at seed {seed}");
        }
    }
}

/// Figure 1: Q3 is index scans on customer/orders/lineitem combined by two
/// nested-loop joins, then sort, group, aggregate, sort.
#[test]
fn q3_plan_matches_figure_1() {
    let db = paper_db();
    let plan = db.plan_sql(&sql_for(3, &params(3, 1))).unwrap();

    // Top of the tree: the final order-by sort.
    assert!(
        matches!(plan, Plan::Sort { .. }),
        "Q3 root must be the order-by sort"
    );

    let mut index_scans = Vec::new();
    let mut nest_loops = 0;
    let mut seq_scans = 0;
    plan.walk(&mut |node| match node {
        Plan::IndexScan {
            table,
            parameterized,
            ..
        } => index_scans.push((table.clone(), *parameterized)),
        Plan::NestLoop { .. } => nest_loops += 1,
        Plan::SeqScan { .. } => seq_scans += 1,
        _ => {}
    });
    assert_eq!(nest_loops, 2, "two nested-loop joins");
    assert_eq!(seq_scans, 0, "Q3 accesses all data via indices");
    assert_eq!(index_scans.len(), 3);
    // The driving scan on customer is static; orders and lineitem are
    // parameterized inners probed per outer tuple.
    assert_eq!(index_scans[0], ("customer".to_owned(), false));
    assert!(index_scans.contains(&("orders".to_owned(), true)));
    assert!(index_scans.contains(&("lineitem".to_owned(), true)));
}

/// Figure 2: Q6 is a lone sequential scan under an aggregate.
#[test]
fn q6_plan_matches_figure_2() {
    let db = paper_db();
    let plan = db.plan_sql(&sql_for(6, &params(6, 1))).unwrap();
    let mut kinds = Vec::new();
    plan.walk(&mut |node| {
        kinds.push(match node {
            Plan::SeqScan { table, preds, .. } => {
                assert_eq!(table, "lineitem");
                assert_eq!(preds.len(), 4, "two date bounds, between, quantity");
                "seqscan"
            }
            Plan::Aggregate { .. } => "aggregate",
            Plan::Project { .. } => "project",
            other => panic!("unexpected node in Q6 plan: {other:?}"),
        });
    });
    assert!(kinds.contains(&"seqscan"));
    assert!(kinds.contains(&"aggregate"));
}

/// Figure 3: Q12 sequentially scans lineitem, sorts it on the join key, and
/// merge-joins an ordered index scan of orders.
#[test]
fn q12_plan_matches_figure_3() {
    let db = paper_db();
    let plan = db.plan_sql(&sql_for(12, &params(12, 1))).unwrap();
    let mut found_merge = false;
    plan.walk(&mut |node| {
        if let Plan::MergeJoin { outer, inner, .. } = node {
            found_merge = true;
            // Outer: Sort over the filtered sequential scan of lineitem.
            match outer.as_ref() {
                Plan::Sort { input, .. } => match input.as_ref() {
                    Plan::SeqScan { table, preds, .. } => {
                        assert_eq!(table, "lineitem");
                        assert!(!preds.is_empty());
                    }
                    other => panic!("merge outer must sort a seq scan, got {other:?}"),
                },
                other => panic!("merge outer must be a sort, got {other:?}"),
            }
            // Inner: full-range (unparameterized) ordered index scan of orders.
            match inner.as_ref() {
                Plan::IndexScan {
                    table,
                    parameterized,
                    lo,
                    hi,
                    ..
                } => {
                    assert_eq!(table, "orders");
                    assert!(!parameterized);
                    assert!(lo.is_none() && hi.is_none(), "full-range ordered scan");
                }
                other => panic!("merge inner must be an index scan, got {other:?}"),
            }
        }
    });
    assert!(found_merge, "Q12 must use a merge join");
}

#[test]
fn explain_mentions_each_table() {
    let db = paper_db();
    let plan = db.plan_sql(&sql_for(3, &params(3, 1))).unwrap();
    let text = plan.explain();
    for table in ["customer", "orders", "lineitem"] {
        assert!(text.contains(table), "explain lacks {table}:\n{text}");
    }
}

#[test]
fn cross_product_is_rejected() {
    let db = paper_db();
    let err = db
        .plan_sql("select r_name, n_name from region, nation")
        .unwrap_err();
    assert!(err.to_string().contains("join predicate"));
}

#[test]
fn unknown_table_is_rejected() {
    let db = paper_db();
    assert!(db.plan_sql("select x from missing").is_err());
}

#[test]
fn equality_on_indexed_key_becomes_a_bounded_index_scan() {
    let db = paper_db();
    let plan = db
        .plan_sql("select c_name from customer where c_custkey = 77")
        .unwrap();
    let mut found = false;
    plan.walk(&mut |node| {
        if let Plan::IndexScan {
            table,
            lo,
            hi,
            parameterized,
            ..
        } = node
        {
            found = true;
            assert_eq!(table, "customer");
            assert!(!parameterized);
            assert_eq!(lo.as_ref(), hi.as_ref(), "equality gives a point range");
            assert!(lo.is_some());
        }
    });
    assert!(found, "expected an index scan: {}", plan.explain());
}

#[test]
fn unselective_predicates_stay_sequential() {
    let db = paper_db();
    // A ≥ bound keeping most of the key space must not use the index.
    let plan = db
        .plan_sql("select count(*) from customer where c_custkey >= 10")
        .unwrap();
    let mut seq = false;
    plan.walk(&mut |node| {
        if matches!(node, Plan::SeqScan { .. }) {
            seq = true;
        }
    });
    assert!(seq, "expected a sequential scan: {}", plan.explain());
}

#[test]
fn tight_range_on_indexed_key_uses_bounds() {
    let db = paper_db();
    let plan = db
        .plan_sql("select count(*) from orders where o_orderkey between 100 and 120")
        .unwrap();
    let mut bounded = false;
    plan.walk(&mut |node| {
        if let Plan::IndexScan {
            lo: Some(_),
            hi: Some(_),
            ..
        } = node
        {
            bounded = true;
        }
    });
    assert!(bounded, "expected a bounded index scan: {}", plan.explain());
}

#[test]
fn limit_node_sits_on_top() {
    let db = paper_db();
    let plan = db
        .plan_sql("select o_orderkey from orders order by o_orderkey limit 5")
        .unwrap();
    assert!(
        matches!(plan, Plan::Limit { n: 5, .. }),
        "{}",
        plan.explain()
    );
}
