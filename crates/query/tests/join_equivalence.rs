//! Differential tests: the three join algorithms (nested loop, merge, hash)
//! must produce identical result multisets for the same logical join,
//! whatever the planner would have picked.

use std::collections::BTreeMap;

use dss_query::{Database, Datum, DbConfig, Plan, Scalar, Session};
use dss_sql::BinOp;

fn db() -> Database {
    Database::build(&DbConfig {
        scale: 0.002,
        seed: 21,
        nbuffers: 2048,
        ..DbConfig::default()
    })
}

/// orders ⋈ customer on custkey, with a date filter on orders, projecting
/// (o_orderkey, c_name). Column indices: orders(o_orderkey=0, o_custkey=1,
/// o_orderdate=4), customer(c_custkey=0, c_name=1).
fn orders_scan(preds: Vec<Scalar>) -> Plan {
    Plan::SeqScan {
        table: "orders".into(),
        preds,
        project: vec![0, 1, 4],
        block_range: None,
    }
}

fn date_pred(cutoff_days: i32) -> Scalar {
    Scalar::Binary {
        op: BinOp::Lt,
        lhs: Box::new(Scalar::Slot(4)), // o_orderdate
        rhs: Box::new(Scalar::Const(Datum::Date(dss_tpcd::Date::from_day_number(
            cutoff_days,
        )))),
    }
}

fn nl_plan(cutoff: i32) -> Plan {
    Plan::NestLoop {
        outer: Box::new(orders_scan(vec![date_pred(cutoff)])),
        inner: Box::new(Plan::IndexScan {
            table: "customer".into(),
            index_column: 0,
            lo: None,
            hi: None,
            parameterized: true,
            preds: vec![],
            project: vec![0, 1],
        }),
        outer_key: 1, // o_custkey in the scan's output
    }
}

fn merge_plan(cutoff: i32) -> Plan {
    Plan::MergeJoin {
        outer: Box::new(Plan::Sort {
            input: Box::new(orders_scan(vec![date_pred(cutoff)])),
            keys: vec![(1, false)],
        }),
        outer_key: 1,
        inner: Box::new(Plan::IndexScan {
            table: "customer".into(),
            index_column: 0,
            lo: None,
            hi: None,
            parameterized: false,
            preds: vec![],
            project: vec![0, 1],
        }),
        inner_key: 0,
    }
}

fn hash_plan(cutoff: i32) -> Plan {
    Plan::HashJoin {
        outer: Box::new(orders_scan(vec![date_pred(cutoff)])),
        outer_key: 1,
        inner: Box::new(Plan::SeqScan {
            table: "customer".into(),
            preds: vec![],
            project: vec![0, 1],
            block_range: None,
        }),
        inner_key: 0,
    }
}

/// Result rows as a multiset of (orderkey, custkey, name).
fn multiset(rows: Vec<Vec<Datum>>) -> BTreeMap<(i64, i64, String), usize> {
    let mut m = BTreeMap::new();
    for r in rows {
        // Join output: orders cols (0,1,2) then customer cols (3,4).
        let key = (r[0].int(), r[3].int(), r[4].str().to_owned());
        *m.entry(key).or_insert(0) += 1;
    }
    m
}

#[test]
fn all_three_join_algorithms_agree() {
    let mut database = db();
    for cutoff in [400, 1200, 2600] {
        let mut results = Vec::new();
        for plan in [nl_plan(cutoff), merge_plan(cutoff), hash_plan(cutoff)] {
            let mut session = Session::untraced(0);
            let out = database.run_plan(&plan, &mut session);
            results.push(multiset(out.rows));
        }
        assert!(!results[0].is_empty(), "cutoff {cutoff} joined nothing");
        assert_eq!(results[0], results[1], "NL vs merge at cutoff {cutoff}");
        assert_eq!(results[0], results[2], "NL vs hash at cutoff {cutoff}");
    }
}

#[test]
fn joins_agree_with_a_straight_reference() {
    let mut database = db();
    let data = dss_tpcd::Generator::new(0.002, 21).generate();
    let cutoff = 1200;
    let expected: usize = data
        .orders
        .iter()
        .filter(|o| o.orderdate.day_number() < cutoff)
        .count(); // every order has exactly one customer
    let mut session = Session::untraced(0);
    let out = database.run_plan(&hash_plan(cutoff), &mut session);
    assert_eq!(out.rows.len(), expected);
    // Join key equality holds on every output row.
    for r in &out.rows {
        assert_eq!(r[1], r[3], "o_custkey == c_custkey");
    }
}

#[test]
fn empty_outer_produces_empty_join() {
    let mut database = db();
    // A cutoff before the population start matches nothing.
    for plan in [nl_plan(-10), merge_plan(-10), hash_plan(-10)] {
        let mut session = Session::untraced(0);
        let out = database.run_plan(&plan, &mut session);
        assert!(out.rows.is_empty());
    }
}

#[test]
fn duplicate_outer_keys_multiply_matches() {
    // lineitem ⋈ orders on orderkey: each of an order's lineitems matches
    // exactly once, so the join count equals the lineitem count.
    let mut database = db();
    let data = dss_tpcd::Generator::new(0.002, 21).generate();
    let plan = Plan::MergeJoin {
        outer: Box::new(Plan::Sort {
            input: Box::new(Plan::SeqScan {
                table: "lineitem".into(),
                preds: vec![],
                project: vec![0],
                block_range: None,
            }),
            keys: vec![(0, false)],
        }),
        outer_key: 0,
        inner: Box::new(Plan::IndexScan {
            table: "orders".into(),
            index_column: 0,
            lo: None,
            hi: None,
            parameterized: false,
            preds: vec![],
            project: vec![0],
        }),
        inner_key: 0,
    };
    let mut session = Session::untraced(0);
    let out = database.run_plan(&plan, &mut session);
    assert_eq!(out.rows.len(), data.lineitems.len());
}
