//! Write-statement tests: inserts, deletes, visibility, and index
//! maintenance (TPC-D's update functions UF1/UF2).

use dss_query::{Database, Datum, DbConfig, Session, StatementOutput};
use dss_tpcd::Generator;

fn db() -> Database {
    Database::build(&DbConfig {
        scale: 0.002,
        seed: 9,
        nbuffers: 2048,
        ..DbConfig::default()
    })
}

fn count(db: &mut Database, sql: &str) -> i64 {
    let mut s = Session::untraced(0);
    db.run(sql, &mut s).expect("count query").rows[0][0].int()
}

fn affected(db: &mut Database, sql: &str) -> u64 {
    let mut s = Session::untraced(0);
    match db.execute(sql, &mut s).expect("write statement") {
        StatementOutput::Affected(n) => n,
        StatementOutput::Rows(_) => panic!("expected a write"),
    }
}

#[test]
fn insert_then_select_finds_row() {
    let mut db = db();
    let before = count(&mut db, "select count(*) from region");
    let n = affected(
        &mut db,
        "insert into region values (5, 'ATLANTIS', 'sunken')",
    );
    assert_eq!(n, 1);
    assert_eq!(count(&mut db, "select count(*) from region"), before + 1);
    let mut s = Session::untraced(0);
    let rows = db
        .run("select r_name from region where r_regionkey = 5", &mut s)
        .expect("select")
        .rows;
    assert_eq!(rows, vec![vec![Datum::Str("ATLANTIS".into())]]);
}

#[test]
fn multi_row_insert_and_typed_literals() {
    let mut db = db();
    let n = affected(
        &mut db,
        "insert into orders values \
         (900001, 1, 'O', 123.45, date '1996-05-01', '1-URGENT', 'Clerk#1', 0, 'x'), \
         (900002, 2, 'F', 67.00, date '1994-02-03', '5-LOW', 'Clerk#2', 0, 'y')",
    );
    assert_eq!(n, 2);
    let mut s = Session::untraced(0);
    let rows = db
        .run(
            "select o_totalprice, o_orderdate from orders where o_orderkey = 900001",
            &mut s,
        )
        .expect("select")
        .rows;
    assert_eq!(rows[0][0], Datum::Dec(12345));
    assert_eq!(rows[0][1].date().ymd(), (1996, 5, 1));
}

#[test]
fn inserted_rows_are_visible_through_indexes() {
    let mut db = db();
    affected(
        &mut db,
        "insert into orders values \
         (900010, 3, 'O', 10.00, date '1996-05-01', '1-URGENT', 'Clerk#1', 0, 'x')",
    );
    // o_orderkey is indexed; an index-scan plan must find the new tuple.
    let mut s = Session::untraced(0);
    let out = db
        .run(
            "select count(*) from orders where o_orderkey = 900010",
            &mut s,
        )
        .expect("select");
    assert!(matches!(
        out.plan,
        dss_query::Plan::Project { .. } | dss_query::Plan::Aggregate { .. }
    ));
    assert_eq!(out.rows[0][0], Datum::Int(1));
}

#[test]
fn delete_hides_rows_from_seq_and_index_scans() {
    let mut db = db();
    let total = count(&mut db, "select count(*) from orders");
    let sel = count(
        &mut db,
        "select count(*) from orders where o_orderkey <= 10",
    );
    assert!(sel > 0);
    let n = affected(&mut db, "delete from orders where o_orderkey <= 10");
    assert_eq!(n as i64, sel);
    assert_eq!(count(&mut db, "select count(*) from orders"), total - sel);
    // Index probes (dangling entries) must skip the tombstones.
    assert_eq!(
        count(&mut db, "select count(*) from orders where o_orderkey = 5"),
        0
    );
}

#[test]
fn delete_affects_only_matching_rows_and_is_idempotent() {
    let mut db = db();
    let n1 = affected(
        &mut db,
        "delete from customer where c_mktsegment = 'BUILDING'",
    );
    assert!(n1 > 0);
    let n2 = affected(
        &mut db,
        "delete from customer where c_mktsegment = 'BUILDING'",
    );
    assert_eq!(n2, 0, "already deleted");
    assert_eq!(
        count(
            &mut db,
            "select count(*) from customer where c_mktsegment = 'BUILDING'"
        ),
        0
    );
    assert!(
        count(&mut db, "select count(*) from customer") > 0,
        "other segments remain"
    );
}

#[test]
fn uf1_and_uf2_roundtrip() {
    let mut db = db();
    let generator = Generator::new(0.002, 9);
    let before_orders = count(&mut db, "select count(*) from orders");
    let before_items = count(&mut db, "select count(*) from lineitem");

    // UF1: insert 0.1%-ish new orders above the existing key space.
    let base_key = 1_000_000;
    let (orders, lineitems) = generator.uf1_rows(7, 5, base_key);
    assert_eq!(orders.len(), 5);
    let mut s = Session::untraced(0);
    db.execute(&dss_query::insert_orders_sql(&orders), &mut s)
        .expect("UF1 orders");
    db.execute(&dss_query::insert_lineitems_sql(&lineitems), &mut s)
        .expect("UF1 lineitems");
    assert_eq!(
        count(&mut db, "select count(*) from orders"),
        before_orders + 5
    );
    assert_eq!(
        count(&mut db, "select count(*) from lineitem"),
        before_items + lineitems.len() as i64
    );

    // UF2: delete them again.
    let [del_items, del_orders] = dss_query::uf2_sql(base_key, base_key + 4);
    let removed_items = affected(&mut db, &del_items);
    let removed_orders = affected(&mut db, &del_orders);
    assert_eq!(removed_orders, 5);
    assert_eq!(removed_items as usize, lineitems.len());
    assert_eq!(count(&mut db, "select count(*) from orders"), before_orders);
    assert_eq!(
        count(&mut db, "select count(*) from lineitem"),
        before_items
    );
}

#[test]
fn writes_emit_data_writes_and_take_write_locks() {
    use dss_trace::{DataClass, TraceStats};
    let mut db = db();
    let mut s = Session::new(0);
    db.execute(
        "insert into region values (6, 'LEMURIA', 'also sunken')",
        &mut s,
    )
    .expect("insert");
    let stats = TraceStats::from_trace(&s.tracer.take());
    assert!(stats.writes(DataClass::Data) > 0, "tuple bytes written");
    assert!(stats.writes(DataClass::Index) > 0, "index entries written");
    // Locks all released at statement end.
    for rel in 1..40 {
        assert_eq!(db.lockmgr.granted(rel), [0, 0]);
    }
}

#[test]
fn type_mismatch_is_rejected() {
    let mut db = db();
    let mut s = Session::untraced(0);
    let err = db
        .execute("insert into region values ('oops', 'NAME', 'c')", &mut s)
        .unwrap_err();
    assert!(err.to_string().contains("does not fit"), "{err}");
    let err = db
        .execute("insert into region values (1)", &mut s)
        .unwrap_err();
    assert!(
        err.to_string().contains("arity") || err.to_string().contains("fit"),
        "{err}"
    );
}

#[test]
fn delete_from_unknown_table_is_rejected() {
    let mut db = db();
    let mut s = Session::untraced(0);
    assert!(db.execute("delete from nope", &mut s).is_err());
}

#[test]
fn select_through_execute_returns_rows() {
    let mut db = db();
    let mut s = Session::untraced(0);
    match db
        .execute("select count(*) from nation", &mut s)
        .expect("select")
    {
        StatementOutput::Rows(out) => assert_eq!(out.rows[0][0], Datum::Int(25)),
        StatementOutput::Affected(_) => panic!("expected rows"),
    }
}

#[test]
fn vacuum_compacts_and_preserves_results() {
    let mut db = db();
    let before = count(&mut db, "select count(*) from orders");
    let deleted = affected(&mut db, "delete from orders where o_orderkey <= 100");
    assert!(deleted > 0);
    let live_rows = {
        let mut s = Session::untraced(0);
        db.run(
            "select o_orderkey, o_totalprice from orders order by o_orderkey",
            &mut s,
        )
        .unwrap()
        .rows
    };

    let removed = db.vacuum("orders").expect("vacuum runs");
    assert_eq!(removed, deleted);
    assert_eq!(db.catalog.table("orders").unwrap().heap.ndead(), 0);
    // Heap shrank to exactly the live tuples.
    assert_eq!(
        db.catalog.table("orders").unwrap().heap.ntuples() as i64,
        before - deleted as i64
    );

    // Same answers afterwards, through both scan kinds.
    let after_rows = {
        let mut s = Session::untraced(0);
        db.run(
            "select o_orderkey, o_totalprice from orders order by o_orderkey",
            &mut s,
        )
        .unwrap()
        .rows
    };
    assert_eq!(live_rows, after_rows);
    assert_eq!(
        count(
            &mut db,
            "select count(*) from orders where o_orderkey = 101"
        ),
        1
    );
    assert_eq!(
        count(&mut db, "select count(*) from orders where o_orderkey = 50"),
        0
    );

    // Idempotent when nothing is dead.
    assert_eq!(db.vacuum("orders").unwrap(), 0);
}

#[test]
fn vacuum_refreshes_statistics() {
    let mut db = db();
    // Delete everything above key 50, vacuum, and check the planner stats
    // see the shrunken domain.
    affected(&mut db, "delete from orders where o_orderkey > 50");
    db.vacuum("orders").expect("vacuum");
    let meta = db.catalog.table("orders").unwrap();
    let key_col = meta.heap.def().column_index("o_orderkey").unwrap();
    assert_eq!(meta.stats[key_col].max, Some(Datum::Int(50)));
    assert_eq!(meta.stats[key_col].ndistinct, 50);
}

#[test]
fn vacuum_unknown_table_errors() {
    let mut db = db();
    assert!(db.vacuum("nope").is_err());
}
