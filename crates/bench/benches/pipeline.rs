//! Criterion benchmarks of the end-to-end pipeline: database build, query
//! tracing, and trace simulation — one per experiment stage.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use dss_bench::{bench_database, trace_query};
use dss_memsim::{Machine, MachineConfig};
use dss_query::{Database, DbConfig};

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("database-build-scale-0.002", |b| {
        b.iter(|| {
            Database::build(&DbConfig {
                scale: 0.002,
                nbuffers: 2048,
                ..DbConfig::default()
            })
        })
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut db = bench_database();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    for q in [3u8, 6, 12] {
        let events = trace_query(&mut db, q, 0).len() as u64;
        g.throughput(Throughput::Elements(events));
        g.bench_function(format!("trace-Q{q}"), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                trace_query(&mut db, q, seed)
            })
        });
    }
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut db = bench_database();
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    for q in [3u8, 6, 12] {
        let traces: Vec<_> = (0..4)
            .map(|p| {
                let mut t = trace_query(&mut db, q, p as u64);
                t.proc_id = p;
                t
            })
            .collect();
        let events: usize = traces.iter().map(|t| t.len()).sum();
        g.throughput(Throughput::Elements(events as u64));
        g.bench_function(format!("simulate-Q{q}-baseline"), |b| {
            b.iter(|| Machine::new(MachineConfig::baseline()).run(&traces))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_trace_generation,
    bench_simulation
);
criterion_main!(benches);
