//! Criterion benchmarks of the simulator hot loop (`Machine::run`).
//!
//! Four workloads isolate the per-reference costs the hot-path rewrite
//! targets:
//!
//! * `l1-hit-stream` — every reference hits the primary cache: pure
//!   lookup/scheduler overhead, no miss classification.
//! * `l2-hit-stream` — every L1 miss hits the secondary cache: exercises the
//!   miss-classification path (one history probe per miss) without the
//!   directory.
//! * `remote-ping-pong` — two processors write-share one line: directory
//!   transactions, invalidations, and coherence classification dominate.
//! * `full-q6` — four processors each running a real traced Q6 instance: the
//!   end-to-end mix every figure of the paper pays for.
//!
//! Before/after numbers for the hash-free rewrite are recorded in
//! EXPERIMENTS.md ("Simulator performance").

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use dss_bench::{bench_database, trace_query};
use dss_memsim::{Machine, MachineConfig};
use dss_shmem::SHARED_BASE;
use dss_trace::{DataClass, Trace, Tracer};

/// One processor cycling through a working set that fits the 4 KB L1.
fn l1_hit_trace(events: u64) -> Trace {
    let t = Tracer::new(0);
    for i in 0..events {
        // 64 distinct 32-byte lines = 2 KB: resident after the first lap.
        t.read(SHARED_BASE + (i % 64) * 32, 8, DataClass::Data);
        t.busy(1);
    }
    t.take()
}

/// One processor cycling through a set that overflows L1 but fits the
/// 128 KB L2 (4 KB direct-mapped L1 thrashes on the 64 KB stride pattern).
fn l2_hit_trace(events: u64) -> Trace {
    let t = Tracer::new(0);
    for i in 0..events {
        // 1024 distinct 64-byte lines = 64 KB, strided to collide in L1.
        t.read(SHARED_BASE + (i % 1024) * 64, 8, DataClass::Data);
        t.busy(1);
    }
    t.take()
}

/// Two processors alternately writing the same shared line.
fn ping_pong_traces(events: u64) -> Vec<Trace> {
    (0..2)
        .map(|p| {
            let t = Tracer::new(p);
            for _ in 0..events {
                t.write(SHARED_BASE + 4096, 8, DataClass::LockHash);
                t.busy(400);
            }
            t.take()
        })
        .collect()
}

fn bench_hot_loop(c: &mut Criterion) {
    const N: u64 = 200_000;
    let l1 = vec![l1_hit_trace(N)];
    let l2 = vec![l2_hit_trace(N)];
    let pp = ping_pong_traces(N / 4);

    let mut g = c.benchmark_group("machine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(
        l1.iter().map(|t| t.len() as u64).sum(),
    ));
    g.bench_function("l1-hit-stream", |b| {
        b.iter(|| Machine::new(MachineConfig::baseline()).run(&l1))
    });
    g.throughput(Throughput::Elements(
        l2.iter().map(|t| t.len() as u64).sum(),
    ));
    g.bench_function("l2-hit-stream", |b| {
        b.iter(|| Machine::new(MachineConfig::baseline()).run(&l2))
    });
    g.throughput(Throughput::Elements(
        pp.iter().map(|t| t.len() as u64).sum(),
    ));
    g.bench_function("remote-ping-pong", |b| {
        b.iter(|| Machine::new(MachineConfig::baseline()).run(&pp))
    });
    g.finish();
}

fn bench_full_q6(c: &mut Criterion) {
    let mut db = bench_database();
    let traces: Vec<Trace> = (0..4)
        .map(|p| {
            let mut t = trace_query(&mut db, 6, p as u64);
            t.proc_id = p;
            t
        })
        .collect();
    let events: u64 = traces.iter().map(|t| t.len() as u64).sum();

    let mut g = c.benchmark_group("machine");
    g.sample_size(10);
    g.throughput(Throughput::Elements(events));
    g.bench_function("full-q6", |b| {
        b.iter(|| Machine::new(MachineConfig::baseline()).run(&traces))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hot_loop, bench_full_q6
}
criterion_main!(benches);
