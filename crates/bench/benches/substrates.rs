//! Criterion microbenchmarks of the individual substrates.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use dss_btree::{BTree, Key, TupleId};
use dss_bufcache::BufferPool;
use dss_memsim::{Machine, MachineConfig};
use dss_shmem::{AddressSpace, PrivateHeap};
use dss_tpcd::{params, Generator};
use dss_trace::{DataClass, Tracer};

fn bench_dbgen(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpcd-dbgen");
    for scale in [0.001f64, 0.005] {
        let rows = Generator::new(scale, 1).generate().total_rows() as u64;
        g.throughput(Throughput::Elements(rows));
        g.bench_function(format!("scale-{scale}"), |b| {
            b.iter(|| Generator::new(scale, 1).generate())
        });
    }
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut space = AddressSpace::new();
    let mut pool = BufferPool::new(&mut space, 1024);
    let entries: Vec<(Key, TupleId)> = (0..200_000)
        .map(|i| (Key::int(i), TupleId::new((i / 64) as u32, (i % 64) as u32)))
        .collect();
    let tree = BTree::bulk_build(&mut pool, 1, &entries);
    let t = Tracer::disabled();

    let mut g = c.benchmark_group("btree");
    g.throughput(Throughput::Elements(1));
    g.bench_function("point-probe", |b| {
        let mut key = 0i64;
        b.iter(|| {
            key = (key + 48_271) % 200_000;
            tree.lookup_range(&mut pool, &t, Key::int(key), Key::int(key))
        })
    });
    g.throughput(Throughput::Elements(1000));
    g.bench_function("range-scan-1k", |b| {
        b.iter(|| tree.lookup_range(&mut pool, &t, Key::int(50_000), Key::int(50_999)))
    });
    g.bench_function("bulk-build-200k", |b| {
        b.iter_batched(
            || BufferPool::new(&mut AddressSpace::new(), 1024),
            |mut pool| BTree::bulk_build(&mut pool, 1, &entries),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_sql(c: &mut Criterion) {
    let texts: Vec<String> = (1..=17u8)
        .map(|q| dss_query::sql_for(q, &params(q, 1)))
        .collect();
    let mut g = c.benchmark_group("sql");
    g.throughput(Throughput::Elements(texts.len() as u64));
    g.bench_function("parse-all-17-queries", |b| {
        b.iter(|| {
            for t in &texts {
                dss_sql::parse(t).expect("valid");
            }
        })
    });
    g.finish();
}

fn bench_memsim(c: &mut Criterion) {
    // A synthetic trace: a streaming shared scan interleaved with private
    // pointer-chasing, roughly the mix the queries produce.
    let make_trace = |proc: usize| {
        let t = Tracer::new(proc);
        let heap = PrivateHeap::new(proc);
        let priv_base = heap.proc_id() as u64; // silence unused
        let _ = priv_base;
        let pbase = dss_shmem::private_base(proc);
        for i in 0..50_000u64 {
            t.read(dss_shmem::SHARED_BASE + i * 48, 8, DataClass::Data);
            t.read(pbase + (i * 136) % 8192, 8, DataClass::PrivHeap);
            t.write(pbase + (i * 88) % 4096, 8, DataClass::PrivHeap);
            t.busy(12);
        }
        t.take()
    };
    let traces: Vec<_> = (0..4).map(make_trace).collect();
    let events: usize = traces.iter().map(|t| t.len()).sum();

    let mut g = c.benchmark_group("memsim");
    g.throughput(Throughput::Elements(events as u64));
    g.bench_function("baseline-4proc", |b| {
        b.iter(|| Machine::new(MachineConfig::baseline()).run(&traces))
    });
    g.bench_function("prefetch-4proc", |b| {
        b.iter(|| Machine::new(MachineConfig::baseline().with_data_prefetch(4)).run(&traces))
    });
    g.finish();
}

fn bench_lockmgr(c: &mut Criterion) {
    use dss_lockmgr::{LockMgr, LockMode, Xid};
    let mut mgr = LockMgr::new(&mut AddressSpace::new(), 1024);
    let t = Tracer::disabled();
    let mut g = c.benchmark_group("lockmgr");
    g.throughput(Throughput::Elements(2));
    g.bench_function("acquire-release-all", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            let xid = Xid(i % 16);
            mgr.acquire(xid, i % 64, LockMode::Read, &t);
            mgr.release_all(xid, &t);
        })
    });
    g.finish();
}

fn bench_bufcache(c: &mut Criterion) {
    let mut space = AddressSpace::new();
    let mut pool = BufferPool::new(&mut space, 2048);
    let pages: Vec<_> = (0..2000).map(|_| pool.alloc_page(1)).collect();
    let t = Tracer::disabled();
    let mut g = c.benchmark_group("bufcache");
    g.throughput(Throughput::Elements(1));
    g.bench_function("pin-unpin", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 977) % pages.len();
            let buf = pool.pin(pages[i], &t);
            pool.unpin(buf, &t);
        })
    });
    g.finish();
}

fn bench_analyze(c: &mut Criterion) {
    // A realistic mixed trace: streaming shared data + hot private slots.
    let t = Tracer::new(0);
    for i in 0..100_000u64 {
        t.read(dss_shmem::SHARED_BASE + i * 48, 8, DataClass::Data);
        t.read(
            dss_shmem::private_base(0) + (i * 136) % 4096,
            8,
            DataClass::PrivHeap,
        );
    }
    let trace = t.take();
    let mut g = c.benchmark_group("trace");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.bench_function("analyze-reuse-distances", |b| {
        b.iter(|| dss_trace::analyze(&trace, 64))
    });
    g.bench_function("serialize-roundtrip", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(trace.len() * 17 + 24);
            dss_trace::write_trace(&trace, &mut buf).expect("in-memory");
            dss_trace::read_trace(buf.as_slice()).expect("roundtrip")
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dbgen, bench_btree, bench_sql, bench_memsim, bench_lockmgr,
        bench_bufcache, bench_analyze
}
criterion_main!(benches);
