//! End-to-end crash/resume pinning for the `repro` binary: a run killed by
//! an armed crash site must, after `--resume`, produce stdout byte-identical
//! to an uninterrupted run, with honest resume provenance in the benchmark
//! report. This is the same contract the `dss-check crash` campaign sweeps
//! over every site; here one representative site is pinned in the test
//! suite so plain `cargo test` exercises the kill→resume cycle.

#![cfg(unix)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// The sweep under test — small, streamed (so trace salvage is exercised),
/// and multi-point (so the journal matters).
const ARGS: &[&str] = &[
    "fig8",
    "--sf",
    "0.003",
    "--jobs",
    "2",
    "--trace-mode",
    "streamed",
];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dss-repro-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn repro(state: &Path, extra: &[&str], arm: Option<(&str, u64)>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(ARGS)
        .arg("--state-dir")
        .arg(state)
        .args(extra)
        .env_remove(dss_faultkit::crash::ENV_SITE)
        .env_remove(dss_faultkit::crash::ENV_HITS);
    if let Some((site, hits)) = arm {
        cmd.env(dss_faultkit::crash::ENV_SITE, site)
            .env(dss_faultkit::crash::ENV_HITS, hits.to_string());
    }
    cmd.output().expect("spawning repro")
}

#[test]
fn crashed_sweep_resumes_to_identical_stdout() {
    let base_dir = temp_dir("baseline");
    let crash_dir = temp_dir("crashed");

    let baseline = repro(&base_dir, &[], None);
    assert!(baseline.status.success(), "baseline run must succeed");

    // Kill the sweep at a point boundary after several points completed.
    let crashed = repro(&crash_dir, &[], Some(("crash.point.post-journal", 4)));
    {
        use std::os::unix::process::ExitStatusExt;
        assert_eq!(
            crashed.status.signal(),
            Some(6),
            "armed crash site must abort the child (SIGABRT)"
        );
    }
    let manifest = crash_dir.join("manifest.ckpt");
    assert!(manifest.is_file(), "crashed run must leave its journal");

    let json = crash_dir.join("bench.json");
    let resumed = repro(
        &crash_dir,
        &["--resume", "--bench-json", &json.display().to_string()],
        None,
    );
    assert!(
        resumed.status.success(),
        "resume must succeed: {}",
        String::from_utf8_lossy(&resumed.stderr)
    );
    assert_eq!(
        resumed.stdout, baseline.stdout,
        "resumed stdout must be byte-identical to the uninterrupted run"
    );

    let bench = std::fs::read_to_string(&json).unwrap();
    assert!(bench.contains("\"schema\": \"dss-bench-repro/v6\""));
    assert!(
        bench.contains("\"mode\": \"resumed\""),
        "provenance must record the resume: {bench}"
    );
    // At least the points journaled before the kill were served back.
    let loaded: u64 = bench
        .lines()
        .find(|l| l.trim_start().starts_with("\"resume\""))
        .and_then(|l| l.split("\"points_loaded\": ").nth(1))
        .and_then(|s| s.split(',').next())
        .and_then(|s| s.trim().parse().ok())
        .expect("resume provenance with points_loaded");
    assert!(loaded >= 3, "expected >=3 journaled points, got {loaded}");

    let _ = std::fs::remove_dir_all(&base_dir);
    let _ = std::fs::remove_dir_all(&crash_dir);
}

#[test]
fn completed_sweep_resumes_as_pure_replay() {
    let dir = temp_dir("replay");
    let first = repro(&dir, &[], None);
    assert!(first.status.success());

    let json = dir.join("bench.json");
    let replay = repro(
        &dir,
        &["--resume", "--bench-json", &json.display().to_string()],
        None,
    );
    assert!(replay.status.success());
    assert_eq!(
        replay.stdout, first.stdout,
        "full replay must reproduce the original stdout"
    );
    let bench = std::fs::read_to_string(&json).unwrap();
    assert!(bench.contains("\"mode\": \"resumed\""));
    assert!(
        bench.contains("\"points_computed\": 0"),
        "nothing may be recomputed on a completed journal: {bench}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_state_dir_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig8", "--sf", "0.003", "--resume"])
        .output()
        .expect("spawning repro");
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--state-dir"),
        "usage error must name the missing flag"
    );
}
