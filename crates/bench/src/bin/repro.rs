//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p dss-bench --release --bin repro            # everything
//! cargo run -p dss-bench --release --bin repro -- fig8    # one experiment
//! ```
//!
//! Accepted arguments: `table1`, `fig6`, `fig7`, `rates`, `fig8`, `fig9`,
//! `fig10`, `fig11`, `fig12`, `fig13`, `all` (default). Each experiment
//! prints the paper-shaped chart plus its PASS/FAIL shape checks.

use std::collections::BTreeSet;
use std::time::Instant;

use dss_core::{experiments, paper, report, Workbench, STUDIED_QUERIES};

/// The paper scale, used by the self-contained update experiment.
fn dss_workbenchless_scale() -> f64 {
    dss_tpcd::PAPER_SCALE
}

fn main() {
    let args: BTreeSet<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.contains("all") || args.contains(name);

    let start = Instant::now();
    println!("Building the paper-scale database (TPC-D at 1/100, memory resident)...");
    let mut wb = Workbench::paper();
    println!(
        "  built in {:.1?}: {} heap pages (~{} MB of data), {} shared MB mapped\n",
        start.elapsed(),
        wb.db.catalog.total_heap_pages(),
        wb.db.catalog.total_heap_pages() * 8192 / 1_000_000,
        wb.db.space.mapped_bytes() / 1_000_000
    );

    if want("table1") {
        let rows = experiments::table1(&wb.db);
        println!("{}", report::render_table1(&rows));
    }

    if want("fig6") || want("fig7") || want("rates") {
        let baselines = experiments::baseline_suite(&mut wb, &STUDIED_QUERIES);
        if want("fig6") {
            println!("{}", report::render_fig6a(&baselines));
            println!("{}", report::render_fig6b(&baselines));
            println!("{}", paper::render_checks(&paper::check_fig6(&baselines)));
        }
        if want("fig7") {
            for b in &baselines {
                println!("{}", report::render_fig7(b));
            }
            println!("{}", paper::render_checks(&paper::check_fig7(&baselines)));
        }
        if want("rates") {
            let rates: Vec<_> = baselines.iter().map(experiments::miss_rates).collect();
            println!("{}", report::render_miss_rates(&rates));
        }
    }

    if want("fig8") || want("fig9") {
        for q in STUDIED_QUERIES {
            let points = experiments::line_size_sweep(&mut wb, q);
            if want("fig8") {
                println!("{}", report::render_fig8(q, &points));
                println!("{}", paper::render_checks(&paper::check_fig8(q, &points)));
            }
            if want("fig9") {
                println!("{}", report::render_fig9(q, &points));
                println!("{}", paper::render_checks(&paper::check_fig9(q, &points)));
            }
        }
    }

    if want("fig10") || want("fig11") {
        for q in STUDIED_QUERIES {
            let points = experiments::cache_size_sweep(&mut wb, q);
            if want("fig10") {
                println!("{}", report::render_fig10(q, &points));
                println!("{}", paper::render_checks(&paper::check_fig10(q, &points)));
            }
            if want("fig11") {
                println!("{}", report::render_fig11(q, &points));
                println!("{}", paper::render_checks(&paper::check_fig11(q, &points)));
            }
        }
    }

    if want("fig12") {
        let q3 = experiments::reuse_experiment(&mut wb, 3, 12);
        let q12 = experiments::reuse_experiment(&mut wb, 12, 3);
        println!("{}", report::render_fig12(&q3));
        println!("{}", report::render_fig12(&q12));
        println!("{}", paper::render_checks(&paper::check_fig12(&q3, &q12)));
    }

    if want("fig13") {
        let pairs: Vec<_> = STUDIED_QUERIES
            .iter()
            .map(|q| experiments::prefetch_experiment(&mut wb, *q))
            .collect();
        println!("{}", report::render_fig13(&pairs));
        println!("{}", paper::render_checks(&paper::check_fig13(&pairs)));
    }

    // Extension experiments (not in the paper): run with `ext` or by name.
    if args.contains("ext") || args.contains("ext-protocol") {
        let ablations: Vec<_> = STUDIED_QUERIES
            .iter()
            .map(|q| experiments::protocol_ablation(&mut wb, *q))
            .collect();
        println!("{}", report::render_ext_protocol(&ablations));
    }
    if args.contains("ext") || args.contains("ext-prefetch") {
        for q in [6u8, 12] {
            let points = experiments::prefetch_degree_sweep(&mut wb, q);
            println!("{}", report::render_ext_prefetch(q, &points));
        }
    }
    if args.contains("ext") || args.contains("ext-updates") {
        let runs = experiments::update_experiment(dss_workbenchless_scale());
        println!("{}", report::render_ext_updates(&runs));
    }
    if args.contains("ext") || args.contains("ext-intra") {
        let runs = experiments::intra_query_experiment(&mut wb);
        println!("{}", report::render_ext_intra(&runs));
    }
    if args.contains("ext") || args.contains("ext-streams") {
        let baselines = experiments::baseline_suite(&mut wb, &STUDIED_QUERIES);
        let runs = experiments::stream_experiment(&mut wb, &[3, 6, 12]);
        println!("{}", report::render_ext_streams(&runs, &baselines));
    }
    if args.contains("ext") || args.contains("ext-procs") {
        for q in STUDIED_QUERIES {
            let points = experiments::processor_sweep(&mut wb, q);
            println!("{}", report::render_ext_procs(q, &points));
        }
    }

    println!("total wall time: {:.1?}", start.elapsed());
}
