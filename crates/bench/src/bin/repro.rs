//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p dss-bench --release --bin repro                 # everything
//! cargo run -p dss-bench --release --bin repro -- fig8         # one experiment
//! cargo run -p dss-bench --release --bin repro -- all --jobs 4 # four workers
//! ```
//!
//! Accepted arguments: `table1`, `fig6`, `fig7`, `rates`, `fig8`, `fig9`,
//! `fig10`, `fig11`, `fig12`, `fig13`, `all` (default), the extensions
//! (`ext`, or `ext-protocol`, `ext-prefetch`, `ext-updates`, `ext-intra`,
//! `ext-streams`, `ext-procs`), `--jobs N` to set the number of worker
//! threads the sweeps fan out over (default: available parallelism),
//! `--gen-jobs N` to run each sweep point's trace production pipelined on
//! `N` dedicated producer threads carved out of the `--jobs` budget
//! (generation overlaps simulation; stdout stays byte-identical; 0, the
//! default, keeps production inline), `--sf X` to override the database
//! scale factor (default: the paper's 0.01), `--trace-mode
//! streamed|materialized` to pick how traces reach the simulator (streamed
//! records block files and replays them from disk, so peak memory stays
//! bounded at any scale factor; stdout is identical either way), and
//! `--bench-json PATH` to write the per-experiment wall/compute timings,
//! heap-allocation counts (measured by a counting allocator), per-experiment
//! peak RSS, and pipeline stall times as a machine-readable JSON file (the
//! CI benchmark artifact). Each experiment prints the paper-shaped chart
//! plus its PASS/FAIL shape checks.
//!
//! The run is crash-safe when given a state directory: `--state-dir PATH`
//! keeps a checkpoint manifest (`PATH/manifest.ckpt`) journaling every
//! completed sweep point as it finishes, plus the streamed-mode block files
//! (`PATH/traces/`). After a crash — power loss included; the journal is
//! fsynced record by record — rerunning with `--resume` replays the journal,
//! skips completed points, salvages partial block files down to their last
//! checksum-valid block, and regenerates only what is missing; stdout is
//! byte-identical to an uninterrupted run. The manifest carries a
//! fingerprint of the configuration (scale, seed, buffer pool, processor
//! count), so resuming under different parameters safely starts fresh.
//! `--resume` without `--state-dir` is a usage error.
//!
//! The run degrades gracefully instead of aborting: every sweep point runs
//! fail-soft (a panicking or deadline-blown point becomes a structured
//! `PointError` and the rest of the sweep completes), and every experiment
//! block runs under `catch_unwind` so one broken figure cannot take down the
//! others. Two flags exercise this path deterministically: `--inject LABEL`
//! makes the sweep point with that label (e.g. `fig8/Q6/l2_line=64`) panic,
//! and `--point-deadline-ms N` times out any point slower than `N` ms.
//!
//! Exit codes: `0` success, `1` artifact write failure, `2` usage error,
//! `3` partial results (one or more points or experiments failed; everything
//! that could run did, and the failures are listed in the `--bench-json`
//! report's `point_errors` / `failed_experiments` arrays).
//!
//! Tables and checks go to stdout; progress and timing go to stderr, so
//! stdout is byte-identical at every `--jobs` value and safe to diff.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use dss_core::{
    config_fingerprint, experiments, paper, query_label, report, CheckpointJournal,
    PipelineSnapshot, PointError, TraceMode, Workbench, STUDIED_QUERIES,
};
use dss_query::DbConfig;

// The counting allocator is a single shared source file (see its module doc
// for why it is not a library export); this binary only reads the alloc-side
// counters, so the unused dealloc-side ones are allowed to be dead here.
#[allow(dead_code)]
#[path = "../../../check/src/alloc.rs"]
mod alloc;

/// Counts every heap operation of the run, so each experiment's entry in the
/// benchmark log can report its total allocation traffic (worker threads
/// included — the counters are process-global).
#[global_allocator]
static COUNTING_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// One recorded experiment: label, wall-clock, fanned-out compute, heap
/// traffic, pipeline utilization, and two RSS measures — this experiment's
/// own peak (bytes) and the process-wide high-water mark so far.
struct BenchEntry {
    name: String,
    wall: Duration,
    compute: Duration,
    heap: alloc::AllocReport,
    pipe: PipelineSnapshot,
    peak_rss: u64,
    peak_rss_cumulative: u64,
    /// Sweep points served from the checkpoint journal (resume provenance).
    points_loaded: u64,
    /// Sweep points actually simulated by this experiment.
    points_computed: u64,
}

/// The process's peak resident set size (`VmHWM`) in bytes, or 0 where
/// `/proc/self/status` is unavailable. A high-water mark: monotone unless
/// reset through `/proc/self/clear_refs` (see [`BenchLog::arm`]).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|line| line.strip_prefix("VmHWM:"))
        .and_then(|rest| {
            rest.trim()
                .trim_end_matches("kB")
                .trim()
                .parse::<u64>()
                .ok()
        })
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

/// Resets the process's `VmHWM` high-water mark to the current RSS, so the
/// next reading measures only what happened since. Returns false where the
/// kernel interface is unavailable.
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Per-experiment timings and heap traffic, printed to stderr as they happen
/// and optionally dumped as JSON at exit (`--bench-json`).
#[derive(Default)]
struct BenchLog {
    entries: Vec<BenchEntry>,
    /// Process-wide peak RSS observed across all measurements so far.
    cumulative_rss: u64,
    /// `VmHWM` when the current experiment was armed (the delta baseline
    /// where the high-water mark cannot be reset).
    armed_rss: u64,
    /// Whether `/proc/self/clear_refs` resets worked at arm time.
    armed_reset: bool,
}

impl BenchLog {
    /// Marks the start of an experiment's RSS window: resets the kernel
    /// high-water mark where possible so the next [`BenchLog::record`] reads
    /// this experiment's own peak, falling back to delta-from-start
    /// accounting where it is not.
    fn arm(&mut self) {
        self.cumulative_rss = self.cumulative_rss.max(peak_rss_bytes());
        self.armed_reset = reset_peak_rss();
        self.armed_rss = peak_rss_bytes();
    }

    /// Records one experiment's wall-clock, the aggregate single-thread
    /// compute it fanned out (their ratio is the parallel speedup), the
    /// heap traffic its gate observed, pipeline utilization, and the peak
    /// RSS of its own window. Stderr, to keep stdout diffable.
    fn record(
        &mut self,
        label: &str,
        wall: Duration,
        compute: Duration,
        heap: alloc::AllocReport,
        pipe: PipelineSnapshot,
        ckpt: (u64, u64),
    ) {
        let (points_loaded, points_computed) = ckpt;
        let hwm = peak_rss_bytes();
        // With a working reset, `hwm` is this experiment's own peak; without
        // one it is process-monotone, so report how much it grew instead.
        let peak_rss = if self.armed_reset {
            hwm
        } else {
            hwm.saturating_sub(self.armed_rss)
        };
        self.cumulative_rss = self.cumulative_rss.max(hwm);
        let peak_rss_cumulative = self.cumulative_rss;
        let mb = heap.bytes_allocated / 1_000_000;
        let rss_mb = peak_rss / 1_000_000;
        if compute.is_zero() {
            eprintln!(
                "  [{label}] wall {wall:.1?}; heap {} alloc(s), {mb} MB; peak rss {rss_mb} MB",
                heap.allocs
            );
        } else {
            let speedup = compute.as_secs_f64() / wall.as_secs_f64().max(1e-9);
            eprintln!(
                "  [{label}] wall {wall:.1?}, sim compute {compute:.1?}, speedup {speedup:.2}x; \
                 heap {} alloc(s), {mb} MB; peak rss {rss_mb} MB",
                heap.allocs
            );
        }
        if pipe.blocks > 0 {
            // Which side of the pipeline was the bottleneck: time each side
            // spent blocked on the bounded channels.
            eprintln!(
                "  [{label}] pipeline: {} block(s); producer stalled {:.1?}, \
                 consumer stalled {:.1?}",
                pipe.blocks,
                Duration::from_nanos(pipe.producer_stall_ns),
                Duration::from_nanos(pipe.consumer_stall_ns),
            );
        }
        if points_loaded > 0 {
            eprintln!("  [{label}] {points_loaded} point(s) served from the checkpoint journal");
        }
        self.entries.push(BenchEntry {
            name: label.to_string(),
            wall,
            compute,
            heap,
            pipe,
            peak_rss,
            peak_rss_cumulative,
            points_loaded,
            points_computed,
        });
    }

    /// The recorded timings as a self-describing JSON document. Labels are
    /// experiment names from this binary (no escaping needed). Schema v6
    /// adds the crash-safety provenance: a top-level `resume` object
    /// (`mode`: `"fresh"` or `"resumed"`, `crash_site`: the armed
    /// crash-injection site or `null`, and the run's total
    /// `points_loaded` / `points_computed`), plus per-experiment
    /// `points_loaded`, `points_computed`, and `retries` (points this
    /// experiment had to recompute in a resumed run — work the crash
    /// destroyed; always 0 in a fresh run). Schema v5 made `peak_rss` honest
    /// per experiment (the kernel high-water mark is reset at the start of
    /// each one; where the reset interface is missing the value degrades to
    /// delta-from-start), added the monotone `peak_rss_cumulative`, and the
    /// pipeline fields (`gen_jobs`, `producer_stall_ns` /
    /// `consumer_stall_ns`). Schema v3 added the degradation record:
    /// `point_errors` and `failed_experiments`, both empty on a healthy run.
    // The report serializes every top-level measurement as its own scalar;
    // the arity is the schema's, not an API anyone else calls.
    #[allow(clippy::too_many_arguments)]
    fn to_json(
        &self,
        jobs: usize,
        gen_jobs: usize,
        trace_mode: TraceMode,
        scale: f64,
        total_wall: Duration,
        point_errors: &[PointError],
        failed: &[String],
        resume_mode: &str,
        crash_site: Option<&str>,
    ) -> String {
        let resumed = resume_mode == "resumed";
        let experiments: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    "    {{\"name\": \"{}\", \"wall_ns\": {}, \"sim_compute_ns\": {}, \
                     \"allocs\": {}, \"alloc_bytes\": {}, \"peak_rss\": {}, \
                     \"peak_rss_cumulative\": {}, \"producer_stall_ns\": {}, \
                     \"consumer_stall_ns\": {}, \"points_loaded\": {}, \
                     \"points_computed\": {}, \"retries\": {}}}",
                    e.name,
                    e.wall.as_nanos(),
                    e.compute.as_nanos(),
                    e.heap.allocs,
                    e.heap.bytes_allocated,
                    e.peak_rss,
                    e.peak_rss_cumulative,
                    e.pipe.producer_stall_ns,
                    e.pipe.consumer_stall_ns,
                    e.points_loaded,
                    e.points_computed,
                    if resumed { e.points_computed } else { 0 }
                )
            })
            .collect();
        let errors: Vec<String> = point_errors
            .iter()
            .map(|e| format!("    {}", e.to_json()))
            .collect();
        let abandoned: Vec<String> = failed.iter().map(|f| format!("\"{f}\"")).collect();
        let mode = match trace_mode {
            TraceMode::Materialized => "materialized",
            TraceMode::Streamed => "streamed",
        };
        let loaded: u64 = self.entries.iter().map(|e| e.points_loaded).sum();
        let computed: u64 = self.entries.iter().map(|e| e.points_computed).sum();
        let site = match crash_site {
            Some(s) => format!("\"{s}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"schema\": \"dss-bench-repro/v6\",\n  \"jobs\": {},\n  \
             \"gen_jobs\": {},\n  \"trace_mode\": \"{}\",\n  \"scale\": {},\n  \
             \"resume\": {{\"mode\": \"{}\", \"crash_site\": {}, \
             \"points_loaded\": {}, \"points_computed\": {}}},\n  \
             \"total_wall_ns\": {},\n  \"point_errors\": [{}],\n  \
             \"failed_experiments\": [{}],\n  \"experiments\": [\n{}\n  ]\n}}\n",
            jobs,
            gen_jobs,
            mode,
            scale,
            resume_mode,
            site,
            loaded,
            computed,
            total_wall.as_nanos(),
            if errors.is_empty() {
                String::new()
            } else {
                format!("\n{}\n  ", errors.join(",\n"))
            },
            abandoned.join(", "),
            experiments.join(",\n")
        )
    }
}

/// Runs one experiment block under `catch_unwind`, so a failure that escapes
/// the fail-soft sweeps (a paired experiment that lost its partner point, a
/// renderer handed an impossible shape) abandons that one experiment instead
/// of the whole run. The abandonment is recorded for the exit code and the
/// benchmark report.
fn guarded(label: &str, failed: &mut Vec<String>, f: impl FnOnce()) {
    if catch_unwind(AssertUnwindSafe(f)).is_err() {
        eprintln!("  [{label}] ABANDONED — experiment failed; continuing with the rest");
        failed.push(label.to_string());
    }
}

/// Drains the sweep-point failures the workbench accumulated during one
/// experiment, reporting each next to the experiment's timing line.
fn drain_point_errors(wb: &mut Workbench, sink: &mut Vec<PointError>) {
    for err in wb.take_point_errors() {
        eprintln!("  point error: {err}");
        sink.push(err);
    }
}

fn main() {
    let mut jobs: Option<usize> = None;
    let mut gen_jobs: Option<usize> = None;
    let mut bench_json: Option<String> = None;
    let mut inject: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut sf: Option<f64> = None;
    let mut trace_mode = TraceMode::Materialized;
    let mut resume = false;
    let mut state_dir: Option<String> = None;
    let mut names = BTreeSet::new();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--resume" {
            resume = true;
            continue;
        }
        if arg == "--state-dir" {
            match argv.next() {
                Some(path) => state_dir = Some(path),
                None => {
                    eprintln!("error: --state-dir needs a path");
                    std::process::exit(2);
                }
            }
            continue;
        }
        if let Some(path) = arg.strip_prefix("--state-dir=") {
            state_dir = Some(path.to_string());
            continue;
        }
        if arg == "--sf" || arg.starts_with("--sf=") {
            let value = arg
                .strip_prefix("--sf=")
                .map(str::to_string)
                .or_else(|| argv.next());
            match value.as_deref().map(str::parse::<f64>) {
                Some(Ok(s)) if s > 0.0 => sf = Some(s),
                _ => {
                    eprintln!("error: --sf needs a positive scale factor (e.g. --sf 0.05)");
                    std::process::exit(2);
                }
            }
            continue;
        }
        if arg == "--trace-mode" || arg.starts_with("--trace-mode=") {
            let value = arg
                .strip_prefix("--trace-mode=")
                .map(str::to_string)
                .or_else(|| argv.next());
            match value.as_deref() {
                Some("materialized") => trace_mode = TraceMode::Materialized,
                Some("streamed") => trace_mode = TraceMode::Streamed,
                _ => {
                    eprintln!("error: --trace-mode must be `streamed` or `materialized`");
                    std::process::exit(2);
                }
            }
            continue;
        }
        if arg == "--bench-json" {
            match argv.next() {
                Some(path) => bench_json = Some(path),
                None => {
                    eprintln!("error: --bench-json needs a path");
                    std::process::exit(2);
                }
            }
            continue;
        }
        if let Some(path) = arg.strip_prefix("--bench-json=") {
            bench_json = Some(path.to_string());
            continue;
        }
        if arg == "--inject" {
            match argv.next() {
                Some(label) => inject = Some(label),
                None => {
                    eprintln!("error: --inject needs a sweep-point label");
                    std::process::exit(2);
                }
            }
            continue;
        }
        if let Some(label) = arg.strip_prefix("--inject=") {
            inject = Some(label.to_string());
            continue;
        }
        if arg == "--point-deadline-ms" || arg.starts_with("--point-deadline-ms=") {
            let value = arg
                .strip_prefix("--point-deadline-ms=")
                .map(str::to_string)
                .or_else(|| argv.next());
            match value.as_deref().map(str::parse) {
                Some(Ok(ms)) => deadline_ms = Some(ms),
                _ => {
                    eprintln!("error: --point-deadline-ms needs a number of milliseconds");
                    std::process::exit(2);
                }
            }
            continue;
        }
        if arg == "--gen-jobs" || arg.starts_with("--gen-jobs=") {
            let value = arg
                .strip_prefix("--gen-jobs=")
                .map(str::to_string)
                .or_else(|| argv.next());
            match value.as_deref().map(str::parse) {
                Some(Ok(n)) => gen_jobs = Some(n),
                _ => {
                    eprintln!("error: --gen-jobs needs a number (e.g. --gen-jobs 2)");
                    std::process::exit(2);
                }
            }
            continue;
        }
        let value = if arg == "--jobs" {
            argv.next()
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else {
            names.insert(arg);
            continue;
        };
        match value.as_deref().map(str::parse) {
            Some(Ok(n)) => jobs = Some(n),
            _ => {
                eprintln!("error: --jobs needs a number (e.g. --jobs 4)");
                std::process::exit(2);
            }
        }
    }
    if resume && state_dir.is_none() {
        eprintln!("error: --resume needs --state-dir (the journal and trace files to resume from)");
        std::process::exit(2);
    }
    let args = names;
    let mut log = BenchLog::default();
    let mut point_errors: Vec<PointError> = Vec::new();
    let mut failed: Vec<String> = Vec::new();
    let want = |name: &str| args.is_empty() || args.contains("all") || args.contains(name);
    let want_ext = |name: &str| args.contains("ext") || args.contains(name);

    let start = Instant::now();
    let mut config = DbConfig::default();
    if let Some(s) = sf {
        // The buffer pool must hold the whole database (it is memory
        // resident), so it grows with the scale override.
        config.nbuffers = (config.nbuffers as f64 * (s / config.scale).max(1.0)).ceil() as u32;
        config.scale = s;
    }
    let scale = config.scale;
    eprintln!("Building the database (TPC-D at scale {scale}, memory resident)...");
    let mut wb = Workbench::new(&config, 4);
    if let Some(n) = jobs {
        wb.set_jobs(n);
    }
    if let Some(n) = gen_jobs {
        wb.set_gen_jobs(n);
    }
    // Scratch trace dir, deleted at exit. With `--state-dir` the block files
    // are durable resume state instead and live under the state dir.
    let mut trace_dir = None;
    if trace_mode == TraceMode::Streamed && state_dir.is_none() {
        let dir = std::env::temp_dir().join(format!("dss-repro-traces-{}", std::process::id()));
        eprintln!(
            "trace mode: streamed (block files under {}, replayed from disk)",
            dir.display()
        );
        wb.set_trace_dir(dir.clone());
        wb.set_trace_mode(TraceMode::Streamed);
        trace_dir = Some(dir);
    }
    let mut resume_mode = "fresh";
    if let Some(dir) = &state_dir {
        let dir = PathBuf::from(dir);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: could not create state dir {}: {e}", dir.display());
            std::process::exit(1);
        }
        let manifest = dir.join("manifest.ckpt");
        let traces = dir.join("traces");
        let fingerprint = config_fingerprint(&config, wb.nprocs());
        let journal = if resume {
            match CheckpointJournal::resume(&manifest, fingerprint) {
                Ok(j) => {
                    if let Some(reason) = j.fresh_reason() {
                        // The old state answers a different experiment (or
                        // does not exist); its trace files are stale too.
                        eprintln!("resume: starting fresh — {reason}");
                        let _ = std::fs::remove_dir_all(&traces);
                    } else {
                        eprintln!(
                            "resume: {} completed point(s) journaled in {}",
                            j.replayed(),
                            manifest.display()
                        );
                        wb.set_resume(true);
                        resume_mode = "resumed";
                    }
                    j
                }
                Err(e) => {
                    eprintln!("error: could not resume {}: {e}", manifest.display());
                    std::process::exit(1);
                }
            }
        } else {
            // A fresh run owns the state dir outright: discard any leftovers.
            let _ = std::fs::remove_dir_all(&traces);
            match CheckpointJournal::create(&manifest, fingerprint) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("error: could not create {}: {e}", manifest.display());
                    std::process::exit(1);
                }
            }
        };
        wb.set_checkpoint(journal);
        if trace_mode == TraceMode::Streamed {
            eprintln!(
                "trace mode: streamed (durable block files under {}, replayed from disk)",
                traces.display()
            );
            wb.set_trace_dir(traces);
            wb.set_trace_mode(TraceMode::Streamed);
        }
    }
    wb.set_fail_soft(true);
    if let Some(label) = inject {
        eprintln!("fault injection armed: sweep point `{label}` will panic");
        wb.set_sabotage(Some(label));
    }
    if let Some(ms) = deadline_ms {
        wb.set_point_deadline(Some(Duration::from_millis(ms)));
    }
    let worker_note = if wb.gen_jobs() > 0 {
        let (sim_jobs, producers) = dss_core::split_jobs(wb.jobs(), wb.gen_jobs());
        format!("{sim_jobs} simulation worker(s), {producers} trace producer(s) per point")
    } else {
        format!("{} simulation worker(s)", wb.jobs())
    };
    eprintln!(
        "  built in {:.1?}: {} heap pages (~{} MB of data), {} shared MB mapped; {worker_note}\n",
        start.elapsed(),
        wb.db.catalog.total_heap_pages(),
        wb.db.catalog.total_heap_pages() * 8192 / 1_000_000,
        wb.db.space.mapped_bytes() / 1_000_000,
    );

    if want("table1") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("table1", &mut failed, || {
            let rows = experiments::table1(&wb.db);
            println!("{}", report::render_table1(&rows));
        });
        log.record(
            "table1",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }

    if want("fig6") || want("fig7") || want("rates") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("fig6/fig7/rates", &mut failed, || {
            let before = wb.point_error_count();
            let baselines = wb.baseline_suite(&STUDIED_QUERIES);
            let degraded = wb.point_error_count() > before;
            if want("fig6") {
                println!("{}", report::render_fig6a(&baselines));
                println!("{}", report::render_fig6b(&baselines));
                if degraded {
                    println!("  (fig6 shape checks skipped: suite degraded, see point errors)");
                } else {
                    println!("{}", paper::render_checks(&paper::check_fig6(&baselines)));
                }
            }
            if want("fig7") {
                for b in &baselines {
                    println!("{}", report::render_fig7(b));
                }
                if degraded {
                    println!("  (fig7 shape checks skipped: suite degraded, see point errors)");
                } else {
                    println!("{}", paper::render_checks(&paper::check_fig7(&baselines)));
                }
            }
            if want("rates") {
                let rates: Vec<_> = baselines.iter().map(experiments::miss_rates).collect();
                println!("{}", report::render_miss_rates(&rates));
            }
        });
        log.record(
            "fig6/fig7/rates",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }

    if want("fig8") || want("fig9") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("fig8/fig9", &mut failed, || {
            for q in STUDIED_QUERIES {
                let before = wb.point_error_count();
                let points = wb.line_size_sweep(q);
                if wb.point_error_count() > before {
                    println!(
                        "Figure 8/9 ({}): skipped — sweep degraded, see point errors",
                        query_label(q)
                    );
                    continue;
                }
                if want("fig8") {
                    println!("{}", report::render_fig8(q, &points));
                    println!("{}", paper::render_checks(&paper::check_fig8(q, &points)));
                }
                if want("fig9") {
                    println!("{}", report::render_fig9(q, &points));
                    println!("{}", paper::render_checks(&paper::check_fig9(q, &points)));
                }
            }
        });
        log.record(
            "fig8/fig9",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }

    if want("fig10") || want("fig11") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("fig10/fig11", &mut failed, || {
            for q in STUDIED_QUERIES {
                let before = wb.point_error_count();
                let points = wb.cache_size_sweep(q);
                if wb.point_error_count() > before {
                    println!(
                        "Figure 10/11 ({}): skipped — sweep degraded, see point errors",
                        query_label(q)
                    );
                    continue;
                }
                if want("fig10") {
                    println!("{}", report::render_fig10(q, &points));
                    println!("{}", paper::render_checks(&paper::check_fig10(q, &points)));
                }
                if want("fig11") {
                    println!("{}", report::render_fig11(q, &points));
                    println!("{}", paper::render_checks(&paper::check_fig11(q, &points)));
                }
            }
        });
        log.record(
            "fig10/fig11",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }

    if want("fig12") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("fig12", &mut failed, || {
            let q3 = wb.reuse_experiment(3, 12);
            let q12 = wb.reuse_experiment(12, 3);
            println!("{}", report::render_fig12(&q3));
            println!("{}", report::render_fig12(&q12));
            println!("{}", paper::render_checks(&paper::check_fig12(&q3, &q12)));
        });
        log.record(
            "fig12",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }

    if want("fig13") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("fig13", &mut failed, || {
            let pairs: Vec<_> = STUDIED_QUERIES
                .iter()
                .map(|q| wb.prefetch_experiment(*q))
                .collect();
            println!("{}", report::render_fig13(&pairs));
            println!("{}", paper::render_checks(&paper::check_fig13(&pairs)));
        });
        log.record(
            "fig13",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }

    // Extension experiments (not in the paper): run with `ext` or by name.
    if want_ext("ext-protocol") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("ext-protocol", &mut failed, || {
            let ablations: Vec<_> = STUDIED_QUERIES
                .iter()
                .map(|q| wb.protocol_ablation(*q))
                .collect();
            println!("{}", report::render_ext_protocol(&ablations));
        });
        log.record(
            "ext-protocol",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }
    if want_ext("ext-prefetch") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("ext-prefetch", &mut failed, || {
            for q in [6u8, 12] {
                let points = wb.prefetch_degree_sweep(q);
                println!("{}", report::render_ext_prefetch(q, &points));
            }
        });
        log.record(
            "ext-prefetch",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }
    if want_ext("ext-updates") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("ext-updates", &mut failed, || {
            let runs = experiments::update_experiment(dss_tpcd::PAPER_SCALE);
            println!("{}", report::render_ext_updates(&runs));
        });
        log.record(
            "ext-updates",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }
    if want_ext("ext-intra") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("ext-intra", &mut failed, || {
            let runs = experiments::intra_query_experiment(&mut wb);
            println!("{}", report::render_ext_intra(&runs));
        });
        log.record(
            "ext-intra",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }
    if want_ext("ext-streams") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("ext-streams", &mut failed, || {
            let baselines = wb.baseline_suite(&STUDIED_QUERIES);
            let runs = experiments::stream_experiment(&mut wb, &[3, 6, 12]);
            println!("{}", report::render_ext_streams(&runs, &baselines));
        });
        log.record(
            "ext-streams",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }
    if want_ext("ext-procs") {
        let t = Instant::now();
        let g = alloc::AllocGate::begin();
        log.arm();
        guarded("ext-procs", &mut failed, || {
            for q in STUDIED_QUERIES {
                let points = wb.processor_sweep(q);
                println!("{}", report::render_ext_procs(q, &points));
            }
        });
        log.record(
            "ext-procs",
            t.elapsed(),
            wb.take_sim_compute(),
            g.end(),
            wb.take_pipeline_stats(),
            wb.take_checkpoint_counts(),
        );
        drain_point_errors(&mut wb, &mut point_errors);
    }

    let total = start.elapsed();
    eprintln!("total wall time: {total:.1?}");
    if let Some(dir) = trace_dir {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if let Some(path) = bench_json {
        // Provenance for the crash campaign: which site (if any) was armed
        // to kill this very process partway through.
        let crash_site = std::env::var(dss_faultkit::crash::ENV_SITE)
            .ok()
            .filter(|s| !s.is_empty());
        let json = log.to_json(
            wb.jobs(),
            wb.gen_jobs(),
            trace_mode,
            scale,
            total,
            &point_errors,
            &failed,
            resume_mode,
            crash_site.as_deref(),
        );
        if let Err(e) = dss_core::write_atomic(Path::new(&path), json.as_bytes()) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("benchmark timings written to {path}");
    }
    if !point_errors.is_empty() || !failed.is_empty() {
        eprintln!(
            "repro: partial results — {} point error(s), {} abandoned experiment(s)",
            point_errors.len(),
            failed.len()
        );
        std::process::exit(3);
    }
}
