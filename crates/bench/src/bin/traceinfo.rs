//! Trace locality analysis for one query — the quantitative version of the
//! paper's Section 3 ("Memory Access Patterns of TPC-D Queries").
//!
//! ```text
//! cargo run -p dss-bench --release --bin traceinfo -- 3      # analyze Q3
//! cargo run -p dss-bench --release --bin traceinfo -- 6 12   # several
//! ```
//!
//! For each query, prints per-data-structure footprints, sequentiality
//! (spatial locality), and reuse-distance histograms (temporal locality) at
//! 64-byte line granularity.

use dss_query::{Database, DbConfig, Session};
use dss_tpcd::params;
use dss_trace::{analyze, DataClass, REUSE_BUCKETS};

fn main() {
    let mut queries: Vec<u8> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.parse() {
            Ok(q) => queries.push(q),
            Err(_) => {
                eprintln!("traceinfo: `{a}` is not a query number (1..17)");
                std::process::exit(2);
            }
        }
    }
    if queries.is_empty() {
        queries = vec![3, 6, 12];
    }

    println!("building the paper-scale database...");
    let mut db = Database::build(&DbConfig::default());

    for q in queries {
        let mut session = Session::new(0);
        let sql = dss_query::sql_for(q, &params(q, 0));
        db.run(&sql, &mut session)
            .unwrap_or_else(|e| panic!("Q{q}: {e}"));
        let trace = session.tracer.take();
        let a = analyze(&trace, 64);

        println!(
            "\n=== Q{q}: {} events, {} distinct 64B lines ===",
            trace.len(),
            a.total_footprint_lines()
        );
        println!(
            "{:>10} {:>10} {:>10} {:>6}  {:>24}  cold%",
            "struct", "refs", "lines", "seq%", "reuse ≤0/16/256/4k/64k"
        );
        for class in DataClass::ALL {
            let c = a.class(class);
            if c.refs == 0 {
                continue;
            }
            let hist: Vec<String> = (0..REUSE_BUCKETS.len())
                .map(|i| {
                    format!(
                        "{:.0}",
                        100.0 * c.reuse.counts[i] as f64 / c.reuse.total().max(1) as f64
                    )
                })
                .collect();
            println!(
                "{:>10} {:>10} {:>10} {:>5.1}%  {:>24}  {:>4.0}%",
                class.label(),
                c.refs,
                c.footprint_lines,
                100.0 * c.sequentiality(),
                hist.join("/"),
                100.0 * c.reuse.cold_fraction(),
            );
        }
    }

    println!(
        "\nReading guide: the paper's claims appear directly — Sequential\n\
         queries show near-total sequentiality and cold reuse on Data; Index\n\
         queries show reused index lines (small reuse distances from the\n\
         b-tree's top levels); private data reuses the same slots constantly.\n\
         The reuse columns double as a working-set curve: a cache of N lines\n\
         captures exactly the reuse at distances <= N (the paper's 'very\n\
         large caches might be needed to capture the whole reuse')."
    );
}
