//! Benchmark support for the DSS workload study.
//!
//! The interesting artifacts live elsewhere:
//!
//! * the `repro` binary (`cargo run -p dss-bench --release --bin repro`)
//!   regenerates every table and figure of the paper and verifies the
//!   qualitative shape checks,
//! * `benches/substrates.rs` and `benches/pipeline.rs` are Criterion
//!   microbenchmarks of the substrates (b-tree, generator, SQL front end,
//!   simulator) and the end-to-end trace/simulate pipeline.
//!
//! This library only hosts small helpers shared by both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dss_query::{Database, DbConfig, Session};
use dss_tpcd::params;
use dss_trace::Trace;

/// Builds a small database suitable for microbenchmarks (scale 1/500).
pub fn bench_database() -> Database {
    Database::build(&DbConfig {
        scale: 0.002,
        nbuffers: 2048,
        ..DbConfig::default()
    })
}

/// Traces one query instance on one simulated processor.
pub fn trace_query(db: &mut Database, query: u8, seed: u64) -> Trace {
    let mut session = Session::new(0);
    let sql = dss_query::sql_for(query, &params(query, seed));
    db.run(&sql, &mut session).expect("benchmark query runs");
    session.tracer.take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_helpers_work() {
        let mut db = bench_database();
        let trace = trace_query(&mut db, 6, 0);
        assert!(!trace.is_empty());
    }
}
