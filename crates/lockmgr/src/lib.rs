//! The Lock Management Module of the emulated Postgres95.
//!
//! Postgres95 grants **data locks** (protecting database data, as opposed to
//! the metalock spinlocks protecting Postgres95's own structures) through a
//! shared-memory module containing two hash tables — the **Lock hash**
//! (lock tag → lock state) and the **Xid hash** (transaction × lock →
//! per-holder state) — all guarded by a single spinlock, **`LockMgrLock`**,
//! which the HPCA'97 paper calls *LockSLock* and identifies as a major source
//! of coherence misses in Index queries: it "is continuously accessed by all
//! processors".
//!
//! Data locks are multi-mode (read/write) and conceptually multi-level
//! (relation, page, tuple), but Postgres95 only fully implements the relation
//! level — a limitation the paper calls out and that is harmless for the
//! read-only queries studied. We model exactly that: [`LockMode`] with a
//! conflict matrix, relation-granularity [`LockTag`]s, and hash-table traffic
//! emitted for every acquire/release.
//!
//! # Example
//!
//! ```
//! use dss_lockmgr::{LockMgr, LockMode, LockResult, Xid};
//! use dss_shmem::AddressSpace;
//! use dss_trace::Tracer;
//!
//! let mut space = AddressSpace::new();
//! let mut mgr = LockMgr::new(&mut space, 256);
//! let t = Tracer::new(0);
//!
//! assert_eq!(mgr.acquire(Xid(1), 7, LockMode::Read, &t), LockResult::Granted);
//! assert_eq!(mgr.acquire(Xid(2), 7, LockMode::Read, &t), LockResult::Granted);
//! assert_eq!(mgr.acquire(Xid(3), 7, LockMode::Write, &t), LockResult::WouldBlock);
//! mgr.release_all(Xid(1), &t);
//! mgr.release_all(Xid(2), &t);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use dss_shmem::AddressSpace;
use dss_trace::{CostModel, DataClass, LockClass, LockToken, Tracer};

/// Modeled size of a Lock-hash entry (tag, grant counts, waiter mask).
pub const LOCK_ENTRY_SIZE: u64 = 64;

/// Modeled size of an Xid-hash entry (xid, tag, per-mode counts).
pub const XID_ENTRY_SIZE: u64 = 32;

/// A transaction identifier; each query execution runs as one transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Xid(pub u32);

/// Data-lock modes. Postgres95's lock types are read and write; the conflict
/// matrix allows shared readers and exclusive writers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LockMode {
    /// Shared read lock.
    Read,
    /// Exclusive write lock.
    Write,
}

impl LockMode {
    /// Whether a holder in `self` mode conflicts with a request in `other`.
    pub fn conflicts_with(self, other: LockMode) -> bool {
        !matches!((self, other), (LockMode::Read, LockMode::Read))
    }

    fn index(self) -> usize {
        match self {
            LockMode::Read => 0,
            LockMode::Write => 1,
        }
    }
}

/// Outcome of a lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockResult {
    /// The lock was granted.
    Granted,
    /// A conflicting holder exists; the caller would have to wait. The
    /// read-only DSS queries never hit this case (the paper: datalock
    /// synchronization time is negligible because there is no contention).
    WouldBlock,
}

/// A lock tag: Postgres95 only fully implements relation-level locking.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LockTag {
    /// The locked relation.
    pub rel: u32,
}

#[derive(Clone, Debug)]
struct LockEntry {
    /// Granted holds per mode (read, write), across all transactions.
    granted: [u32; 2],
    /// Shared-memory slot of this entry.
    slot: u32,
}

#[derive(Clone, Debug)]
struct XidEntry {
    /// Holds per mode by this transaction on this tag.
    held: [u32; 2],
    /// Shared-memory slot of this entry.
    slot: u32,
}

/// The shared lock manager.
///
/// Every operation takes `LockMgrLock`, probes the Lock hash, and updates the
/// Xid hash, emitting classified references throughout — reproducing the
/// metadata traffic that dominates Index queries in the paper.
#[derive(Debug)]
pub struct LockMgr {
    lock: LockToken,
    nbuckets: u64,
    lock_buckets_base: u64,
    lock_entries_base: u64,
    xid_buckets_base: u64,
    xid_entries_base: u64,
    cost: CostModel,
    locks: BTreeMap<LockTag, LockEntry>,
    xids: BTreeMap<(Xid, LockTag), XidEntry>,
    lock_slot_free: Vec<u32>,
    xid_slot_free: Vec<u32>,
    next_lock_slot: u32,
    next_xid_slot: u32,
    capacity: u32,
    /// Running count of acquire calls (for tests and reports).
    acquires: u64,
}

impl LockMgr {
    /// Creates a lock manager with space for `capacity` concurrent lock and
    /// per-transaction entries, mapping its regions into `space`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(space: &mut AddressSpace, capacity: u32) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let nbuckets = (2 * capacity as u64).next_power_of_two();
        let lock_addr = space.map_region("LockMgrLock", DataClass::LockMgrLock, 64, 64);
        let lock_buckets_base =
            space.map_region("lock hash buckets", DataClass::LockHash, nbuckets * 8, 64);
        let lock_entries_base = space.map_region(
            "lock hash entries",
            DataClass::LockHash,
            capacity as u64 * LOCK_ENTRY_SIZE,
            64,
        );
        let xid_buckets_base =
            space.map_region("xid hash buckets", DataClass::XidHash, nbuckets * 8, 64);
        let xid_entries_base = space.map_region(
            "xid hash entries",
            DataClass::XidHash,
            capacity as u64 * XID_ENTRY_SIZE,
            64,
        );
        LockMgr {
            lock: LockToken::new(lock_addr, LockClass::LockMgr),
            nbuckets,
            lock_buckets_base,
            lock_entries_base,
            xid_buckets_base,
            xid_entries_base,
            cost: CostModel::default(),
            locks: BTreeMap::new(),
            xids: BTreeMap::new(),
            lock_slot_free: Vec::new(),
            xid_slot_free: Vec::new(),
            next_lock_slot: 0,
            next_xid_slot: 0,
            capacity,
            acquires: 0,
        }
    }

    /// The `LockMgrLock` spinlock token.
    pub fn lock_token(&self) -> LockToken {
        self.lock
    }

    /// Number of acquire calls so far.
    pub fn acquire_count(&self) -> u64 {
        self.acquires
    }

    /// Requests a `mode` lock on relation `rel` for transaction `xid`.
    ///
    /// Re-acquisition by the same transaction is always granted (Postgres95
    /// holds locks until transaction end and counts re-grants). Returns
    /// [`LockResult::WouldBlock`] when a *different* transaction holds a
    /// conflicting mode; no wait queue is modeled because the paper's
    /// read-only queries never contend on data locks.
    pub fn acquire(&mut self, xid: Xid, rel: u32, mode: LockMode, t: &Tracer) -> LockResult {
        self.acquires += 1;
        let tag = LockTag { rel };
        t.lock_acquire(self.lock);
        t.busy(self.cost.lock_call);
        self.probe_lock_bucket(tag, t);
        // Conflict check against other transactions' holds.
        let own = self.xids.get(&(xid, tag)).map(|e| e.held).unwrap_or([0, 0]);
        let granted = self.locks.get(&tag).map(|e| e.granted).unwrap_or([0, 0]);
        let other = [granted[0] - own[0], granted[1] - own[1]];
        let conflict = match mode {
            LockMode::Read => other[LockMode::Write.index()] > 0,
            LockMode::Write => other[0] + other[1] > 0,
        };
        if conflict && own == [0, 0] {
            t.lock_release(self.lock);
            return LockResult::WouldBlock;
        }
        // Create or update the lock entry.
        let (lock_slot, fresh) = match self.locks.get_mut(&tag) {
            Some(e) => {
                e.granted[mode.index()] += 1;
                (e.slot, false)
            }
            None => {
                let slot = self.take_slot(true);
                let mut granted = [0, 0];
                granted[mode.index()] = 1;
                self.locks.insert(tag, LockEntry { granted, slot });
                (slot, true)
            }
        };
        let entry_addr = self.lock_entries_base + lock_slot as u64 * LOCK_ENTRY_SIZE;
        if fresh {
            // Initialize tag + counters.
            t.write(entry_addr, 24, DataClass::LockHash);
            t.write(
                self.lock_buckets_base + (self.bucket_of_tag(tag) as u64) * 8,
                8,
                DataClass::LockHash,
            );
        } else {
            t.write(entry_addr + 8, 8, DataClass::LockHash);
        }
        // Probe and update the Xid hash.
        self.probe_xid_bucket(xid, tag, t);
        match self.xids.get_mut(&(xid, tag)) {
            Some(e) => {
                e.held[mode.index()] += 1;
                let addr = self.xid_entries_base + e.slot as u64 * XID_ENTRY_SIZE;
                t.write(addr + 8, 8, DataClass::XidHash);
            }
            None => {
                let slot = self.take_slot(false);
                let mut held = [0, 0];
                held[mode.index()] = 1;
                self.xids.insert((xid, tag), XidEntry { held, slot });
                let addr = self.xid_entries_base + slot as u64 * XID_ENTRY_SIZE;
                t.write(addr, 24, DataClass::XidHash);
                t.write(
                    self.xid_buckets_base + (self.bucket_of_xid(xid, tag) as u64) * 8,
                    8,
                    DataClass::XidHash,
                );
            }
        }
        t.lock_release(self.lock);
        LockResult::Granted
    }

    /// Releases one `mode` hold on `rel` by `xid`.
    ///
    /// # Panics
    ///
    /// Panics if the transaction does not hold such a lock.
    pub fn release(&mut self, xid: Xid, rel: u32, mode: LockMode, t: &Tracer) {
        let tag = LockTag { rel };
        t.lock_acquire(self.lock);
        t.busy(self.cost.lock_call);
        self.probe_lock_bucket(tag, t);
        self.probe_xid_bucket(xid, tag, t);
        let xe = self
            .xids
            .get_mut(&(xid, tag))
            .expect("release of unheld lock");
        assert!(xe.held[mode.index()] > 0, "release of unheld mode");
        xe.held[mode.index()] -= 1;
        let xe_addr = self.xid_entries_base + xe.slot as u64 * XID_ENTRY_SIZE;
        t.write(xe_addr + 8, 8, DataClass::XidHash);
        let xe_empty = xe.held == [0, 0];
        let xe_slot = xe.slot;
        if xe_empty {
            self.xids.remove(&(xid, tag));
            self.xid_slot_free.push(xe_slot);
        }
        let le = self.locks.get_mut(&tag).expect("lock entry missing");
        le.granted[mode.index()] -= 1;
        let le_addr = self.lock_entries_base + le.slot as u64 * LOCK_ENTRY_SIZE;
        t.write(le_addr + 8, 8, DataClass::LockHash);
        let le_empty = le.granted == [0, 0];
        let le_slot = le.slot;
        if le_empty {
            self.locks.remove(&tag);
            self.lock_slot_free.push(le_slot);
            t.write(
                self.lock_buckets_base + (self.bucket_of_tag(tag) as u64) * 8,
                8,
                DataClass::LockHash,
            );
        }
        t.lock_release(self.lock);
    }

    /// Releases every hold of transaction `xid` (Postgres95's
    /// `LockReleaseAll`, run at transaction end).
    ///
    /// Release order is deterministic *structurally*: the xid table is a
    /// `BTreeMap` keyed `(Xid, LockTag)`, so ranging over `xid` yields tags
    /// in sorted order — the trace (and therefore the simulation) stays a
    /// pure function of the workload without a collect-and-sort step whose
    /// omission nothing would catch. `dss-check determinism` pins the
    /// structure: a hash table here is a source→sink finding.
    pub fn release_all(&mut self, xid: Xid, t: &Tracer) {
        let mine: Vec<(LockTag, [u32; 2])> = self
            .xids
            .range((xid, LockTag { rel: u32::MIN })..=(xid, LockTag { rel: u32::MAX }))
            .map(|((_, tag), e)| (*tag, e.held))
            .collect();
        for (tag, held) in mine {
            for _ in 0..held[0] {
                self.release(xid, tag.rel, LockMode::Read, t);
            }
            for _ in 0..held[1] {
                self.release(xid, tag.rel, LockMode::Write, t);
            }
        }
    }

    /// Number of modes currently granted on `rel` (for tests).
    pub fn granted(&self, rel: u32) -> [u32; 2] {
        self.locks
            .get(&LockTag { rel })
            .map(|e| e.granted)
            .unwrap_or([0, 0])
    }

    /// Whether `xid` currently holds any lock.
    pub fn holds_any(&self, xid: Xid) -> bool {
        self.xids
            .range((xid, LockTag { rel: u32::MIN })..=(xid, LockTag { rel: u32::MAX }))
            .next()
            .is_some()
    }

    fn take_slot(&mut self, lock_table: bool) -> u32 {
        let (free, next) = if lock_table {
            (&mut self.lock_slot_free, &mut self.next_lock_slot)
        } else {
            (&mut self.xid_slot_free, &mut self.next_xid_slot)
        };
        if let Some(s) = free.pop() {
            return s;
        }
        let s = *next;
        assert!(s < self.capacity, "lock table exhausted");
        *next += 1;
        s
    }

    fn probe_lock_bucket(&self, tag: LockTag, t: &Tracer) {
        let bucket = self.bucket_of_tag(tag);
        t.read(
            self.lock_buckets_base + bucket as u64 * 8,
            8,
            DataClass::LockHash,
        );
        if let Some(e) = self.locks.get(&tag) {
            t.read(
                self.lock_entries_base + e.slot as u64 * LOCK_ENTRY_SIZE,
                16,
                DataClass::LockHash,
            );
        }
    }

    fn probe_xid_bucket(&self, xid: Xid, tag: LockTag, t: &Tracer) {
        let bucket = self.bucket_of_xid(xid, tag);
        t.read(
            self.xid_buckets_base + bucket as u64 * 8,
            8,
            DataClass::XidHash,
        );
        if let Some(e) = self.xids.get(&(xid, tag)) {
            t.read(
                self.xid_entries_base + e.slot as u64 * XID_ENTRY_SIZE,
                16,
                DataClass::XidHash,
            );
        }
    }

    fn bucket_of_tag(&self, tag: LockTag) -> usize {
        ((tag.rel as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) % self.nbuckets) as usize
    }

    fn bucket_of_xid(&self, xid: Xid, tag: LockTag) -> usize {
        let h = (xid.0 as u64)
            .wrapping_mul(0xc2b2_ae3d_27d4_eb4f)
            .wrapping_add((tag.rel as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        (h % self.nbuckets) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_trace::{Event, TraceStats};

    fn mgr() -> LockMgr {
        LockMgr::new(&mut AddressSpace::new(), 64)
    }

    #[test]
    fn conflict_matrix() {
        assert!(!LockMode::Read.conflicts_with(LockMode::Read));
        assert!(LockMode::Read.conflicts_with(LockMode::Write));
        assert!(LockMode::Write.conflicts_with(LockMode::Read));
        assert!(LockMode::Write.conflicts_with(LockMode::Write));
    }

    #[test]
    fn shared_readers_coexist() {
        let mut m = mgr();
        let t = Tracer::disabled();
        assert_eq!(
            m.acquire(Xid(1), 5, LockMode::Read, &t),
            LockResult::Granted
        );
        assert_eq!(
            m.acquire(Xid(2), 5, LockMode::Read, &t),
            LockResult::Granted
        );
        assert_eq!(m.granted(5), [2, 0]);
    }

    #[test]
    fn writer_blocks_on_readers_and_vice_versa() {
        let mut m = mgr();
        let t = Tracer::disabled();
        m.acquire(Xid(1), 5, LockMode::Read, &t);
        assert_eq!(
            m.acquire(Xid(2), 5, LockMode::Write, &t),
            LockResult::WouldBlock
        );
        m.release_all(Xid(1), &t);
        assert_eq!(
            m.acquire(Xid(2), 5, LockMode::Write, &t),
            LockResult::Granted
        );
        assert_eq!(
            m.acquire(Xid(3), 5, LockMode::Read, &t),
            LockResult::WouldBlock
        );
    }

    #[test]
    fn reacquisition_by_holder_is_granted() {
        let mut m = mgr();
        let t = Tracer::disabled();
        assert_eq!(
            m.acquire(Xid(1), 5, LockMode::Write, &t),
            LockResult::Granted
        );
        assert_eq!(
            m.acquire(Xid(1), 5, LockMode::Write, &t),
            LockResult::Granted
        );
        assert_eq!(m.granted(5), [0, 2]);
        m.release(Xid(1), 5, LockMode::Write, &t);
        assert_eq!(m.granted(5), [0, 1]);
    }

    #[test]
    fn release_all_trace_is_independent_of_acquisition_order() {
        // Regression for the `dss-check determinism` finding that motivated
        // the BTreeMap tables: release_all's trace events must be a pure
        // function of the *set* of holds, never of hash-bucket placement.
        // Slot addresses legitimately depend on acquisition order (take_slot
        // hands them out as holds arrive), so across orders we compare the
        // event *shape*; across identical runs the trace must be bit-equal.
        fn release_events(rels: &[u32]) -> Vec<Event> {
            let mut m = mgr();
            let t = Tracer::new(0);
            for &rel in rels {
                m.acquire(Xid(7), rel, LockMode::Read, &t);
            }
            let _ = t.take();
            m.release_all(Xid(7), &t);
            t.take().events
        }
        fn shape(events: &[Event]) -> Vec<String> {
            events
                .iter()
                .map(|e| match e {
                    Event::Ref(r) => {
                        format!("ref {:?} size={} write={}", r.class, r.size, r.write)
                    }
                    Event::Busy(c) => format!("busy {c}"),
                    Event::LockAcquire(tok) => format!("acq {:?}", tok.class),
                    Event::LockRelease(tok) => format!("rel {:?}", tok.class),
                })
                .collect()
        }
        let rels: [u32; 6] = [9, 2, 40, 17, 5, 33];
        let reversed: Vec<u32> = rels.iter().rev().copied().collect();
        let forward = release_events(&rels);
        let forward_again = release_events(&rels);
        let backward = release_events(&reversed);
        assert!(!forward.is_empty(), "release trace");
        assert_eq!(
            forward, forward_again,
            "release_all trace must be bit-identical across identical runs"
        );
        assert_eq!(
            shape(&forward),
            shape(&backward),
            "release_all event shape must not depend on acquisition order"
        );
    }

    #[test]
    fn release_all_clears_everything() {
        let mut m = mgr();
        let t = Tracer::disabled();
        m.acquire(Xid(1), 5, LockMode::Read, &t);
        m.acquire(Xid(1), 6, LockMode::Read, &t);
        m.acquire(Xid(1), 6, LockMode::Read, &t);
        assert!(m.holds_any(Xid(1)));
        m.release_all(Xid(1), &t);
        assert!(!m.holds_any(Xid(1)));
        assert_eq!(m.granted(5), [0, 0]);
        assert_eq!(m.granted(6), [0, 0]);
    }

    #[test]
    fn acquire_emits_lockslock_and_hash_traffic() {
        let mut m = mgr();
        let t = Tracer::new(0);
        m.acquire(Xid(1), 5, LockMode::Read, &t);
        let stats = TraceStats::from_trace(&t.take());
        assert_eq!(stats.lock_acquires, 1, "one LockMgrLock critical section");
        assert!(stats.reads(DataClass::LockHash) >= 1);
        assert!(stats.writes(DataClass::LockHash) >= 1);
        assert!(stats.writes(DataClass::XidHash) >= 1);
    }

    #[test]
    fn would_block_releases_spinlock() {
        let mut m = mgr();
        let setup = Tracer::disabled();
        m.acquire(Xid(1), 5, LockMode::Write, &setup);
        let t = Tracer::new(0);
        assert_eq!(
            m.acquire(Xid(2), 5, LockMode::Read, &t),
            LockResult::WouldBlock
        );
        let stats = TraceStats::from_trace(&t.take());
        assert_eq!(stats.lock_acquires, 1);
        assert_eq!(stats.lock_releases, 1);
    }

    #[test]
    fn slots_are_reused_after_release() {
        let mut m = mgr();
        let t = Tracer::disabled();
        m.acquire(Xid(1), 5, LockMode::Read, &t);
        m.release_all(Xid(1), &t);
        m.acquire(Xid(2), 6, LockMode::Read, &t);
        // Slot 0 freed by the first release must be reused by the second
        // acquire, keeping the entry footprint tiny as the paper observes.
        assert_eq!(m.next_lock_slot, 1);
        assert_eq!(m.next_xid_slot, 1);
        m.release_all(Xid(2), &t);
    }

    #[test]
    #[should_panic(expected = "release of unheld")]
    fn release_without_hold_panics() {
        let mut m = mgr();
        m.release(Xid(1), 5, LockMode::Read, &Tracer::disabled());
    }

    #[test]
    fn distinct_relations_are_independent() {
        let mut m = mgr();
        let t = Tracer::disabled();
        m.acquire(Xid(1), 5, LockMode::Write, &t);
        assert_eq!(
            m.acquire(Xid(2), 6, LockMode::Write, &t),
            LockResult::Granted
        );
    }
}
