//! Property tests: the lock manager agrees with a straightforward reference
//! model of multi-mode relation locking.

use std::collections::BTreeMap;

use dss_lockmgr::{LockMgr, LockMode, LockResult, Xid};
use dss_shmem::AddressSpace;
use dss_trace::Tracer;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Acquire { xid: u32, rel: u32, write: bool },
    ReleaseAll { xid: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u32..4, 0u32..6, any::<bool>())
            .prop_map(|(xid, rel, write)| Op::Acquire { xid, rel, write }),
        1 => (0u32..4).prop_map(|xid| Op::ReleaseAll { xid }),
    ]
}

/// Reference model: per (xid, rel), counts of (read, write) holds.
#[derive(Default)]
struct Model {
    holds: BTreeMap<(u32, u32), [u32; 2]>,
}

impl Model {
    fn acquire(&mut self, xid: u32, rel: u32, mode: LockMode) -> LockResult {
        let own = self.holds.get(&(xid, rel)).copied().unwrap_or([0, 0]);
        let mut other = [0u32; 2];
        for ((x, r), h) in &self.holds {
            if *r == rel && *x != xid {
                other[0] += h[0];
                other[1] += h[1];
            }
        }
        let conflict = match mode {
            LockMode::Read => other[1] > 0,
            LockMode::Write => other[0] + other[1] > 0,
        };
        if conflict && own == [0, 0] {
            return LockResult::WouldBlock;
        }
        let e = self.holds.entry((xid, rel)).or_insert([0, 0]);
        match mode {
            LockMode::Read => e[0] += 1,
            LockMode::Write => e[1] += 1,
        }
        LockResult::Granted
    }

    fn release_all(&mut self, xid: u32) {
        self.holds.retain(|(x, _), _| *x != xid);
    }

    fn granted(&self, rel: u32) -> [u32; 2] {
        let mut total = [0u32; 2];
        for ((_, r), h) in &self.holds {
            if *r == rel {
                total[0] += h[0];
                total[1] += h[1];
            }
        }
        total
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every grant/deny decision and every per-relation hold count matches
    /// the reference model through arbitrary operation sequences.
    #[test]
    fn matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut space = AddressSpace::new();
        let mut mgr = LockMgr::new(&mut space, 256);
        let mut model = Model::default();
        let t = Tracer::disabled();
        for op in ops {
            match op {
                Op::Acquire { xid, rel, write } => {
                    let mode = if write { LockMode::Write } else { LockMode::Read };
                    let got = mgr.acquire(Xid(xid), rel, mode, &t);
                    let want = model.acquire(xid, rel, mode);
                    prop_assert_eq!(got, want, "acquire x{} r{} {:?}", xid, rel, mode);
                }
                Op::ReleaseAll { xid } => {
                    mgr.release_all(Xid(xid), &t);
                    model.release_all(xid);
                }
            }
            for rel in 0..6 {
                prop_assert_eq!(mgr.granted(rel), model.granted(rel), "rel {}", rel);
            }
        }
        // Cleanup: releasing everyone leaves the manager empty.
        for xid in 0..4 {
            mgr.release_all(Xid(xid), &t);
        }
        for rel in 0..6 {
            prop_assert_eq!(mgr.granted(rel), [0, 0]);
        }
    }
}
