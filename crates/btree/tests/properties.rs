//! Property tests: the traced b-tree agrees with `std::collections::BTreeMap`.

use std::collections::BTreeMap;

use dss_btree::{BTree, Key, TupleId};
use dss_bufcache::BufferPool;
use dss_shmem::AddressSpace;
use dss_trace::Tracer;
use proptest::prelude::*;

fn pool(nbuffers: u32) -> BufferPool {
    BufferPool::new(&mut AddressSpace::new(), nbuffers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A bulk-built tree answers arbitrary range queries exactly like a
    /// reference ordered map.
    #[test]
    fn bulk_build_range_queries_match_btreemap(
        keys in proptest::collection::btree_set(-10_000i64..10_000, 0..800),
        ranges in proptest::collection::vec((-10_000i64..10_000, -10_000i64..10_000), 1..10),
    ) {
        let reference: BTreeMap<i64, u32> =
            keys.iter().enumerate().map(|(i, k)| (*k, i as u32)).collect();
        let entries: Vec<(Key, TupleId)> =
            reference.iter().map(|(k, v)| (Key::int(*k), TupleId::new(0, *v))).collect();
        let mut pool = pool(256);
        let tree = BTree::bulk_build(&mut pool, 1, &entries);
        let t = Tracer::disabled();
        for (a, b) in ranges {
            let (lo, hi) = (a.min(b), a.max(b));
            let got: Vec<u32> = tree
                .lookup_range(&mut pool, &t, Key::int(lo), Key::int(hi))
                .into_iter()
                .map(|(_, tid)| tid.slot)
                .collect();
            let want: Vec<u32> = reference.range(lo..=hi).map(|(_, v)| *v).collect();
            prop_assert_eq!(got, want);
        }
    }

    /// Incremental inserts (with splits) agree with the reference map,
    /// including duplicate keys.
    #[test]
    fn inserts_match_reference(
        ops in proptest::collection::vec((-500i64..500, 0u32..4), 1..600),
    ) {
        let mut pool = pool(512);
        let t = Tracer::disabled();
        let mut tree = BTree::create(&mut pool, 1);
        let mut reference: Vec<(i64, u32)> = Vec::new();
        for (i, (k, dup)) in ops.iter().enumerate() {
            tree.insert(&mut pool, &t, Key::int(*k), TupleId::new(*dup, i as u32));
            reference.push((*k, i as u32));
        }
        let mut got: Vec<(i64, u32)> = tree
            .lookup_range(&mut pool, &t, Key::MIN, Key::MAX)
            .into_iter()
            .map(|(k, tid)| ((k.hi ^ (1 << 63)) as i64, tid.slot))
            .collect();
        reference.sort();
        got.sort();
        prop_assert_eq!(got, reference);
    }

    /// Scans never leave pages pinned, whatever the bounds.
    #[test]
    fn scans_release_all_pins(
        n in 1usize..2000,
        lo in -3000i64..3000,
        span in 0i64..2000,
    ) {
        let mut pool = pool(256);
        let entries: Vec<(Key, TupleId)> =
            (0..n).map(|i| (Key::int(i as i64), TupleId::new(0, i as u32))).collect();
        let tree = BTree::bulk_build(&mut pool, 1, &entries);
        let t = Tracer::disabled();
        let _ = tree.lookup_range(&mut pool, &t, Key::int(lo), Key::int(lo + span));
        for block in 0..pool.rel_len(1) {
            let buf = pool.lookup(dss_bufcache::PageId::new(1, block)).unwrap();
            prop_assert_eq!(pool.refcount(buf), 0);
        }
    }
}
