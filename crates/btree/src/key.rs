//! Order-preserving 128-bit index keys.

/// A fixed-width, order-preserving b-tree key.
///
/// Postgres95 index tuples carry variable-width attribute values; our b-tree
/// instead encodes every key into two big-endian-comparable words, which
/// preserves the paper-relevant behavior (comparisons read key bytes from the
/// index page) while keeping node layout fixed. Encodings:
///
/// * integers and dates — order-preserving bias into the high word,
/// * strings — first eight bytes into the high word (TPC-D's categorical
///   attributes are distinct within eight bytes; equality is re-checked on
///   the heap tuple by the executor, so collisions would only cost extra
///   fetches, never wrong results),
/// * composites — second component in the low word.
///
/// # Example
///
/// ```
/// use dss_btree::Key;
///
/// assert!(Key::int(-5) < Key::int(3));
/// assert!(Key::str8("AIR") < Key::str8("TRUCK"));
/// assert!(Key::int_pair(7, 1) < Key::int_pair(7, 2));
/// assert_eq!(Key::int(42).min_in_group(), Key::int_pair(42, i64::MIN));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Key {
    /// Primary comparison word.
    pub hi: u64,
    /// Secondary comparison word.
    pub lo: u64,
}

/// Order-preserving map from `i64` to `u64`.
fn bias(v: i64) -> u64 {
    (v as u64) ^ (1 << 63)
}

impl Key {
    /// The smallest possible key.
    pub const MIN: Key = Key { hi: 0, lo: 0 };
    /// The largest possible key.
    pub const MAX: Key = Key {
        hi: u64::MAX,
        lo: u64::MAX,
    };

    /// Builds a key from raw words.
    pub fn from_words(hi: u64, lo: u64) -> Key {
        Key { hi, lo }
    }

    /// Encodes a single integer (or date day-number, or decimal hundredths).
    pub fn int(v: i64) -> Key {
        Key { hi: bias(v), lo: 0 }
    }

    /// Encodes an integer pair, ordered by `a` then `b`.
    pub fn int_pair(a: i64, b: i64) -> Key {
        Key {
            hi: bias(a),
            lo: bias(b),
        }
    }

    /// Encodes the first eight bytes of a string (shorter strings are
    /// zero-padded, longer ones truncated).
    pub fn str8(s: &str) -> Key {
        let mut buf = [0u8; 8];
        let bytes = s.as_bytes();
        let n = bytes.len().min(8);
        buf[..n].copy_from_slice(&bytes[..n]);
        Key {
            hi: u64::from_be_bytes(buf),
            lo: 0,
        }
    }

    /// Encodes a string prefix plus an integer, ordered by string then value.
    pub fn str8_int(s: &str, v: i64) -> Key {
        Key {
            hi: Key::str8(s).hi,
            lo: bias(v),
        }
    }

    /// Smallest key sharing this key's high word: the lower bound of a range
    /// scan over a group (all entries with the same leading attribute).
    pub fn min_in_group(self) -> Key {
        Key { hi: self.hi, lo: 0 }
    }

    /// Largest key sharing this key's high word: the upper bound of a group
    /// range scan.
    pub fn max_in_group(self) -> Key {
        Key {
            hi: self.hi,
            lo: u64::MAX,
        }
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:#018x},{:#018x})", self.hi, self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_encoding_preserves_order() {
        let vals = [i64::MIN, -100, -1, 0, 1, 7, i64::MAX];
        for w in vals.windows(2) {
            assert!(Key::int(w[0]) < Key::int(w[1]), "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn pair_encoding_orders_lexicographically() {
        assert!(Key::int_pair(1, 100) < Key::int_pair(2, -100));
        assert!(Key::int_pair(1, -1) < Key::int_pair(1, 0));
    }

    #[test]
    fn str_encoding_orders_like_strings() {
        let words = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
        for w in words.windows(2) {
            assert!(Key::str8(w[0]) < Key::str8(w[1]), "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn group_bounds_bracket_members() {
        let probe = Key::str8_int("AUTOMOBILE", 55);
        let lo = Key::str8("AUTOMOBILE").min_in_group();
        let hi = Key::str8("AUTOMOBILE").max_in_group();
        assert!(lo <= probe && probe <= hi);
        assert!(hi < Key::str8("BUILDING").min_in_group());
    }

    #[test]
    fn min_max_are_extreme() {
        assert!(Key::MIN <= Key::int(i64::MIN));
        assert!(Key::MAX >= Key::str8_int("\u{10FFFF}", i64::MAX));
    }

    #[test]
    fn long_strings_truncate_consistently() {
        // Both longer than 8 bytes with equal prefixes: equal keys.
        assert_eq!(Key::str8("DELIVER IN PERSON"), Key::str8("DELIVER IS"));
    }
}
