//! On-page node layout.
//!
//! Each b-tree node occupies one 8 KB buffer block:
//!
//! ```text
//! offset 0   u32 kind (0 = leaf, 1 = internal)
//! offset 4   u32 nkeys
//! offset 8   u32 right-sibling block (u32::MAX = none)
//! offset 12  u32 level (0 at leaves)
//! offset 32  entries, 24 bytes each: key.hi, key.lo, payload
//! ```
//!
//! The payload is a packed [`TupleId`] in leaves and a child block number in
//! internal nodes.

use dss_bufcache::{BufId, BufferPool, BLOCK_SIZE};

use crate::Key;

/// Node header size in bytes.
pub const HEADER_SIZE: usize = 32;
/// Entry size in bytes (16-byte key + 8-byte payload).
pub const ENTRY_SIZE: usize = 24;
/// Maximum entries per node.
pub const CAPACITY: usize = (BLOCK_SIZE as usize - HEADER_SIZE) / ENTRY_SIZE;
/// Sentinel for "no right sibling".
pub const NO_BLOCK: u32 = u32::MAX;

const KIND_OFF: usize = 0;
const NKEYS_OFF: usize = 4;
const RIGHT_OFF: usize = 8;
const LEVEL_OFF: usize = 12;

/// Heap tuple locator stored in leaf entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId {
    /// Heap block number within the indexed relation.
    pub block: u32,
    /// Slot within the heap page.
    pub slot: u32,
}

impl TupleId {
    /// Creates a tuple id.
    pub fn new(block: u32, slot: u32) -> Self {
        TupleId { block, slot }
    }

    /// Packs into a 8-byte payload word.
    pub fn pack(self) -> u64 {
        (self.block as u64) << 32 | self.slot as u64
    }

    /// Unpacks from a payload word.
    pub fn unpack(word: u64) -> Self {
        TupleId {
            block: (word >> 32) as u32,
            slot: word as u32,
        }
    }
}

/// Node kind discriminant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Leaf node: payloads are heap tuple ids.
    Leaf,
    /// Internal node: payloads are child block numbers.
    Internal,
}

pub(crate) fn init_node(pool: &mut BufferPool, buf: BufId, kind: NodeKind, level: u32) {
    pool.put_u32(buf, KIND_OFF, matches!(kind, NodeKind::Internal) as u32);
    pool.put_u32(buf, NKEYS_OFF, 0);
    pool.put_u32(buf, RIGHT_OFF, NO_BLOCK);
    pool.put_u32(buf, LEVEL_OFF, level);
}

pub(crate) fn kind(pool: &BufferPool, buf: BufId) -> NodeKind {
    if pool.get_u32(buf, KIND_OFF) == 0 {
        NodeKind::Leaf
    } else {
        NodeKind::Internal
    }
}

pub(crate) fn nkeys(pool: &BufferPool, buf: BufId) -> usize {
    pool.get_u32(buf, NKEYS_OFF) as usize
}

pub(crate) fn set_nkeys(pool: &mut BufferPool, buf: BufId, n: usize) {
    pool.put_u32(buf, NKEYS_OFF, n as u32);
}

pub(crate) fn right(pool: &BufferPool, buf: BufId) -> u32 {
    pool.get_u32(buf, RIGHT_OFF)
}

pub(crate) fn set_right(pool: &mut BufferPool, buf: BufId, block: u32) {
    pool.put_u32(buf, RIGHT_OFF, block);
}

pub(crate) fn entry_off(i: usize) -> usize {
    HEADER_SIZE + i * ENTRY_SIZE
}

pub(crate) fn entry_key(pool: &BufferPool, buf: BufId, i: usize) -> Key {
    let off = entry_off(i);
    Key::from_words(pool.get_u64(buf, off), pool.get_u64(buf, off + 8))
}

pub(crate) fn entry_payload(pool: &BufferPool, buf: BufId, i: usize) -> u64 {
    pool.get_u64(buf, entry_off(i) + 16)
}

pub(crate) fn write_entry(pool: &mut BufferPool, buf: BufId, i: usize, key: Key, payload: u64) {
    let off = entry_off(i);
    pool.put_u64(buf, off, key.hi);
    pool.put_u64(buf, off + 8, key.lo);
    pool.put_u64(buf, off + 16, payload);
}

/// Shifts entries `[i, nkeys)` right by one and writes the new entry at `i`.
pub(crate) fn insert_entry_at(pool: &mut BufferPool, buf: BufId, i: usize, key: Key, payload: u64) {
    let n = nkeys(pool, buf);
    assert!(n < CAPACITY, "node overflow");
    let mut j = n;
    while j > i {
        let k = entry_key(pool, buf, j - 1);
        let p = entry_payload(pool, buf, j - 1);
        write_entry(pool, buf, j, k, p);
        j -= 1;
    }
    write_entry(pool, buf, i, key, payload);
    set_nkeys(pool, buf, n + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_shmem::AddressSpace;

    #[test]
    fn tuple_id_roundtrips() {
        for (b, s) in [(0u32, 0u32), (1, 2), (u32::MAX - 1, 65_535), (1234, 56)] {
            let tid = TupleId::new(b, s);
            assert_eq!(TupleId::unpack(tid.pack()), tid);
        }
    }

    #[test]
    fn capacity_is_large() {
        // 8 KB pages hold a few hundred 24-byte entries.
        assert_eq!(CAPACITY, (8192 - 32) / 24);
        const _: () = assert!(CAPACITY >= 300);
    }

    #[test]
    fn header_and_entries_roundtrip() {
        let mut space = AddressSpace::new();
        let mut pool = BufferPool::new(&mut space, 4);
        let page = pool.alloc_page(1);
        let buf = pool.lookup(page).unwrap();
        init_node(&mut pool, buf, NodeKind::Leaf, 0);
        assert_eq!(kind(&pool, buf), NodeKind::Leaf);
        assert_eq!(nkeys(&pool, buf), 0);
        assert_eq!(right(&pool, buf), NO_BLOCK);

        write_entry(&mut pool, buf, 0, Key::int(5), TupleId::new(3, 4).pack());
        set_nkeys(&mut pool, buf, 1);
        assert_eq!(entry_key(&pool, buf, 0), Key::int(5));
        assert_eq!(
            TupleId::unpack(entry_payload(&pool, buf, 0)),
            TupleId::new(3, 4)
        );
    }

    #[test]
    fn insert_entry_shifts_suffix() {
        let mut space = AddressSpace::new();
        let mut pool = BufferPool::new(&mut space, 4);
        let page = pool.alloc_page(1);
        let buf = pool.lookup(page).unwrap();
        init_node(&mut pool, buf, NodeKind::Leaf, 0);
        for (i, v) in [10i64, 30, 40].iter().enumerate() {
            insert_entry_at(&mut pool, buf, i, Key::int(*v), *v as u64);
        }
        insert_entry_at(&mut pool, buf, 1, Key::int(20), 20);
        let keys: Vec<Key> = (0..nkeys(&pool, buf))
            .map(|i| entry_key(&pool, buf, i))
            .collect();
        assert_eq!(
            keys,
            vec![Key::int(10), Key::int(20), Key::int(30), Key::int(40)]
        );
        assert_eq!(entry_payload(&pool, buf, 1), 20);
    }
}
