//! B+-tree indices for the emulated Postgres95.
//!
//! Postgres95 stores b-tree indices in the same 8 KB shared buffer blocks as
//! heap data; the HPCA'97 paper attributes a large share of an *Index*
//! query's misses to them and observes that "the top levels of the index
//! b-tree are traversed very frequently" (temporal locality) while leaf-level
//! range scans read "consecutive locations" (spatial locality). This crate
//! reproduces that access pattern:
//!
//! * [`Key`] — fixed-width, order-preserving key encodings for the TPC-D
//!   attribute types (integers, dates, decimals, string prefixes, pairs).
//! * [`BTree`] — create/bulk-build/insert plus traced range scans whose node
//!   probes emit [`dss_trace::DataClass::Index`] references and whose page
//!   pins flow through the instrumented buffer manager.
//! * [`Cursor`] — a positioned scan that keeps its current leaf pinned and
//!   follows right-sibling links, like the real access method.
//!
//! See [`BTree`] for a complete example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod key;
mod node;
mod tree;

pub use key::Key;
pub use node::{NodeKind, TupleId, CAPACITY, ENTRY_SIZE, HEADER_SIZE};
pub use tree::{BTree, Cursor};
