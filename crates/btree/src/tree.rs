//! The b-tree proper: build, insert, and traced range scans.

use dss_bufcache::{BufId, BufferPool, PageId};
use dss_trace::{CostModel, DataClass, Tracer};

use crate::node::{
    entry_key, entry_off, entry_payload, init_node, insert_entry_at, kind, nkeys, right, set_nkeys,
    set_right, write_entry, NodeKind, CAPACITY, NO_BLOCK,
};
use crate::{Key, TupleId};

/// Bulk-build fill factor: nodes are filled to 70 %, like Postgres.
const FILL: usize = CAPACITY * 7 / 10;

/// A B+-tree index over heap tuples, stored in buffer pages.
///
/// Every traced operation emits [`DataClass::Index`] references against the
/// page addresses of the nodes it touches, plus the buffer-manager metadata
/// traffic of pinning those pages — reproducing the paper's observation that
/// Index queries combine index misses (good spatial locality, reused top
/// levels) with lock/buffer metadata misses.
///
/// # Example
///
/// ```
/// use dss_btree::{BTree, Key, TupleId};
/// use dss_bufcache::BufferPool;
/// use dss_shmem::AddressSpace;
/// use dss_trace::Tracer;
///
/// let mut space = AddressSpace::new();
/// let mut pool = BufferPool::new(&mut space, 64);
/// let t = Tracer::disabled();
///
/// let entries: Vec<(Key, TupleId)> =
///     (0..1000).map(|i| (Key::int(i), TupleId::new(0, i as u32))).collect();
/// let tree = BTree::bulk_build(&mut pool, 42, &entries);
///
/// let mut cursor = tree.scan_range(&mut pool, &t, Key::int(10), Key::int(12));
/// let mut hits = Vec::new();
/// while let Some((key, tid)) = cursor.next(&mut pool, &t) {
///     hits.push((key, tid));
/// }
/// assert_eq!(hits.len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct BTree {
    rel: u32,
    root: u32,
    height: u32,
    len: u64,
}

impl BTree {
    /// Creates an empty tree whose pages belong to relation `rel`.
    pub fn create(pool: &mut BufferPool, rel: u32) -> Self {
        let page = pool.alloc_page(rel);
        let buf = pool.lookup(page).expect("just allocated");
        init_node(pool, buf, NodeKind::Leaf, 0);
        BTree {
            rel,
            root: page.block,
            height: 1,
            len: 0,
        }
    }

    /// Bulk-builds a tree from entries sorted by key (duplicates allowed),
    /// filling nodes to 70 %. Emits no references: the paper builds the
    /// database before tracing starts.
    ///
    /// # Panics
    ///
    /// Panics if the entries are not sorted by key.
    pub fn bulk_build(pool: &mut BufferPool, rel: u32, entries: &[(Key, TupleId)]) -> Self {
        if entries.is_empty() {
            return BTree::create(pool, rel);
        }
        for w in entries.windows(2) {
            assert!(w[0].0 <= w[1].0, "bulk_build requires sorted entries");
        }
        // Build the leaf level.
        let mut level: Vec<(Key, u32)> = Vec::new();
        let mut prev: Option<BufId> = None;
        for chunk in entries.chunks(FILL) {
            let page = pool.alloc_page(rel);
            let buf = pool.lookup(page).expect("just allocated");
            init_node(pool, buf, NodeKind::Leaf, 0);
            for (i, (k, tid)) in chunk.iter().enumerate() {
                write_entry(pool, buf, i, *k, tid.pack());
            }
            set_nkeys(pool, buf, chunk.len());
            if let Some(p) = prev {
                set_right(pool, p, page.block);
            }
            prev = Some(buf);
            level.push((chunk[0].0, page.block));
        }
        // Build internal levels until a single root remains.
        let mut height = 1;
        while level.len() > 1 {
            height += 1;
            let mut next_level = Vec::new();
            for chunk in level.chunks(FILL) {
                let page = pool.alloc_page(rel);
                let buf = pool.lookup(page).expect("just allocated");
                init_node(pool, buf, NodeKind::Internal, height - 1);
                for (i, (k, child)) in chunk.iter().enumerate() {
                    write_entry(pool, buf, i, *k, *child as u64);
                }
                set_nkeys(pool, buf, chunk.len());
                next_level.push((chunk[0].0, page.block));
            }
            level = next_level;
        }
        BTree {
            rel,
            root: level[0].1,
            height,
            len: entries.len() as u64,
        }
    }

    /// The relation id owning this tree's pages.
    pub fn rel(&self) -> u32 {
        self.rel
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of levels (1 for a lone leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Inserts an entry, splitting nodes as needed. Emits traced index
    /// references when `t` is enabled.
    pub fn insert(&mut self, pool: &mut BufferPool, t: &Tracer, key: Key, tid: TupleId) {
        let cost = CostModel::default();
        // Descend, remembering the path of (block, child index).
        let mut path: Vec<(u32, usize)> = Vec::new();
        let mut block = self.root;
        loop {
            let buf = pool.pin(PageId::new(self.rel, block), t);
            self.trace_header(pool, buf, t);
            match kind(pool, buf) {
                NodeKind::Leaf => {
                    let idx = self.search_node(pool, buf, key, t, &cost);
                    if nkeys(pool, buf) < CAPACITY {
                        insert_entry_at(pool, buf, idx, key, tid.pack());
                        let addr = pool.page_addr(buf, entry_off(idx) as u64);
                        t.write(addr, 24, DataClass::Index);
                        pool.unpin(buf, t);
                    } else {
                        pool.unpin(buf, t);
                        self.split_and_insert(pool, t, &path, block, key, tid.pack(), true);
                    }
                    self.len += 1;
                    return;
                }
                NodeKind::Internal => {
                    let idx = self.child_index(pool, buf, key, t, &cost);
                    let child = entry_payload(pool, buf, idx) as u32;
                    let addr = pool.page_addr(buf, entry_off(idx) as u64 + 16);
                    t.read(addr, 8, DataClass::Index);
                    pool.unpin(buf, t);
                    path.push((block, idx));
                    block = child;
                }
            }
        }
    }

    /// Opens a cursor positioned at the first entry with `key >= lo`; the
    /// cursor yields entries until `key > hi`.
    ///
    /// The descent pins one node per level (through the buffer manager, with
    /// its metadata traffic) and binary-searches each, emitting an
    /// [`DataClass::Index`] read per probed key — the repeated top-level
    /// probes are the index temporal locality the paper measures.
    pub fn scan_range(&self, pool: &mut BufferPool, t: &Tracer, lo: Key, hi: Key) -> Cursor {
        let cost = CostModel::default();
        let mut block = self.root;
        loop {
            let buf = pool.pin(PageId::new(self.rel, block), t);
            self.trace_header(pool, buf, t);
            match kind(pool, buf) {
                NodeKind::Leaf => {
                    let idx = self.search_node(pool, buf, lo, t, &cost);
                    return Cursor {
                        rel: self.rel,
                        hi,
                        block,
                        buf: Some(buf),
                        idx,
                    };
                }
                NodeKind::Internal => {
                    let idx = self.child_index(pool, buf, lo, t, &cost);
                    let child = entry_payload(pool, buf, idx) as u32;
                    let addr = pool.page_addr(buf, entry_off(idx) as u64 + 16);
                    t.read(addr, 8, DataClass::Index);
                    pool.unpin(buf, t);
                    block = child;
                }
            }
        }
    }

    /// Collects all entries in `[lo, hi]` (convenience over [`BTree::scan_range`]).
    pub fn lookup_range(
        &self,
        pool: &mut BufferPool,
        t: &Tracer,
        lo: Key,
        hi: Key,
    ) -> Vec<(Key, TupleId)> {
        let mut cursor = self.scan_range(pool, t, lo, hi);
        let mut out = Vec::new();
        while let Some(hit) = cursor.next(pool, t) {
            out.push(hit);
        }
        out
    }

    fn trace_header(&self, pool: &BufferPool, buf: BufId, t: &Tracer) {
        let addr = pool.page_addr(buf, 0);
        t.read(addr, 8, DataClass::Index);
    }

    /// First index in a leaf whose key is `>= target`.
    fn search_node(
        &self,
        pool: &BufferPool,
        buf: BufId,
        target: Key,
        t: &Tracer,
        cost: &CostModel,
    ) -> usize {
        let n = nkeys(pool, buf);
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = (lo + hi) / 2;
            t.busy(cost.btree_step);
            let addr = pool.page_addr(buf, entry_off(mid) as u64);
            t.read(addr, 16, DataClass::Index);
            if entry_key(pool, buf, mid) < target {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Child slot to descend into: the last entry with key `<= target`
    /// (clamped to 0).
    fn child_index(
        &self,
        pool: &BufferPool,
        buf: BufId,
        target: Key,
        t: &Tracer,
        cost: &CostModel,
    ) -> usize {
        let first_ge = self.search_node(pool, buf, target, t, cost);
        let n = nkeys(pool, buf);
        if first_ge < n && entry_key(pool, buf, first_ge) == target {
            first_ge
        } else {
            first_ge.saturating_sub(1).min(n.saturating_sub(1))
        }
    }

    /// Splits the full node `block` (found via `path`) and inserts
    /// `(key, payload)` into the appropriate half, propagating upward.
    // The split carries pool, tracer, path, separators, and both halves'
    // coordinates; they are one operation's state, not a reusable bundle.
    #[allow(clippy::too_many_arguments)]
    fn split_and_insert(
        &mut self,
        pool: &mut BufferPool,
        t: &Tracer,
        path: &[(u32, usize)],
        block: u32,
        key: Key,
        payload: u64,
        leaf: bool,
    ) {
        let buf = pool.pin(PageId::new(self.rel, block), t);
        let n = nkeys(pool, buf);
        let mid = n / 2;
        let new_page = pool.alloc_page(self.rel);
        let new_buf = pool.lookup(new_page).expect("just allocated");
        init_node(
            pool,
            new_buf,
            if leaf {
                NodeKind::Leaf
            } else {
                NodeKind::Internal
            },
            0,
        );
        // Move the upper half.
        for i in mid..n {
            let k = entry_key(pool, buf, i);
            let p = entry_payload(pool, buf, i);
            write_entry(pool, new_buf, i - mid, k, p);
        }
        set_nkeys(pool, new_buf, n - mid);
        set_nkeys(pool, buf, mid);
        if leaf {
            set_right(pool, new_buf, right(pool, buf));
            set_right(pool, buf, new_page.block);
        }
        let sep = entry_key(pool, new_buf, 0);
        // Insert the pending entry into the proper half.
        let (target_buf, target_block) = if key < sep {
            (buf, block)
        } else {
            (new_buf, new_page.block)
        };
        let idx = self.search_node(pool, target_buf, key, t, &CostModel::default());
        insert_entry_at(pool, target_buf, idx, key, payload);
        let addr = pool.page_addr(target_buf, entry_off(idx) as u64);
        t.write(addr, 24, DataClass::Index);
        let _ = target_block;
        pool.unpin(buf, t);
        // Propagate the separator into the parent.
        match path.split_last() {
            Some(((parent_block, _), rest)) => {
                let parent_buf = pool.pin(PageId::new(self.rel, *parent_block), t);
                if nkeys(pool, parent_buf) < CAPACITY {
                    let pidx = self.search_node(pool, parent_buf, sep, t, &CostModel::default());
                    insert_entry_at(pool, parent_buf, pidx, sep, new_page.block as u64);
                    pool.unpin(parent_buf, t);
                } else {
                    pool.unpin(parent_buf, t);
                    self.split_and_insert(
                        pool,
                        t,
                        rest,
                        *parent_block,
                        sep,
                        new_page.block as u64,
                        false,
                    );
                }
            }
            None => {
                // Splitting the root: grow the tree.
                let root_page = pool.alloc_page(self.rel);
                let root_buf = pool.lookup(root_page).expect("just allocated");
                init_node(pool, root_buf, NodeKind::Internal, self.height);
                let old_first = {
                    let old_buf = pool.pin(PageId::new(self.rel, block), t);
                    let k = entry_key(pool, old_buf, 0);
                    pool.unpin(old_buf, t);
                    k
                };
                write_entry(pool, root_buf, 0, old_first, block as u64);
                write_entry(pool, root_buf, 1, sep, new_page.block as u64);
                set_nkeys(pool, root_buf, 2);
                self.root = root_page.block;
                self.height += 1;
            }
        }
    }
}

/// A positioned range-scan cursor.
///
/// Keeps the current leaf pinned between calls (as Postgres does) and moves
/// through right-sibling links; reaching the end — or [`Cursor::close`] —
/// unpins it.
#[derive(Debug)]
pub struct Cursor {
    rel: u32,
    hi: Key,
    block: u32,
    buf: Option<BufId>,
    idx: usize,
}

impl Cursor {
    /// Advances to the next entry within the scan bounds.
    pub fn next(&mut self, pool: &mut BufferPool, t: &Tracer) -> Option<(Key, TupleId)> {
        loop {
            let buf = self.buf?;
            if self.idx >= nkeys(pool, buf) {
                // Advance to the right sibling.
                let next = right(pool, buf);
                let addr = pool.page_addr(buf, 8);
                t.read(addr, 4, DataClass::Index);
                pool.unpin(buf, t);
                if next == NO_BLOCK {
                    self.buf = None;
                    return None;
                }
                let nbuf = pool.pin(PageId::new(self.rel, next), t);
                t.read(pool.page_addr(nbuf, 0), 8, DataClass::Index);
                self.block = next;
                self.buf = Some(nbuf);
                self.idx = 0;
                continue;
            }
            let addr = pool.page_addr(buf, entry_off(self.idx) as u64);
            t.read(addr, 24, DataClass::Index);
            let key = entry_key(pool, buf, self.idx);
            if key > self.hi {
                pool.unpin(buf, t);
                self.buf = None;
                return None;
            }
            let tid = TupleId::unpack(entry_payload(pool, buf, self.idx));
            self.idx += 1;
            return Some((key, tid));
        }
    }

    /// Releases the cursor's pin early; safe to call repeatedly.
    pub fn close(&mut self, pool: &mut BufferPool, t: &Tracer) {
        if let Some(buf) = self.buf.take() {
            pool.unpin(buf, t);
        }
    }

    /// Whether the cursor has been exhausted or closed.
    pub fn is_closed(&self) -> bool {
        self.buf.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_shmem::AddressSpace;
    use dss_trace::TraceStats;

    fn setup(nbuffers: u32) -> (BufferPool, Tracer) {
        let mut space = AddressSpace::new();
        (BufferPool::new(&mut space, nbuffers), Tracer::disabled())
    }

    fn collect(tree: &BTree, pool: &mut BufferPool, lo: Key, hi: Key) -> Vec<(Key, TupleId)> {
        tree.lookup_range(pool, &Tracer::disabled(), lo, hi)
    }

    #[test]
    fn empty_tree_scans_empty() {
        let (mut pool, _t) = setup(8);
        let tree = BTree::create(&mut pool, 1);
        assert!(tree.is_empty());
        assert_eq!(collect(&tree, &mut pool, Key::MIN, Key::MAX), vec![]);
    }

    #[test]
    fn bulk_build_finds_every_key() {
        let (mut pool, _t) = setup(64);
        let entries: Vec<(Key, TupleId)> = (0..5000)
            .map(|i| {
                (
                    Key::int(i),
                    TupleId::new((i / 100) as u32, (i % 100) as u32),
                )
            })
            .collect();
        let tree = BTree::bulk_build(&mut pool, 1, &entries);
        assert_eq!(tree.len(), 5000);
        assert!(tree.height() >= 2);
        for probe in [0i64, 1, 499, 2500, 4999] {
            let hits = collect(&tree, &mut pool, Key::int(probe), Key::int(probe));
            assert_eq!(hits.len(), 1, "probe {probe}");
            assert_eq!(
                hits[0].1,
                TupleId::new((probe / 100) as u32, (probe % 100) as u32)
            );
        }
        assert!(collect(&tree, &mut pool, Key::int(5000), Key::int(9000)).is_empty());
    }

    #[test]
    fn range_scan_is_sorted_and_complete() {
        let (mut pool, _t) = setup(64);
        let entries: Vec<(Key, TupleId)> = (0..3000)
            .map(|i| (Key::int(i * 2), TupleId::new(0, i as u32)))
            .collect();
        let tree = BTree::bulk_build(&mut pool, 1, &entries);
        let hits = collect(&tree, &mut pool, Key::int(100), Key::int(200));
        assert_eq!(hits.len(), 51); // 100,102..200
        assert!(hits.windows(2).all(|w| w[0].0 < w[1].0));
        // Bounds that fall between keys.
        let hits = collect(&tree, &mut pool, Key::int(99), Key::int(101));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, Key::int(100));
    }

    #[test]
    fn duplicates_are_all_returned() {
        let (mut pool, _t) = setup(64);
        let mut entries = Vec::new();
        for i in 0..100i64 {
            for dup in 0..20u32 {
                entries.push((Key::int(i), TupleId::new(i as u32, dup)));
            }
        }
        let tree = BTree::bulk_build(&mut pool, 1, &entries);
        let hits = collect(&tree, &mut pool, Key::int(42), Key::int(42));
        assert_eq!(hits.len(), 20);
        assert!(hits.iter().all(|(k, _)| *k == Key::int(42)));
    }

    #[test]
    fn insert_matches_bulk_build() {
        let (mut pool, t) = setup(128);
        let entries: Vec<(Key, TupleId)> = (0..2000)
            .map(|i| (Key::int((i * 37) % 2000), TupleId::new(0, i as u32)))
            .collect();
        let mut sorted = entries.clone();
        sorted.sort();
        let bulk = BTree::bulk_build(&mut pool, 1, &sorted);
        let mut incr = BTree::create(&mut pool, 2);
        for (k, tid) in &entries {
            incr.insert(&mut pool, &t, *k, *tid);
        }
        assert_eq!(incr.len(), bulk.len());
        let a = collect(&bulk, &mut pool, Key::MIN, Key::MAX);
        let mut b = collect(&incr, &mut pool, Key::MIN, Key::MAX);
        // Duplicate keys may order differently by tid; normalize.
        b.sort();
        let mut a2 = a.clone();
        a2.sort();
        assert_eq!(a2, b);
    }

    #[test]
    fn scan_emits_index_class_refs() {
        let (mut pool, _) = setup(64);
        let entries: Vec<(Key, TupleId)> = (0..5000)
            .map(|i| (Key::int(i), TupleId::new(0, i as u32)))
            .collect();
        let tree = BTree::bulk_build(&mut pool, 1, &entries);
        let t = Tracer::new(0);
        let hits = tree.lookup_range(&mut pool, &t, Key::int(1000), Key::int(1100));
        assert_eq!(hits.len(), 101);
        let stats = TraceStats::from_trace(&t.take());
        assert!(stats.reads(DataClass::Index) > 101, "probes + entries");
        assert_eq!(
            stats.writes(DataClass::Index),
            0,
            "scans never write the index"
        );
        // Pinning traffic flows through the buffer manager.
        assert!(stats.reads(DataClass::BufDesc) >= tree.height() as u64);
        assert!(stats.lock_acquires >= tree.height() as u64);
    }

    #[test]
    fn cursor_close_is_idempotent_and_unpins() {
        let (mut pool, t) = setup(64);
        let entries: Vec<(Key, TupleId)> = (0..100)
            .map(|i| (Key::int(i), TupleId::new(0, i as u32)))
            .collect();
        let tree = BTree::bulk_build(&mut pool, 1, &entries);
        let mut cursor = tree.scan_range(&mut pool, &t, Key::int(0), Key::int(99));
        assert!(cursor.next(&mut pool, &t).is_some());
        cursor.close(&mut pool, &t);
        assert!(cursor.is_closed());
        cursor.close(&mut pool, &t);
        assert_eq!(cursor.next(&mut pool, &t), None);
    }

    #[test]
    fn exhausted_cursor_leaves_no_pins() {
        let (mut pool, t) = setup(64);
        let entries: Vec<(Key, TupleId)> = (0..1000)
            .map(|i| (Key::int(i), TupleId::new(0, i as u32)))
            .collect();
        let tree = BTree::bulk_build(&mut pool, 1, &entries);
        let mut cursor = tree.scan_range(&mut pool, &t, Key::MIN, Key::MAX);
        let mut n = 0;
        while cursor.next(&mut pool, &t).is_some() {
            n += 1;
        }
        assert_eq!(n, 1000);
        // All pages unpinned: pin counts are zero everywhere.
        for block in 0..pool.rel_len(1) {
            let buf = pool.lookup(PageId::new(1, block)).unwrap();
            assert_eq!(pool.refcount(buf), 0, "block {block} still pinned");
        }
    }

    #[test]
    fn string_group_scan() {
        let (mut pool, t) = setup(64);
        let segs = [
            "AUTOMOBILE",
            "BUILDING",
            "FURNITURE",
            "HOUSEHOLD",
            "MACHINERY",
        ];
        let mut entries: Vec<(Key, TupleId)> = Vec::new();
        for i in 0..500u32 {
            let seg = segs[i as usize % 5];
            entries.push((Key::str8_int(seg, i as i64), TupleId::new(0, i)));
        }
        entries.sort();
        let tree = BTree::bulk_build(&mut pool, 1, &entries);
        let probe = Key::str8("BUILDING");
        let hits = tree.lookup_range(&mut pool, &t, probe.min_in_group(), probe.max_in_group());
        assert_eq!(hits.len(), 100);
    }
}
