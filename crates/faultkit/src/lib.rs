//! Deterministic fault injection for the DSS workbench.
//!
//! A reproduction pipeline is only trustworthy if its failure detection is:
//! every layer that *claims* to reject corrupt input must be shown rejecting
//! it, or a bad trace file / hostile `.tbl` row / flipped directory bit will
//! silently skew the very numbers the workbench exists to pin down. This
//! crate is that proof, organized as a *campaign*: a table of named fault
//! sites ([`sites`]), each of which corrupts one layer's input in a seeded,
//! clock-free way and reports whether the layer **detected and classified**
//! the fault ([`Outcome::Detected`]) or silently absorbed it
//! ([`Outcome::Absorbed`] — always a finding).
//!
//! Determinism is load-bearing: a [`FaultPlan`] derives one RNG per site from
//! `campaign seed ⊕ FNV-1a(site name)`, so `dss-check fault --seed N` re-runs
//! the exact corruption schedule of any earlier report, and adding a site
//! never perturbs the draws of the others. Nothing here reads the clock, the
//! filesystem, or the environment — except the [`crash`] module's
//! explicitly env-armed process-fatal sites, which exist to be triggered
//! from *outside* the process (see its docs).
//!
//! The sites span the workbench's three trust boundaries:
//!
//! * **trace codec** (`trace.io.*`) — truncations, bad magic, flipped bits,
//!   impossible tags/classes against [`dss_trace::read_trace`];
//! * **trace semantics** (`trace.check.*`) — lock-discipline breaches a
//!   truncated or interleaving-corrupted trace would exhibit;
//! * **database loader** (`tpcd.tbl.*`) — hostile rows against
//!   [`dss_tpcd::from_tbl`];
//! * **coherence state** (`memsim.*`) — directory and cache corruption
//!   against the invariant checker;
//! * **protocol kernel** (`protocol.kernel.*`) — deliberate bugs compiled
//!   into the transition kernel's tables
//!   ([`dss_memsim::protocol::KernelFault`]), which the exhaustive model
//!   exploration (`dss-check model`) must find and classify by the exact
//!   invariant rule they break.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod crash;
mod site;

pub use site::{sites, Site};

/// FNV-1a 64-bit hash, used to derive stable per-site sub-seeds.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What happened when a fault was injected at a site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The layer rejected the fault with the classification the site
    /// demands (an error kind, an invariant rule, a parse diagnostic).
    Detected {
        /// The classification label the layer produced.
        classification: String,
    },
    /// The layer accepted corrupted input as if it were healthy, or
    /// rejected it with the *wrong* classification. Always a finding.
    Absorbed {
        /// What the layer did instead of detecting the fault.
        detail: String,
    },
    /// The site could not be exercised (a fixture failed to build). Counted
    /// as a finding by the campaign gate — a site that cannot run proves
    /// nothing.
    Skipped {
        /// Why the site could not run.
        reason: String,
    },
}

impl Outcome {
    /// Whether the fault was detected and correctly classified.
    pub fn is_detected(&self) -> bool {
        matches!(self, Outcome::Detected { .. })
    }
}

/// One site's result within a campaign run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SiteReport {
    /// The site's stable name, e.g. `"trace.io.bit-flip"`.
    pub site: &'static str,
    /// The layer under test, e.g. `"trace codec"`.
    pub layer: &'static str,
    /// What happened.
    pub outcome: Outcome,
}

/// A seeded, clock-free fault-injection schedule.
///
/// The same seed always produces the same corruptions at every site, in the
/// same order, regardless of wall-clock, platform, or how many other sites
/// exist — each site's RNG is derived independently from the seed and the
/// site's name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// A plan reproducing the corruption schedule of `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed }
    }

    /// The campaign seed this plan replays.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The RNG a site named `site` draws its corruptions from — independent
    /// of every other site's stream.
    pub fn rng_for(&self, site: &str) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ fnv1a(site.as_bytes()))
    }

    /// Runs every registered site once and collects the reports, in the
    /// site table's (stable) order.
    pub fn run(&self) -> Vec<SiteReport> {
        sites()
            .iter()
            .map(|s| {
                let mut rng = self.rng_for(s.name);
                SiteReport {
                    site: s.name,
                    layer: s.layer,
                    outcome: (s.run)(&mut rng),
                }
            })
            .collect()
    }
}

/// Runs the full campaign under `seed` (see [`FaultPlan`]).
pub fn run_campaign(seed: u64) -> Vec<SiteReport> {
    FaultPlan::new(seed).run()
}

/// Runs the full campaign plus caller-supplied extra sites. Passes that
/// live *above* faultkit in the crate graph (dss-check's static-analysis
/// drills) cannot be rows of the static table without a dependency cycle;
/// they register here instead, drawing per-site RNG streams from the same
/// plan so outcomes stay independent of table order.
pub fn run_campaign_with_extra(seed: u64, extra: &[Site]) -> Vec<SiteReport> {
    let plan = FaultPlan::new(seed);
    let mut reports = plan.run();
    for s in extra {
        let mut rng = plan.rng_for(s.name);
        reports.push(SiteReport {
            site: s.name,
            layer: s.layer,
            outcome: (s.run)(&mut rng),
        });
    }
    reports
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_covers_at_least_ten_sites() {
        assert!(
            sites().len() >= 10,
            "only {} sites registered",
            sites().len()
        );
    }

    #[test]
    fn site_names_are_unique_and_namespaced() {
        let mut names: Vec<&str> = sites().iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate site names");
        for name in names {
            assert!(
                name.starts_with("trace.")
                    || name.starts_with("tpcd.")
                    || name.starts_with("memsim.")
                    || name.starts_with("protocol."),
                "unnamespaced site {name}"
            );
        }
    }

    #[test]
    fn every_fault_is_detected_and_classified() {
        for seed in [0, 1, 0xD55] {
            for report in run_campaign(seed) {
                assert!(
                    report.outcome.is_detected(),
                    "seed {seed}, site {}: {:?}",
                    report.site,
                    report.outcome
                );
            }
        }
    }

    #[test]
    fn schedule_is_reproducible_from_the_seed() {
        assert_eq!(run_campaign(42), run_campaign(42));
        // Different seeds draw different corruptions, but classification
        // labels stay stable per site (the site table's contract).
        let a = run_campaign(1);
        let b = run_campaign(2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.site, y.site);
        }
    }

    #[test]
    fn per_site_streams_are_independent() {
        use rand::RngCore;
        let plan = FaultPlan::new(7);
        let a = plan.rng_for("trace.io.bit-flip").next_u64();
        let b = plan.rng_for("trace.io.bad-magic").next_u64();
        assert_ne!(a, b, "sites must not share a stream");
        assert_eq!(plan.rng_for("trace.io.bit-flip").next_u64(), a);
        assert_eq!(plan.seed(), 7);
    }
}
