//! The fault-site registry: every injection the campaign performs, as a
//! static table so coverage is enumerable (and `dss-check fault` can assert
//! all of it ran).
//!
//! Each site is a pure function from a seeded RNG to an [`Outcome`]: it
//! builds a healthy fixture, corrupts it in one specific seeded way, feeds
//! it to the layer under test, and demands the layer reject it *with the
//! right classification* — a rejection with the wrong label is
//! [`Outcome::Absorbed`], because a mislabeled fault sends an operator
//! hunting in the wrong layer.

use rand::rngs::StdRng;
use rand::Rng;

use dss_memsim::protocol::{self, ExploreConfig, Kernel, KernelFault};
use dss_memsim::{Machine, MachineConfig, Protocol};
use dss_tpcd::{from_tbl, table_def, ColType, TableDef};
use dss_trace::{
    check_lock_discipline, read_trace, read_trace_blocks, write_trace, write_trace_blocks,
    ChunkSequencer, DataClass, LockClass, LockDisciplineError, LockToken, Trace, TraceError,
    Tracer,
};

use crate::Outcome;

/// One named fault-injection site.
pub struct Site {
    /// Stable dotted name, `layer.component.fault` (e.g.
    /// `"trace.io.bit-flip"`): the seed of the site's RNG stream and the key
    /// campaign reports are compared by.
    pub name: &'static str,
    /// The layer under test, for grouping in reports.
    pub layer: &'static str,
    /// The classification the layer must produce for the fault.
    pub expect: &'static str,
    /// Injects the fault and reports what the layer did.
    pub run: fn(&mut StdRng) -> Outcome,
}

/// Every registered site, in stable order. The cache-state site needs the
/// per-transaction observer and is compiled in only with `check-invariants`.
pub fn sites() -> &'static [Site] {
    SITES
}

static SITES: &[Site] = &[
    Site {
        name: "trace.io.empty-file",
        layer: "trace codec",
        expect: "truncated",
        run: empty_file,
    },
    Site {
        name: "trace.io.bad-magic",
        layer: "trace codec",
        expect: "bad-magic",
        run: bad_magic,
    },
    Site {
        name: "trace.io.header-only",
        layer: "trace codec",
        expect: "truncated",
        run: header_only,
    },
    Site {
        name: "trace.io.truncated-event",
        layer: "trace codec",
        expect: "truncated",
        run: truncated_event,
    },
    Site {
        name: "trace.io.count-overrun",
        layer: "trace codec",
        expect: "truncated",
        run: count_overrun,
    },
    Site {
        name: "trace.io.bit-flip",
        layer: "trace codec",
        expect: "any classified error",
        run: bit_flip,
    },
    Site {
        name: "trace.io.bad-tag",
        layer: "trace codec",
        expect: "corrupt",
        run: bad_tag,
    },
    Site {
        name: "trace.io.bad-class",
        layer: "trace codec",
        expect: "corrupt",
        run: bad_class,
    },
    Site {
        name: "trace.io.bad-lock-class",
        layer: "trace codec",
        expect: "corrupt",
        run: bad_lock_class,
    },
    Site {
        name: "trace.blocks.truncated-mid-block",
        layer: "trace codec",
        expect: "truncated",
        run: block_truncated,
    },
    Site {
        name: "trace.blocks.chunk-seed-mismatch",
        layer: "trace codec",
        expect: "corrupt",
        run: block_chunk_swap,
    },
    Site {
        name: "trace.pipeline.dropped-block",
        layer: "trace pipeline",
        expect: "pipeline",
        run: pipeline_dropped_block,
    },
    Site {
        name: "trace.pipeline.replayed-chunk",
        layer: "trace pipeline",
        expect: "pipeline",
        run: pipeline_replayed_chunk,
    },
    Site {
        name: "trace.check.lock-truncated",
        layer: "trace semantics",
        expect: "lock-held-at-end",
        run: lock_truncated,
    },
    Site {
        name: "trace.check.stray-release",
        layer: "trace semantics",
        expect: "release-unheld",
        run: stray_release,
    },
    Site {
        name: "tpcd.tbl.arity",
        layer: "database loader",
        expect: "field-count mismatch",
        run: tbl_arity,
    },
    Site {
        name: "tpcd.tbl.bad-int",
        layer: "database loader",
        expect: "bad integer",
        run: tbl_bad_int,
    },
    Site {
        name: "tpcd.tbl.bad-date",
        layer: "database loader",
        expect: "bad date",
        run: tbl_bad_date,
    },
    Site {
        name: "tpcd.tbl.bad-decimal",
        layer: "database loader",
        expect: "bad decimal",
        run: tbl_bad_decimal,
    },
    Site {
        name: "memsim.dir.sharer-mask",
        layer: "coherence state",
        expect: "invariant violation",
        run: dir_sharer_mask,
    },
    Site {
        name: "memsim.dir.stale-owner",
        layer: "coherence state",
        expect: "invariant violation",
        run: dir_stale_owner,
    },
    Site {
        name: "protocol.kernel.silent-upgrade-msi",
        layer: "protocol kernel",
        expect: protocol::RULE_WRITABLE_NOT_OWNER,
        run: kernel_silent_upgrade_msi,
    },
    Site {
        name: "protocol.kernel.stale-owner",
        layer: "protocol kernel",
        expect: protocol::RULE_OWNER_NO_COPY,
        run: kernel_stale_owner,
    },
    #[cfg(feature = "check-invariants")]
    Site {
        name: "memsim.cache.state",
        layer: "coherence state",
        expect: "invariant violation",
        run: cache_state,
    },
];

// --- fixtures ---------------------------------------------------------------

/// A small, representative trace: a data Ref first (the `bad-class` site
/// targets its record), then a locked critical section and a busy spin.
fn sample_trace(rng: &mut StdRng) -> Trace {
    let t = Tracer::new(rng.gen_range(0..4usize));
    let base = dss_shmem::SHARED_BASE + rng.gen_range(0..1024u64) * 64;
    t.read(base, 8, DataClass::Data);
    t.lock_acquire(LockToken::new(0x40, LockClass::LockMgr));
    t.write(base + 64, 8, DataClass::Index);
    t.lock_release(LockToken::new(0x40, LockClass::LockMgr));
    t.busy(rng.gen_range(1..10_000u32));
    t.take()
}

/// Serializes a trace; in-memory writes cannot fail, so a `None` here means
/// the fixture itself is broken (reported as a skip by callers).
fn encode(trace: &Trace) -> Option<Vec<u8>> {
    let mut buf = Vec::new();
    write_trace(trace, &mut buf).ok()?;
    Some(buf)
}

fn skipped(reason: &str) -> Outcome {
    Outcome::Skipped {
        reason: reason.to_string(),
    }
}

/// Feeds corrupted bytes to the decoder and demands error kind `want`.
fn classify_read(bytes: &[u8], want: &str) -> Outcome {
    match read_trace(bytes) {
        Err(e) if e.kind() == want => Outcome::Detected {
            classification: e.kind().to_string(),
        },
        Err(e) => Outcome::Absorbed {
            detail: format!(
                "detected, but classified {:?} where {want:?} was demanded: {e}",
                e.kind()
            ),
        },
        Ok(t) => Outcome::Absorbed {
            detail: format!("decoded {} events from corrupt input", t.events.len()),
        },
    }
}

/// Feeds corrupted bytes to the decoder; any structured error counts (the
/// bit-flip site cannot know which field a random bit lands in).
fn classify_read_any(bytes: &[u8]) -> Outcome {
    match read_trace(bytes) {
        Err(e) => Outcome::Detected {
            classification: e.kind().to_string(),
        },
        Ok(t) => Outcome::Absorbed {
            detail: format!("decoded {} events from corrupt input", t.events.len()),
        },
    }
}

// --- trace codec sites ------------------------------------------------------

/// A zero-byte trace file (created, never written).
fn empty_file(_rng: &mut StdRng) -> Outcome {
    classify_read(&[], "truncated")
}

/// One flipped bit inside the magic: the file is no longer a DSS trace.
fn bad_magic(rng: &mut StdRng) -> Outcome {
    let Some(mut buf) = encode(&sample_trace(rng)) else {
        return skipped("trace fixture failed to encode");
    };
    let i = rng.gen_range(0..8usize);
    buf[i] ^= 1u8 << rng.gen_range(0..8u32);
    classify_read(&buf, "bad-magic")
}

/// Magic plus a partial header: the classic interrupted-write shape.
fn header_only(rng: &mut StdRng) -> Outcome {
    let Some(mut buf) = encode(&sample_trace(rng)) else {
        return skipped("trace fixture failed to encode");
    };
    buf.truncate(8 + rng.gen_range(0..16usize));
    classify_read(&buf, "truncated")
}

/// The stream cut somewhere inside the event section.
fn truncated_event(rng: &mut StdRng) -> Outcome {
    let Some(mut buf) = encode(&sample_trace(rng)) else {
        return skipped("trace fixture failed to encode");
    };
    let body_end = buf.len() - 8;
    buf.truncate(rng.gen_range(24..body_end));
    classify_read(&buf, "truncated")
}

/// The header promises more events than the stream carries.
fn count_overrun(rng: &mut StdRng) -> Outcome {
    let Some(mut buf) = encode(&sample_trace(rng)) else {
        return skipped("trace fixture failed to encode");
    };
    let mut word = [0u8; 8];
    word.copy_from_slice(&buf[16..24]);
    let bumped = u64::from_le_bytes(word) + rng.gen_range(1..1000u64);
    buf[16..24].copy_from_slice(&bumped.to_le_bytes());
    classify_read(&buf, "truncated")
}

/// One flipped bit anywhere after the magic — header, any event field, or
/// the checksum itself. Whatever it hits must surface as *some* error.
fn bit_flip(rng: &mut StdRng) -> Outcome {
    let Some(mut buf) = encode(&sample_trace(rng)) else {
        return skipped("trace fixture failed to encode");
    };
    let pos = rng.gen_range(8..buf.len());
    buf[pos] ^= 1u8 << rng.gen_range(0..8u32);
    classify_read_any(&buf)
}

/// An impossible event tag in the first record.
fn bad_tag(rng: &mut StdRng) -> Outcome {
    let Some(mut buf) = encode(&sample_trace(rng)) else {
        return skipped("trace fixture failed to encode");
    };
    buf[24] = rng.gen_range(4..=255u8);
    classify_read(&buf, "corrupt")
}

/// An out-of-range data class in the first Ref record (the write bit is
/// preserved so only the class is impossible).
fn bad_class(rng: &mut StdRng) -> Outcome {
    let Some(mut buf) = encode(&sample_trace(rng)) else {
        return skipped("trace fixture failed to encode");
    };
    let class_byte = 24 + 9;
    buf[class_byte] = (buf[class_byte] & 0x80) | rng.gen_range(10..=127u8);
    classify_read(&buf, "corrupt")
}

/// An out-of-range lock class in the LockAcquire record (event 1).
fn bad_lock_class(rng: &mut StdRng) -> Outcome {
    let Some(mut buf) = encode(&sample_trace(rng)) else {
        return skipped("trace fixture failed to encode");
    };
    buf[24 + 17 + 9] = rng.gen_range(3..=255u8);
    classify_read(&buf, "corrupt")
}

// --- block stream sites -----------------------------------------------------

/// Events per block in the block-stream fixtures: small enough that the
/// fixture spans several blocks, fixed so block byte offsets are computable.
const BLOCK_EVENTS: usize = 16;
/// Number of full blocks the fixture encodes.
const BLOCKS: usize = 4;
/// Stream header size: magic, processor id, header checksum.
const BLOCK_HEADER: usize = 24;
/// Byte size of one full block: count, chunk index, 17-byte records,
/// checksum.
const BLOCK_SIZE: usize = 8 + 8 + BLOCK_EVENTS * 17 + 8;

/// A trace of exactly [`BLOCKS`]` × `[`BLOCK_EVENTS`] uniform events, so the
/// chunked encoding is [`BLOCKS`] byte-interchangeable full blocks (every
/// record is 17 bytes; only the chunk index distinguishes equal-count
/// blocks) plus the end marker.
fn block_trace(rng: &mut StdRng) -> Trace {
    let t = Tracer::new(rng.gen_range(0..4usize));
    let base = dss_shmem::SHARED_BASE + rng.gen_range(0..1024u64) * 64;
    for i in 0..(BLOCKS * BLOCK_EVENTS) as u64 {
        t.read(base + i * 8, 8, DataClass::Data);
    }
    t.take()
}

/// Serializes a trace in the chunked block format; in-memory writes cannot
/// fail, so `None` means the fixture itself is broken.
fn encode_blocks(trace: &Trace) -> Option<Vec<u8>> {
    let mut buf = Vec::new();
    write_trace_blocks(trace, &mut buf, BLOCK_EVENTS).ok()?;
    Some(buf)
}

/// Feeds a corrupted block stream to the block decoder and demands error
/// kind `want`.
fn classify_read_blocks(bytes: &[u8], want: &str) -> Outcome {
    match read_trace_blocks(bytes) {
        Err(e) if e.kind() == want => Outcome::Detected {
            classification: e.kind().to_string(),
        },
        Err(e) => Outcome::Absorbed {
            detail: format!(
                "detected, but classified {:?} where {want:?} was demanded: {e}",
                e.kind()
            ),
        },
        Ok(t) => Outcome::Absorbed {
            detail: format!(
                "decoded {} events from a corrupt block stream",
                t.events.len()
            ),
        },
    }
}

/// The block stream cut anywhere past its header — inside a block's records,
/// its checksum, a block header, or the end marker. Every such cut is a torn
/// write the reader must classify as truncation.
fn block_truncated(rng: &mut StdRng) -> Outcome {
    let Some(mut buf) = encode_blocks(&block_trace(rng)) else {
        return skipped("block fixture failed to encode");
    };
    buf.truncate(rng.gen_range(BLOCK_HEADER..buf.len()));
    classify_read_blocks(&buf, "truncated")
}

/// Two whole blocks swapped in place — the shape a mis-seeded or mis-ordered
/// parallel producer would emit. Every per-block checksum still verifies, so
/// only the sequential chunk-index check can reveal the damage.
fn block_chunk_swap(rng: &mut StdRng) -> Outcome {
    let Some(mut buf) = encode_blocks(&block_trace(rng)) else {
        return skipped("block fixture failed to encode");
    };
    if buf.len() < BLOCK_HEADER + BLOCKS * BLOCK_SIZE {
        return skipped("block fixture smaller than its declared layout");
    }
    let i = rng.gen_range(0..BLOCKS - 1);
    let j = rng.gen_range(i + 1..BLOCKS);
    for k in 0..BLOCK_SIZE {
        buf.swap(
            BLOCK_HEADER + i * BLOCK_SIZE + k,
            BLOCK_HEADER + j * BLOCK_SIZE + k,
        );
    }
    classify_read_blocks(&buf, "corrupt")
}

// --- trace pipeline sites ---------------------------------------------------

/// Demands a pipeline fault with the in-order invariant intact: nothing past
/// the gap at `lost` may have been released when the sequencer rejected.
fn classify_pipeline(e: TraceError, released: u64, lost: u64) -> Outcome {
    if e.kind() != "pipeline" {
        return Outcome::Absorbed {
            detail: format!(
                "detected, but classified {:?} where \"pipeline\" was demanded: {e}",
                e.kind()
            ),
        };
    }
    if released != lost {
        return Outcome::Absorbed {
            detail: format!(
                "classified as a pipeline fault, but {released} chunk(s) were released \
                 across the gap at chunk {lost}"
            ),
        };
    }
    Outcome::Detected {
        classification: e.kind().to_string(),
    }
}

/// A block lost in flight between a producer worker and the simulator: the
/// chunk sequencer must hold every later block back and classify the gap as
/// a pipeline fault — when its reorder window fills for a mid-stream loss,
/// or at the producer's end-of-stream count for a tail loss.
fn pipeline_dropped_block(rng: &mut StdRng) -> Outcome {
    let chunks = rng.gen_range(4..32u64);
    let lost = rng.gen_range(0..chunks);
    let events = sample_trace(rng).events;
    let mut seq = ChunkSequencer::new(rng.gen_range(0..4usize), 4);
    for chunk in (0..chunks).filter(|&c| c != lost) {
        if let Err(e) = seq.accept(chunk, events.clone()) {
            return classify_pipeline(e, seq.released(), lost);
        }
        while seq.pop_ready().is_some() {}
    }
    match seq.finish(chunks) {
        Err(e) => classify_pipeline(e, seq.released(), lost),
        Ok(()) => Outcome::Absorbed {
            detail: format!(
                "sequencer finished having released {} of {chunks} chunks with \
                 chunk {lost} missing",
                seq.released()
            ),
        },
    }
}

/// A block replayed with a chunk index the sequencer already released — a
/// duplicated channel delivery. Accepting it would feed the simulator the
/// same events twice, so the sequencer must reject it as a pipeline fault.
fn pipeline_replayed_chunk(rng: &mut StdRng) -> Outcome {
    let chunks = rng.gen_range(2..16u64);
    let events = sample_trace(rng).events;
    let mut seq = ChunkSequencer::new(rng.gen_range(0..4usize), 8);
    for chunk in 0..chunks {
        if seq.accept(chunk, events.clone()).is_err() {
            return skipped("healthy in-order delivery was rejected");
        }
        while seq.pop_ready().is_some() {}
    }
    let replay = rng.gen_range(0..chunks);
    match seq.accept(replay, events.clone()) {
        Err(e) if e.kind() == "pipeline" => Outcome::Detected {
            classification: e.kind().to_string(),
        },
        Err(e) => Outcome::Absorbed {
            detail: format!(
                "detected, but classified {:?} where \"pipeline\" was demanded: {e}",
                e.kind()
            ),
        },
        Ok(()) => Outcome::Absorbed {
            detail: format!(
                "replayed chunk {replay} was accepted after all {chunks} chunks released"
            ),
        },
    }
}

// --- trace semantics sites --------------------------------------------------

/// A trace that ends inside a critical section — what a truncated file looks
/// like after the codec-level checks are bypassed (e.g. the cut happened to
/// land on an event boundary of a checksum-less legacy trace).
fn lock_truncated(rng: &mut StdRng) -> Outcome {
    let t = Tracer::new(0);
    let addr = 0x40 + rng.gen_range(0..64u64) * 8;
    t.lock_acquire(LockToken::new(addr, LockClass::LockMgr));
    t.read(dss_shmem::SHARED_BASE, 8, DataClass::LockHash);
    // The release was lost with the tail of the file.
    match check_lock_discipline(&t.take()) {
        Err(LockDisciplineError::HeldAtEnd { .. }) => Outcome::Detected {
            classification: "lock-held-at-end".to_string(),
        },
        Err(e) => Outcome::Absorbed {
            detail: format!("detected, but classified as: {e}"),
        },
        Ok(()) => Outcome::Absorbed {
            detail: "truncated critical section passed lock discipline".to_string(),
        },
    }
}

/// A release of a lock that was never acquired — the head-truncation dual of
/// [`lock_truncated`].
fn stray_release(rng: &mut StdRng) -> Outcome {
    let t = Tracer::new(0);
    let addr = 0x40 + rng.gen_range(0..64u64) * 8;
    t.read(dss_shmem::SHARED_BASE, 8, DataClass::LockHash);
    t.lock_release(LockToken::new(addr, LockClass::LockMgr));
    match check_lock_discipline(&t.take()) {
        Err(LockDisciplineError::ReleaseUnheld { .. }) => Outcome::Detected {
            classification: "release-unheld".to_string(),
        },
        Err(e) => Outcome::Absorbed {
            detail: format!("detected, but classified as: {e}"),
        },
        Ok(()) => Outcome::Absorbed {
            detail: "stray release passed lock discipline".to_string(),
        },
    }
}

// --- database loader sites --------------------------------------------------

/// A syntactically valid field for each column type.
fn synth_row(def: &TableDef) -> Vec<String> {
    def.columns
        .iter()
        .map(|c| match c.ty {
            ColType::Int => "7".to_string(),
            ColType::Dec => "7.50".to_string(),
            ColType::Date => "1995-06-17".to_string(),
            ColType::Str(_) => "x".to_string(),
        })
        .collect()
}

/// Renders fields as one dbgen-convention row (trailing delimiter).
fn row_text(fields: &[String]) -> String {
    let mut s = fields.join("|");
    s.push('|');
    s.push('\n');
    s
}

/// Feeds a hostile row to the loader and demands a diagnostic mentioning
/// `want` (the classification an operator would grep for).
fn classify_tbl(def: &TableDef, text: &str, want: &str) -> Outcome {
    match from_tbl(def, text) {
        Err(e) if e.to_string().contains(want) => Outcome::Detected {
            classification: format!("tbl: {want}"),
        },
        Err(e) => Outcome::Absorbed {
            detail: format!("detected, but the diagnostic lacks {want:?}: {e}"),
        },
        Ok(rows) => Outcome::Absorbed {
            detail: format!("loaded {} hostile rows", rows.len()),
        },
    }
}

/// A row with a field dropped or duplicated.
fn tbl_arity(rng: &mut StdRng) -> Outcome {
    let Some(def) = table_def("region") else {
        return skipped("region schema missing");
    };
    let mut fields = synth_row(def);
    if rng.gen_bool(0.5) {
        fields.pop();
    } else {
        fields.push("extra".to_string());
    }
    classify_tbl(def, &row_text(&fields), "fields, found")
}

/// Junk in an integer column.
fn tbl_bad_int(rng: &mut StdRng) -> Outcome {
    let Some(def) = table_def("region") else {
        return skipped("region schema missing");
    };
    let Some(col) = def.columns.iter().position(|c| c.ty == ColType::Int) else {
        return skipped("region has no integer column");
    };
    let mut fields = synth_row(def);
    fields[col] = format!("{}x{}", rng.gen_range(0..100u32), rng.gen_range(0..100u32));
    classify_tbl(def, &row_text(&fields), "bad integer")
}

/// An impossible calendar date in a date column.
fn tbl_bad_date(rng: &mut StdRng) -> Outcome {
    let Some(def) = table_def("orders") else {
        return skipped("orders schema missing");
    };
    let Some(col) = def.columns.iter().position(|c| c.ty == ColType::Date) else {
        return skipped("orders has no date column");
    };
    let mut fields = synth_row(def);
    fields[col] = format!(
        "1995-{}-{}",
        rng.gen_range(13..99u32),
        rng.gen_range(1..28u32)
    );
    classify_tbl(def, &row_text(&fields), "bad date")
}

/// Junk in a decimal column.
fn tbl_bad_decimal(rng: &mut StdRng) -> Outcome {
    let Some(def) = table_def("orders") else {
        return skipped("orders schema missing");
    };
    let Some(col) = def.columns.iter().position(|c| c.ty == ColType::Dec) else {
        return skipped("orders has no decimal column");
    };
    let mut fields = synth_row(def);
    fields[col] = format!("x{}.00", rng.gen_range(0..100u32));
    classify_tbl(def, &row_text(&fields), "bad decimal")
}

// --- coherence state sites --------------------------------------------------

/// A tiny two-node run with one read-shared line and one written line, so
/// the directory holds both a sharer mask and an owner to corrupt.
fn run_machine(rng: &mut StdRng) -> Machine {
    let base = dss_shmem::SHARED_BASE + rng.gen_range(0..256u64) * 8192;
    let t0 = Tracer::new(0);
    t0.read(base, 8, DataClass::Data);
    t0.write(base + 4096, 8, DataClass::LockHash);
    let t1 = Tracer::new(1);
    t1.busy(10_000);
    t1.read(base, 8, DataClass::Data);
    let mut m = Machine::new(MachineConfig::baseline());
    m.run(&[t0.take(), t1.take()]);
    m
}

/// Lines with live directory state, to pick a corruption target from.
fn touched_lines(m: &Machine) -> Vec<u64> {
    let mut lines = Vec::new();
    m.for_each_directory_entry(|line, e| {
        if e.sharers != 0 || e.owner.is_some() {
            lines.push(line);
        }
    });
    lines
}

fn classify_verify(m: &Machine) -> Outcome {
    match m.verify_coherence() {
        Err(v) => Outcome::Detected {
            classification: v.rule.to_string(),
        },
        Ok(()) => Outcome::Absorbed {
            detail: "corrupted state passed the invariant sweep".to_string(),
        },
    }
}

/// The sharer mask rewritten to list only a phantom node: the real cached
/// copies vanish from the directory's view.
fn dir_sharer_mask(rng: &mut StdRng) -> Outcome {
    let mut m = run_machine(rng);
    let lines = touched_lines(&m);
    if lines.is_empty() {
        return skipped("no directory state to corrupt");
    }
    let line = lines[rng.gen_range(0..lines.len())];
    m.corrupt_directory_sharers(line, 1 << rng.gen_range(8..64u64));
    classify_verify(&m)
}

/// The recorded owner swapped for a node that holds nothing.
fn dir_stale_owner(rng: &mut StdRng) -> Outcome {
    let mut m = run_machine(rng);
    let lines = touched_lines(&m);
    if lines.is_empty() {
        return skipped("no directory state to corrupt");
    }
    let line = lines[rng.gen_range(0..lines.len())];
    m.corrupt_directory_owner(line, Some(rng.gen_range(8..63usize)));
    classify_verify(&m)
}

/// Exhausts the model state space under a faulted kernel and demands a
/// violation classified by exactly `expect` — the rule the injected bug
/// breaks. A clean exhaustion or a wrong classification is an absorption:
/// the model pass would let this kernel bug ship.
fn classify_explore(kernel: &Kernel, nprocs: usize, expect: &'static str) -> Outcome {
    let ex = protocol::explore(kernel, &ExploreConfig::new(nprocs, 1));
    match ex.violation {
        Some(v) if v.rule == expect => Outcome::Detected {
            classification: v.rule.to_string(),
        },
        Some(v) => Outcome::Absorbed {
            detail: format!(
                "detected, but classified {:?} where {expect:?} was demanded (replay {:?})",
                v.rule, v.path
            ),
        },
        None => Outcome::Absorbed {
            detail: format!("exhausted {} states without a violation", ex.states),
        },
    }
}

/// An MSI kernel that grants write permission on a shared hit without a
/// directory transaction — the classic "silent upgrade" bug MESI earns with
/// its Exclusive state and MSI must pay an invalidation round for.
fn kernel_silent_upgrade_msi(rng: &mut StdRng) -> Outcome {
    let kernel = Kernel::with_fault(Protocol::Msi, KernelFault::SilentUpgradeMsi);
    classify_explore(
        &kernel,
        rng.gen_range(2..=4),
        protocol::RULE_WRITABLE_NOT_OWNER,
    )
}

/// A kernel whose eviction path writes the data back but forgets to clear
/// the directory's owner field, leaving a registered owner with no copy.
fn kernel_stale_owner(rng: &mut StdRng) -> Outcome {
    let p = if rng.gen_range(0..2) == 0 {
        Protocol::Msi
    } else {
        Protocol::Mesi
    };
    let kernel = Kernel::with_fault(p, KernelFault::StaleOwner);
    classify_explore(&kernel, rng.gen_range(2..=4), protocol::RULE_OWNER_NO_COPY)
}

/// A shared L2 copy silently promoted to Modified — the cache now disagrees
/// with the directory about who may write.
#[cfg(feature = "check-invariants")]
fn cache_state(rng: &mut StdRng) -> Outcome {
    let mut m = run_machine(rng);
    let mut shared = Vec::new();
    m.for_each_directory_entry(|line, e| {
        if e.sharers != 0 {
            shared.push((line, e.sharers));
        }
    });
    if shared.is_empty() {
        return skipped("no shared line to corrupt");
    }
    let (line, sharers) = shared[rng.gen_range(0..shared.len())];
    let node = sharers.trailing_zeros() as usize;
    m.corrupt_cache_state(node, line, dss_memsim::LineState::Modified);
    classify_verify(&m)
}
