//! Process-fatal crash sites for the crash-recovery campaign.
//!
//! The corruption sites in [`crate::sites`] run in-process: they hand a
//! layer damaged input and ask how it classifies the damage. Crash sites
//! prove a different property — that the pipeline's *durability protocol*
//! (checkpoint journal, streamed block files) survives the process dying at
//! the worst possible instants — and a site that calls
//! [`std::process::abort`] cannot report its own outcome. So the campaign
//! inverts: `dss-check crash` spawns `repro` as a child with one site armed
//! through the environment, lets the abort kill it, then reruns with
//! `--resume` and compares the recovered output against an uninterrupted
//! baseline.
//!
//! Arming is environment-driven and hit-counted: [`ENV_SITE`] names the
//! site, [`ENV_HITS`] the 1-based occurrence that fires, so a seeded plan
//! can place the kill at *different* block writes / manifest appends per
//! seed. Unarmed (the env unset — every normal run), [`crash_point`] is a
//! single relaxed atomic load and the instrumented code paths are
//! unperturbed. This module is the one deliberate exception to the crate's
//! "nothing reads the environment" motto, and the arming read happens once.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable naming the armed crash site (a [`CrashSite::name`]).
pub const ENV_SITE: &str = "DSS_CRASH_SITE";

/// Environment variable giving the 1-based hit count at which the armed
/// site aborts. Unset or unparsable means the first hit.
pub const ENV_HITS: &str = "DSS_CRASH_HITS";

/// One place the pipeline can be killed, with enough metadata for the
/// campaign report. The hook itself is a [`crash_point`] call at the named
/// spot in `dss-core`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSite {
    /// Stable name, e.g. `"crash.trace.block-write"` — the [`ENV_SITE`]
    /// value that arms it.
    pub name: &'static str,
    /// The durability mechanism under test.
    pub layer: &'static str,
    /// What dying here must not be able to destroy.
    pub what: &'static str,
}

/// The registered crash sites, in campaign order. Each corresponds to a
/// `crash_point` call in `dss-core`'s checkpoint/trace plumbing; the
/// `dss-check crash` campaign kills a `repro` child at every one and
/// requires resume to reproduce the uninterrupted run bit for bit.
pub const CRASH_SITES: &[CrashSite] = &[
    CrashSite {
        name: "crash.trace.block-write",
        layer: "streamed trace file",
        what: "a block file torn mid-write salvages to the last valid block",
    },
    CrashSite {
        name: "crash.trace.pre-finish",
        layer: "streamed trace file",
        what: "a block file missing its end marker is completed, not reused as-is",
    },
    CrashSite {
        name: "crash.manifest.torn-append",
        layer: "checkpoint journal",
        what: "a half-written journal record is discarded by the checksum scan",
    },
    CrashSite {
        name: "crash.manifest.post-append",
        layer: "checkpoint journal",
        what: "a fsynced record survives and its point is skipped on resume",
    },
    CrashSite {
        name: "crash.point.pre-journal",
        layer: "sweep point boundary",
        what: "a computed-but-unjournaled point is recomputed identically",
    },
    CrashSite {
        name: "crash.point.post-journal",
        layer: "sweep point boundary",
        what: "a journaled point is served from the journal, not re-simulated",
    },
];

/// The armed site and its firing hit count, read from the environment once.
fn armed() -> Option<&'static (String, u64)> {
    static ARMED: OnceLock<Option<(String, u64)>> = OnceLock::new();
    ARMED
        .get_or_init(|| {
            let site = std::env::var(ENV_SITE).ok().filter(|s| !s.is_empty())?;
            let hits = std::env::var(ENV_HITS)
                .ok()
                .and_then(|h| h.parse().ok())
                .unwrap_or(1u64)
                .max(1);
            Some((site, hits))
        })
        .as_ref()
}

/// A crash hook: aborts the process if `site` is armed via the environment
/// and this is its [`ENV_HITS`]-th execution. A no-op otherwise — normal
/// runs pay one atomic load per call and nothing else. Placed inside block
/// writes, around manifest appends, and at sweep point boundaries by
/// `dss-core`.
pub fn crash_point(site: &str) {
    static HITS: AtomicU64 = AtomicU64::new(0);
    let Some((name, fire_at)) = armed() else {
        return;
    };
    if name != site {
        return;
    }
    let hit = HITS.fetch_add(1, Ordering::Relaxed) + 1;
    if hit >= *fire_at {
        eprintln!("crash_point: aborting at {site} (hit {hit})");
        std::process::abort();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_sites_are_unique_and_namespaced() {
        let mut names: Vec<&str> = CRASH_SITES.iter().map(|s| s.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate crash-site names");
        for name in names {
            assert!(name.starts_with("crash."), "unnamespaced crash site {name}");
        }
    }

    #[test]
    fn unarmed_crash_points_are_no_ops() {
        // The test process never sets ENV_SITE, so every site is a no-op —
        // including unknown names (an armed-but-mistyped site must not
        // perturb anything either way).
        for site in CRASH_SITES {
            crash_point(site.name);
        }
        crash_point("crash.no.such.site");
    }
}
