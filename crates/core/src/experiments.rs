//! Runners for every table and figure in the paper's evaluation.
//!
//! The experiment API lives on [`Workbench`]: each method generates (or
//! reuses) the traces it needs and runs the memory-hierarchy simulator at the
//! appropriate configurations, fanning independent sweep points across up to
//! [`Workbench::jobs`] worker threads through [`crate::sim_points`] — with
//! results bit-identical to a serial run at any job count. The returned
//! structs carry raw [`SimStats`]; rendering to the paper's chart shapes
//! lives in [`crate::report`].
//!
//! Every sweep consumes its traces through [`crate::SimSource`], so the same
//! experiment code runs over materialized sets or streamed block files
//! (see [`crate::TraceMode`]) with bit-identical results.

use std::panic::resume_unwind;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

use dss_faultkit::crash::crash_point;
use dss_memsim::{Machine, MachineConfig, SimStats};
use dss_query::{Database, PlanFeatures};
use dss_tpcd::params;

use crate::degrade::PointError;
use crate::sim::{run_point_pipelined, run_point_source, run_soft, split_jobs, SoftFailure};
use crate::workload::{SimSource, Workbench};

/// L2 line sizes swept by Figures 8 and 9 (L1 lines are half).
pub const LINE_SIZES: [u64; 5] = [16, 32, 64, 128, 256];

/// `(L1 KB, L2 KB)` cache sizes swept by Figures 10 and 11, from the
/// baseline "4-Kbyte primary and 128-Kbyte secondary caches to 256-Kbyte
/// primary and 8-Mbyte secondary caches".
pub const CACHE_SIZES_KB: [(u64, u64); 4] = [(4, 128), (16, 512), (64, 2048), (256, 8192)];

/// The very large caches of the inter-query reuse experiment (Figure 12):
/// "a 1-Mbyte primary cache and a 32-Mbyte secondary cache … to identify the
/// upper bound on the data reuse".
pub const REUSE_CACHES_KB: (u64, u64) = (1024, 32 * 1024);

/// The prefetch degree of Section 6: four primary-cache lines.
pub const PREFETCH_LINES: u32 = 4;

/// Prefetch degrees swept by the prefetch-depth ablation.
pub const PREFETCH_DEGREES: [u32; 5] = [0, 1, 2, 4, 8];

/// Processor counts swept by the scaling experiment.
pub const PROC_COUNTS: [usize; 3] = [1, 2, 4];

/// Baseline simulation of one query type (Figures 6 and 7, and the quoted
/// miss rates).
#[derive(Clone, Debug)]
pub struct QueryBaseline {
    /// The query (3, 6, or 12).
    pub query: u8,
    /// Simulation results at the baseline machine.
    pub stats: SimStats,
}

/// One point of the line-size sweep.
#[derive(Clone, Debug)]
pub struct LinePoint {
    /// Secondary-cache line size in bytes.
    pub l2_line: u64,
    /// Results.
    pub stats: SimStats,
}

/// One point of the cache-size sweep.
#[derive(Clone, Debug)]
pub struct CachePoint {
    /// Primary cache size in KB.
    pub l1_kb: u64,
    /// Secondary cache size in KB.
    pub l2_kb: u64,
    /// Results.
    pub stats: SimStats,
}

/// Figure 12 results for one measured query: cold caches, caches warmed by
/// another instance of the same query (different parameters), and caches
/// warmed by the other query type.
#[derive(Clone, Debug)]
pub struct ReuseSet {
    /// The measured query.
    pub query: u8,
    /// The other query type used for the third warm-up.
    pub other: u8,
    /// Cold-start run.
    pub cold: SimStats,
    /// Run after warming with the same query type, different parameters.
    pub warm_same: SimStats,
    /// Run after warming with `other`.
    pub warm_other: SimStats,
}

/// Figure 13 results for one query: baseline vs. baseline plus the simple
/// sequential prefetcher for database data.
#[derive(Clone, Debug)]
pub struct PrefetchPair {
    /// The query.
    pub query: u8,
    /// Baseline run.
    pub base: SimStats,
    /// Run with 4-line data prefetching.
    pub opt: SimStats,
}

impl PrefetchPair {
    /// Relative execution-time change of the optimized run (negative =
    /// speedup).
    pub fn delta(&self) -> f64 {
        self.opt.exec_cycles() as f64 / self.base.exec_cycles() as f64 - 1.0
    }
}

/// Coherence-protocol ablation for one query: the paper's MSI baseline
/// against a MESI variant whose exclusive-clean state absorbs first writes.
#[derive(Clone, Debug)]
pub struct ProtocolAblation {
    /// The query.
    pub query: u8,
    /// The paper's protocol.
    pub msi: SimStats,
    /// The MESI variant.
    pub mesi: SimStats,
}

impl Workbench {
    /// Fans labeled `(config, trace source)` points across this workbench's
    /// worker threads, recording compute time for
    /// [`Workbench::take_sim_compute`].
    ///
    /// Fail-hard (the default): a panicking point propagates, exactly as
    /// [`crate::sim_points`] does, and every slot is `Some`. Fail-soft
    /// ([`Workbench::set_fail_soft`]): each point runs under `catch_unwind`
    /// with the optional point deadline, a failed point is recorded as a
    /// [`PointError`] under its label and yields `None`, and the remaining
    /// points still run. The sabotage hook ([`Workbench::set_sabotage`])
    /// panics the matching point in either mode.
    ///
    /// With a checkpoint journal attached ([`Workbench::set_checkpoint`]),
    /// points the journal already holds are served from it — no simulation,
    /// no sabotage, no compute time — and each newly computed point is
    /// durably appended the moment its worker finishes it, so an interrupted
    /// sweep resumes from the last completed point, not the last completed
    /// experiment.
    fn fan_out_labeled(
        &mut self,
        labels: &[String],
        tasks: &[(MachineConfig, SimSource)],
        seed: u64,
    ) -> Vec<Option<SimStats>> {
        debug_assert_eq!(labels.len(), tasks.len());
        let sabotage = self.sabotage.clone();
        let clock = Arc::clone(&self.sim_nanos);
        let gen_jobs = self.gen_jobs;
        let pipe = Arc::clone(&self.pipe_stats);
        let checkpoint = self.checkpoint.clone();
        let computed_ctr = Arc::clone(&self.ckpt_computed);
        // Journal lookups happen up front on this thread; workers then see a
        // plain preloaded slot and skip the simulation entirely.
        let preloaded: Vec<Option<SimStats>> = labels
            .iter()
            .map(|label| {
                checkpoint.as_ref().and_then(|j| {
                    j.lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .lookup(label, seed)
                        .cloned()
                })
            })
            .collect();
        let nloaded = preloaded.iter().filter(|p| p.is_some()).count() as u64;
        self.ckpt_loaded.fetch_add(nloaded, Ordering::Relaxed);
        let points: Vec<_> = tasks
            .iter()
            .zip(labels)
            .zip(&preloaded)
            .map(|(((cfg, source), label), pre)| {
                let sabotage = sabotage.as_deref();
                let clock = &clock;
                let pipe = &pipe;
                let checkpoint = checkpoint.as_ref();
                let computed_ctr = &computed_ctr;
                move || {
                    if let Some(stats) = pre {
                        return stats.clone();
                    }
                    if sabotage == Some(label.as_str()) {
                        panic!("injected: sweep point {label} sabotaged");
                    }
                    let start = Instant::now();
                    let stats = if gen_jobs > 0 {
                        run_point_pipelined(cfg, source, gen_jobs, pipe)
                    } else {
                        run_point_source(cfg, source)
                    };
                    clock.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    if let Some(journal) = checkpoint {
                        crash_point("crash.point.pre-journal");
                        let mut journal = journal.lock().unwrap_or_else(|p| p.into_inner());
                        if let Err(e) = journal.append(label, seed, &stats) {
                            // A journal that stops persisting degrades resume,
                            // not correctness: the sweep carries on.
                            eprintln!("checkpoint append failed for {label}: {e}");
                        }
                        drop(journal);
                        crash_point("crash.point.post-journal");
                    }
                    computed_ctr.fetch_add(1, Ordering::Relaxed);
                    stats
                }
            })
            .collect();
        let deadline = if self.fail_soft {
            self.point_deadline
        } else {
            None
        };
        let (sim_jobs, _) = split_jobs(self.jobs(), gen_jobs);
        let outcomes = run_soft(sim_jobs, &points, deadline);
        drop(points);
        outcomes
            .into_iter()
            .zip(labels)
            .map(|(outcome, label)| match outcome {
                Ok(stats) => Some(stats),
                Err(failure) if self.fail_soft => {
                    self.point_errors.push(PointError {
                        site: label.clone(),
                        cause: failure.cause,
                        seed,
                    });
                    None
                }
                Err(SoftFailure {
                    payload: Some(payload),
                    ..
                }) => resume_unwind(payload),
                Err(failure) => panic!("sweep point {label} failed: {}", failure.cause),
            })
            .collect()
    }

    /// Fans `configs` over one shared trace source (the common sweep shape).
    fn fan_out(
        &mut self,
        source: &SimSource,
        configs: &[MachineConfig],
        labels: &[String],
    ) -> Vec<Option<SimStats>> {
        let tasks: Vec<(MachineConfig, SimSource)> = configs
            .iter()
            .map(|c| (c.clone(), source.clone()))
            .collect();
        self.fan_out_labeled(labels, &tasks, 0)
    }

    /// Runs the baseline architecture for one query.
    ///
    /// # Panics
    ///
    /// Panics if the point fails — even in fail-soft mode, since there is no
    /// partial result to return (the failure is still recorded first).
    pub fn baseline_run(&mut self, query: u8) -> QueryBaseline {
        let mut suite = self.baseline_suite(&[query]);
        assert!(
            !suite.is_empty(),
            "baseline point for Q{query} failed (see point errors)"
        );
        suite.remove(0)
    }

    /// Runs the baseline for a set of queries (default: the three studied
    /// ones), one sweep point per query. In fail-soft mode, failed points
    /// are skipped (and recorded as [`PointError`]s).
    pub fn baseline_suite(&mut self, queries: &[u8]) -> Vec<QueryBaseline> {
        let tasks: Vec<(MachineConfig, SimSource)> = queries
            .iter()
            .map(|&q| (MachineConfig::baseline(), self.source(q, 0)))
            .collect();
        let labels: Vec<String> = queries
            .iter()
            .map(|&q| format!("fig6/Q{q}/baseline"))
            .collect();
        let stats = self.fan_out_labeled(&labels, &tasks, 0);
        queries
            .iter()
            .zip(stats)
            .filter_map(|(&query, stats)| stats.map(|stats| QueryBaseline { query, stats }))
            .collect()
    }

    /// Figures 8 and 9: sweep the cache line size for one query. In
    /// fail-soft mode, failed points are skipped (and recorded).
    pub fn line_size_sweep(&mut self, query: u8) -> Vec<LinePoint> {
        let traces = self.source(query, 0);
        let configs: Vec<MachineConfig> = LINE_SIZES
            .iter()
            .map(|&l| MachineConfig::baseline().with_line_size(l))
            .collect();
        let labels: Vec<String> = LINE_SIZES
            .iter()
            .map(|&l| format!("fig8/Q{query}/l2_line={l}"))
            .collect();
        let stats = self.fan_out(&traces, &configs, &labels);
        LINE_SIZES
            .iter()
            .zip(stats)
            .filter_map(|(&l2_line, stats)| stats.map(|stats| LinePoint { l2_line, stats }))
            .collect()
    }

    /// Figures 10 and 11: sweep the cache sizes for one query (64-byte L2
    /// lines, as the paper uses for its temporal-locality studies).
    pub fn cache_size_sweep(&mut self, query: u8) -> Vec<CachePoint> {
        let traces = self.source(query, 0);
        let configs: Vec<MachineConfig> = CACHE_SIZES_KB
            .iter()
            .map(|&(l1, l2)| MachineConfig::baseline().with_cache_sizes(l1 * 1024, l2 * 1024))
            .collect();
        let labels: Vec<String> = CACHE_SIZES_KB
            .iter()
            .map(|&(l1, l2)| format!("fig10/Q{query}/l1_kb={l1}_l2_kb={l2}"))
            .collect();
        let stats = self.fan_out(&traces, &configs, &labels);
        CACHE_SIZES_KB
            .iter()
            .zip(stats)
            .filter_map(|(&(l1_kb, l2_kb), stats)| {
                stats.map(|stats| CachePoint {
                    l1_kb,
                    l2_kb,
                    stats,
                })
            })
            .collect()
    }

    /// Figure 13: the Section 6 prefetching experiment.
    ///
    /// # Panics
    ///
    /// Panics if either point fails — the pair is meaningless without both
    /// (in fail-soft mode the failure is still recorded first).
    pub fn prefetch_experiment(&mut self, query: u8) -> PrefetchPair {
        let traces = self.source(query, 0);
        let configs = [
            MachineConfig::baseline(),
            MachineConfig::baseline().with_data_prefetch(PREFETCH_LINES),
        ];
        let labels = vec![
            format!("fig13/Q{query}/prefetch=0"),
            format!("fig13/Q{query}/prefetch={PREFETCH_LINES}"),
        ];
        let mut stats = self.fan_out(&traces, &configs, &labels);
        let lost = || panic!("fig13/Q{query} lost a sweep point (see point errors)");
        let opt = stats.pop().flatten().unwrap_or_else(lost);
        let base = stats.pop().flatten().unwrap_or_else(lost);
        PrefetchPair { query, base, opt }
    }

    /// Sweeps the sequential-prefetch degree (the paper fixes it at 4).
    pub fn prefetch_degree_sweep(&mut self, query: u8) -> Vec<(u32, SimStats)> {
        let traces = self.source(query, 0);
        let configs: Vec<MachineConfig> = PREFETCH_DEGREES
            .iter()
            .map(|&d| MachineConfig::baseline().with_data_prefetch(d))
            .collect();
        let labels: Vec<String> = PREFETCH_DEGREES
            .iter()
            .map(|&d| format!("prefetch-depth/Q{query}/degree={d}"))
            .collect();
        let stats = self.fan_out(&traces, &configs, &labels);
        PREFETCH_DEGREES
            .iter()
            .copied()
            .zip(stats)
            .filter_map(|(d, stats)| stats.map(|stats| (d, stats)))
            .collect()
    }

    /// Runs the MSI-vs-MESI ablation.
    ///
    /// # Panics
    ///
    /// Panics if either point fails — the ablation is meaningless without
    /// both (in fail-soft mode the failure is still recorded first).
    pub fn protocol_ablation(&mut self, query: u8) -> ProtocolAblation {
        let traces = self.source(query, 0);
        let configs = [
            MachineConfig::baseline(),
            MachineConfig::baseline().with_protocol(dss_memsim::Protocol::Mesi),
        ];
        let labels = vec![
            format!("protocol/Q{query}/msi"),
            format!("protocol/Q{query}/mesi"),
        ];
        let mut stats = self.fan_out(&traces, &configs, &labels);
        let lost = || panic!("protocol/Q{query} lost a sweep point (see point errors)");
        let mesi = stats.pop().flatten().unwrap_or_else(lost);
        let msi = stats.pop().flatten().unwrap_or_else(lost);
        ProtocolAblation { query, msi, mesi }
    }

    /// Scales the machine from one to four processors, running one query
    /// instance per processor (the paper's inter-query parallelism model).
    /// Each point reports how metalock spinning and coherence misses grow.
    pub fn processor_sweep(&mut self, query: u8) -> Vec<(usize, SimStats)> {
        let traces = self.source(query, 0);
        let configs: Vec<MachineConfig> = PROC_COUNTS
            .iter()
            .map(|&n| MachineConfig::baseline().with_processors(n))
            .collect();
        let labels: Vec<String> = PROC_COUNTS
            .iter()
            .map(|&n| format!("scaling/Q{query}/nprocs={n}"))
            .collect();
        // sim_points runs each config over the leading `nprocs` traces, which
        // is exactly the scaling subset.
        let stats = self.fan_out(&traces, &configs, &labels);
        PROC_COUNTS
            .iter()
            .copied()
            .zip(stats)
            .filter_map(|(n, stats)| stats.map(|stats| (n, stats)))
            .collect()
    }

    /// Figure 12: inter-query temporal locality with very large caches.
    ///
    /// Each arm warms (or doesn't) its *own* machine and then replays the
    /// measured set on it, so the three arms are independent and fan across
    /// up to [`Workbench::jobs`] workers; the within-arm warm→measured order
    /// is what carries the cache-reuse effect and stays serial. The measured
    /// set is generated once and replayed by every arm (generation is
    /// history-independent, so this changes nothing but wall-clock and
    /// allocations).
    pub fn reuse_experiment(&mut self, query: u8, other: u8) -> ReuseSet {
        let labels = [
            format!("fig12/Q{query}v{other}/cold"),
            format!("fig12/Q{query}v{other}/warm_same"),
            format!("fig12/Q{query}v{other}/warm_other"),
        ];
        let checkpoint = self.checkpoint.clone();
        let computed_ctr = Arc::clone(&self.ckpt_computed);
        let preloaded: Vec<Option<SimStats>> = labels
            .iter()
            .map(|label| {
                checkpoint.as_ref().and_then(|j| {
                    j.lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .lookup(label, 0)
                        .cloned()
                })
            })
            .collect();
        let nloaded = preloaded.iter().filter(|p| p.is_some()).count() as u64;
        self.ckpt_loaded.fetch_add(nloaded, Ordering::Relaxed);
        // All three arms journaled: skip trace generation outright — a
        // resumed run that already finished fig12 touches nothing.
        if let [Some(cold), Some(warm_same), Some(warm_other)] = &preloaded[..] {
            return ReuseSet {
                query,
                other,
                cold: cold.clone(),
                warm_same: warm_same.clone(),
                warm_other: warm_other.clone(),
            };
        }

        let (l1_kb, l2_kb) = REUSE_CACHES_KB;
        let cfg = MachineConfig::baseline().with_cache_sizes(l1_kb * 1024, l2_kb * 1024);
        let replay = |m: &mut Machine, src: &SimSource| {
            m.run_source(src)
                .unwrap_or_else(|e| panic!("trace stream failed: {e}"))
        };
        // Sources come first (trace generation needs `&mut self`); the sims
        // then share them immutably across workers.
        let measured = self.source(query, 0);
        let warm_same_src = self.source(query, 1000);
        let warm_other_src = self.source(other, 1000);

        let arms: [Option<&SimSource>; 3] = [None, Some(&warm_same_src), Some(&warm_other_src)];
        let points: Vec<_> = arms
            .iter()
            .zip(&labels)
            .zip(&preloaded)
            .map(|((warm, label), pre)| {
                let (cfg, measured) = (&cfg, &measured);
                let checkpoint = checkpoint.as_ref();
                let computed_ctr = &computed_ctr;
                move || {
                    if let Some(stats) = pre {
                        return stats.clone();
                    }
                    let mut m = Machine::new(cfg.clone());
                    if let Some(warm) = warm {
                        replay(&mut m, warm);
                    }
                    let stats = replay(&mut m, measured);
                    if let Some(journal) = checkpoint {
                        crash_point("crash.point.pre-journal");
                        let mut journal = journal.lock().unwrap_or_else(|p| p.into_inner());
                        if let Err(e) = journal.append(label, 0, &stats) {
                            eprintln!("checkpoint append failed for {label}: {e}");
                        }
                        drop(journal);
                        crash_point("crash.point.post-journal");
                    }
                    computed_ctr.fetch_add(1, Ordering::Relaxed);
                    stats
                }
            })
            .collect();
        let mut stats = run_soft(self.jobs(), &points, None)
            .into_iter()
            .map(|slot| match slot {
                Ok(stats) => stats,
                Err(SoftFailure {
                    payload: Some(payload),
                    ..
                }) => resume_unwind(payload),
                Err(failure) => panic!("reuse arm failed: {}", failure.cause),
            });
        let (cold, warm_same, warm_other) = (
            stats.next().expect("cold arm"),
            stats.next().expect("warm-same arm"),
            stats.next().expect("warm-other arm"),
        );

        ReuseSet {
            query,
            other,
            cold,
            warm_same,
            warm_other,
        }
    }
}

/// Table 1: the operator matrix of all seventeen read-only queries.
pub fn table1(db: &Database) -> Vec<(u8, PlanFeatures)> {
    (1..=17u8)
        .map(|q| {
            let sql = dss_query::sql_for(q, &params(q, 1));
            let plan = db
                .plan_sql(&sql)
                .unwrap_or_else(|e| panic!("Q{q} failed to plan: {e}"));
            (q, plan.features())
        })
        .collect()
}

/// The paper's quoted absolute miss rates: per query, the primary-cache read
/// miss rate and the "global" secondary-cache read miss rate.
#[derive(Clone, Copy, Debug)]
pub struct MissRates {
    /// The query.
    pub query: u8,
    /// L1 read miss rate (fraction).
    pub l1: f64,
    /// L2 misses over all processor loads (fraction).
    pub l2_global: f64,
}

/// Computes miss rates from a baseline run.
pub fn miss_rates(baseline: &QueryBaseline) -> MissRates {
    MissRates {
        query: baseline.query,
        l1: baseline.stats.l1.read_miss_rate(),
        l2_global: baseline.stats.l2_global_read_miss_rate(),
    }
}

// ---------------------------------------------------------------------------
// Extension experiments beyond the paper's figures: ablations of the design
// choices its architecture section fixes, and the processor-scaling question
// its future-work section raises. These trace *while* executing updates or
// rewritten plans, so they stay free functions over the workbench.
// ---------------------------------------------------------------------------

/// Results of the update-workload extension: four processors each running a
/// UF1 (insert new orders) followed by a UF2 (delete old ones).
#[derive(Clone, Debug)]
pub struct UpdateRuns {
    /// Baseline simulation of the four update streams.
    pub stats: SimStats,
    /// Orders + lineitems inserted across all processors.
    pub inserted: u64,
    /// Tuples deleted across all processors.
    pub deleted: u64,
}

/// The update-workload extension: the paper declines to trace TPC-D's update
/// functions (Postgres95's relation-level locking would serialize them);
/// here each processor's UF1/UF2 pair touches a disjoint key range, exposing
/// the *memory-system* cost of writes — ownership misses on data pages,
/// write-buffer pressure, and index-maintenance traffic.
///
/// Builds its own database so the workbench's image stays pristine.
pub fn update_experiment(scale: f64) -> UpdateRuns {
    use dss_query::{
        insert_lineitems_sql, insert_orders_sql, uf2_sql, Database, DbConfig, Session,
    };
    use dss_tpcd::Generator;

    let config = DbConfig {
        scale,
        ..DbConfig::default()
    };
    let mut db = Database::build(&config);
    let generator = Generator::new(config.scale, config.seed);
    let norders = db.catalog.table("orders").expect("orders").heap.ntuples() as i64;
    // UF1/UF2 touch 0.1% of orders each, the spec's refresh fraction.
    let per_proc = ((norders / 1000) as usize).max(4);

    let mut traces = Vec::new();
    let mut inserted = 0;
    let mut deleted = 0;
    for p in 0..4usize {
        let mut session = Session::new(p);
        // UF1: fresh orders in a per-processor key range above the population.
        let base = 10_000_000 + (p as i64) * 1_000_000;
        let (orders, lineitems) = generator.uf1_rows(p as u64, per_proc, base);
        inserted += db
            .execute(&insert_orders_sql(&orders), &mut session)
            .expect("UF1 orders")
            .affected()
            .expect("write");
        inserted += db
            .execute(&insert_lineitems_sql(&lineitems), &mut session)
            .expect("UF1 lineitems")
            .affected()
            .expect("write");
        // UF2: delete a disjoint slice of the original population.
        let lo = 1 + (p as i64) * per_proc as i64;
        let hi = lo + per_proc as i64 - 1;
        for sql in uf2_sql(lo, hi) {
            deleted += db
                .execute(&sql, &mut session)
                .expect("UF2")
                .affected()
                .expect("write");
        }
        traces.push(session.tracer.take());
    }
    let stats = Machine::new(MachineConfig::baseline()).run(&traces);
    UpdateRuns {
        stats,
        inserted,
        deleted,
    }
}

/// Results of the intra-query-parallelism extension: Q6 executed by one
/// processor vs. partitioned across four (each scanning a quarter of
/// `lineitem` and computing a partial aggregate).
#[derive(Clone, Debug)]
pub struct IntraQueryRuns {
    /// Single-processor full scan.
    pub single: SimStats,
    /// Four processors scanning disjoint quarters concurrently.
    pub partitioned: SimStats,
    /// The partial aggregates, summed (for a correctness cross-check).
    pub partial_sum: i64,
    /// The single-processor aggregate.
    pub full_sum: i64,
}

/// The intra-query-parallelism extension (the paper's closing future-work
/// item): partition Q6's sequential scan across the processors by heap block
/// range — each node aggregates its fragment; a real system would combine
/// the partials for free.
pub fn intra_query_experiment(wb: &mut Workbench) -> IntraQueryRuns {
    use dss_query::Session;
    use dss_tpcd::params;

    let p = params(6, 0);
    let sql = dss_query::sql_for(6, &p);

    // Single-processor baseline: the ordinary Q6 plan on processor 0.
    let (single, full_sum) = {
        let mut session = Session::new(0);
        let out = wb.db.run(&sql, &mut session).expect("Q6 runs");
        let sum = out.rows[0][0].dec();
        let trace = session.tracer.take();
        (Machine::new(MachineConfig::baseline()).run(&[trace]), sum)
    };

    // Partitioned: rewrite the plan's SeqScan with a block range per node.
    let plan = wb.db.plan_sql(&sql).expect("Q6 plans");
    let npages = wb
        .db
        .catalog
        .table("lineitem")
        .expect("lineitem")
        .heap
        .npages();
    let mut traces = Vec::new();
    let mut partial_sum = 0;
    for node in 0..4u32 {
        let lo = npages * node / 4;
        let hi = npages * (node + 1) / 4;
        let mut partitioned_plan = plan.clone();
        restrict_scan(&mut partitioned_plan, lo, hi);
        let mut session = Session::new(node as usize);
        let out = wb.db.run_plan(&partitioned_plan, &mut session);
        partial_sum += out.rows[0][0].dec();
        traces.push(session.tracer.take());
    }
    let partitioned = Machine::new(MachineConfig::baseline()).run(&traces);
    IntraQueryRuns {
        single,
        partitioned,
        partial_sum,
        full_sum,
    }
}

fn restrict_scan(plan: &mut dss_query::Plan, lo: u32, hi: u32) {
    use dss_query::Plan;
    match plan {
        Plan::SeqScan { block_range, .. } => *block_range = Some((lo, hi)),
        Plan::NestLoop { outer, inner, .. }
        | Plan::MergeJoin { outer, inner, .. }
        | Plan::HashJoin { outer, inner, .. } => {
            restrict_scan(outer, lo, hi);
            restrict_scan(inner, lo, hi);
        }
        Plan::Filter { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Group { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Project { input, .. }
        | Plan::Limit { input, .. } => restrict_scan(input, lo, hi),
        Plan::IndexScan { .. } => {}
    }
}

/// Results of the query-stream extension: each processor runs a mixed
/// stream of queries back to back, as a DSS system would between users.
#[derive(Clone, Debug)]
pub struct StreamRuns {
    /// The stream each processor executed.
    pub queries: Vec<u8>,
    /// One baseline simulation of the four streams.
    pub stats: SimStats,
}

/// The query-stream extension: runs `queries` consecutively on every
/// processor (different parameters per instance). Inter-query locality —
/// indices and, for Sequential queries, whole tables — is captured within
/// each stream, quantifying the paper's Figure 12 upper bound under a
/// realistic mixed workload and ordinary cache sizes.
pub fn stream_experiment(wb: &mut Workbench, queries: &[u8]) -> StreamRuns {
    let traces = wb.stream_traces(queries, 0);
    let stats = Machine::new(MachineConfig::baseline()).run(&traces);
    StreamRuns {
        queries: queries.to_vec(),
        stats,
    }
}
