//! Graceful degradation: structured records of sweep points that failed.
//!
//! A multi-hour reproduction run fans hundreds of independent sweep points
//! over worker threads; before this module, one panicking point poisoned the
//! whole `thread::scope` and a wedged point hung the run with no diagnosis.
//! In fail-soft mode (see [`crate::Workbench::set_fail_soft`]) each point
//! runs under `catch_unwind` with a deadline watchdog, and a failed point
//! becomes a [`PointError`] — which sweep, which point, why, and under which
//! parameter seed — instead of an aborted run. `repro` collects these into
//! its JSON report and exits with a distinct partial-failure code, so a
//! degraded run is machine-distinguishable from both success and disaster.

use std::fmt;

/// Why a sweep point failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PointCause {
    /// The point's simulation panicked; the payload message is preserved.
    Panicked(String),
    /// The point exceeded the configured deadline. The result (if the point
    /// eventually finished) is discarded so a run's outputs never depend on
    /// *how late* a slow point was.
    TimedOut {
        /// The configured deadline, in milliseconds.
        limit_ms: u64,
    },
}

impl fmt::Display for PointCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointCause::Panicked(msg) => write!(f, "panicked: {msg}"),
            PointCause::TimedOut { limit_ms } => {
                write!(f, "exceeded the {limit_ms} ms point deadline")
            }
        }
    }
}

/// Structured record of one failed sweep point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointError {
    /// The sweep point's site label, e.g. `"fig8/Q6/l2_line=64"`.
    pub site: String,
    /// What went wrong.
    pub cause: PointCause,
    /// The trace parameter seed the point ran under (`seed_base` of the
    /// workload), so the failure is replayable in isolation.
    pub seed: u64,
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (seed {}): {}", self.site, self.seed, self.cause)
    }
}

impl PointError {
    /// Renders the error as a JSON object for the bench report (labels and
    /// causes contain no characters needing escape beyond quotes, which are
    /// replaced defensively).
    pub fn to_json(&self) -> String {
        let clean = |s: &str| s.replace('\\', "\\\\").replace('"', "'");
        format!(
            "{{\"site\": \"{}\", \"cause\": \"{}\", \"seed\": {}}}",
            clean(&self.site),
            clean(&self.cause.to_string()),
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_site_cause_and_seed() {
        let e = PointError {
            site: "fig8/Q6/l2_line=64".into(),
            cause: PointCause::Panicked("boom".into()),
            seed: 7,
        };
        assert_eq!(e.to_string(), "fig8/Q6/l2_line=64 (seed 7): panicked: boom");
        let json = e.to_json();
        assert!(json.contains("\"site\": \"fig8/Q6/l2_line=64\""));
        assert!(json.contains("\"seed\": 7"));
    }

    #[test]
    fn json_escapes_quotes() {
        let e = PointError {
            site: "a\"b".into(),
            cause: PointCause::TimedOut { limit_ms: 250 },
            seed: 0,
        };
        assert!(e.to_json().contains("a'b"));
        assert!(e.to_string().contains("250 ms"));
    }
}
