//! Experiment harness for the HPCA'97 DSS memory-performance reproduction.
//!
//! This crate ties the substrates together into the paper's methodology
//! (its Section 4): build a memory-resident, 100×-scaled TPC-D database in
//! the emulated Postgres95, run one parameterized query per simulated
//! processor to produce classified reference traces, and feed those traces
//! into the CC-NUMA memory-hierarchy simulator under each experiment's
//! machine configuration.
//!
//! * [`Workbench`] — database + trace cache (one trace population drives a
//!   whole parameter sweep, since traces are machine-independent) and the
//!   experiment methods, one per table/figure of the evaluation. Under
//!   [`TraceMode::Streamed`] the workbench records traces straight to block
//!   files and replays them from disk, bounding peak memory at any scale.
//! * [`sim_points`] / [`sim_points_source`] — the parallel harness: fan
//!   sweep points across worker threads with results bit-identical to a
//!   serial run, over a materialized [`TraceSet`] or any streaming
//!   [`dss_trace::TraceSource`].
//! * [`experiments`] — the experiments' result types.
//! * [`report`] — ASCII renderings in the paper's chart shapes.
//! * [`paper`] — the paper's claims as executable shape checks.
//! * [`PointError`] / [`write_atomic`] — graceful degradation: structured
//!   records of failed sweep points (fail-soft mode) and atomic artifact
//!   persistence for everything the workbench writes to disk.
//! * [`CheckpointJournal`] / [`config_fingerprint`] — crash safety: a
//!   checksummed, fsynced journal of completed sweep points. A resumed run
//!   replays it, salvages partial streamed trace files, recomputes only
//!   what is missing, and renders output byte-identical to a fresh run.
//!
//! # Example
//!
//! ```no_run
//! use dss_core::{report, Workbench};
//!
//! let mut wb = Workbench::paper();
//! let baselines = wb.baseline_suite(&[3, 6, 12]);
//! println!("{}", report::render_fig6a(&baselines));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod degrade;
pub mod experiments;
pub mod paper;
mod persist;
pub mod report;
mod sim;
mod workload;

pub use checkpoint::{config_fingerprint, CheckpointJournal};
pub use degrade::{PointCause, PointError};
pub use dss_trace::{PipelineSnapshot, PipelineStats};
pub use persist::{fsync_dir, write_atomic};
pub use sim::{sim_points, sim_points_pipelined, sim_points_source, split_jobs};
pub use workload::{query_label, SimSource, TraceMode, TraceSet, Workbench, STUDIED_QUERIES};
