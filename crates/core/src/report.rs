//! ASCII rendering of every table and figure, in the paper's shapes.

use dss_memsim::{MissKind, SimStats};
use dss_query::PlanFeatures;
use dss_trace::{DataClass, DataGroup};

use crate::experiments::{CachePoint, LinePoint, MissRates, PrefetchPair, QueryBaseline, ReuseSet};
use crate::workload::query_label;

const GROUPS: [DataGroup; 4] = DataGroup::ALL;

fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.2) * width as f64).round() as usize;
    "#".repeat(n.min(width + 10))
}

/// Renders Table 1: the operator matrix for Q1–Q17.
pub fn render_table1(rows: &[(u8, PlanFeatures)]) -> String {
    let mut out = String::new();
    out.push_str("Table 1: operations in the read-only TPC-D queries\n");
    out.push_str("          SS IS NL M  H  Sort Group Aggr\n");
    for (q, f) in rows {
        let m = |b: bool| if b { "x " } else { ". " };
        out.push_str(&format!(
            "  {:4}    {} {} {} {} {} {}   {}    {}\n",
            query_label(*q),
            m(f.seq_scan),
            m(f.index_scan),
            m(f.nest_loop),
            m(f.merge_join),
            m(f.hash_join),
            m(f.sort),
            m(f.group),
            m(f.aggregate),
        ));
    }
    out
}

/// Renders Figure 6(a): normalized execution-time breakdown.
pub fn render_fig6a(baselines: &[QueryBaseline]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6(a): execution time breakdown (fractions of total cycles)\n");
    out.push_str("         Busy   Mem    MSync\n");
    for b in baselines {
        let t = b.stats.time_breakdown();
        out.push_str(&format!(
            "  {:4}   {:5.2}  {:5.2}  {:5.2}   |{}\n",
            query_label(b.query),
            t.busy,
            t.mem,
            t.msync,
            bar(t.busy, 30)
        ));
    }
    out
}

/// Renders Figure 6(b): memory stall decomposed by data structure.
pub fn render_fig6b(baselines: &[QueryBaseline]) -> String {
    let mut out = String::new();
    out.push_str("Figure 6(b): memory stall time by data structure (fractions of Mem)\n");
    out.push_str("         Priv   Data   Index  Metadata\n");
    for b in baselines {
        let total = b.stats.total(|p| p.mem_stall).max(1) as f64;
        let f: Vec<f64> = GROUPS
            .iter()
            .map(|g| b.stats.total(|p| p.stall_of_group(*g)) as f64 / total)
            .collect();
        out.push_str(&format!(
            "  {:4}   {:5.2}  {:5.2}  {:5.2}  {:5.2}\n",
            query_label(b.query),
            f[0],
            f[1],
            f[2],
            f[3]
        ));
    }
    out
}

/// Renders Figure 7 for one query: read misses per data structure and kind,
/// normalized so each chart sums to 100 (as in the paper).
pub fn render_fig7(b: &QueryBaseline) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 7 ({}): read misses by structure (normalized, cold/conflict/coherence)\n",
        query_label(b.query)
    ));
    for (level, matrix) in [
        ("L1", &b.stats.l1.read_misses),
        ("L2", &b.stats.l2.read_misses),
    ] {
        let total = matrix.total().max(1) as f64;
        out.push_str(&format!("  {level} (total {} misses):\n", matrix.total()));
        out.push_str("    struct      cold   conf   cohe   total\n");
        for class in DataClass::ALL {
            let t = matrix.by_class(class);
            if t == 0 {
                continue;
            }
            let f = |k: MissKind| 100.0 * matrix.get(class, k) as f64 / total;
            out.push_str(&format!(
                "    {:10} {:6.1} {:6.1} {:6.1}  {:6.1}\n",
                class.label(),
                f(MissKind::Cold),
                f(MissKind::Conflict),
                f(MissKind::Coherence),
                100.0 * t as f64 / total
            ));
        }
    }
    out
}

/// Renders the quoted absolute miss rates.
pub fn render_miss_rates(rates: &[MissRates]) -> String {
    let mut out = String::new();
    out.push_str(
        "Absolute read miss rates (paper quotes L1 5.5/3.4/4.8%, L2 global 0.8/0.6/0.5%)\n",
    );
    for r in rates {
        out.push_str(&format!(
            "  {:4}  L1 {:5.2}%   L2 global {:5.2}%\n",
            query_label(r.query),
            100.0 * r.l1,
            100.0 * r.l2_global
        ));
    }
    out
}

/// Renders Figure 8 for one query: misses per group across line sizes,
/// normalized to the baseline point (64-byte L2 lines = 100).
pub fn render_fig8(query: u8, points: &[LinePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 8 ({}): read misses vs line size (baseline 64B = 100 per level)\n",
        query_label(query)
    ));
    let base = points
        .iter()
        .find(|p| p.l2_line == 64)
        .expect("baseline point");
    for (level, get) in [
        (
            "L1",
            (|s: &SimStats, g: DataGroup| s.l1.read_misses.by_group(g))
                as fn(&SimStats, DataGroup) -> u64,
        ),
        ("L2", |s: &SimStats, g: DataGroup| {
            s.l2.read_misses.by_group(g)
        }),
    ] {
        let base_total: u64 = GROUPS
            .iter()
            .map(|g| get(&base.stats, *g))
            .sum::<u64>()
            .max(1);
        out.push_str(&format!(
            "  {level}:  line   Priv   Data  Index   Meta  total\n"
        ));
        for p in points {
            let vals: Vec<f64> = GROUPS
                .iter()
                .map(|g| 100.0 * get(&p.stats, *g) as f64 / base_total as f64)
                .collect();
            out.push_str(&format!(
                "       {:4}  {:6.1} {:6.1} {:6.1} {:6.1} {:6.1}\n",
                p.l2_line,
                vals[0],
                vals[1],
                vals[2],
                vals[3],
                vals.iter().sum::<f64>()
            ));
        }
    }
    out
}

/// Renders Figure 9 (or 11): execution time split Busy/MSync/SMem/PMem,
/// normalized to a baseline run (= 100).
fn render_time_sweep(
    title: &str,
    labels: &[String],
    runs: &[&SimStats],
    baseline_idx: usize,
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push_str("\n         Busy  MSync   SMem   PMem  total\n");
    let base_cycles = runs[baseline_idx].total(|p| p.cycles).max(1) as f64;
    for (label, s) in labels.iter().zip(runs) {
        let busy = 100.0 * s.total(|p| p.busy) as f64 / base_cycles;
        let msync = 100.0 * s.total(|p| p.msync) as f64 / base_cycles;
        let smem = 100.0 * s.total(|p| p.smem()) as f64 / base_cycles;
        let pmem = 100.0 * s.total(|p| p.pmem()) as f64 / base_cycles;
        out.push_str(&format!(
            "  {:6} {:5.1} {:6.1} {:6.1} {:6.1} {:6.1}\n",
            label,
            busy,
            msync,
            smem,
            pmem,
            busy + msync + smem + pmem
        ));
    }
    out
}

/// Renders Figure 9: execution time vs line size.
pub fn render_fig9(query: u8, points: &[LinePoint]) -> String {
    let labels: Vec<String> = points.iter().map(|p| format!("{}B", p.l2_line)).collect();
    let runs: Vec<&SimStats> = points.iter().map(|p| &p.stats).collect();
    let baseline = points
        .iter()
        .position(|p| p.l2_line == 64)
        .expect("baseline");
    render_time_sweep(
        &format!(
            "Figure 9 ({}): execution time vs line size (64B baseline = 100)",
            query_label(query)
        ),
        &labels,
        &runs,
        baseline,
    )
}

/// Renders Figure 10 for one query: misses per group across cache sizes,
/// normalized to the smallest (baseline) configuration.
pub fn render_fig10(query: u8, points: &[CachePoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 10 ({}): read misses vs cache size (4K/128K baseline = 100 per level)\n",
        query_label(query)
    ));
    for (level, get) in [
        (
            "L1",
            (|s: &SimStats, g: DataGroup| s.l1.read_misses.by_group(g))
                as fn(&SimStats, DataGroup) -> u64,
        ),
        ("L2", |s: &SimStats, g: DataGroup| {
            s.l2.read_misses.by_group(g)
        }),
    ] {
        let base = &points[0];
        let base_total: u64 = GROUPS
            .iter()
            .map(|g| get(&base.stats, *g))
            .sum::<u64>()
            .max(1);
        out.push_str(&format!(
            "  {level}:  caches        Priv   Data  Index   Meta\n"
        ));
        for p in points {
            let vals: Vec<f64> = GROUPS
                .iter()
                .map(|g| 100.0 * get(&p.stats, *g) as f64 / base_total as f64)
                .collect();
            out.push_str(&format!(
                "       {:>4}K/{:>5}K {:6.1} {:6.1} {:6.1} {:6.1}\n",
                p.l1_kb, p.l2_kb, vals[0], vals[1], vals[2], vals[3]
            ));
        }
    }
    out
}

/// Renders Figure 11: execution time vs cache size.
pub fn render_fig11(query: u8, points: &[CachePoint]) -> String {
    let labels: Vec<String> = points.iter().map(|p| format!("{}K", p.l1_kb)).collect();
    let runs: Vec<&SimStats> = points.iter().map(|p| &p.stats).collect();
    render_time_sweep(
        &format!(
            "Figure 11 ({}): execution time vs cache size (4K/128K baseline = 100)",
            query_label(query)
        ),
        &labels,
        &runs,
        0,
    )
}

/// Renders Figure 12 for one measured query: L2 misses per group for the
/// cold run and the two warmed runs, normalized to cold = 100.
pub fn render_fig12(set: &ReuseSet) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 12 ({}): L2 read misses with warmed caches (cold = 100)\n",
        query_label(set.query)
    ));
    out.push_str("               Priv   Data  Index   Meta\n");
    let base_total: u64 = GROUPS
        .iter()
        .map(|g| set.cold.l2.read_misses.by_group(*g))
        .sum::<u64>()
        .max(1);
    let mut render_row = |label: &str, s: &SimStats| {
        let vals: Vec<f64> = GROUPS
            .iter()
            .map(|g| 100.0 * s.l2.read_misses.by_group(*g) as f64 / base_total as f64)
            .collect();
        out.push_str(&format!(
            "  {:11} {:6.1} {:6.1} {:6.1} {:6.1}\n",
            label, vals[0], vals[1], vals[2], vals[3]
        ));
    };
    render_row("cold", &set.cold);
    render_row(&format!("after {}", query_label(set.query)), &set.warm_same);
    render_row(
        &format!("after {}", query_label(set.other)),
        &set.warm_other,
    );
    out
}

/// Renders Figure 13: execution time with and without data prefetching.
pub fn render_fig13(pairs: &[PrefetchPair]) -> String {
    let mut out = String::new();
    out.push_str("Figure 13: impact of 4-line sequential prefetching of database data\n");
    out.push_str("         base=100  with prefetch  delta\n");
    for p in pairs {
        let rel = 100.0 * p.opt.exec_cycles() as f64 / p.base.exec_cycles() as f64;
        out.push_str(&format!(
            "  {:4}   100.0     {:6.1}        {:+5.1}%\n",
            query_label(p.query),
            rel,
            100.0 * p.delta()
        ));
    }
    out
}

/// Renders the MSI-vs-MESI protocol ablation.
pub fn render_ext_protocol(ablations: &[crate::experiments::ProtocolAblation]) -> String {
    let mut out = String::new();
    out.push_str("Extension: coherence-protocol ablation (paper baseline = MSI)\n");
    out.push_str("         MSI cycles      MESI cycles    delta   L2 write txns MSI/MESI\n");
    for a in ablations {
        out.push_str(&format!(
            "  {:4}   {:>13}  {:>13}  {:+5.1}%   {} / {}\n",
            query_label(a.query),
            a.msi.exec_cycles(),
            a.mesi.exec_cycles(),
            100.0 * (a.mesi.exec_cycles() as f64 / a.msi.exec_cycles().max(1) as f64 - 1.0),
            a.msi.l2.write_accesses,
            a.mesi.l2.write_accesses,
        ));
    }
    out
}

/// Renders the prefetch-degree sweep.
pub fn render_ext_prefetch(query: u8, points: &[(u32, SimStats)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Extension ({}): prefetch-degree sweep (paper fixes the degree at 4)\n",
        query_label(query)
    ));
    out.push_str("  degree   cycles        vs off   prefetches filled\n");
    let base = points
        .iter()
        .find(|(d, _)| *d == 0)
        .map(|(_, s)| s.exec_cycles())
        .unwrap_or(1);
    for (d, s) in points {
        out.push_str(&format!(
            "  {:6}   {:>12}  {:+6.1}%   {}\n",
            d,
            s.exec_cycles(),
            100.0 * (s.exec_cycles() as f64 / base as f64 - 1.0),
            s.prefetches_filled,
        ));
    }
    out
}

/// Renders the processor-scaling experiment.
pub fn render_ext_procs(query: u8, points: &[(usize, SimStats)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Extension ({}): processor scaling under inter-query parallelism\n",
        query_label(query)
    ));
    out.push_str("  procs   exec cycles    msync/proc   metadata coherence misses\n");
    for (n, s) in points {
        let msync = s.total(|p| p.msync) / (*n as u64).max(1);
        let cohe =
            s.l2.read_misses
                .by_group_kind(DataGroup::Metadata, MissKind::Coherence);
        out.push_str(&format!(
            "  {:5}   {:>12}   {:>10}   {:>10}\n",
            n,
            s.exec_cycles(),
            msync,
            cohe
        ));
    }
    out
}

/// Renders the update-workload extension.
pub fn render_ext_updates(runs: &crate::experiments::UpdateRuns) -> String {
    let s = &runs.stats;
    let t = s.time_breakdown();
    let total_stall = s.total(|p| p.mem_stall).max(1) as f64;
    let data_frac = s.total(|p| p.stall_of_group(DataGroup::Data)) as f64 / total_stall;
    let mut out = String::new();
    out.push_str("Extension: TPC-D update functions UF1/UF2 (4 processors, disjoint keys)\n");
    out.push_str(&format!(
        "  inserted {} tuples, deleted {} tuples\n",
        runs.inserted, runs.deleted
    ));
    out.push_str(&format!(
        "  breakdown: busy {:.2}  mem {:.2}  msync {:.2}; data share of Mem {:.2}\n",
        t.busy, t.mem, t.msync, data_frac
    ));
    out.push_str(&format!(
        "  write traffic: {} L1 write misses, {} L2 write transactions ({} write misses)\n",
        s.l1.write_misses, s.l2.write_accesses, s.l2.write_misses
    ));
    out.push_str(&format!(
        "  read misses: L1 {} / L2 {} (deleting scans read the tables they purge)\n",
        s.l1.read_misses.total(),
        s.l2.read_misses.total()
    ));
    out
}

/// Renders the intra-query-parallelism extension.
pub fn render_ext_intra(runs: &crate::experiments::IntraQueryRuns) -> String {
    let speedup = runs.single.exec_cycles() as f64 / runs.partitioned.exec_cycles().max(1) as f64;
    let mut out = String::new();
    out.push_str("Extension: intra-query parallelism (Q6 partitioned across 4 processors)\n");
    out.push_str(&format!(
        "  1 processor:  {:>12} cycles\n  4 processors: {:>12} cycles  (speedup {:.2}x)\n",
        runs.single.exec_cycles(),
        runs.partitioned.exec_cycles(),
        speedup
    ));
    out.push_str(&format!(
        "  partial aggregates sum to the single-processor answer: {} == {}\n",
        runs.partial_sum, runs.full_sum
    ));
    let t1 = runs.single.time_breakdown();
    let t4 = runs.partitioned.time_breakdown();
    out.push_str(&format!(
        "  breakdown 1p: busy {:.2} mem {:.2} | 4p: busy {:.2} mem {:.2} (remote misses rise)\n",
        t1.busy, t1.mem, t4.busy, t4.mem
    ));
    out
}

/// Renders the query-stream extension next to per-query baselines.
pub fn render_ext_streams(
    runs: &crate::experiments::StreamRuns,
    baselines: &[QueryBaseline],
) -> String {
    let labels: Vec<String> = runs.queries.iter().map(|q| query_label(*q)).collect();
    let sum_baseline: u64 = baselines.iter().map(|b| b.stats.exec_cycles()).sum();
    let t = runs.stats.time_breakdown();
    let mut out = String::new();
    out.push_str(&format!(
        "Extension: query streams ({} per processor, ordinary caches)\n",
        labels.join(";")
    ));
    out.push_str(&format!(
        "  stream: {} cycles vs {} for the queries run cold separately ({:+.1}%)\n",
        runs.stats.exec_cycles(),
        sum_baseline,
        100.0 * (runs.stats.exec_cycles() as f64 / sum_baseline.max(1) as f64 - 1.0)
    ));
    out.push_str(&format!(
        "  breakdown: busy {:.2} mem {:.2} msync {:.2}; L2 read misses {}\n",
        t.busy,
        t.mem,
        t.msync,
        runs.stats.l2.read_misses.total()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(0.5, 10), "#####");
        assert_eq!(bar(-1.0, 10), "");
        assert_eq!(bar(5.0, 10), "############"); // clamped to 1.2
    }

    #[test]
    fn table1_renders_all_rows() {
        let rows: Vec<(u8, PlanFeatures)> =
            (1..=17).map(|q| (q, PlanFeatures::default())).collect();
        let text = render_table1(&rows);
        assert!(text.contains("Q1 "));
        assert!(text.contains("Q17"));
        assert_eq!(text.lines().count(), 19);
    }

    #[test]
    fn fig13_shows_delta_sign() {
        let mk = |cycles: u64| {
            let mut s = SimStats::default();
            let mut p = dss_memsim::ProcStats::default();
            p.cycles = cycles;
            s.procs = vec![p];
            s
        };
        let pairs = vec![PrefetchPair {
            query: 6,
            base: mk(100),
            opt: mk(94),
        }];
        let text = render_fig13(&pairs);
        assert!(text.contains("-6.0%"), "{text}");
    }
}
