//! The paper's reported results, encoded as checkable *shape* expectations.
//!
//! The reproduction cannot (and does not try to) match the authors' absolute
//! cycle counts — their substrate was a traced Postgres95 binary on a 1997
//! simulator — but every qualitative claim of the evaluation should hold.
//! Each function verifies one figure's claims against measured results and
//! returns a list of [`ShapeCheck`]s, used both by the test suite and by the
//! `repro` binary when writing EXPERIMENTS.md.

use dss_trace::{DataClass, DataGroup};

use crate::experiments::{CachePoint, LinePoint, PrefetchPair, QueryBaseline, ReuseSet};
use crate::workload::query_label;

/// The paper's quoted L1 read miss rates (percent) for Q3, Q6, Q12.
pub const PAPER_L1_MISS_RATES: [(u8, f64); 3] = [(3, 5.5), (6, 3.4), (12, 4.8)];

/// The paper's quoted global L2 read miss rates (percent).
pub const PAPER_L2_GLOBAL_MISS_RATES: [(u8, f64); 3] = [(3, 0.8), (6, 0.6), (12, 0.5)];

/// The paper's Busy fraction band ("Busy accounts for 50-70%").
pub const PAPER_BUSY_BAND: (f64, f64) = (0.50, 0.70);

/// One verified claim.
#[derive(Clone, Debug)]
pub struct ShapeCheck {
    /// Short name of the claim.
    pub name: String,
    /// Whether the measurement agrees.
    pub ok: bool,
    /// Measured values, for the report.
    pub detail: String,
}

impl ShapeCheck {
    fn new(name: impl Into<String>, ok: bool, detail: String) -> Self {
        ShapeCheck {
            name: name.into(),
            ok,
            detail,
        }
    }
}

/// Renders checks as a PASS/FAIL list.
pub fn render_checks(checks: &[ShapeCheck]) -> String {
    let mut out = String::new();
    for c in checks {
        out.push_str(&format!(
            "  [{}] {} — {}\n",
            if c.ok { "PASS" } else { "FAIL" },
            c.name,
            c.detail
        ));
    }
    out
}

fn mem_group_frac(b: &QueryBaseline, group: DataGroup) -> f64 {
    let total = b.stats.total(|p| p.mem_stall).max(1) as f64;
    b.stats.total(|p| p.stall_of_group(group)) as f64 / total
}

/// Figure 6's claims: Busy dominates (around the paper's 50–70 % band);
/// MSync is small but largest for the Index query; Q3's memory stall is
/// dominated by metadata + indices while Q6's and Q12's are dominated by
/// database data.
pub fn check_fig6(baselines: &[QueryBaseline]) -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    let get = |q: u8| {
        baselines
            .iter()
            .find(|b| b.query == q)
            .expect("studied query")
    };
    for b in baselines {
        let t = b.stats.time_breakdown();
        out.push(ShapeCheck::new(
            format!(
                "{}: Busy is the largest component (paper: 50-70%)",
                query_label(b.query)
            ),
            t.busy >= 0.45 && t.busy > t.mem,
            format!("busy={:.2} mem={:.2} msync={:.2}", t.busy, t.mem, t.msync),
        ));
        out.push(ShapeCheck::new(
            format!("{}: MSync is a minor component", query_label(b.query)),
            t.msync < 0.15,
            format!("msync={:.2}", t.msync),
        ));
    }
    let q3 = get(3);
    let meta_index = mem_group_frac(q3, DataGroup::Metadata) + mem_group_frac(q3, DataGroup::Index);
    out.push(ShapeCheck::new(
        "Q3: shared-data stall dominated by metadata and indices",
        meta_index > 0.5 && meta_index > mem_group_frac(q3, DataGroup::Data),
        format!(
            "metadata+index={meta_index:.2} data={:.2}",
            mem_group_frac(q3, DataGroup::Data)
        ),
    ));
    for q in [6u8, 12] {
        let b = get(q);
        out.push(ShapeCheck::new(
            format!(
                "{}: shared-data stall dominated by database data",
                query_label(q)
            ),
            mem_group_frac(b, DataGroup::Data) > 0.5,
            format!("data={:.2}", mem_group_frac(b, DataGroup::Data)),
        ));
    }
    let msync3 = get(3).stats.time_breakdown().msync;
    let msync6 = get(6).stats.time_breakdown().msync;
    out.push(ShapeCheck::new(
        "MSync largest for the Index query (Q3)",
        msync3 > msync6,
        format!("Q3={msync3:.3} Q6={msync6:.3}"),
    ));
    out
}

/// Figure 7's claims: L1 misses are mostly private-conflict; L2 misses are a
/// metadata/index/data mix for Q3 and data-cold for Q6/Q12; metadata misses
/// are mostly coherence; the LockMgrLock suffers significant misses in Q3.
pub fn check_fig7(baselines: &[QueryBaseline]) -> Vec<ShapeCheck> {
    use dss_memsim::MissKind;
    let mut out = Vec::new();
    let get = |q: u8| {
        baselines
            .iter()
            .find(|b| b.query == q)
            .expect("studied query")
    };
    for b in baselines {
        let l1 = &b.stats.l1.read_misses;
        let priv_misses = l1.by_group(DataGroup::Priv);
        let max_other = [DataGroup::Data, DataGroup::Index, DataGroup::Metadata]
            .iter()
            .map(|g| l1.by_group(*g))
            .max()
            .unwrap_or(0);
        out.push(ShapeCheck::new(
            format!(
                "{}: most L1 misses are on private data",
                query_label(b.query)
            ),
            priv_misses > max_other,
            format!("priv={priv_misses} max-other={max_other}"),
        ));
        out.push(ShapeCheck::new(
            format!(
                "{}: private L1 misses mostly conflict",
                query_label(b.query)
            ),
            l1.by_group_kind(DataGroup::Priv, MissKind::Conflict)
                > l1.by_group(DataGroup::Priv) / 2,
            format!(
                "conflict={} of {}",
                l1.by_group_kind(DataGroup::Priv, MissKind::Conflict),
                l1.by_group(DataGroup::Priv)
            ),
        ));
        let l2 = &b.stats.l2.read_misses;
        if b.query == 3 {
            // The coherence-dominated metadata claim applies where metadata
            // misses matter — the Index query, whose lock and buffer
            // structures ping-pong between processors.
            out.push(ShapeCheck::new(
                format!(
                    "{}: metadata L2 misses mostly coherence",
                    query_label(b.query)
                ),
                l2.by_group_kind(DataGroup::Metadata, MissKind::Coherence)
                    > l2.by_group(DataGroup::Metadata) / 2,
                format!(
                    "coherence={} of {}",
                    l2.by_group_kind(DataGroup::Metadata, MissKind::Coherence),
                    l2.by_group(DataGroup::Metadata)
                ),
            ));
        } else {
            out.push(ShapeCheck::new(
                format!(
                    "{}: metadata is a minor share of L2 misses",
                    query_label(b.query)
                ),
                l2.by_group(DataGroup::Metadata) * 6 < l2.total(),
                format!(
                    "metadata={} total={}",
                    l2.by_group(DataGroup::Metadata),
                    l2.total()
                ),
            ));
        }
        out.push(ShapeCheck::new(
            format!(
                "{}: database-data L2 misses mostly cold",
                query_label(b.query)
            ),
            l2.by_group_kind(DataGroup::Data, MissKind::Cold) > l2.by_group(DataGroup::Data) / 2,
            format!(
                "cold={} of {}",
                l2.by_group_kind(DataGroup::Data, MissKind::Cold),
                l2.by_group(DataGroup::Data)
            ),
        ));
    }
    for q in [6u8, 12] {
        let l2 = &get(q).stats.l2.read_misses;
        out.push(ShapeCheck::new(
            format!("{}: L2 misses dominated by database data", query_label(q)),
            l2.by_group(DataGroup::Data) * 2 > l2.total(),
            format!("data={} total={}", l2.by_group(DataGroup::Data), l2.total()),
        ));
    }
    let q3l2 = &get(3).stats.l2.read_misses;
    out.push(ShapeCheck::new(
        "Q3: LockMgrLock (LockSLock) suffers significant L2 misses",
        q3l2.by_class(DataClass::LockMgrLock) > q3l2.total() / 50,
        format!(
            "LockSLock={} total={}",
            q3l2.by_class(DataClass::LockMgrLock),
            q3l2.total()
        ),
    ));
    out.push(ShapeCheck::new(
        "Q3: L2 misses are a mix (no single group above 60%)",
        DataGroup::ALL
            .iter()
            .all(|g| q3l2.by_group(*g) * 5 < q3l2.total() * 3),
        format!(
            "priv={} data={} index={} meta={}",
            q3l2.by_group(DataGroup::Priv),
            q3l2.by_group(DataGroup::Data),
            q3l2.by_group(DataGroup::Index),
            q3l2.by_group(DataGroup::Metadata)
        ),
    ));
    out
}

/// Figure 8's claims: database data (and, for Q3, indices) have spatial
/// locality — L2 misses fall sharply with line size; private L1 misses grow
/// beyond small lines.
pub fn check_fig8(query: u8, points: &[LinePoint]) -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    let at = |line: u64| {
        points
            .iter()
            .find(|p| p.l2_line == line)
            .expect("swept point")
    };
    let (p16, p64, p256) = (at(16), at(64), at(256));
    let data = |p: &LinePoint| p.stats.l2.read_misses.by_group(DataGroup::Data).max(1);
    out.push(ShapeCheck::new(
        format!(
            "{}: data L2 misses fall sharply with line size",
            query_label(query)
        ),
        data(p16) > 2 * data(p256) && data(p16) > data(p64),
        format!("16B={} 64B={} 256B={}", data(p16), data(p64), data(p256)),
    ));
    if query == 3 {
        let index = |p: &LinePoint| p.stats.l2.read_misses.by_group(DataGroup::Index).max(1);
        out.push(ShapeCheck::new(
            "Q3: index L2 misses also fall with line size",
            index(p16) > 2 * index(p256),
            format!("16B={} 256B={}", index(p16), index(p256)),
        ));
    }
    let priv_l1 = |p: &LinePoint| p.stats.l1.read_misses.by_group(DataGroup::Priv);
    out.push(ShapeCheck::new(
        format!(
            "{}: private L1 misses grow with long lines",
            query_label(query)
        ),
        priv_l1(p256) > priv_l1(p64) || priv_l1(p256) > priv_l1(p16),
        format!(
            "16B={} 64B={} 256B={}",
            priv_l1(p16),
            priv_l1(p64),
            priv_l1(p256)
        ),
    ));
    out
}

/// Figure 9's claims: SMem falls with line size while PMem eventually grows;
/// 64-byte lines perform well (within a few percent of the sweep's best).
pub fn check_fig9(query: u8, points: &[LinePoint]) -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    let at = |line: u64| {
        points
            .iter()
            .find(|p| p.l2_line == line)
            .expect("swept point")
    };
    let (p16, p64, p256) = (at(16), at(64), at(256));
    let smem = |p: &LinePoint| p.stats.total(|x| x.smem());
    let pmem = |p: &LinePoint| p.stats.total(|x| x.pmem());
    out.push(ShapeCheck::new(
        format!("{}: SMem decreases with line size", query_label(query)),
        smem(p16) > smem(p64) && smem(p64) > smem(p256),
        format!("16B={} 64B={} 256B={}", smem(p16), smem(p64), smem(p256)),
    ));
    out.push(ShapeCheck::new(
        format!("{}: PMem increases beyond short lines", query_label(query)),
        pmem(p256) > pmem(p16),
        format!("16B={} 256B={}", pmem(p16), pmem(p256)),
    ));
    let best = points
        .iter()
        .map(|p| p.stats.exec_cycles())
        .min()
        .unwrap_or(1);
    let at64 = p64.stats.exec_cycles();
    // The paper's overall optimum is 64 B; our Sequential queries read a
    // smaller fraction of each tuple than Postgres95, shifting their optimum
    // slightly toward longer lines (see EXPERIMENTS.md), so "performs well"
    // is checked at a 12% tolerance.
    out.push(ShapeCheck::new(
        format!(
            "{}: 64-byte lines perform well (within 12% of best)",
            query_label(query)
        ),
        at64 as f64 <= best as f64 * 1.12,
        format!("64B={at64} best={best}"),
    ));
    out
}

/// Figure 10's claims: private misses drop dramatically with larger caches;
/// database data is flat (no intra-query temporal locality); Q3's index and
/// metadata misses shrink (temporal locality).
pub fn check_fig10(query: u8, points: &[CachePoint]) -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    let (small, large) = (&points[0], points.last().expect("points"));
    let priv_l1 = |p: &CachePoint| p.stats.l1.read_misses.by_group(DataGroup::Priv).max(1);
    out.push(ShapeCheck::new(
        format!(
            "{}: private L1 misses shrink sharply with cache size",
            query_label(query)
        ),
        priv_l1(small) > 5 * priv_l1(large),
        format!("4K={} 256K={}", priv_l1(small), priv_l1(large)),
    ));
    let data_l2 = |p: &CachePoint| p.stats.l2.read_misses.by_group(DataGroup::Data).max(1);
    let flat = data_l2(large) as f64 / data_l2(small) as f64;
    out.push(ShapeCheck::new(
        format!(
            "{}: data L2 misses flat across cache sizes (no reuse)",
            query_label(query)
        ),
        flat > 0.9,
        format!("ratio large/small = {flat:.2}"),
    ));
    if query == 3 {
        let index_l2 = |p: &CachePoint| p.stats.l2.read_misses.by_group(DataGroup::Index).max(1);
        out.push(ShapeCheck::new(
            "Q3: index L2 misses shrink with cache size (temporal locality)",
            index_l2(small) > index_l2(large) * 5 / 4,
            format!("4K/128K={} 256K/8M={}", index_l2(small), index_l2(large)),
        ));
    }
    out
}

/// Figure 11's claims: bigger caches speed queries up, and most of the win
/// is private-data stall.
pub fn check_fig11(query: u8, points: &[CachePoint]) -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    let (small, large) = (&points[0], points.last().expect("points"));
    out.push(ShapeCheck::new(
        format!(
            "{}: bigger caches reduce execution time",
            query_label(query)
        ),
        large.stats.exec_cycles() < small.stats.exec_cycles(),
        format!(
            "small={} large={}",
            small.stats.exec_cycles(),
            large.stats.exec_cycles()
        ),
    ));
    let pmem_gain = small
        .stats
        .total(|p| p.pmem())
        .saturating_sub(large.stats.total(|p| p.pmem()));
    let smem_gain = small
        .stats
        .total(|p| p.smem())
        .saturating_sub(large.stats.total(|p| p.smem()));
    let expected = if query == 3 {
        // For the Index query, index/metadata locality also contributes.
        pmem_gain + smem_gain > 0
    } else {
        pmem_gain >= smem_gain
    };
    out.push(ShapeCheck::new(
        format!(
            "{}: most of the speedup comes from PMem",
            query_label(query)
        ),
        expected,
        format!("pmem_gain={pmem_gain} smem_gain={smem_gain}"),
    ));
    out
}

/// Figure 12's claims: a Sequential query re-run after another instance of
/// itself reuses the whole scanned table; an Index query warms the caches
/// for a Sequential one only slightly; indices are reused across Index
/// queries.
pub fn check_fig12(q3: &ReuseSet, q12: &ReuseSet) -> Vec<ShapeCheck> {
    let data = |s: &dss_memsim::SimStats| s.l2.read_misses.by_group(DataGroup::Data).max(1);
    let index = |s: &dss_memsim::SimStats| s.l2.read_misses.by_group(DataGroup::Index).max(1);
    vec![
        ShapeCheck::new(
            "Q12 after Q12: most data misses disappear (table reused)",
            data(&q12.warm_same) * 4 < data(&q12.cold),
            format!("cold={} warm={}", data(&q12.cold), data(&q12.warm_same)),
        ),
        ShapeCheck::new(
            "Q12 after Q3: only a few data misses disappear",
            data(&q12.warm_other) * 4 > data(&q12.cold) * 3,
            format!(
                "cold={} after-Q3={}",
                data(&q12.cold),
                data(&q12.warm_other)
            ),
        ),
        ShapeCheck::new(
            "Q3 after Q3: index misses shrink (indices reused across queries)",
            index(&q3.warm_same) * 2 < index(&q3.cold),
            format!("cold={} warm={}", index(&q3.cold), index(&q3.warm_same)),
        ),
        ShapeCheck::new(
            "Q3 after Q12: lineitem tuples scanned by Q12 are reused",
            data(&q3.warm_other) < data(&q3.cold),
            format!("cold={} after-Q12={}", data(&q3.cold), data(&q3.warm_other)),
        ),
    ]
}

/// Figure 13's claims: prefetching gives Sequential queries a moderate
/// speedup and does not help the Index query much.
pub fn check_fig13(pairs: &[PrefetchPair]) -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    let get = |q: u8| pairs.iter().find(|p| p.query == q).expect("studied query");
    for q in [6u8, 12] {
        let d = get(q).delta();
        out.push(ShapeCheck::new(
            format!(
                "{}: prefetching speeds the Sequential query up",
                query_label(q)
            ),
            d < -0.02,
            format!("delta={:+.1}%", 100.0 * d),
        ));
    }
    let d3 = get(3).delta();
    let d12 = get(12).delta();
    out.push(ShapeCheck::new(
        "Q3: prefetching helps the Index query far less than Sequential ones",
        d3 > d12 / 2.0,
        format!("Q3={:+.1}% Q12={:+.1}%", 100.0 * d3, 100.0 * d12),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_marks_pass_and_fail() {
        let checks = vec![
            ShapeCheck::new("a", true, "x".into()),
            ShapeCheck::new("b", false, "y".into()),
        ];
        let text = render_checks(&checks);
        assert!(text.contains("[PASS] a"));
        assert!(text.contains("[FAIL] b"));
    }

    #[test]
    fn paper_constants_are_the_quoted_ones() {
        assert_eq!(PAPER_L1_MISS_RATES[1], (6, 3.4));
        assert_eq!(PAPER_L2_GLOBAL_MISS_RATES[2], (12, 0.5));
        assert_eq!(PAPER_BUSY_BAND, (0.50, 0.70));
    }
}
