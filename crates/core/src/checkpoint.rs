//! The experiment checkpoint journal: durable, verifiable sweep progress.
//!
//! A long `repro` campaign dies with the process today unless every
//! completed sweep point survives it. The journal is an append-only manifest
//! next to the streamed trace files: one checksummed line per completed
//! point carrying the point's label, seed, a digest of its serialized
//! [`SimStats`], and the full stats record itself — enough for a resumed run
//! to *skip the simulation and still render byte-identical output*. Records
//! are fsynced as they are appended (and the journal's directory entry is
//! fsynced at creation via [`crate::persist::fsync_dir`]), so a point is
//! durable the instant [`CheckpointJournal::append`] returns.
//!
//! Replay trusts nothing: the header must carry the expected config
//! fingerprint (a resumed run with a different scale factor, seed, or
//! processor count silently measuring the wrong thing would be worse than
//! recomputing), every line must match its own FNV-1a checksum, and the
//! stats digest must match the parsed record. A torn tail — the half-written
//! line a crash inside an append leaves behind — simply ends the replay at
//! the last valid record, exactly like the trace codec's salvage scan.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};

use dss_faultkit::crash::crash_point;
use dss_memsim::SimStats;
use dss_query::DbConfig;

use crate::persist::fsync_dir;

/// Journal format magic, bumped on any incompatible change.
const JOURNAL_MAGIC: &str = "dss-ckpt/v1";

/// FNV-1a 64-bit over `bytes` (offset basis / prime shared with the trace
/// codec — a line checksum, not a distributed hash).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints the configuration a journal's results are valid for: the
/// database parameters and the processor count, plus the journal format
/// version. Resuming under a different fingerprint discards the journal —
/// its results answer a different experiment.
pub fn config_fingerprint(config: &DbConfig, nprocs: usize) -> u64 {
    let mut h = fnv1a(JOURNAL_MAGIC.as_bytes());
    for word in [
        config.scale.to_bits(),
        config.seed,
        config.nbuffers as u64,
        config.indexes.len() as u64,
        nprocs as u64,
    ] {
        h ^= fnv1a(&word.to_le_bytes());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    for (table, column) in &config.indexes {
        h ^= fnv1a(table.as_bytes()) ^ fnv1a(column.as_bytes()).rotate_left(17);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// An append-only manifest of completed sweep points (see the module docs).
///
/// One journal serves a whole `repro` run: sweep labels are globally unique
/// (`fig8/Q6/l2_line=64`, `fig12/Q6v3/cold`, …), so completed points are
/// keyed by `(label, seed)` across experiments.
#[derive(Debug)]
pub struct CheckpointJournal {
    path: PathBuf,
    fingerprint: u64,
    file: File,
    completed: HashMap<(String, u64), SimStats>,
    replayed: usize,
    fresh_reason: Option<String>,
}

impl CheckpointJournal {
    /// Creates a fresh journal at `path`, truncating anything there, writing
    /// the fingerprint header, and fsyncing both the file and its directory
    /// entry.
    ///
    /// # Errors
    ///
    /// Propagates file creation, write, and fsync errors.
    pub fn create(path: &Path, fingerprint: u64) -> io::Result<Self> {
        let mut file = File::create(path)?;
        let head = format!("{JOURNAL_MAGIC} fp={fingerprint:016x}");
        writeln!(file, "{head} crc={:016x}", fnv1a(head.as_bytes()))?;
        file.sync_data()?;
        fsync_dir(path.parent().filter(|p| !p.as_os_str().is_empty()))?;
        Ok(CheckpointJournal {
            path: path.to_path_buf(),
            fingerprint,
            file,
            completed: HashMap::new(),
            replayed: 0,
            fresh_reason: None,
        })
    }

    /// Opens the journal at `path` for resumption: replays every valid
    /// record, truncates the file to its valid prefix (discarding the torn
    /// tail a crashed append leaves behind — a later append must not glue
    /// onto the fragment), then keeps writing from there. A missing journal,
    /// an unreadable header, or a fingerprint mismatch is not an error — the
    /// journal is recreated fresh and [`CheckpointJournal::fresh_reason`]
    /// says why, so the caller can also discard any sibling state (stale
    /// trace files) the old journal vouched for.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than the file simply not existing.
    pub fn resume(path: &Path, fingerprint: u64) -> io::Result<Self> {
        let bytes = match File::open(path) {
            Ok(mut f) => {
                let mut bytes = Vec::new();
                f.read_to_end(&mut bytes)?;
                bytes
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                let mut j = CheckpointJournal::create(path, fingerprint)?;
                j.fresh_reason = Some("no journal to resume".to_string());
                return Ok(j);
            }
            Err(e) => return Err(e),
        };

        // A line only counts if it is newline-terminated, valid UTF-8, and
        // parses; `pos` tracks the byte length of the valid prefix.
        let mut pos = 0usize;
        let header = next_line(&bytes, &mut pos).and_then(parse_header);
        match header {
            Some(fp) if fp == fingerprint => {}
            Some(fp) => {
                let mut j = CheckpointJournal::create(path, fingerprint)?;
                j.fresh_reason = Some(format!(
                    "config fingerprint mismatch (journal {fp:016x}, run {fingerprint:016x})"
                ));
                return Ok(j);
            }
            None => {
                let mut j = CheckpointJournal::create(path, fingerprint)?;
                j.fresh_reason = Some("journal header unreadable".to_string());
                return Ok(j);
            }
        }

        let mut completed = HashMap::new();
        let mut cursor = pos;
        while let Some((label, seed, stats)) = next_line(&bytes, &mut cursor).and_then(parse_record)
        {
            completed.insert((label, seed), stats);
            // The first damaged line ends the valid prefix: anything after
            // it could be the torn tail of a crashed append.
            pos = cursor;
        }
        let replayed = completed.len();

        let mut file = OpenOptions::new().write(true).open(path)?;
        if pos < bytes.len() {
            file.set_len(pos as u64)?;
            file.sync_data()?;
        }
        file.seek(io::SeekFrom::End(0))?;
        Ok(CheckpointJournal {
            path: path.to_path_buf(),
            fingerprint,
            file,
            completed,
            replayed,
            fresh_reason: None,
        })
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The fingerprint this journal's records are valid for.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of records replayed from disk when this journal was resumed
    /// (zero for a fresh journal).
    pub fn replayed(&self) -> usize {
        self.replayed
    }

    /// Why [`CheckpointJournal::resume`] had to start fresh, if it did. A
    /// caller resuming trace files alongside the journal must treat this as
    /// "discard everything" — the old state answers a different experiment.
    pub fn fresh_reason(&self) -> Option<&str> {
        self.fresh_reason.as_deref()
    }

    /// Number of completed points known (replayed plus appended).
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether no completed points are known.
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// The journaled stats for `(label, seed)`, if that point completed.
    pub fn lookup(&self, label: &str, seed: u64) -> Option<&SimStats> {
        self.completed.get(&(label.to_string(), seed))
    }

    /// Appends one completed point and fsyncs it: when this returns, the
    /// point is durable and a resumed run will skip it.
    ///
    /// # Errors
    ///
    /// Rejects labels containing whitespace (they would corrupt the
    /// line-oriented format) with [`io::ErrorKind::InvalidInput`], and
    /// propagates write/fsync errors.
    pub fn append(&mut self, label: &str, seed: u64, stats: &SimStats) -> io::Result<()> {
        if label.is_empty() || label.contains(char::is_whitespace) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("journal label must be non-empty and whitespace-free: {label:?}"),
            ));
        }
        let record = stats.to_record();
        let body = format!(
            "pt {label} {seed} {:016x} {record}",
            fnv1a(record.as_bytes())
        );
        let line = format!("{body} crc={:016x}\n", fnv1a(body.as_bytes()));
        // Two writes with a crash site between them: the campaign proves a
        // torn record is discarded by the resume scan, not replayed.
        let (head, tail) = line.as_bytes().split_at(line.len() / 2);
        self.file.write_all(head)?;
        crash_point("crash.manifest.torn-append");
        self.file.write_all(tail)?;
        self.file.sync_data()?;
        crash_point("crash.manifest.post-append");
        self.completed
            .insert((label.to_string(), seed), stats.clone());
        Ok(())
    }
}

/// The next newline-terminated UTF-8 line starting at `*pos`, advancing
/// `*pos` past it. `None` for an unterminated or non-UTF-8 tail.
fn next_line<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a str> {
    let rest = bytes.get(*pos..)?;
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&rest[..nl]).ok()?;
    *pos += nl + 1;
    Some(line)
}

/// Parses the journal header line, returning the fingerprint.
fn parse_header(line: &str) -> Option<u64> {
    let (body, crc) = line.rsplit_once(" crc=")?;
    if u64::from_str_radix(crc, 16).ok()? != fnv1a(body.as_bytes()) {
        return None;
    }
    let fp = body.strip_prefix(JOURNAL_MAGIC)?.strip_prefix(" fp=")?;
    u64::from_str_radix(fp, 16).ok()
}

/// Parses one `pt` record line, validating the line checksum and the stats
/// digest. `None` for anything damaged.
fn parse_record(line: &str) -> Option<(String, u64, SimStats)> {
    let (body, crc) = line.rsplit_once(" crc=")?;
    if u64::from_str_radix(crc, 16).ok()? != fnv1a(body.as_bytes()) {
        return None;
    }
    let mut fields = body.split(' ');
    if fields.next()? != "pt" {
        return None;
    }
    let label = fields.next()?;
    let seed = fields.next()?.parse().ok()?;
    let digest = u64::from_str_radix(fields.next()?, 16).ok()?;
    let record = fields.next()?;
    if fields.next().is_some() || fnv1a(record.as_bytes()) != digest {
        return None;
    }
    Some((label.to_string(), seed, SimStats::from_record(record)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_memsim::ProcStats;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dss-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("manifest.ckpt")
    }

    // `ProcStats` keeps its breakdown fields private to this crate's
    // dependents, so the fixture mutates a default instead.
    #[allow(clippy::field_reassign_with_default)]
    fn stats(cycles: u64) -> SimStats {
        let mut s = SimStats::default();
        let mut p = ProcStats::default();
        p.cycles = cycles;
        p.busy = cycles / 2;
        s.procs.push(p);
        s.prefetches_issued = 3;
        s
    }

    #[test]
    fn roundtrip_append_and_resume() {
        let path = temp_path("roundtrip");
        let mut j = CheckpointJournal::create(&path, 0xfeed).unwrap();
        assert!(j.is_empty());
        j.append("fig8/Q6/l2_line=64", 0, &stats(100)).unwrap();
        j.append("fig8/Q6/l2_line=128", 0, &stats(200)).unwrap();
        j.append("fig12/Q6v3/cold", 7, &stats(300)).unwrap();
        drop(j);

        let j = CheckpointJournal::resume(&path, 0xfeed).unwrap();
        assert_eq!(j.replayed(), 3);
        assert_eq!(j.len(), 3);
        assert_eq!(j.fresh_reason(), None);
        assert_eq!(j.lookup("fig8/Q6/l2_line=64", 0), Some(&stats(100)));
        assert_eq!(j.lookup("fig12/Q6v3/cold", 7), Some(&stats(300)));
        assert_eq!(j.lookup("fig12/Q6v3/cold", 8), None);
        assert_eq!(j.lookup("fig8/Q3/l2_line=64", 0), None);
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn torn_tail_is_discarded_and_overwritten() {
        let path = temp_path("torn");
        let mut j = CheckpointJournal::create(&path, 1).unwrap();
        j.append("a/b", 0, &stats(1)).unwrap();
        j.append("c/d", 0, &stats(2)).unwrap();
        drop(j);
        // Tear the last record mid-line, as a crash inside append would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 25]).unwrap();

        let mut j = CheckpointJournal::resume(&path, 1).unwrap();
        assert_eq!(j.replayed(), 1, "torn tail record dropped");
        assert!(j.lookup("a/b", 0).is_some());
        assert!(j.lookup("c/d", 0).is_none());
        // Appending after a torn-tail resume must yield a journal whose
        // *valid prefix* includes the new record on the next resume.
        j.append("e/f", 0, &stats(3)).unwrap();
        drop(j);
        let j = CheckpointJournal::resume(&path, 1).unwrap();
        assert!(j.lookup("a/b", 0).is_some());
        assert!(j.lookup("e/f", 0).is_some(), "record after torn tail");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn fingerprint_mismatch_starts_fresh() {
        let path = temp_path("fp");
        let mut j = CheckpointJournal::create(&path, 10).unwrap();
        j.append("a/b", 0, &stats(1)).unwrap();
        drop(j);
        let j = CheckpointJournal::resume(&path, 11).unwrap();
        assert_eq!(j.replayed(), 0);
        assert!(j.fresh_reason().unwrap().contains("fingerprint mismatch"));
        assert!(j.lookup("a/b", 0).is_none());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn missing_and_garbage_journals_start_fresh() {
        let path = temp_path("garbage");
        let j = CheckpointJournal::resume(&path, 5).unwrap();
        assert_eq!(j.fresh_reason(), Some("no journal to resume"));
        drop(j);
        std::fs::write(&path, b"not a journal\nat all\n").unwrap();
        let j = CheckpointJournal::resume(&path, 5).unwrap();
        assert_eq!(j.fresh_reason(), Some("journal header unreadable"));
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn corrupt_record_ends_the_valid_prefix() {
        let path = temp_path("corrupt");
        let mut j = CheckpointJournal::create(&path, 2).unwrap();
        j.append("a/b", 0, &stats(1)).unwrap();
        j.append("c/d", 0, &stats(2)).unwrap();
        j.append("e/f", 0, &stats(3)).unwrap();
        drop(j);
        // Flip one digit inside the second record's stats: its digest and
        // line checksum both break, and replay must stop there — records
        // past a damaged line are not trusted.
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        let tampered = lines[2].replace(char::is_numeric, "9");
        let rewritten = format!("{}\n{}\n{}\n{}\n", lines[0], lines[1], tampered, lines[3]);
        std::fs::write(&path, rewritten).unwrap();
        let j = CheckpointJournal::resume(&path, 2).unwrap();
        assert_eq!(j.replayed(), 1);
        assert!(j.lookup("a/b", 0).is_some());
        assert!(j.lookup("e/f", 0).is_none(), "records past damage dropped");
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn whitespace_labels_are_rejected() {
        let path = temp_path("label");
        let mut j = CheckpointJournal::create(&path, 3).unwrap();
        let err = j.append("bad label", 0, &stats(1)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(j.append("", 0, &stats(1)).is_err());
        std::fs::remove_dir_all(path.parent().unwrap()).ok();
    }

    #[test]
    fn fingerprint_distinguishes_configurations() {
        let base = DbConfig::default();
        let a = config_fingerprint(&base, 4);
        assert_eq!(a, config_fingerprint(&DbConfig::default(), 4));
        assert_ne!(a, config_fingerprint(&base, 8));
        assert_ne!(
            a,
            config_fingerprint(
                &DbConfig {
                    scale: base.scale * 10.0,
                    ..DbConfig::default()
                },
                4
            )
        );
        assert_ne!(
            a,
            config_fingerprint(
                &DbConfig {
                    seed: base.seed + 1,
                    ..DbConfig::default()
                },
                4
            )
        );
    }
}
