//! The workbench: a built database plus cached per-processor traces.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dss_query::{Database, DbConfig, Session};
use dss_tpcd::params;
use dss_trace::Trace;

use crate::degrade::PointError;

/// A shared, immutable set of per-processor traces.
///
/// Trace *generation* needs `&mut` access to the database (buffer-cache and
/// lock-manager state move); trace *consumption* does not: once generated, a
/// trace set is frozen and [`Send`]` + `[`Sync`], so any number of simulated
/// machines — on any number of worker threads — can replay it concurrently.
/// [`Workbench::traces`] hands out cheap clones of one allocation.
pub type TraceSet = Arc<[Trace]>;

/// The three queries the paper studies in detail: Q3 (*Index*), Q6
/// (*Sequential*), and Q12 (*Sequential* with an index-scanned second table).
pub const STUDIED_QUERIES: [u8; 3] = [3, 6, 12];

/// Maximum trace sets kept in memory (a measured set plus a warm-up set).
const TRACE_CACHE_SLOTS: usize = 2;

/// Label of a query ("Q3").
pub fn query_label(q: u8) -> String {
    format!("Q{q}")
}

/// A built database plus a small cache of generated trace sets.
///
/// Trace generation follows the paper's methodology: one query of the given
/// type per processor, each with different TPC-D substitution parameters,
/// statistics recorded from start to finish with no warm-up discarded.
/// Traces depend only on the query and parameter seeds — never on the
/// simulated machine — so one set drives every sweep point, and the sweep
/// points themselves are independent: the experiment methods
/// ([`Workbench::line_size_sweep`] and friends, see [`crate::experiments`])
/// fan them out across up to [`Workbench::jobs`] worker threads with
/// bit-identical results to a serial run.
///
/// # Example
///
/// ```no_run
/// use dss_core::Workbench;
/// use dss_memsim::{Machine, MachineConfig};
///
/// let mut wb = Workbench::paper();
/// let traces = wb.traces(6, 0); // TraceSet: shared, immutable, Send + Sync
/// let stats = Machine::new(MachineConfig::baseline()).run(&traces);
/// assert!(stats.exec_cycles() > 0);
///
/// // Sweep experiments fan out across threads (same results at any job count).
/// let points = wb.line_size_sweep(6);
/// assert_eq!(points.len(), 5);
/// ```
pub struct Workbench {
    /// The shared database image.
    pub db: Database,
    nprocs: usize,
    jobs: usize,
    cache: HashMap<(u8, u64), TraceSet>,
    /// Insertion order for simple FIFO eviction.
    order: Vec<(u8, u64)>,
    /// Cumulative per-point simulation compute time (nanoseconds), summed
    /// across worker threads; lets callers report parallel speedup.
    pub(crate) sim_nanos: Arc<AtomicU64>,
    /// Fail-soft mode: sweep points run under `catch_unwind`, failures become
    /// [`PointError`]s instead of aborting the sweep. Off by default (a
    /// failing point panics the caller, exactly as before).
    pub(crate) fail_soft: bool,
    /// Optional per-point deadline enforced (in fail-soft mode) by the sweep
    /// watchdog.
    pub(crate) point_deadline: Option<Duration>,
    /// Fault-injection hook: the label of one sweep point to sabotage (it
    /// panics instead of simulating), for exercising the degradation path.
    pub(crate) sabotage: Option<String>,
    /// Point failures accumulated by fail-soft sweeps since the last drain.
    pub(crate) point_errors: Vec<PointError>,
}

impl Workbench {
    /// Builds a workbench over `config` with `nprocs` simulated processors.
    ///
    /// Experiments run their sweep points on up to
    /// [`available_parallelism`](std::thread::available_parallelism) worker
    /// threads by default; tune with [`Workbench::set_jobs`].
    pub fn new(config: &DbConfig, nprocs: usize) -> Self {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Workbench {
            db: Database::build(config),
            nprocs,
            jobs,
            cache: HashMap::new(),
            order: Vec::new(),
            sim_nanos: Arc::new(AtomicU64::new(0)),
            fail_soft: false,
            point_deadline: None,
            sabotage: None,
            point_errors: Vec::new(),
        }
    }

    /// The paper's setup: scale 0.01, four processors.
    pub fn paper() -> Self {
        Workbench::new(&DbConfig::default(), 4)
    }

    /// A reduced setup for fast tests (small database, four processors).
    pub fn small() -> Self {
        Workbench::new(
            &DbConfig {
                scale: 0.003,
                nbuffers: 2048,
                ..DbConfig::default()
            },
            4,
        )
    }

    /// Number of simulated processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Number of worker threads experiment sweeps may use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Sets the number of worker threads for experiment sweeps (clamped to at
    /// least 1). `1` reproduces the fully serial harness.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// Chainable form of [`Workbench::set_jobs`].
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.set_jobs(jobs);
        self
    }

    /// Enables (or disables) fail-soft sweeps. In fail-soft mode each sweep
    /// point runs under `catch_unwind` with the optional
    /// [`Workbench::set_point_deadline`] watchdog; a failed point becomes a
    /// [`PointError`] (drained with [`Workbench::take_point_errors`]) and the
    /// remaining points still run. Off (the default) reproduces the original
    /// fail-hard behavior: the first panicking point propagates.
    ///
    /// With no faults, fail-soft results are bit-identical to fail-hard ones
    /// at any job count.
    pub fn set_fail_soft(&mut self, on: bool) {
        self.fail_soft = on;
    }

    /// Sets the per-point deadline for fail-soft sweeps (`None` disables the
    /// watchdog). A point that outruns the deadline is classified
    /// [`crate::PointCause::TimedOut`] and its result is discarded — the
    /// watchdog cannot preempt a wedged simulation, so the run still waits
    /// for it, but its outcome no longer depends on how late it finished.
    pub fn set_point_deadline(&mut self, deadline: Option<Duration>) {
        self.point_deadline = deadline;
    }

    /// Sabotages the sweep point whose label equals `label` (e.g.
    /// `"fig8/Q6/l2_line=64"`): it panics instead of simulating. A
    /// fault-injection hook for exercising the degradation path end to end;
    /// `None` disables it.
    pub fn set_sabotage(&mut self, label: Option<String>) {
        self.sabotage = label;
    }

    /// Drains the point failures accumulated by fail-soft sweeps since the
    /// last call, in sweep order.
    pub fn take_point_errors(&mut self) -> Vec<PointError> {
        std::mem::take(&mut self.point_errors)
    }

    /// Number of point failures accumulated and not yet drained.
    pub fn point_error_count(&self) -> usize {
        self.point_errors.len()
    }

    /// Number of trace sets currently cached (bounded by the cache's slot
    /// count regardless of how many sets were requested).
    pub fn cached_trace_sets(&self) -> usize {
        self.cache.len()
    }

    /// Drains the cumulative simulation compute time recorded by the
    /// experiment sweeps since the last call: the wall-clock a serial harness
    /// would have spent simulating. Comparing it against observed wall-clock
    /// gives the parallel speedup.
    pub fn take_sim_compute(&self) -> Duration {
        Duration::from_nanos(self.sim_nanos.swap(0, Ordering::Relaxed))
    }

    /// Returns (generating and caching on demand) the per-processor traces
    /// for `query`, with parameter seeds starting at `seed_base`.
    ///
    /// Different `seed_base` values give independent instances of the same
    /// query type — the warm-up runs of the inter-query reuse experiment.
    ///
    /// The returned [`TraceSet`] is immutable and `Send + Sync`: cloning it is
    /// an `Arc` bump, and clones stay valid (and share one allocation) even
    /// after the cache evicts the entry.
    ///
    /// # Panics
    ///
    /// Panics if the query fails to plan or execute (a bug, since all
    /// seventeen templates are tested).
    pub fn traces(&mut self, query: u8, seed_base: u64) -> TraceSet {
        let key = (query, seed_base);
        if let Some(t) = self.cache.get(&key) {
            return Arc::clone(t);
        }
        // Bound memory: traces are large, keep only a couple of sets.
        while self.order.len() >= TRACE_CACHE_SLOTS {
            let evict = self.order.remove(0);
            self.cache.remove(&evict);
        }
        let sql_seeds: Vec<u64> = (0..self.nprocs as u64).map(|p| seed_base + p).collect();
        let mut traces = Vec::with_capacity(self.nprocs);
        for (p, seed) in sql_seeds.into_iter().enumerate() {
            let mut session = Session::new(p);
            let sql = dss_query::sql_for(query, &params(query, seed));
            self.db
                .run(&sql, &mut session)
                .unwrap_or_else(|e| panic!("Q{query} (seed {seed}) failed: {e}"));
            traces.push(session.tracer.take());
        }
        let set: TraceSet = traces.into();
        self.cache.insert(key, Arc::clone(&set));
        self.order.push(key);
        set
    }

    /// Drops all cached traces (frees memory between experiment suites).
    pub fn clear_traces(&mut self) {
        self.cache.clear();
        self.order.clear();
    }

    /// Generates per-processor traces where each processor runs a *stream*
    /// of queries back to back in one session (uncached: streams are used
    /// once).
    ///
    /// # Panics
    ///
    /// Panics if any query fails.
    pub fn stream_traces(&mut self, queries: &[u8], seed_base: u64) -> Vec<Trace> {
        let mut traces = Vec::with_capacity(self.nprocs);
        for p in 0..self.nprocs {
            let mut session = Session::new(p);
            for (i, q) in queries.iter().enumerate() {
                let seed = seed_base + (p + i * self.nprocs) as u64;
                let sql = dss_query::sql_for(*q, &params(*q, seed));
                self.db
                    .run(&sql, &mut session)
                    .unwrap_or_else(|e| panic!("Q{q} (seed {seed}) failed: {e}"));
            }
            traces.push(session.tracer.take());
        }
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_cached_and_bounded() {
        let mut wb = Workbench::new(
            &DbConfig {
                scale: 0.001,
                nbuffers: 1024,
                ..DbConfig::default()
            },
            2,
        );
        let a = wb.traces(6, 0);
        let b = wb.traces(6, 0);
        assert!(Arc::ptr_eq(&a, &b), "second request served from cache");
        let _c = wb.traces(6, 100);
        let _d = wb.traces(3, 0); // evicts the oldest
        assert!(wb.cache.len() <= TRACE_CACHE_SLOTS);
    }

    #[test]
    fn trace_sets_outlive_eviction_and_cross_threads() {
        let mut wb = Workbench::new(
            &DbConfig {
                scale: 0.001,
                nbuffers: 1024,
                ..DbConfig::default()
            },
            2,
        );
        let a = wb.traces(6, 0);
        wb.clear_traces();
        // The evicted set is still alive through our clone, and usable from
        // another thread (TraceSet: Send + Sync).
        let events = std::thread::scope(|s| {
            let a = &a;
            s.spawn(move || a.iter().map(|t| t.events.len()).sum::<usize>())
                .join()
                .unwrap()
        });
        assert!(events > 0);
    }

    #[test]
    fn each_processor_gets_its_own_parameters() {
        let mut wb = Workbench::new(
            &DbConfig {
                scale: 0.001,
                nbuffers: 1024,
                ..DbConfig::default()
            },
            2,
        );
        let traces = wb.traces(6, 0);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].proc_id, 0);
        assert_eq!(traces[1].proc_id, 1);
        // Different parameters make different traces.
        assert_ne!(traces[0].events.len(), 0);
        assert_ne!(traces[0].events, traces[1].events);
    }

    #[test]
    fn jobs_default_and_clamp() {
        let mut wb = Workbench::new(
            &DbConfig {
                scale: 0.001,
                nbuffers: 1024,
                ..DbConfig::default()
            },
            2,
        );
        assert!(wb.jobs() >= 1);
        wb.set_jobs(0);
        assert_eq!(wb.jobs(), 1, "jobs clamps to at least one worker");
        let wb = wb.with_jobs(3);
        assert_eq!(wb.jobs(), 3);
    }

    #[test]
    fn labels() {
        assert_eq!(query_label(3), "Q3");
        assert_eq!(STUDIED_QUERIES, [3, 6, 12]);
    }
}
