//! The workbench: a built database plus cached per-processor traces.

use std::collections::HashMap;
use std::io::{BufWriter, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dss_faultkit::crash::crash_point;
use dss_query::{Database, DbConfig, Session};
use dss_tpcd::params;
use dss_trace::{
    salvage_scan_file, EventStream, FileTraceSource, PipelineSnapshot, PipelineStats, Trace,
    TraceError, TraceSource, Tracer, DEFAULT_BLOCK_EVENTS,
};

use crate::checkpoint::CheckpointJournal;
use crate::degrade::PointError;
use crate::persist::fsync_dir;

/// A shared, immutable set of per-processor traces.
///
/// Trace *generation* needs `&mut` access to the database (buffer-cache and
/// lock-manager state move); trace *consumption* does not: once generated, a
/// trace set is frozen and [`Send`]` + `[`Sync`], so any number of simulated
/// machines — on any number of worker threads — can replay it concurrently.
/// [`Workbench::traces`] hands out cheap clones of one allocation.
pub type TraceSet = Arc<[Trace]>;

/// The three queries the paper studies in detail: Q3 (*Index*), Q6
/// (*Sequential*), and Q12 (*Sequential* with an index-scanned second table).
pub const STUDIED_QUERIES: [u8; 3] = [3, 6, 12];

/// Maximum trace sets kept in memory: the reuse experiment touches four
/// distinct (query, seed) sets per call, and holding all four avoids
/// regenerating any of them mid-experiment. Generation is
/// history-independent (pinned by a test below), so the slot count can never
/// change results — only how often sets are rebuilt.
const TRACE_CACHE_SLOTS: usize = 4;

/// How the workbench hands traces to the simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Generate whole trace sets in memory ([`TraceSet`]) and replay from
    /// there. Fastest for repeated sweeps at the paper's scale.
    #[default]
    Materialized,
    /// Record traces straight to block files on disk and replay them a
    /// block at a time: peak memory stays bounded by the block size however
    /// large the scale factor, at the cost of re-reading files per sweep
    /// point. Results are bit-identical to [`TraceMode::Materialized`].
    Streamed,
}

/// A trace population as the experiment sweeps consume it: either a
/// materialized in-memory set or block files replayed from disk. Cloning is
/// cheap (an `Arc` bump or a path list); both variants stream through the
/// same [`TraceSource`] API and yield identical events.
#[derive(Clone, Debug)]
pub enum SimSource {
    /// A fully materialized, shared trace set.
    Set(TraceSet),
    /// Per-processor block files on disk.
    Files(FileTraceSource),
}

impl TraceSource for SimSource {
    fn nprocs(&self) -> usize {
        match self {
            SimSource::Set(set) => set.len(),
            SimSource::Files(files) => files.nprocs(),
        }
    }

    fn open(&self) -> Result<Vec<Box<dyn EventStream + '_>>, TraceError> {
        match self {
            SimSource::Set(set) => set[..].open(),
            SimSource::Files(files) => files.open(),
        }
    }
}

/// Label of a query ("Q3").
pub fn query_label(q: u8) -> String {
    format!("Q{q}")
}

/// A built database plus a small cache of generated trace sets.
///
/// Trace generation follows the paper's methodology: one query of the given
/// type per processor, each with different TPC-D substitution parameters,
/// statistics recorded from start to finish with no warm-up discarded.
/// Traces depend only on the query and parameter seeds — never on the
/// simulated machine — so one set drives every sweep point, and the sweep
/// points themselves are independent: the experiment methods
/// ([`Workbench::line_size_sweep`] and friends, see [`crate::experiments`])
/// fan them out across up to [`Workbench::jobs`] worker threads with
/// bit-identical results to a serial run.
///
/// # Example
///
/// ```no_run
/// use dss_core::Workbench;
/// use dss_memsim::{Machine, MachineConfig};
///
/// let mut wb = Workbench::paper();
/// let traces = wb.traces(6, 0); // TraceSet: shared, immutable, Send + Sync
/// let stats = Machine::new(MachineConfig::baseline()).run(&traces);
/// assert!(stats.exec_cycles() > 0);
///
/// // Sweep experiments fan out across threads (same results at any job count).
/// let points = wb.line_size_sweep(6);
/// assert_eq!(points.len(), 5);
/// ```
pub struct Workbench {
    /// The shared database image.
    pub db: Database,
    nprocs: usize,
    jobs: usize,
    cache: HashMap<(u8, u64), TraceSet>,
    /// Insertion order for simple FIFO eviction.
    order: Vec<(u8, u64)>,
    /// How experiments consume traces (materialized sets or block files).
    trace_mode: TraceMode,
    /// Where streamed-mode block files live (default: a per-process temp
    /// directory, created on first use).
    trace_dir: Option<PathBuf>,
    /// Block files already recorded this run. Files cost no memory, so
    /// unlike the materialized cache this one never evicts.
    stream_cache: HashMap<(u8, u64), FileTraceSource>,
    /// Cumulative per-point simulation compute time (nanoseconds), summed
    /// across worker threads; lets callers report parallel speedup.
    pub(crate) sim_nanos: Arc<AtomicU64>,
    /// Fail-soft mode: sweep points run under `catch_unwind`, failures become
    /// [`PointError`]s instead of aborting the sweep. Off by default (a
    /// failing point panics the caller, exactly as before).
    pub(crate) fail_soft: bool,
    /// Optional per-point deadline enforced (in fail-soft mode) by the sweep
    /// watchdog.
    pub(crate) point_deadline: Option<Duration>,
    /// Fault-injection hook: the label of one sweep point to sabotage (it
    /// panics instead of simulating), for exercising the degradation path.
    pub(crate) sabotage: Option<String>,
    /// Point failures accumulated by fail-soft sweeps since the last drain.
    pub(crate) point_errors: Vec<PointError>,
    /// Producer worker threads per in-flight sweep point (0 = pipelining
    /// off: blocks are produced inline on the simulating thread).
    pub(crate) gen_jobs: usize,
    /// Pipeline utilization counters shared with every pipelined point.
    pub(crate) pipe_stats: Arc<PipelineStats>,
    /// The crash-safety journal: completed sweep points are served from it
    /// and newly computed points are appended (durably) as they finish.
    pub(crate) checkpoint: Option<Arc<Mutex<CheckpointJournal>>>,
    /// Resume mode: salvage partial streamed block files left by an
    /// interrupted run instead of regenerating them from scratch. Only safe
    /// when the caller has verified (via the journal fingerprint) that the
    /// files on disk belong to this exact configuration.
    pub(crate) resume: bool,
    /// Sweep points served from the journal since the last drain.
    pub(crate) ckpt_loaded: Arc<AtomicU64>,
    /// Sweep points actually simulated since the last drain.
    pub(crate) ckpt_computed: Arc<AtomicU64>,
}

impl Workbench {
    /// Builds a workbench over `config` with `nprocs` simulated processors.
    ///
    /// Experiments run their sweep points on up to
    /// [`available_parallelism`](std::thread::available_parallelism) worker
    /// threads by default; tune with [`Workbench::set_jobs`].
    pub fn new(config: &DbConfig, nprocs: usize) -> Self {
        let jobs = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Workbench {
            db: Database::build(config),
            nprocs,
            jobs,
            cache: HashMap::new(),
            order: Vec::new(),
            trace_mode: TraceMode::default(),
            trace_dir: None,
            stream_cache: HashMap::new(),
            sim_nanos: Arc::new(AtomicU64::new(0)),
            fail_soft: false,
            point_deadline: None,
            sabotage: None,
            point_errors: Vec::new(),
            gen_jobs: 0,
            pipe_stats: PipelineStats::shared(),
            checkpoint: None,
            resume: false,
            ckpt_loaded: Arc::new(AtomicU64::new(0)),
            ckpt_computed: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The paper's setup: scale 0.01, four processors.
    pub fn paper() -> Self {
        Workbench::new(&DbConfig::default(), 4)
    }

    /// A reduced setup for fast tests (small database, four processors).
    pub fn small() -> Self {
        Workbench::new(
            &DbConfig {
                scale: 0.003,
                nbuffers: 2048,
                ..DbConfig::default()
            },
            4,
        )
    }

    /// Number of simulated processors.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Number of worker threads experiment sweeps may use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Sets the number of worker threads for experiment sweeps (clamped to at
    /// least 1). `1` reproduces the fully serial harness.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs.max(1);
    }

    /// Chainable form of [`Workbench::set_jobs`].
    #[must_use]
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.set_jobs(jobs);
        self
    }

    /// Producer worker threads per in-flight sweep point (0 = pipelining
    /// off).
    pub fn gen_jobs(&self) -> usize {
        self.gen_jobs
    }

    /// Sets how many producer worker threads each in-flight sweep point may
    /// use for trace-block production ([`dss_trace::PipelinedTraceSource`]).
    ///
    /// `0` (the default) produces blocks inline on the simulating thread —
    /// the original serial streamed path. Any value leaves results
    /// bit-identical (pinned by tests); the producer budget is taken out of
    /// [`Workbench::jobs`] per [`crate::split_jobs`], so `--jobs 4
    /// --gen-jobs 2` runs two concurrent points with two producers each.
    pub fn set_gen_jobs(&mut self, gen_jobs: usize) {
        self.gen_jobs = gen_jobs;
    }

    /// Drains the pipeline utilization counters accumulated since the last
    /// call: producer/consumer time blocked on the bounded channels and
    /// blocks delivered. All zero when pipelining is off.
    pub fn take_pipeline_stats(&self) -> PipelineSnapshot {
        self.pipe_stats.take()
    }

    /// Enables (or disables) fail-soft sweeps. In fail-soft mode each sweep
    /// point runs under `catch_unwind` with the optional
    /// [`Workbench::set_point_deadline`] watchdog; a failed point becomes a
    /// [`PointError`] (drained with [`Workbench::take_point_errors`]) and the
    /// remaining points still run. Off (the default) reproduces the original
    /// fail-hard behavior: the first panicking point propagates.
    ///
    /// With no faults, fail-soft results are bit-identical to fail-hard ones
    /// at any job count.
    pub fn set_fail_soft(&mut self, on: bool) {
        self.fail_soft = on;
    }

    /// Sets the per-point deadline for fail-soft sweeps (`None` disables the
    /// watchdog). A point that outruns the deadline is classified
    /// [`crate::PointCause::TimedOut`] and its result is discarded — the
    /// watchdog cannot preempt a wedged simulation, so the run still waits
    /// for it, but its outcome no longer depends on how late it finished.
    pub fn set_point_deadline(&mut self, deadline: Option<Duration>) {
        self.point_deadline = deadline;
    }

    /// Sabotages the sweep point whose label equals `label` (e.g.
    /// `"fig8/Q6/l2_line=64"`): it panics instead of simulating. A
    /// fault-injection hook for exercising the degradation path end to end;
    /// `None` disables it.
    pub fn set_sabotage(&mut self, label: Option<String>) {
        self.sabotage = label;
    }

    /// Drains the point failures accumulated by fail-soft sweeps since the
    /// last call, in sweep order.
    pub fn take_point_errors(&mut self) -> Vec<PointError> {
        std::mem::take(&mut self.point_errors)
    }

    /// Number of point failures accumulated and not yet drained.
    pub fn point_error_count(&self) -> usize {
        self.point_errors.len()
    }

    /// Number of trace sets currently cached (bounded by the cache's slot
    /// count regardless of how many sets were requested).
    pub fn cached_trace_sets(&self) -> usize {
        self.cache.len()
    }

    /// Drains the cumulative simulation compute time recorded by the
    /// experiment sweeps since the last call: the wall-clock a serial harness
    /// would have spent simulating. Comparing it against observed wall-clock
    /// gives the parallel speedup.
    pub fn take_sim_compute(&self) -> Duration {
        Duration::from_nanos(self.sim_nanos.swap(0, Ordering::Relaxed))
    }

    /// Returns (generating and caching on demand) the per-processor traces
    /// for `query`, with parameter seeds starting at `seed_base`.
    ///
    /// Different `seed_base` values give independent instances of the same
    /// query type — the warm-up runs of the inter-query reuse experiment.
    ///
    /// The returned [`TraceSet`] is immutable and `Send + Sync`: cloning it is
    /// an `Arc` bump, and clones stay valid (and share one allocation) even
    /// after the cache evicts the entry.
    ///
    /// # Panics
    ///
    /// Panics if the query fails to plan or execute (a bug, since all
    /// seventeen templates are tested).
    pub fn traces(&mut self, query: u8, seed_base: u64) -> TraceSet {
        let key = (query, seed_base);
        if let Some(t) = self.cache.get(&key) {
            return Arc::clone(t);
        }
        // Bound memory: traces are large, keep only a couple of sets.
        while self.order.len() >= TRACE_CACHE_SLOTS {
            let evict = self.order.remove(0);
            self.cache.remove(&evict);
        }
        let sql_seeds: Vec<u64> = (0..self.nprocs as u64).map(|p| seed_base + p).collect();
        let mut traces = Vec::with_capacity(self.nprocs);
        for (p, seed) in sql_seeds.into_iter().enumerate() {
            let mut session = Session::new(p);
            let sql = dss_query::sql_for(query, &params(query, seed));
            self.db
                .run(&sql, &mut session)
                .unwrap_or_else(|e| panic!("Q{query} (seed {seed}) failed: {e}"));
            traces.push(session.tracer.take());
        }
        let set: TraceSet = traces.into();
        self.cache.insert(key, Arc::clone(&set));
        self.order.push(key);
        set
    }

    /// Drops all cached traces (frees memory between experiment suites).
    /// Streamed-mode block files stay on disk and stay cached — they hold no
    /// memory.
    pub fn clear_traces(&mut self) {
        self.cache.clear();
        self.order.clear();
    }

    /// How this workbench hands traces to the simulator.
    pub fn trace_mode(&self) -> TraceMode {
        self.trace_mode
    }

    /// Selects materialized or streamed trace delivery (see [`TraceMode`]).
    /// Results are identical either way; only peak memory and wall-clock
    /// differ.
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace_mode = mode;
    }

    /// Sets the directory streamed-mode block files are written to
    /// (default: a fresh per-process directory under the system temp dir).
    /// Takes effect for sets not yet recorded.
    pub fn set_trace_dir(&mut self, dir: PathBuf) {
        self.trace_dir = Some(dir);
    }

    /// Attaches a checkpoint journal: experiment sweeps serve completed
    /// points from it (skipping the simulation entirely) and durably append
    /// each newly computed point the moment it finishes.
    pub fn set_checkpoint(&mut self, journal: CheckpointJournal) {
        self.checkpoint = Some(Arc::new(Mutex::new(journal)));
    }

    /// Enables resume mode: streamed block files already on disk are
    /// salvaged — complete files reused, partial files truncated to their
    /// last checksum-valid block and completed in place — instead of being
    /// regenerated from scratch. Enable only when the on-disk state is known
    /// to belong to this exact configuration; the checkpoint journal's
    /// fingerprint ([`crate::config_fingerprint`]) is the proof.
    pub fn set_resume(&mut self, resume: bool) {
        self.resume = resume;
    }

    /// Drains the checkpoint counters: `(loaded, computed)` — sweep points
    /// served from the journal vs. actually simulated since the last call.
    pub fn take_checkpoint_counts(&self) -> (u64, u64) {
        (
            self.ckpt_loaded.swap(0, Ordering::Relaxed),
            self.ckpt_computed.swap(0, Ordering::Relaxed),
        )
    }

    /// Returns the trace population for `query` in this workbench's
    /// [`TraceMode`]: a cheap clone of the materialized set, or a handle to
    /// per-processor block files (recorded on first request).
    ///
    /// # Panics
    ///
    /// Panics if the query fails, or (streamed mode) on an I/O failure
    /// while recording the block files.
    pub fn source(&mut self, query: u8, seed_base: u64) -> SimSource {
        match self.trace_mode {
            TraceMode::Materialized => SimSource::Set(self.traces(query, seed_base)),
            TraceMode::Streamed => SimSource::Files(self.trace_files(query, seed_base)),
        }
    }

    /// Returns (recording on first request) per-processor block files for
    /// `query`, with parameter seeds starting at `seed_base`.
    ///
    /// Each processor's query runs with a sinked [`Tracer`] draining event
    /// blocks straight to disk, so recording holds at most one block per
    /// processor in memory — this is the generation half of the
    /// bounded-memory pipeline. Files are written directly to their final
    /// path and fsynced on completion: the stream's end marker, not a
    /// rename, is the completion indicator, so a crash mid-write leaves a
    /// file the next run's salvage scan can recognize as partial. In resume
    /// mode ([`Workbench::set_resume`]) such leftovers are salvaged:
    /// complete files are reused outright, partial ones are truncated to
    /// their last checksum-valid block and completed in place by replaying
    /// the (deterministic) generation and discarding the already-written
    /// blocks.
    ///
    /// # Panics
    ///
    /// Panics if the query fails to plan or execute, or on an I/O failure.
    pub fn trace_files(&mut self, query: u8, seed_base: u64) -> FileTraceSource {
        let key = (query, seed_base);
        if let Some(src) = self.stream_cache.get(&key) {
            return src.clone();
        }
        let dir = self
            .trace_dir
            .get_or_insert_with(|| {
                std::env::temp_dir().join(format!("dss-traces-{}", std::process::id()))
            })
            .clone();
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| panic!("create trace dir {}: {e}", dir.display()));
        let stem = format!("q{query}.s{seed_base}");
        let mut paths = Vec::with_capacity(self.nprocs);
        for p in 0..self.nprocs {
            let seed = seed_base + p as u64;
            let path = FileTraceSource::proc_path(&dir, &stem, p);
            let salvage = if self.resume {
                salvage_state(&path, p)
            } else {
                None
            };
            if matches!(salvage, Some((_, true))) {
                // A complete stream from the interrupted run: reuse as-is.
                paths.push(path);
                continue;
            }
            let (file, tracer) = match salvage {
                Some((scan, _)) => {
                    // Partial stream: truncate to the last checksum-valid
                    // block and complete it in place. The regenerated query
                    // reproduces the salvaged blocks bit for bit (generation
                    // is history-independent, pinned by a test below); the
                    // resumed sink discards them and appends the rest.
                    let mut file = std::fs::OpenOptions::new()
                        .read(true)
                        .write(true)
                        .open(&path)
                        .unwrap_or_else(|e| panic!("reopen {}: {e}", path.display()));
                    file.set_len(scan.valid_len)
                        .unwrap_or_else(|e| panic!("truncate {}: {e}", path.display()));
                    file.seek(std::io::SeekFrom::End(0))
                        .unwrap_or_else(|e| panic!("seek {}: {e}", path.display()));
                    let sync = file
                        .try_clone()
                        .unwrap_or_else(|e| panic!("clone handle {}: {e}", path.display()));
                    let sink = Box::new(BufWriter::new(CrashFile(file)));
                    let tracer =
                        Tracer::with_sink_resume(p, DEFAULT_BLOCK_EVENTS, sink, scan.blocks);
                    (sync, tracer)
                }
                None => {
                    let file = std::fs::File::create(&path)
                        .unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
                    let sync = file
                        .try_clone()
                        .unwrap_or_else(|e| panic!("clone handle {}: {e}", path.display()));
                    let sink = Box::new(BufWriter::new(CrashFile(file)));
                    let tracer = Tracer::with_sink(p, DEFAULT_BLOCK_EVENTS, sink)
                        .unwrap_or_else(|e| panic!("trace sink {}: {e}", path.display()));
                    (sync, tracer)
                }
            };
            let mut session = Session::new(p);
            session.tracer = tracer.clone();
            let sql = dss_query::sql_for(query, &params(query, seed));
            self.db
                .run(&sql, &mut session)
                .unwrap_or_else(|e| panic!("Q{query} (seed {seed}) failed: {e}"));
            crash_point("crash.trace.pre-finish");
            tracer
                .finish_sink()
                .unwrap_or_else(|e| panic!("finish {}: {e}", path.display()));
            // The end marker is on disk (buffered writer flushed by
            // `finish_sink`); make it durable before anything records this
            // file as usable.
            file.sync_all()
                .unwrap_or_else(|e| panic!("fsync {}: {e}", path.display()));
            paths.push(path);
        }
        fsync_dir(Some(&dir)).unwrap_or_else(|e| panic!("fsync dir {}: {e}", dir.display()));
        let src = FileTraceSource::new(paths);
        self.stream_cache.insert(key, src.clone());
        src
    }

    /// Generates per-processor traces where each processor runs a *stream*
    /// of queries back to back in one session (uncached: streams are used
    /// once).
    ///
    /// # Panics
    ///
    /// Panics if any query fails.
    pub fn stream_traces(&mut self, queries: &[u8], seed_base: u64) -> Vec<Trace> {
        let mut traces = Vec::with_capacity(self.nprocs);
        for p in 0..self.nprocs {
            let mut session = Session::new(p);
            for (i, q) in queries.iter().enumerate() {
                let seed = seed_base + (p + i * self.nprocs) as u64;
                let sql = dss_query::sql_for(*q, &params(*q, seed));
                self.db
                    .run(&sql, &mut session)
                    .unwrap_or_else(|e| panic!("Q{q} (seed {seed}) failed: {e}"));
            }
            traces.push(session.tracer.take());
        }
        traces
    }
}

/// What resume mode found at `path`: the salvage scan plus whether the
/// stream is complete. `None` means "regenerate from scratch" — no file, a
/// damaged header, or a file recorded for a different processor.
fn salvage_state(path: &Path, proc_id: usize) -> Option<(dss_trace::SalvageScan, bool)> {
    match salvage_scan_file(path) {
        Ok(scan) if scan.proc_id == proc_id => {
            let complete = scan.complete;
            Some((scan, complete))
        }
        _ => None,
    }
}

/// A [`Write`] wrapper arming the `crash.trace.block-write` crash site on
/// every write syscall reaching the trace file (beneath the sink's
/// [`BufWriter`]) — the crash campaign's way of dying inside a block flush.
/// Unarmed, the crash point is one relaxed atomic load per flush.
struct CrashFile(std::fs::File);

impl Write for CrashFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        crash_point("crash.trace.block-write");
        self.0.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.0.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_cached_and_bounded() {
        let mut wb = Workbench::new(
            &DbConfig {
                scale: 0.001,
                nbuffers: 1024,
                ..DbConfig::default()
            },
            2,
        );
        let a = wb.traces(6, 0);
        let b = wb.traces(6, 0);
        assert!(Arc::ptr_eq(&a, &b), "second request served from cache");
        let _c = wb.traces(6, 100);
        let _d = wb.traces(3, 0); // evicts the oldest
        assert!(wb.cache.len() <= TRACE_CACHE_SLOTS);
    }

    #[test]
    fn trace_sets_outlive_eviction_and_cross_threads() {
        let mut wb = Workbench::new(
            &DbConfig {
                scale: 0.001,
                nbuffers: 1024,
                ..DbConfig::default()
            },
            2,
        );
        let a = wb.traces(6, 0);
        wb.clear_traces();
        // The evicted set is still alive through our clone, and usable from
        // another thread (TraceSet: Send + Sync).
        let events = std::thread::scope(|s| {
            let a = &a;
            s.spawn(move || a.iter().map(|t| t.events.len()).sum::<usize>())
                .join()
                .unwrap()
        });
        assert!(events > 0);
    }

    #[test]
    fn each_processor_gets_its_own_parameters() {
        let mut wb = Workbench::new(
            &DbConfig {
                scale: 0.001,
                nbuffers: 1024,
                ..DbConfig::default()
            },
            2,
        );
        let traces = wb.traces(6, 0);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].proc_id, 0);
        assert_eq!(traces[1].proc_id, 1);
        // Different parameters make different traces.
        assert_ne!(traces[0].events.len(), 0);
        assert_ne!(traces[0].events, traces[1].events);
    }

    #[test]
    fn regeneration_is_history_independent() {
        // The streaming redesign leans on this invariant: a (query, seed)
        // pair generates the same trace no matter what ran before it, so
        // cache-eviction order, cache sizing, and streamed-vs-materialized
        // generation order can never change simulation results.
        let mut wb = Workbench::new(
            &DbConfig {
                scale: 0.001,
                nbuffers: 1024,
                ..DbConfig::default()
            },
            2,
        );
        let a = wb.traces(6, 0);
        let _ = wb.traces(3, 0);
        let _ = wb.traces(12, 0);
        wb.clear_traces();
        let b = wb.traces(6, 0);
        assert_eq!(a[..], b[..], "regenerated traces must be identical");
    }

    #[test]
    fn streamed_files_replay_the_materialized_events() {
        use dss_trace::materialize;

        let mut wb = Workbench::new(
            &DbConfig {
                scale: 0.001,
                nbuffers: 1024,
                ..DbConfig::default()
            },
            2,
        );
        let dir = std::env::temp_dir().join(format!("dss-wb-stream-{}", std::process::id()));
        wb.set_trace_dir(dir.clone());
        wb.set_trace_mode(TraceMode::Streamed);
        let files = match wb.source(6, 0) {
            SimSource::Files(f) => f,
            SimSource::Set(_) => panic!("streamed mode yields files"),
        };
        let replayed = materialize(&files).unwrap();
        let in_memory = wb.traces(6, 0);
        assert_eq!(replayed[..], in_memory[..], "same events either way");
        // Second request reuses the recorded files.
        let again = match wb.source(6, 0) {
            SimSource::Files(f) => f,
            SimSource::Set(_) => panic!("streamed mode yields files"),
        };
        assert_eq!(files.paths(), again.paths());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_salvages_partial_and_reuses_complete_files() {
        let config = DbConfig {
            scale: 0.001,
            nbuffers: 1024,
            ..DbConfig::default()
        };
        let dir = std::env::temp_dir().join(format!("dss-wb-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wb = Workbench::new(&config, 2);
        wb.set_trace_dir(dir.clone());
        wb.set_trace_mode(TraceMode::Streamed);
        let files = wb.trace_files(6, 0);
        let paths = files.paths().to_vec();
        let whole: Vec<Vec<u8>> = paths.iter().map(|p| std::fs::read(p).unwrap()).collect();
        // Tear proc 0's file mid-block, as a crash inside a block write
        // would; tag proc 1's (complete) file past its end marker, where no
        // reader looks — if resume rewrote the file the tag would vanish.
        std::fs::write(&paths[0], &whole[0][..whole[0].len() - 9]).unwrap();
        let mut p1 = std::fs::OpenOptions::new()
            .append(true)
            .open(&paths[1])
            .unwrap();
        p1.write_all(b"JUNK").unwrap();
        drop(p1);

        let mut wb2 = Workbench::new(&config, 2);
        wb2.set_trace_dir(dir.clone());
        wb2.set_trace_mode(TraceMode::Streamed);
        wb2.set_resume(true);
        let _ = wb2.trace_files(6, 0);
        assert_eq!(
            std::fs::read(&paths[0]).unwrap(),
            whole[0],
            "partial file salvaged and completed to the original bytes"
        );
        let back = std::fs::read(&paths[1]).unwrap();
        assert_eq!(&back[..whole[1].len()], &whole[1][..]);
        assert!(
            back.ends_with(b"JUNK"),
            "complete file reused, not rewritten"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn without_resume_leftover_files_are_rewritten() {
        let config = DbConfig {
            scale: 0.001,
            nbuffers: 1024,
            ..DbConfig::default()
        };
        let dir = std::env::temp_dir().join(format!("dss-wb-noresume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut wb = Workbench::new(&config, 2);
        wb.set_trace_dir(dir.clone());
        wb.set_trace_mode(TraceMode::Streamed);
        let paths = wb.trace_files(6, 0).paths().to_vec();
        let whole = std::fs::read(&paths[0]).unwrap();
        std::fs::write(&paths[0], b"stale bytes from some other run").unwrap();

        let mut wb2 = Workbench::new(&config, 2);
        wb2.set_trace_dir(dir.clone());
        wb2.set_trace_mode(TraceMode::Streamed);
        let _ = wb2.trace_files(6, 0);
        assert_eq!(
            std::fs::read(&paths[0]).unwrap(),
            whole,
            "fresh mode regenerates from scratch"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn jobs_default_and_clamp() {
        let mut wb = Workbench::new(
            &DbConfig {
                scale: 0.001,
                nbuffers: 1024,
                ..DbConfig::default()
            },
            2,
        );
        assert!(wb.jobs() >= 1);
        wb.set_jobs(0);
        assert_eq!(wb.jobs(), 1, "jobs clamps to at least one worker");
        let wb = wb.with_jobs(3);
        assert_eq!(wb.jobs(), 3);
    }

    #[test]
    fn labels() {
        assert_eq!(query_label(3), "Q3");
        assert_eq!(STUDIED_QUERIES, [3, 6, 12]);
    }
}
