//! The parallel simulation harness: fan independent sweep points across
//! scoped worker threads.
//!
//! Every sweep in [`crate::experiments`] has the same shape: one immutable
//! [`TraceSet`] replayed through many [`Machine`]s, one per
//! [`MachineConfig`]. The points share no mutable state — each gets a fresh
//! machine with cold caches — so they can run on any number of threads with
//! bit-identical results to a serial run; only wall-clock changes. The paper
//! itself never needed this (its evaluation ran once); re-parameterized
//! replay studies do, and [`sim_points`] makes them embarrassingly parallel
//! with no dependencies beyond `std::thread::scope`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use dss_memsim::{Machine, MachineConfig, SimStats};
use dss_trace::Trace;

use crate::workload::TraceSet;

/// Runs one simulation per config over a shared trace set, on up to `jobs`
/// worker threads, returning results in config order.
///
/// Each point simulates a *fresh* machine (cold caches) over the leading
/// `config.nprocs` traces of the set — so a config with fewer processors than
/// the set has traces runs the processor-scaling subset, exactly as the
/// serial harness did. `jobs <= 1` runs everything on the calling thread;
/// any job count produces identical [`SimStats`].
///
/// # Panics
///
/// Panics if a worker thread panics (the simulation itself panicking, e.g.
/// on an invalid config).
pub fn sim_points(traces: &TraceSet, configs: &[MachineConfig], jobs: usize) -> Vec<SimStats> {
    let tasks: Vec<(MachineConfig, TraceSet)> = configs
        .iter()
        .map(|c| (c.clone(), traces.clone()))
        .collect();
    run_tasks(jobs, &tasks, &AtomicU64::new(0))
}

/// One simulation point: a fresh machine over the leading `nprocs` traces.
fn run_point(cfg: &MachineConfig, traces: &[Trace]) -> SimStats {
    let take = cfg.nprocs.min(traces.len());
    Machine::new(cfg.clone()).run(&traces[..take])
}

/// Runs `(config, trace set)` tasks on up to `jobs` threads, preserving task
/// order in the results and adding each point's compute time to `clock`
/// (nanoseconds) so callers can report speedup over a serial run.
pub(crate) fn run_tasks(
    jobs: usize,
    tasks: &[(MachineConfig, TraceSet)],
    clock: &AtomicU64,
) -> Vec<SimStats> {
    let timed = |cfg: &MachineConfig, traces: &[Trace]| {
        let start = Instant::now();
        let stats = run_point(cfg, traces);
        clock.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        stats
    };
    if jobs <= 1 || tasks.len() <= 1 {
        return tasks
            .iter()
            .map(|(cfg, traces)| timed(cfg, traces))
            .collect();
    }
    // Work-stealing by atomic ticket: threads claim the next unstarted point,
    // so an expensive point (say, the 16-byte-line sweep entry) never strands
    // the remaining work behind it. Results land in their task's slot, which
    // keeps the output order — and therefore every rendered table —
    // independent of the interleaving.
    let next = AtomicUsize::new(0);
    let results = Mutex::new(vec![None; tasks.len()]);
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(tasks.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((cfg, traces)) = tasks.get(i) else {
                    break;
                };
                let stats = timed(cfg, traces);
                results.lock().expect("no poisoned workers")[i] = Some(stats);
            });
        }
    });
    results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|slot| slot.expect("every point simulated"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_shmem::SHARED_BASE;
    use dss_trace::{DataClass, Tracer};

    fn synthetic_set(nprocs: usize) -> TraceSet {
        (0..nprocs)
            .map(|p| {
                let t = Tracer::new(p);
                for i in 0..2000u64 {
                    t.read(
                        SHARED_BASE + (i * 61 + p as u64 * 13) % 65_536,
                        8,
                        DataClass::Data,
                    );
                    t.busy((i % 5) as u32);
                    t.write(dss_shmem::private_base(p) + i * 24, 8, DataClass::PrivHeap);
                }
                t.take()
            })
            .collect::<Vec<_>>()
            .into()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let traces = synthetic_set(4);
        let configs: Vec<MachineConfig> = [16u64, 32, 64, 128]
            .iter()
            .map(|&l| MachineConfig::baseline().with_line_size(l))
            .collect();
        let serial = sim_points(&traces, &configs, 1);
        for jobs in [2, 4, 9] {
            let parallel = sim_points(&traces, &configs, jobs);
            assert_eq!(serial, parallel, "jobs={jobs} must not change results");
        }
    }

    #[test]
    fn config_order_is_preserved() {
        let traces = synthetic_set(4);
        let configs: Vec<MachineConfig> = (1..=4)
            .map(|n| MachineConfig::baseline().with_processors(n))
            .collect();
        let stats = sim_points(&traces, &configs, 4);
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(
                s.procs.len(),
                i + 1,
                "point {i} ran the {}-processor config",
                i + 1
            );
        }
    }

    #[test]
    fn compute_clock_accumulates() {
        let traces = synthetic_set(2);
        let tasks = vec![(MachineConfig::baseline(), traces.clone()); 3];
        let clock = AtomicU64::new(0);
        let stats = run_tasks(2, &tasks, &clock);
        assert_eq!(stats.len(), 3);
        assert!(
            clock.load(Ordering::Relaxed) > 0,
            "per-point compute time recorded"
        );
    }

    #[test]
    fn empty_config_list_is_fine() {
        let traces = synthetic_set(1);
        assert!(sim_points(&traces, &[], 4).is_empty());
    }
}
