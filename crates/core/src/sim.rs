//! The parallel simulation harness: fan independent sweep points across
//! scoped worker threads.
//!
//! Every sweep in [`crate::experiments`] has the same shape: one immutable
//! trace population replayed through many [`Machine`]s, one per
//! [`MachineConfig`]. The points share no mutable state — each gets a fresh
//! machine with cold caches — so they can run on any number of threads with
//! bit-identical results to a serial run; only wall-clock changes. The paper
//! itself never needed this (its evaluation ran once); re-parameterized
//! replay studies do, and [`sim_points`] makes them embarrassingly parallel
//! with no dependencies beyond `std::thread::scope`.
//!
//! Points consume their traces through the [`TraceSource`] streaming API, so
//! the same harness replays a fully materialized [`TraceSet`] or block files
//! on disk ([`dss_trace::FileTraceSource`]) with bit-identical results — the
//! latter without ever holding a full trace in memory.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dss_memsim::{Machine, MachineConfig, SimStats};
use dss_trace::{PipelineStats, PipelinedTraceSource, ProcPrefix, TraceSource};

use crate::degrade::PointCause;
use crate::workload::TraceSet;

/// Runs one simulation per config over a shared trace set, on up to `jobs`
/// worker threads, returning results in config order.
///
/// Each point simulates a *fresh* machine (cold caches) over the leading
/// `config.nprocs` traces of the set — so a config with fewer processors than
/// the set has traces runs the processor-scaling subset, exactly as the
/// serial harness did. `jobs <= 1` runs everything on the calling thread;
/// any job count produces identical [`SimStats`].
///
/// This is the materialized-set convenience over [`sim_points_source`]: a
/// `&[Trace]` is itself a [`TraceSource`].
///
/// # Panics
///
/// Panics if a worker thread panics (the simulation itself panicking, e.g.
/// on an invalid config).
pub fn sim_points(traces: &TraceSet, configs: &[MachineConfig], jobs: usize) -> Vec<SimStats> {
    sim_points_source(&traces[..], configs, jobs)
}

/// Runs one simulation per config over any [`TraceSource`], on up to `jobs`
/// worker threads, returning results in config order.
///
/// Each point opens its own streams from `src`, so peak memory per point is
/// bounded by the source's block size, not the trace length — replaying
/// block files keeps the whole sweep within a few event blocks per
/// processor. Results are bit-identical to [`sim_points`] over the
/// materialized equivalent, at any job count.
///
/// # Panics
///
/// Panics if a worker thread panics, or if the source fails mid-stream
/// (truncated or corrupt block files).
pub fn sim_points_source<S>(src: &S, configs: &[MachineConfig], jobs: usize) -> Vec<SimStats>
where
    S: TraceSource + ?Sized,
{
    let points: Vec<_> = configs
        .iter()
        .map(|cfg| move || run_point_source(cfg, src))
        .collect();
    run_soft(jobs, &points, None)
        .into_iter()
        .map(|slot| match slot {
            Ok(stats) => stats,
            // Hard mode: re-raise the first failing point's panic unchanged
            // (the remaining points already ran; no work is re-entered).
            Err(SoftFailure {
                payload: Some(payload),
                ..
            }) => resume_unwind(payload),
            Err(failure) => panic!("sweep point failed: {}", failure.cause),
        })
        .collect()
}

/// Splits a total worker budget between simulation and trace production:
/// with `gen_jobs` producer threads per in-flight point, simulation points
/// get the remainder of `jobs` (at least one). `gen_jobs == 0` disables
/// pipelining, so the whole budget goes to simulation workers — the serial
/// producer path, bit-identical and thread-for-thread identical to before
/// pipelining existed.
pub fn split_jobs(jobs: usize, gen_jobs: usize) -> (usize, usize) {
    (jobs.max(1).saturating_sub(gen_jobs).max(1), gen_jobs)
}

/// Runs one simulation per config over a *pipelined* source: each point
/// spawns `gen_jobs` producer worker threads that generate/decode blocks
/// while the point's machine simulates them, with bounded channels keeping
/// memory within a few blocks per processor. Results are bit-identical to
/// [`sim_points_source`] (pinned by tests); only wall-clock changes. The
/// simulation fan-out uses the worker budget left by [`split_jobs`].
///
/// # Panics
///
/// Panics if a worker thread panics, or if the source fails mid-stream —
/// including a producer-side panic, which surfaces as a classified
/// `pipeline` [`dss_trace::TraceError`] instead of a hang.
pub fn sim_points_pipelined<S>(
    src: &S,
    configs: &[MachineConfig],
    jobs: usize,
    gen_jobs: usize,
) -> Vec<SimStats>
where
    S: TraceSource + Clone + Send + Sync + 'static,
{
    if gen_jobs == 0 {
        return sim_points_source(src, configs, jobs);
    }
    let stats = PipelineStats::shared();
    let (sim_jobs, gen_jobs) = split_jobs(jobs, gen_jobs);
    let points: Vec<_> = configs
        .iter()
        .map(|cfg| {
            let stats = &stats;
            move || run_point_pipelined(cfg, src, gen_jobs, stats)
        })
        .collect();
    run_soft(sim_jobs, &points, None)
        .into_iter()
        .map(|slot| match slot {
            Ok(stats) => stats,
            Err(SoftFailure {
                payload: Some(payload),
                ..
            }) => resume_unwind(payload),
            Err(failure) => panic!("sweep point failed: {}", failure.cause),
        })
        .collect()
}

/// One streamed simulation point: a fresh machine fed block-by-block from
/// the leading `nprocs` streams of `src`. Stream failures panic so the
/// fail-soft runner classifies them like any other point failure.
pub(crate) fn run_point_source<S>(cfg: &MachineConfig, src: &S) -> SimStats
where
    S: TraceSource + ?Sized,
{
    let take = cfg.nprocs.min(src.nprocs());
    let prefix = ProcPrefix::new(src, take);
    Machine::new(cfg.clone())
        .run_source(&prefix)
        .unwrap_or_else(|e| panic!("trace stream failed: {e}"))
}

/// One *pipelined* simulation point: like [`run_point_source`], but block
/// production runs on `gen_jobs` background workers behind bounded channels
/// (see [`PipelinedTraceSource`]). The processor prefix is applied *inside*
/// the pipeline so producers never pump streams the config won't simulate.
/// Producer-side panics arrive in-band as `pipeline`-classified stream
/// errors, so this panics (and fail-soft classifies) instead of hanging.
pub(crate) fn run_point_pipelined<S>(
    cfg: &MachineConfig,
    src: &S,
    gen_jobs: usize,
    stats: &Arc<PipelineStats>,
) -> SimStats
where
    S: TraceSource + Clone + Send + Sync + 'static,
{
    let take = cfg.nprocs.min(src.nprocs());
    let piped = PipelinedTraceSource::new(ProcPrefix::new(src.clone(), take), gen_jobs)
        .shared_stats(Arc::clone(stats));
    Machine::new(cfg.clone())
        .run_source(&piped)
        .unwrap_or_else(|e| panic!("trace stream failed: {e}"))
}

/// A point failure as the runner sees it: the public classification plus the
/// original panic payload, so hard-mode callers can re-raise it unchanged.
pub(crate) struct SoftFailure {
    /// The classification exposed as [`crate::PointError`].
    pub cause: PointCause,
    /// The panic payload, when the cause was a panic.
    pub payload: Option<Box<dyn Any + Send>>,
}

/// Renders a panic payload the way the default hook would.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `points` on up to `jobs` threads, preserving order, with each point
/// under `catch_unwind` and an optional per-point `deadline`.
///
/// A panicking point yields `Err(SoftFailure)` carrying its payload; the
/// remaining points still run (the scope is never poisoned). With a deadline
/// set, a watchdog thread flags points that outrun it — the flagged point's
/// result is *discarded* (classified [`PointCause::TimedOut`]) even if the
/// computation eventually finishes, so outputs never depend on how late a
/// slow point was. The watchdog classifies and warns; it cannot preempt a
/// runaway simulation, so a wedged point still delays completion of the run
/// (but no longer decides its outcome).
///
/// With no deadline and no panics this is behaviorally identical to
/// [`sim_points`]: bit-identical results at any job count.
pub(crate) fn run_soft<T, F>(
    jobs: usize,
    points: &[F],
    deadline: Option<Duration>,
) -> Vec<Result<T, SoftFailure>>
where
    T: Send,
    F: Fn() -> T + Sync,
{
    let classify = |started: Instant, flagged: bool, outcome: Result<T, Box<dyn Any + Send>>| {
        let late = deadline.is_some_and(|d| flagged || started.elapsed() > d);
        match outcome {
            _ if late => Err(SoftFailure {
                cause: PointCause::TimedOut {
                    limit_ms: deadline.unwrap_or_default().as_millis() as u64,
                },
                payload: None,
            }),
            Ok(v) => Ok(v),
            Err(payload) => Err(SoftFailure {
                cause: PointCause::Panicked(panic_message(payload.as_ref())),
                payload: Some(payload),
            }),
        }
    };
    if jobs <= 1 || points.len() <= 1 {
        return points
            .iter()
            .map(|f| {
                let started = Instant::now();
                classify(started, false, catch_unwind(AssertUnwindSafe(f)))
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    // Per-point watchdog state: nanoseconds since `base` when the point
    // started (0 = not started), and whether the watchdog flagged it.
    let base = Instant::now();
    let started_at: Vec<AtomicU64> = (0..points.len()).map(|_| AtomicU64::new(0)).collect();
    let flagged: Vec<AtomicBool> = (0..points.len()).map(|_| AtomicBool::new(false)).collect();
    let results: Mutex<Vec<Option<Result<T, SoftFailure>>>> =
        Mutex::new((0..points.len()).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..jobs.min(points.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(f) = points.get(i) else {
                    break;
                };
                let started = Instant::now();
                started_at[i].store(base.elapsed().as_nanos().max(1) as u64, Ordering::Release);
                let outcome = catch_unwind(AssertUnwindSafe(f));
                // Mark the point finished before reading its flag, so the
                // watchdog stops considering it.
                started_at[i].store(u64::MAX, Ordering::Release);
                done.fetch_add(1, Ordering::Release);
                let slot = classify(started, flagged[i].load(Ordering::Acquire), outcome);
                results.lock().expect("no poisoned workers")[i] = Some(slot);
            });
        }
        if let Some(limit) = deadline {
            let (done, started_at, flagged) = (&done, &started_at, &flagged);
            scope.spawn(move || {
                let tick = (limit / 4).clamp(Duration::from_millis(1), Duration::from_millis(50));
                while done.load(Ordering::Acquire) < points.len() {
                    std::thread::sleep(tick);
                    let now = base.elapsed().as_nanos() as u64;
                    for i in 0..points.len() {
                        let at = started_at[i].load(Ordering::Acquire);
                        if at != 0
                            && at != u64::MAX
                            && !flagged[i].load(Ordering::Acquire)
                            && now.saturating_sub(at) > limit.as_nanos() as u64
                        {
                            flagged[i].store(true, Ordering::Release);
                            eprintln!(
                                "  watchdog: sweep point {i} exceeded its {limit:?} deadline — \
                                 its result will be discarded"
                            );
                        }
                    }
                }
            });
        }
    });
    results
        .into_inner()
        .expect("workers joined")
        .into_iter()
        .map(|slot| slot.expect("every point ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_shmem::SHARED_BASE;
    use dss_trace::{DataClass, Tracer};

    fn synthetic_set(nprocs: usize) -> TraceSet {
        (0..nprocs)
            .map(|p| {
                let t = Tracer::new(p);
                for i in 0..2000u64 {
                    t.read(
                        SHARED_BASE + (i * 61 + p as u64 * 13) % 65_536,
                        8,
                        DataClass::Data,
                    );
                    t.busy((i % 5) as u32);
                    t.write(dss_shmem::private_base(p) + i * 24, 8, DataClass::PrivHeap);
                }
                t.take()
            })
            .collect::<Vec<_>>()
            .into()
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let traces = synthetic_set(4);
        let configs: Vec<MachineConfig> = [16u64, 32, 64, 128]
            .iter()
            .map(|&l| MachineConfig::baseline().with_line_size(l))
            .collect();
        let serial = sim_points(&traces, &configs, 1);
        for jobs in [2, 4, 9] {
            let parallel = sim_points(&traces, &configs, jobs);
            assert_eq!(serial, parallel, "jobs={jobs} must not change results");
        }
    }

    #[test]
    fn config_order_is_preserved() {
        let traces = synthetic_set(4);
        let configs: Vec<MachineConfig> = (1..=4)
            .map(|n| MachineConfig::baseline().with_processors(n))
            .collect();
        let stats = sim_points(&traces, &configs, 4);
        for (i, s) in stats.iter().enumerate() {
            assert_eq!(
                s.procs.len(),
                i + 1,
                "point {i} ran the {}-processor config",
                i + 1
            );
        }
    }

    #[test]
    fn file_backed_source_matches_materialized_sweep() {
        use dss_trace::FileTraceSource;

        let traces = synthetic_set(3);
        let dir = std::env::temp_dir().join(format!("dss-sim-src-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let paths: Vec<_> = traces
            .iter()
            .map(|t| {
                let path = FileTraceSource::proc_path(&dir, "synthetic", t.proc_id);
                let mut bytes = Vec::new();
                dss_trace::write_trace_blocks(t, &mut bytes, 256).unwrap();
                std::fs::write(&path, bytes).unwrap();
                path
            })
            .collect();
        let src = FileTraceSource::new(paths);
        let configs: Vec<MachineConfig> = (1..=3)
            .map(|n| MachineConfig::baseline().with_processors(n))
            .collect();
        let materialized = sim_points(&traces, &configs, 2);
        let streamed = sim_points_source(&src, &configs, 2);
        assert_eq!(materialized, streamed, "block files replay bit-identically");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_config_list_is_fine() {
        let traces = synthetic_set(1);
        assert!(sim_points(&traces, &[], 4).is_empty());
    }

    #[test]
    fn split_jobs_budget() {
        assert_eq!(split_jobs(4, 0), (4, 0), "gen off: all workers simulate");
        assert_eq!(split_jobs(4, 2), (2, 2));
        assert_eq!(split_jobs(2, 2), (1, 2), "simulation always keeps a worker");
        assert_eq!(split_jobs(0, 1), (1, 1), "zero budget still runs");
    }

    #[test]
    fn pipelined_matches_serial_bit_for_bit() {
        use crate::workload::SimSource;

        let traces = synthetic_set(4);
        let configs: Vec<MachineConfig> = [16u64, 64, 256]
            .iter()
            .map(|&l| MachineConfig::baseline().with_line_size(l))
            .collect();
        let serial = sim_points(&traces, &configs, 1);
        let src = SimSource::Set(traces);
        for (jobs, gen_jobs) in [(1, 1), (4, 2), (2, 4), (3, 0)] {
            let piped = sim_points_pipelined(&src, &configs, jobs, gen_jobs);
            assert_eq!(
                serial, piped,
                "jobs={jobs} gen_jobs={gen_jobs} must not change results"
            );
        }
    }

    /// A source whose processor-0 stream panics partway through: the shape
    /// of any producer-side bug under pipelining.
    #[derive(Clone)]
    struct PanicySource;

    struct PanicyStream {
        left: usize,
    }

    impl dss_trace::EventStream for PanicyStream {
        fn proc_id(&self) -> usize {
            0
        }

        fn next_block(&mut self, buf: &mut Vec<dss_trace::Event>) -> Result<usize, TraceError> {
            buf.clear();
            if self.left == 0 {
                panic!("synthetic producer failure");
            }
            self.left -= 1;
            buf.push(dss_trace::Event::Busy(1));
            Ok(1)
        }
    }

    use dss_trace::TraceError;

    impl TraceSource for PanicySource {
        fn nprocs(&self) -> usize {
            1
        }

        fn open(&self) -> Result<Vec<Box<dyn dss_trace::EventStream + '_>>, TraceError> {
            Ok(vec![Box::new(PanicyStream { left: 2 })])
        }
    }

    /// The tentpole's fail-soft guarantee: a producer panic on a pipeline
    /// worker thread surfaces as a structured, `Panicked`-classified point
    /// failure — promptly, with the watchdog armed, never as a deadlock.
    #[test]
    fn producer_panic_is_a_classified_point_failure_not_a_hang() {
        let cfg = MachineConfig::baseline().with_processors(1);
        let points = [|| run_point_pipelined(&cfg, &PanicySource, 2, &PipelineStats::shared())];
        let started = Instant::now();
        let outcomes = run_soft(2, &points, Some(Duration::from_secs(5)));
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "failure must surface without waiting out the watchdog"
        );
        let failure = match outcomes.into_iter().next() {
            Some(Err(f)) => f,
            _ => panic!("expected a point failure"),
        };
        match &failure.cause {
            PointCause::Panicked(msg) => {
                assert!(msg.contains("trace stream failed"), "{msg}");
                assert!(
                    msg.contains("pipeline") || msg.contains("panicked"),
                    "{msg}"
                );
            }
            other => panic!("expected Panicked, got {other}"),
        }
        // The classification is exactly what fail-soft sweeps expose.
        let err = crate::degrade::PointError {
            site: "test/pipeline".into(),
            cause: failure.cause,
            seed: 0,
        };
        assert!(err.to_string().contains("test/pipeline"));
    }
}
