//! Atomic artifact persistence.
//!
//! Every artifact the workbench writes — `repro --bench-json` timing logs,
//! `dss-check alloc` budgets, `traceinfo` reports — is consumed by tools
//! (CI diffs, ratchet gates) that assume the file is either the *old*
//! complete document or the *new* complete document. A plain
//! `File::create` + write gives a third state: a torn prefix left behind by
//! a crash or `SIGKILL` mid-write, which then poisons the next run's diff.
//! [`write_atomic`] closes that window with the classic
//! write-temp-then-rename protocol: the bytes land in a temporary sibling
//! file (same directory, so the rename cannot cross filesystems), are
//! flushed and fsynced, and only then renamed over the destination — which
//! POSIX guarantees is atomic.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Names a temporary sibling of `path` in the same directory. The process id
/// keeps concurrent writers from clobbering each other's temp files.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically: after this returns, `path` holds
/// either its previous contents or all of `contents` — never a torn prefix,
/// even if the process is killed mid-call.
///
/// # Errors
///
/// Returns the underlying I/O error (temp-file creation, write, fsync, or
/// rename), with the destination path in the message. On error the
/// temporary file is removed and the destination is untouched.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dss-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces_whole_documents() {
        let dir = temp_dir("replace");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"{\"v\": 1}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\": 1}");
        write_atomic(&path, b"{\"v\": 2, \"longer\": true}").unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"{\"v\": 2, \"longer\": true}"
        );
        // No temp droppings left next to the artifact.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_leaves_destination_untouched() {
        let dir = temp_dir("fail");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"original").unwrap();
        // Writing into a directory that does not exist fails before any
        // rename can happen.
        let bad = dir.join("missing-subdir").join("artifact.json");
        let err = write_atomic(&bad, b"new").unwrap_err();
        assert!(err.to_string().contains("artifact.json"));
        assert_eq!(std::fs::read(&path).unwrap(), b"original");
        std::fs::remove_dir_all(&dir).ok();
    }
}
