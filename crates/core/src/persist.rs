//! Atomic artifact persistence.
//!
//! Every artifact the workbench writes — `repro --bench-json` timing logs,
//! `dss-check alloc` budgets, `traceinfo` reports — is consumed by tools
//! (CI diffs, ratchet gates) that assume the file is either the *old*
//! complete document or the *new* complete document. A plain
//! `File::create` + write gives a third state: a torn prefix left behind by
//! a crash or `SIGKILL` mid-write, which then poisons the next run's diff.
//! [`write_atomic`] closes that window with the classic
//! write-temp-then-rename protocol: the bytes land in a temporary sibling
//! file (same directory, so the rename cannot cross filesystems), are
//! flushed and fsynced, and only then renamed over the destination — which
//! POSIX guarantees is atomic.
//!
//! Atomicity alone only covers process death. Durability across *power
//! loss* needs two more fsyncs: the temp file's data must be on stable
//! storage before the rename (otherwise the rename can land while the bytes
//! are still dirty in the page cache, leaving a named-but-empty file after a
//! crash), and the parent directory entry must be synced after the rename
//! (otherwise the rename itself can vanish). [`write_atomic`] does both;
//! [`fsync_dir`] is the directory half, exported for callers (the checkpoint
//! journal, streamed trace files) that append in place rather than rename.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Names a temporary sibling of `path` in the same directory. The process id
/// keeps concurrent writers from clobbering each other's temp files.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(format!(".tmp.{}", std::process::id()));
    path.with_file_name(name)
}

/// Writes `contents` to `path` atomically and durably: after this returns,
/// `path` holds either its previous contents or all of `contents` — never a
/// torn prefix, even if the process is killed mid-call — and both the bytes
/// and the rename that published them have been fsynced to stable storage,
/// so the guarantee holds across power loss, not just process death.
///
/// # Errors
///
/// Returns the underlying I/O error (temp-file creation, write, fsync,
/// rename, or directory fsync), with the destination path in the message.
/// On error the temporary file is removed and the destination is untouched.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        // Data must be stable *before* the rename publishes the name: a
        // journaling filesystem may otherwise commit the rename first and a
        // power cut leaves a named, empty (or torn) destination.
        f.sync_all()?;
        std::fs::rename(&tmp, path)?;
        fsync_dir(path.parent().filter(|p| !p.as_os_str().is_empty()))
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result.map_err(|e| io::Error::new(e.kind(), format!("{}: {e}", path.display())))
}

/// Fsyncs a directory so a just-created, renamed, or appended entry in it
/// survives power loss. `None` (an empty parent, i.e. a bare relative file
/// name) syncs the current directory.
///
/// # Errors
///
/// Propagates the open or fsync error for the directory.
pub fn fsync_dir(dir: Option<&Path>) -> io::Result<()> {
    let dir = dir.unwrap_or_else(|| Path::new("."));
    File::open(dir)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dss-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn writes_and_replaces_whole_documents() {
        let dir = temp_dir("replace");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"{\"v\": 1}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{\"v\": 1}");
        write_atomic(&path, b"{\"v\": 2, \"longer\": true}").unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"{\"v\": 2, \"longer\": true}"
        );
        // No temp droppings left next to the artifact.
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failure_leaves_destination_untouched() {
        let dir = temp_dir("fail");
        let path = dir.join("artifact.json");
        write_atomic(&path, b"original").unwrap();
        // Writing into a directory that does not exist fails before any
        // rename can happen.
        let bad = dir.join("missing-subdir").join("artifact.json");
        let err = write_atomic(&bad, b"new").unwrap_err();
        assert!(err.to_string().contains("artifact.json"));
        assert_eq!(std::fs::read(&path).unwrap(), b"original");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bare_relative_path_syncs_the_current_directory() {
        // A destination with no parent component must not panic or error in
        // the directory-fsync step (regression: `Path::parent()` returns an
        // empty path for `"artifact.json"`, which `File::open` rejects).
        let dir = temp_dir("bare");
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let result = write_atomic(Path::new("artifact.json"), b"bare");
        std::env::set_current_dir(&old).unwrap();
        result.unwrap();
        assert_eq!(std::fs::read(dir.join("artifact.json")).unwrap(), b"bare");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_dir_covers_real_and_missing_directories() {
        let dir = temp_dir("fsync");
        fsync_dir(Some(&dir)).unwrap();
        fsync_dir(None).unwrap();
        let missing = dir.join("not-there");
        assert!(fsync_dir(Some(&missing)).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
