//! Graceful degradation of the sweep pipeline: a failed sweep point becomes
//! a structured [`PointError`] instead of an aborted run.
//!
//! These tests drive the fault path end to end through the public API: the
//! sabotage hook panics one labeled point, the deadline watchdog times
//! points out, and fail-soft mode must (a) complete every healthy point,
//! (b) classify every failure, and (c) change nothing at all when no fault
//! fires.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use dss_core::{PointCause, Workbench};
use dss_query::DbConfig;

/// A tiny workbench: big enough to sweep, small enough to build per test.
fn wb() -> Workbench {
    Workbench::new(
        &DbConfig {
            scale: 0.001,
            nbuffers: 1024,
            ..DbConfig::default()
        },
        2,
    )
    .with_jobs(2)
}

#[test]
fn sabotaged_point_degrades_not_aborts() {
    let mut wb = wb();
    wb.set_fail_soft(true);
    wb.set_sabotage(Some("fig8/Q6/l2_line=64".into()));
    let points = wb.line_size_sweep(6);
    // The four healthy points completed; only the sabotaged one is missing.
    assert_eq!(points.len(), 4, "remaining points still ran");
    assert!(
        points.iter().all(|p| p.l2_line != 64),
        "the sabotaged point is skipped, not fabricated"
    );
    let errors = wb.take_point_errors();
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].site, "fig8/Q6/l2_line=64");
    assert_eq!(errors[0].seed, 0);
    match &errors[0].cause {
        PointCause::Panicked(msg) => assert!(msg.contains("injected"), "payload kept: {msg}"),
        other => panic!("expected a panic classification, got {other:?}"),
    }
    // Drained: a second read is clean.
    assert_eq!(wb.point_error_count(), 0);
}

#[test]
fn zero_deadline_times_every_point_out() {
    let mut wb = wb();
    wb.set_fail_soft(true);
    wb.set_point_deadline(Some(Duration::ZERO));
    assert!(
        wb.line_size_sweep(6).is_empty(),
        "every result is discarded"
    );
    let errors = wb.take_point_errors();
    assert_eq!(errors.len(), 5);
    assert!(errors
        .iter()
        .all(|e| matches!(e.cause, PointCause::TimedOut { limit_ms: 0 })));
    // Lifting the deadline restores the full sweep on the same workbench.
    wb.set_point_deadline(None);
    assert_eq!(wb.line_size_sweep(6).len(), 5);
}

#[test]
fn fail_hard_mode_still_propagates_the_panic() {
    let mut wb = wb();
    wb.set_sabotage(Some("fig8/Q6/l2_line=32".into()));
    let result = catch_unwind(AssertUnwindSafe(|| wb.line_size_sweep(6)));
    let payload = result.expect_err("fail-hard sweeps abort on a faulty point");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        msg.contains("injected"),
        "original payload re-raised: {msg}"
    );
    assert_eq!(wb.point_error_count(), 0, "fail-hard records nothing");
}

#[test]
fn fail_soft_without_faults_is_bit_identical() {
    let mut wb = wb();
    let hard: Vec<_> = wb.line_size_sweep(6).into_iter().map(|p| p.stats).collect();
    wb.set_fail_soft(true);
    wb.set_point_deadline(Some(Duration::from_secs(3600)));
    let soft: Vec<_> = wb.line_size_sweep(6).into_iter().map(|p| p.stats).collect();
    assert_eq!(hard, soft, "fail-soft mode must not perturb results");
    assert_eq!(wb.point_error_count(), 0);
}
