//! Section 3 of the paper, as executable claims: the locality patterns it
//! derives by inspecting traces, verified on our traces with exact
//! reuse-distance analysis.

use dss_core::Workbench;
use dss_trace::{analyze, DataClass, TraceAnalysis};

fn analyzed(query: u8) -> TraceAnalysis {
    let mut wb = Workbench::paper();
    let traces = wb.traces(query, 0);
    analyze(&traces[0], 64)
}

#[test]
fn q6_sequential_scan_locality() {
    let a = analyzed(6);
    let data = a.class(DataClass::Data);
    // "There is abundant spatial locality in these accesses … it reads
    // consecutive tuples."
    assert!(
        data.sequentiality() > 0.8,
        "sequentiality {}",
        data.sequentiality()
    );
    // "There is, however, no reuse of a tuple within a query": every reuse
    // is either the immediate re-read ("occurs immediately … cannot be
    // affected by the cache size") or a first touch. The bound leaves room
    // for generator-stream variation in the synthesized population.
    let immediate = data.reuse.counts[0] as f64 / data.reuse.total() as f64;
    assert!(
        immediate + data.reuse.cold_fraction() > 0.8,
        "immediate {immediate} + cold {}",
        data.reuse.cold_fraction()
    );
    // Nothing comes back at cache-relevant distances: any residual reuse
    // sits within a few dozen distinct lines — resident in even the
    // smallest cache studied — and the tail beyond that is negligible.
    assert!(data.reuse.reused_within(65536) - data.reuse.reused_within(64) < 0.05);

    // "the same private storage is reused for all the selected tuples."
    let priv_data = a.class(DataClass::PrivHeap);
    assert!(priv_data.cold_fraction_ok(), "{:?}", priv_data.reuse);
}

trait ColdFraction {
    fn cold_fraction_ok(&self) -> bool;
}
impl ColdFraction for dss_trace::ClassLocality {
    fn cold_fraction_ok(&self) -> bool {
        self.reuse.cold_fraction() < 0.05
    }
}

#[test]
fn q3_index_query_locality() {
    let a = analyzed(3);
    let index = a.class(DataClass::Index);
    // "Accesses to the index data structures have both temporal and spatial
    // locality": consecutive b-tree locations read sequentially…
    assert!(
        index.sequentiality() > 0.5,
        "sequentiality {}",
        index.sequentiality()
    );
    // …and the top levels re-read every probe: substantial reuse at small
    // distances (within a few hundred lines).
    let small_reuse = index.reuse.reused_within(256);
    assert!(
        small_reuse > 0.3,
        "small-distance index reuse {small_reuse}"
    );
    // Data tuples, by contrast, show (almost) no temporal locality beyond
    // the immediate re-read.
    let data = a.class(DataClass::Data);
    assert!(
        data.reuse.reused_within(65536) - data.reuse.reused_within(16) < 0.15,
        "tuples are not revisited"
    );
    // Lock hash structures have a tiny footprint ("these data structures
    // have a tiny footprint").
    assert!(a.class(DataClass::LockHash).footprint_lines < 64);
    assert!(a.class(DataClass::XidHash).footprint_lines < 64);
}

#[test]
fn q12_combines_both_patterns() {
    let a = analyzed(12);
    // Sequential side: lineitem scanned like Q6.
    let data = a.class(DataClass::Data);
    assert!(data.sequentiality() > 0.6);
    // Index side present (orders probed through its index).
    assert!(a.class(DataClass::Index).refs > 0);
}
