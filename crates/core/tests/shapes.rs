//! End-to-end reproduction tests: every qualitative claim of the paper's
//! evaluation, verified at the paper's scale and configuration.
//!
//! These build the full 100×-scaled database, trace the studied queries on
//! four simulated processors, and run the simulator — so they are the slow
//! tests of the workspace (tens of seconds in debug builds).

use std::sync::Once;

use dss_core::{experiments, paper, Workbench};

// The workbench is expensive; share one across tests via a leaky singleton
// (tests only read trace sets from it, and each test regenerates the sets it
// needs through the bounded cache).
fn with_workbench<R>(f: impl FnOnce(&mut Workbench) -> R) -> R {
    use std::sync::Mutex;
    static INIT: Once = Once::new();
    static mut WB: Option<Mutex<Workbench>> = None;
    INIT.call_once(|| unsafe {
        WB = Some(Mutex::new(Workbench::paper()));
    });
    #[allow(static_mut_refs)]
    let m = unsafe { WB.as_ref().expect("initialized") };
    let mut wb = m.lock().unwrap_or_else(|e| e.into_inner());
    f(&mut wb)
}

fn assert_all(checks: &[paper::ShapeCheck]) {
    let failed: Vec<_> = checks.iter().filter(|c| !c.ok).collect();
    assert!(
        failed.is_empty(),
        "shape checks failed:\n{}",
        paper::render_checks(checks)
    );
}

#[test]
fn fig6_time_breakdown_shapes() {
    with_workbench(|wb| {
        let baselines = wb.baseline_suite(&[3, 6, 12]);
        assert_all(&paper::check_fig6(&baselines));
    });
}

#[test]
fn fig7_miss_classification_shapes() {
    with_workbench(|wb| {
        let baselines = wb.baseline_suite(&[3, 6, 12]);
        assert_all(&paper::check_fig7(&baselines));
        // The ordering of absolute miss rates matches the paper: the Index
        // query misses most in L1; the plain Sequential query least.
        let rates: Vec<_> = baselines.iter().map(experiments::miss_rates).collect();
        let by_query = |q: u8| rates.iter().find(|r| r.query == q).expect("rate").l1;
        assert!(by_query(3) > by_query(12), "L1 miss rate Q3 > Q12");
        // The paper reports Q12 (4.8%) above Q6 (3.4%); our engine measures
        // them nearly tied, so only require Q6 not to exceed Q12 materially.
        assert!(by_query(6) < by_query(12) * 1.1, "L1 miss rate Q6 ≲ Q12");
    });
}

#[test]
fn fig8_and_fig9_line_size_shapes() {
    with_workbench(|wb| {
        for q in [3u8, 6, 12] {
            let points = wb.line_size_sweep(q);
            assert_all(&paper::check_fig8(q, &points));
            assert_all(&paper::check_fig9(q, &points));
        }
    });
}

#[test]
fn fig10_and_fig11_cache_size_shapes() {
    with_workbench(|wb| {
        for q in [3u8, 6, 12] {
            let points = wb.cache_size_sweep(q);
            assert_all(&paper::check_fig10(q, &points));
            assert_all(&paper::check_fig11(q, &points));
        }
    });
}

#[test]
fn fig12_inter_query_reuse_shapes() {
    with_workbench(|wb| {
        let q3 = wb.reuse_experiment(3, 12);
        let q12 = wb.reuse_experiment(12, 3);
        assert_all(&paper::check_fig12(&q3, &q12));
    });
}

#[test]
fn fig13_prefetch_shapes() {
    with_workbench(|wb| {
        let pairs: Vec<_> = [3u8, 6, 12]
            .iter()
            .map(|q| wb.prefetch_experiment(*q))
            .collect();
        assert_all(&paper::check_fig13(&pairs));
    });
}

#[test]
fn simulation_is_deterministic() {
    with_workbench(|wb| {
        let a = wb.baseline_run(6);
        let b = wb.baseline_run(6);
        assert_eq!(a.stats.exec_cycles(), b.stats.exec_cycles());
        assert_eq!(a.stats.l1.read_misses, b.stats.l1.read_misses);
        assert_eq!(a.stats.l2.read_misses, b.stats.l2.read_misses);
    });
}

#[test]
fn table1_renders_17_rows() {
    with_workbench(|wb| {
        let rows = experiments::table1(&wb.db);
        assert_eq!(rows.len(), 17);
        let text = dss_core::report::render_table1(&rows);
        assert_eq!(text.lines().count(), 19);
    });
}

#[test]
fn extension_experiments_are_sane() {
    with_workbench(|wb| {
        // Protocol ablation: MESI never increases L2 write transactions.
        let ab = wb.protocol_ablation(6);
        assert!(ab.mesi.l2.write_accesses <= ab.msi.l2.write_accesses);

        // Prefetch-degree sweep: deeper prefetching never slows the
        // streaming query down in this range.
        let points = wb.prefetch_degree_sweep(6);
        let off = points
            .iter()
            .find(|(d, _)| *d == 0)
            .unwrap()
            .1
            .exec_cycles();
        let four = points
            .iter()
            .find(|(d, _)| *d == 4)
            .unwrap()
            .1
            .exec_cycles();
        assert!(four < off, "degree-4 prefetching helps Q6");

        // Processor sweep: metadata coherence misses grow with processors
        // for the Index query.
        let sweep = wb.processor_sweep(3);
        let cohe = |s: &dss_memsim::SimStats| {
            s.l2.read_misses.by_group_kind(
                dss_trace::DataGroup::Metadata,
                dss_memsim::MissKind::Coherence,
            )
        };
        assert_eq!(
            cohe(&sweep[0].1),
            0,
            "one processor cannot have coherence misses"
        );
        assert!(
            cohe(&sweep[2].1) > cohe(&sweep[1].1),
            "coherence grows with processors"
        );

        // Intra-query parallelism: partitioned Q6 is substantially faster
        // and exactly correct.
        let intra = experiments::intra_query_experiment(wb);
        assert_eq!(intra.partial_sum, intra.full_sum);
        assert!(
            intra.partitioned.exec_cycles() * 2 < intra.single.exec_cycles(),
            "at least 2x from 4-way partitioning"
        );
    });
}

#[test]
fn update_experiment_profile() {
    // Self-contained (builds its own database); writes show up as data
    // traffic and all locks drain.
    let runs = experiments::update_experiment(0.004);
    assert!(runs.inserted > 0 && runs.deleted > 0);
    assert!(runs.stats.l2.write_accesses > 0, "writes reach the L2");
    let t = runs.stats.time_breakdown();
    assert!(t.busy > 0.3 && t.mem > 0.1, "plausible breakdown: {t:?}");
    // Determinism.
    let again = experiments::update_experiment(0.004);
    assert_eq!(runs.stats.exec_cycles(), again.stats.exec_cycles());
    assert_eq!(runs.inserted, again.inserted);
}
