//! Determinism regression tests for the parallel experiment harness: any
//! `--jobs` value must reproduce the serial results bit for bit, and the
//! shared-trace cache must stay bounded while handles circulate.

use dss_core::{sim_points, Workbench};
use dss_memsim::MachineConfig;

#[test]
fn q6_line_size_sweep_is_job_count_invariant() {
    let mut wb = Workbench::small();

    wb.set_jobs(1);
    let serial = wb.line_size_sweep(6);

    wb.set_jobs(4);
    let parallel = wb.line_size_sweep(6);

    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.l2_line, p.l2_line);
        assert_eq!(s.stats, p.stats, "jobs=4 diverged at l2_line={}", s.l2_line);
    }
}

#[test]
fn sim_points_is_job_count_invariant_on_real_traces() {
    let mut wb = Workbench::small();
    let traces = wb.traces(6, 0);
    let configs: Vec<MachineConfig> = [(4u64, 128u64), (16, 512), (64, 2048)]
        .iter()
        .map(|&(l1, l2)| MachineConfig::baseline().with_cache_sizes(l1 * 1024, l2 * 1024))
        .collect();
    let serial = sim_points(&traces, &configs, 1);
    for jobs in [2, 4, 7] {
        assert_eq!(serial, sim_points(&traces, &configs, jobs), "jobs={jobs}");
    }
}

#[test]
fn trace_cache_stays_bounded_under_method_sweeps() {
    let mut wb = Workbench::small();
    // Hold live handles across evictions: the Arc keeps each set alive for
    // its user while the workbench's cache stays within its slot budget.
    let held = [wb.traces(3, 0), wb.traces(6, 0), wb.traces(12, 0)];
    let _ = wb.line_size_sweep(6);
    let _ = wb.baseline_suite(&[3, 12]);
    assert!(
        wb.cached_trace_sets() <= 4,
        "cache kept {} sets",
        wb.cached_trace_sets()
    );
    for t in &held {
        assert!(!t.is_empty(), "evicted sets stay usable through their Arc");
    }
}

#[test]
fn parallel_sweeps_record_compute_time() {
    let mut wb = Workbench::small().with_jobs(2);
    let _ = wb.take_sim_compute();
    let _ = wb.line_size_sweep(6);
    assert!(wb.take_sim_compute().as_nanos() > 0);
    // Taking the clock resets it.
    assert_eq!(wb.take_sim_compute().as_nanos(), 0);
}

#[test]
fn pipelined_streamed_sweep_is_gen_jobs_invariant() {
    use dss_core::TraceMode;

    let mut wb = Workbench::small();
    let dir = std::env::temp_dir().join(format!("dss-pipe-inv-{}", std::process::id()));
    wb.set_trace_dir(dir.clone());
    wb.set_trace_mode(TraceMode::Streamed);

    wb.set_jobs(1);
    let serial = wb.line_size_sweep(6);

    for (jobs, gen_jobs) in [(4, 2), (2, 3), (1, 1)] {
        wb.set_jobs(jobs);
        wb.set_gen_jobs(gen_jobs);
        let piped = wb.line_size_sweep(6);
        assert_eq!(serial.len(), piped.len());
        for (s, p) in serial.iter().zip(&piped) {
            assert_eq!(s.l2_line, p.l2_line);
            assert_eq!(
                s.stats, p.stats,
                "jobs={jobs} gen_jobs={gen_jobs} diverged at l2_line={}",
                s.l2_line
            );
        }
        let snap = wb.take_pipeline_stats();
        assert!(snap.blocks > 0, "pipelined points deliver blocks");
    }

    // Pipelining composes with materialized mode too.
    wb.set_trace_mode(TraceMode::Materialized);
    wb.set_jobs(4);
    wb.set_gen_jobs(2);
    let materialized = wb.line_size_sweep(6);
    for (s, p) in serial.iter().zip(&materialized) {
        assert_eq!(s.stats, p.stats, "materialized+pipelined diverged");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
