//! Rendering tests: every report function produces the paper-shaped text on
//! a small (fast) workbench.

use dss_core::{experiments, report, Workbench};

fn small() -> Workbench {
    Workbench::small()
}

#[test]
fn fig6_and_fig7_render() {
    let mut wb = small();
    let baselines = wb.baseline_suite(&[3, 6]);
    let a = report::render_fig6a(&baselines);
    assert!(a.contains("Busy") && a.contains("Q3") && a.contains("Q6"));
    let b = report::render_fig6b(&baselines);
    assert!(b.contains("Metadata"));
    for bl in &baselines {
        let f7 = report::render_fig7(bl);
        assert!(f7.contains("L1 (total"));
        assert!(f7.contains("L2 (total"));
        assert!(f7.contains("Data"));
    }
    let rates: Vec<_> = baselines.iter().map(experiments::miss_rates).collect();
    let r = report::render_miss_rates(&rates);
    assert!(r.contains('%'));
}

#[test]
fn sweep_renders_have_all_points() {
    let mut wb = small();
    let points = wb.line_size_sweep(6);
    let f8 = report::render_fig8(6, &points);
    for line in experiments::LINE_SIZES {
        assert!(
            f8.contains(&format!("{line}")),
            "missing {line}B row:\n{f8}"
        );
    }
    let f9 = report::render_fig9(6, &points);
    assert!(f9.contains("SMem") && f9.contains("PMem"));
    // The baseline row is normalized to 100.
    let base_row = f9
        .lines()
        .find(|l| l.trim_start().starts_with("64B"))
        .unwrap();
    assert!(base_row.trim_end().ends_with("100.0"), "{base_row}");

    let cache_points = wb.cache_size_sweep(6);
    let f10 = report::render_fig10(6, &cache_points);
    assert!(f10.contains("4K/"));
    assert!(f10.contains("8192K"));
    let f11 = report::render_fig11(6, &cache_points);
    assert!(f11.lines().count() >= 6);
}

#[test]
fn reuse_and_prefetch_render() {
    let mut wb = small();
    let reuse = wb.reuse_experiment(12, 3);
    let f12 = report::render_fig12(&reuse);
    assert!(f12.contains("cold"));
    assert!(f12.contains("after Q12"));
    assert!(f12.contains("after Q3"));

    let pair = wb.prefetch_experiment(6);
    let f13 = report::render_fig13(std::slice::from_ref(&pair));
    assert!(f13.contains("prefetch"));
    assert!(f13.contains('%'));
}

#[test]
fn extension_renders() {
    let mut wb = small();
    let ab = wb.protocol_ablation(6);
    assert!(report::render_ext_protocol(std::slice::from_ref(&ab)).contains("MESI"));

    let degrees = wb.prefetch_degree_sweep(6);
    let text = report::render_ext_prefetch(6, &degrees);
    for (d, _) in &degrees {
        assert!(
            text.contains(&format!("\n  {d:6} ")) || text.contains(&format!("{d}")),
            "{text}"
        );
    }

    let sweep = wb.processor_sweep(6);
    assert!(report::render_ext_procs(6, &sweep).contains("procs"));

    let intra = experiments::intra_query_experiment(&mut wb);
    let text = report::render_ext_intra(&intra);
    assert!(text.contains("speedup"));

    let baselines = wb.baseline_suite(&[6]);
    let streams = experiments::stream_experiment(&mut wb, &[6]);
    assert!(report::render_ext_streams(&streams, &baselines).contains("stream"));
}
