//! Checkpoint/resume through the experiment harness: journaled sweep points
//! are served from the manifest without re-simulation, and the served
//! results are identical to freshly computed ones — the invariant the
//! byte-identical `repro --resume` output rests on.

use std::path::PathBuf;

use dss_core::{config_fingerprint, CheckpointJournal, Workbench};
use dss_query::DbConfig;

fn config() -> DbConfig {
    DbConfig {
        scale: 0.001,
        nbuffers: 1024,
        ..DbConfig::default()
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dss-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn journaled_sweep_resumes_without_recomputation() {
    let dir = temp_dir("sweep");
    let manifest = dir.join("manifest.ckpt");
    let fp = config_fingerprint(&config(), 2);

    let mut wb = Workbench::new(&config(), 2).with_jobs(2);
    wb.set_checkpoint(CheckpointJournal::create(&manifest, fp).unwrap());
    let fresh = wb.line_size_sweep(6);
    assert_eq!(
        wb.take_checkpoint_counts(),
        (0, 5),
        "all five points computed"
    );

    let journal = CheckpointJournal::resume(&manifest, fp).unwrap();
    assert_eq!(journal.fresh_reason(), None);
    assert_eq!(journal.replayed(), 5);
    let mut wb2 = Workbench::new(&config(), 2).with_jobs(2);
    wb2.set_checkpoint(journal);
    let resumed = wb2.line_size_sweep(6);
    assert_eq!(
        wb2.take_checkpoint_counts(),
        (5, 0),
        "all five points loaded"
    );

    assert_eq!(fresh.len(), resumed.len());
    for (a, b) in fresh.iter().zip(&resumed) {
        assert_eq!(a.l2_line, b.l2_line);
        assert_eq!(a.stats, b.stats, "journaled point identical to computed");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn partial_journal_recomputes_only_whats_missing() {
    let dir = temp_dir("partial");
    let manifest = dir.join("manifest.ckpt");
    let fp = config_fingerprint(&config(), 2);

    let mut wb = Workbench::new(&config(), 2).with_jobs(2);
    wb.set_checkpoint(CheckpointJournal::create(&manifest, fp).unwrap());
    let fresh = wb.line_size_sweep(6);

    // Tear the journal after its third record, as a mid-sweep crash would.
    let text = std::fs::read_to_string(&manifest).unwrap();
    let keep: Vec<&str> = text.lines().take(4).collect();
    std::fs::write(&manifest, format!("{}\n", keep.join("\n"))).unwrap();

    let journal = CheckpointJournal::resume(&manifest, fp).unwrap();
    assert_eq!(journal.replayed(), 3);
    let mut wb2 = Workbench::new(&config(), 2).with_jobs(2);
    wb2.set_checkpoint(journal);
    let resumed = wb2.line_size_sweep(6);
    assert_eq!(
        wb2.take_checkpoint_counts(),
        (3, 2),
        "two points recomputed"
    );
    for (a, b) in fresh.iter().zip(&resumed) {
        assert_eq!(a.stats, b.stats);
    }
    // The recomputed points were re-journaled: a second resume loads all 5.
    assert_eq!(
        CheckpointJournal::resume(&manifest, fp).unwrap().replayed(),
        5
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reuse_experiment_is_served_from_the_journal() {
    let dir = temp_dir("reuse");
    let manifest = dir.join("manifest.ckpt");
    let fp = config_fingerprint(&config(), 2);

    let mut wb = Workbench::new(&config(), 2).with_jobs(2);
    wb.set_checkpoint(CheckpointJournal::create(&manifest, fp).unwrap());
    let fresh = wb.reuse_experiment(6, 3);
    assert_eq!(wb.take_checkpoint_counts(), (0, 3));

    let mut wb2 = Workbench::new(&config(), 2).with_jobs(2);
    wb2.set_checkpoint(CheckpointJournal::resume(&manifest, fp).unwrap());
    let resumed = wb2.reuse_experiment(6, 3);
    assert_eq!(wb2.take_checkpoint_counts(), (3, 0));
    assert_eq!(fresh.cold, resumed.cold);
    assert_eq!(fresh.warm_same, resumed.warm_same);
    assert_eq!(fresh.warm_other, resumed.warm_other);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mismatched_fingerprint_recomputes_everything() {
    let dir = temp_dir("fp");
    let manifest = dir.join("manifest.ckpt");
    let fp = config_fingerprint(&config(), 2);

    let mut wb = Workbench::new(&config(), 2).with_jobs(2);
    wb.set_checkpoint(CheckpointJournal::create(&manifest, fp).unwrap());
    let _ = wb.line_size_sweep(6);

    // A journal from a different configuration must not be trusted.
    let other_fp = config_fingerprint(&config(), 4);
    assert_ne!(fp, other_fp);
    let journal = CheckpointJournal::resume(&manifest, other_fp).unwrap();
    assert!(journal.fresh_reason().unwrap().contains("fingerprint"));
    let mut wb2 = Workbench::new(&config(), 2).with_jobs(2);
    wb2.set_checkpoint(journal);
    let _ = wb2.line_size_sweep(6);
    assert_eq!(wb2.take_checkpoint_counts(), (0, 5));
    let _ = std::fs::remove_dir_all(&dir);
}
