//! Golden-stats regression test for the simulator.
//!
//! The hot-path work in `dss-memsim` (paged miss-classification history, flat
//! directory, heap scheduler) is only legitimate if it is *stats-invisible*:
//! the simulator must produce the same `SimStats` to the last cycle. This
//! test pins the `baseline_suite` miss matrices and per-class stall totals
//! for the three studied queries against literals captured from the
//! pre-rewrite simulator, so any future change that shifts a single count or
//! cycle fails loudly.
//!
//! If a change is *meant* to alter simulation results, regenerate the table
//! with `cargo run -p dss-core --release --example golden_dump` and say so in
//! the commit.

use dss_core::{Workbench, STUDIED_QUERIES};
use dss_memsim::MissKind;
use dss_trace::DataClass;

const KINDS: [MissKind; 3] = [MissKind::Cold, MissKind::Conflict, MissKind::Coherence];

/// One query's pinned numbers: totals, miss matrices over
/// `DataClass::ALL` × cold/conflict/coherence, and per-class stalls.
#[derive(Debug, PartialEq, Eq)]
struct QuerySnapshot {
    query: u8,
    exec_cycles: u64,
    busy: u64,
    mem_stall: u64,
    msync: u64,
    l1_read_accesses: u64,
    l1_write_accesses: u64,
    l1_write_misses: u64,
    l2_read_accesses: u64,
    l2_write_accesses: u64,
    l2_write_misses: u64,
    l1_read_misses: [[u64; 3]; 10],
    l2_read_misses: [[u64; 3]; 10],
    stall_by_class: [u64; 10],
}

/// Captured from the seed simulator (`golden_dump` at the commit introducing
/// this test), Workbench::small() with one job.
const SNAPSHOTS: [QuerySnapshot; 3] = [
    QuerySnapshot {
        query: 3,
        exec_cycles: 16210682,
        busy: 30764052,
        mem_stall: 18446983,
        msync: 3608586,
        l1_read_accesses: 464441,
        l1_write_accesses: 186300,
        l1_write_misses: 73583,
        l2_read_accesses: 229311,
        l2_write_accesses: 90457,
        l2_write_misses: 12138,
        l1_read_misses: [
            [1461, 106506, 0],
            [34044, 125, 0],
            [16332, 21908, 0],
            [1762, 4875, 1259],
            [3158, 14078, 0],
            [24, 6911, 1498],
            [24, 5354, 1418],
            [3, 70, 3052],
            [1, 188, 5260],
            [0, 0, 0],
        ],
        l2_read_misses: [
            [1348, 1917, 0],
            [22844, 83, 0],
            [10428, 4934, 0],
            [1762, 1009, 3968],
            [2218, 3468, 0],
            [24, 569, 2527],
            [24, 101, 1372],
            [3, 0, 3122],
            [1, 36, 5412],
            [0, 0, 0],
        ],
        stall_by_class: [
            1951613, 4938746, 3564872, 2025403, 1378717, 1024198, 546129, 569118, 2448187, 0,
        ],
    },
    QuerySnapshot {
        query: 6,
        exec_cycles: 26699603,
        busy: 58618731,
        mem_stall: 46798498,
        msync: 65988,
        l1_read_accesses: 1679485,
        l1_write_accesses: 594529,
        l1_write_misses: 192010,
        l2_read_accesses: 673869,
        l2_write_accesses: 193930,
        l2_write_misses: 4053,
        l1_read_misses: [
            [388, 444297, 0],
            [219432, 4261, 0],
            [0, 0, 0],
            [1628, 0, 0],
            [2896, 820, 0],
            [4, 8, 0],
            [4, 5, 3],
            [3, 0, 3],
            [1, 52, 64],
            [0, 0, 0],
        ],
        l2_read_misses: [
            [352, 2017, 0],
            [180424, 0, 0],
            [0, 0, 0],
            [1628, 0, 0],
            [2104, 140, 0],
            [4, 2, 6],
            [4, 5, 3],
            [3, 0, 3],
            [1, 0, 116],
            [0, 0, 0],
        ],
        stall_by_class: [
            7287005, 37994966, 0, 479314, 487499, 3533, 2854, 2333, 540994, 0,
        ],
    },
    QuerySnapshot {
        query: 12,
        exec_cycles: 38594139,
        busy: 89780204,
        mem_stall: 60671480,
        msync: 2576554,
        l1_read_accesses: 2285326,
        l1_write_accesses: 677101,
        l1_write_misses: 243936,
        l2_read_accesses: 913692,
        l2_write_accesses: 261616,
        l2_write_misses: 11590,
        l1_read_misses: [
            [979, 511225, 0],
            [325141, 3813, 0],
            [6351, 22918, 0],
            [2014, 2752, 2249],
            [3478, 11827, 0],
            [12, 5277, 1579],
            [12, 5799, 1498],
            [3, 110, 5198],
            [1, 136, 1320],
            [0, 0, 0],
        ],
        l2_read_misses: [
            [888, 5827, 0],
            [199290, 8, 0],
            [4112, 355, 0],
            [2014, 13, 4035],
            [2400, 638, 0],
            [12, 700, 3087],
            [12, 700, 3044],
            [3, 4, 5304],
            [1, 3, 1453],
            [0, 0, 0],
        ],
        stall_by_class: [
            8651705, 43280456, 1317300, 1934003, 823618, 1200064, 1191389, 567458, 1705487, 0,
        ],
    },
];

fn matrix(m: &dss_memsim::MissMatrix) -> [[u64; 3]; 10] {
    let mut out = [[0u64; 3]; 10];
    for (row, c) in out.iter_mut().zip(DataClass::ALL.iter()) {
        for (cell, k) in row.iter_mut().zip(KINDS.iter()) {
            *cell = m.get(*c, *k);
        }
    }
    out
}

#[test]
fn baseline_suite_matches_pinned_snapshots() {
    let mut wb = Workbench::small().with_jobs(1);
    let results = wb.baseline_suite(&STUDIED_QUERIES);
    assert_eq!(results.len(), SNAPSHOTS.len());
    for (b, want) in results.iter().zip(SNAPSHOTS.iter()) {
        let s = &b.stats;
        let mut stall_by_class = [0u64; 10];
        for (cell, c) in stall_by_class.iter_mut().zip(DataClass::ALL.iter()) {
            *cell = s.total(|p| p.stall_of(*c));
        }
        let got = QuerySnapshot {
            query: b.query,
            exec_cycles: s.exec_cycles(),
            busy: s.total(|p| p.busy),
            mem_stall: s.total(|p| p.mem_stall),
            msync: s.total(|p| p.msync),
            l1_read_accesses: s.l1.read_accesses,
            l1_write_accesses: s.l1.write_accesses,
            l1_write_misses: s.l1.write_misses,
            l2_read_accesses: s.l2.read_accesses,
            l2_write_accesses: s.l2.write_accesses,
            l2_write_misses: s.l2.write_misses,
            l1_read_misses: matrix(&s.l1.read_misses),
            l2_read_misses: matrix(&s.l2.read_misses),
            stall_by_class,
        };
        assert_eq!(
            &got, want,
            "Q{} diverged from the pinned snapshot — if intentional, \
             regenerate with `cargo run -p dss-core --release --example golden_dump`",
            b.query
        );
    }
}
