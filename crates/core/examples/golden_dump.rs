//! Regenerates the snapshot literals embedded in `crates/core/tests/golden.rs`.
//!
//! ```text
//! cargo run -p dss-core --release --example golden_dump
//! ```
//!
//! Run it on a known-good build, then paste the output over the `SNAPSHOTS`
//! table in the golden test. The numbers are fully deterministic (seeded
//! database build, seeded query parameters, deterministic simulator), so any
//! divergence on a later build is a real behavior change, not noise.

use dss_core::Workbench;
use dss_memsim::MissKind;
use dss_trace::DataClass;

const KINDS: [MissKind; 3] = [MissKind::Cold, MissKind::Conflict, MissKind::Coherence];

fn matrix(m: &dss_memsim::MissMatrix) -> String {
    let rows: Vec<String> = DataClass::ALL
        .iter()
        .map(|c| {
            let cells: Vec<String> = KINDS.iter().map(|k| m.get(*c, *k).to_string()).collect();
            format!("[{}]", cells.join(", "))
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

fn main() {
    let mut wb = Workbench::small().with_jobs(1);
    for b in wb.baseline_suite(&dss_core::STUDIED_QUERIES) {
        let s = &b.stats;
        let stalls: Vec<String> = DataClass::ALL
            .iter()
            .map(|c| s.total(|p| p.stall_of(*c)).to_string())
            .collect();
        println!("QuerySnapshot {{");
        println!("    query: {},", b.query);
        println!("    exec_cycles: {},", s.exec_cycles());
        println!("    busy: {},", s.total(|p| p.busy));
        println!("    mem_stall: {},", s.total(|p| p.mem_stall));
        println!("    msync: {},", s.total(|p| p.msync));
        println!("    l1_read_accesses: {},", s.l1.read_accesses);
        println!("    l1_write_accesses: {},", s.l1.write_accesses);
        println!("    l1_write_misses: {},", s.l1.write_misses);
        println!("    l2_read_accesses: {},", s.l2.read_accesses);
        println!("    l2_write_accesses: {},", s.l2.write_accesses);
        println!("    l2_write_misses: {},", s.l2.write_misses);
        println!("    l1_read_misses: {},", matrix(&s.l1.read_misses));
        println!("    l2_read_misses: {},", matrix(&s.l2.read_misses));
        println!("    stall_by_class: [{}],", stalls.join(", "));
        println!("}},");
    }
}
