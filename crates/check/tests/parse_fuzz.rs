//! Fuzzing the syntactic parser: whatever bytes arrive, `parse_file` must
//! return — `Ok` or a structured [`dss_check::ParseError`] — never panic.
//! The static passes run over every workspace file on every CI run, so a
//! panic here would take the whole gate down with it.
//!
//! Two input families: token soup assembled from the parser's own alphabet
//! (keywords, idents, punctuation, literals), and real workspace sources
//! mutated by truncation and word deletion — the mutations that unbalance
//! the brace tracking and attribute scanning the parser leans on.

use std::path::Path;

use dss_check::{load_workspace, parse_file};
use proptest::prelude::*;

/// Fragments the soup is assembled from: everything the grammar subset
/// reacts to, plus noise it must skip.
const FRAGMENTS: &[&str] = &[
    "fn",
    "impl",
    "mod",
    "struct",
    "enum",
    "trait",
    "use",
    "pub",
    "let",
    "for",
    "in",
    "match",
    "self",
    "Self",
    "crate",
    "where",
    "unsafe",
    "async",
    "#",
    "!",
    "[",
    "]",
    "(",
    ")",
    "{",
    "}",
    "<",
    ">",
    ",",
    ";",
    ":",
    "::",
    "->",
    "=>",
    "=",
    ".",
    "&",
    "'a",
    "cfg",
    "test",
    "feature",
    "allow",
    "derive",
    "foo",
    "Bar",
    "baz_qux",
    "HashMap",
    "x",
    "0xff",
    "12",
    "\"str lit\"",
    "'c'",
    "// comment\n",
    "/* block */",
];

fn soup() -> impl Strategy<Value = String> {
    proptest::collection::vec(0usize..FRAGMENTS.len(), 0..200).prop_map(|ids| {
        ids.iter()
            .map(|&i| FRAGMENTS[i])
            .collect::<Vec<_>>()
            .join(" ")
    })
}

fn bytes() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..400)
        .prop_map(|b| String::from_utf8_lossy(&b).into_owned())
}

/// The real workspace sources, loaded once per case; the seed corpus.
fn corpus() -> Vec<String> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    load_workspace(&root)
        .expect("workspace sources load")
        .into_iter()
        .map(|f| f.text)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn token_soup_never_panics(src in soup()) {
        // Ok or Err both fine; escaping panics are the only failure.
        let _ = parse_file(&src);
    }

    #[test]
    fn arbitrary_bytes_never_panic(src in bytes()) {
        let _ = parse_file(&src);
    }
}

proptest! {
    // Mutated real files are big; fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn truncated_workspace_files_never_panic(
        file in any::<usize>(),
        cut in any::<usize>(),
    ) {
        let corpus = corpus();
        let src = &corpus[file % corpus.len()];
        let chars: Vec<char> = src.chars().collect();
        let truncated: String = chars[..cut % (chars.len() + 1)].iter().collect();
        let _ = parse_file(&truncated);
    }

    #[test]
    fn word_deleted_workspace_files_never_panic(
        file in any::<usize>(),
        start in any::<usize>(),
        len in 1usize..40,
    ) {
        let corpus = corpus();
        let src = &corpus[file % corpus.len()];
        // Delete a whitespace-delimited word span: cheap stand-in for token
        // deletion that reliably unbalances braces and splits attributes.
        let words: Vec<&str> = src.split_inclusive(char::is_whitespace).collect();
        if words.is_empty() {
            return Ok(());
        }
        let s = start % words.len();
        let e = (s + len).min(words.len());
        let mutated: String = words[..s].iter().chain(&words[e..]).copied().collect();
        let _ = parse_file(&mutated);
    }
}
