//! Negative tests: the checkers must actually fire when the property they
//! guard is deliberately broken — an unlocked store into shared metadata for
//! the race detector, a corrupted directory sharer mask for the coherence
//! invariant checker, an injected per-event allocation for the allocation
//! audit (`--features alloc-probe`) — and the real workload must pass all.

use dss_check::{check_machine, detect_races};
use dss_core::{Workbench, STUDIED_QUERIES};
use dss_memsim::{Machine, MachineConfig};
use dss_trace::{DataClass, Event, MemRef, Trace};

#[cfg(feature = "alloc-probe")]
#[path = "../src/alloc.rs"]
mod alloc;

/// The probe test measures real heap traffic, so it needs the counting
/// allocator installed for the whole test binary.
#[cfg(feature = "alloc-probe")]
#[global_allocator]
static COUNTING_ALLOC: alloc::CountingAlloc = alloc::CountingAlloc;

/// A small workbench shared per test (each builds its own database).
fn workbench() -> Workbench {
    Workbench::small()
}

#[test]
fn studied_queries_have_no_races() {
    let mut wb = workbench();
    for query in STUDIED_QUERIES {
        let traces = wb.traces(query, 0);
        let report = detect_races(&traces).expect("query traces are well-formed");
        assert!(
            report.is_clean(),
            "Q{query}: {} race(s), first: {}",
            report.races.len(),
            report.races[0]
        );
        // The zero-races verdict must actually cover the metadata classes the
        // paper's premise concerns.
        for class in [
            DataClass::BufDesc,
            DataClass::BufLookup,
            DataClass::LockHash,
        ] {
            assert!(
                report.checked.get(&class).copied().unwrap_or(0) > 0,
                "Q{query}: no {class} accesses checked — detector saw nothing"
            );
        }
    }
}

#[test]
fn unlocked_shared_store_is_caught() {
    let mut wb = workbench();
    let traces = wb.traces(6, 0);
    let mut traces: Vec<Trace> = traces.to_vec();
    // Sabotage: processor 1 stores into a LockHash word that processor 0's
    // trace writes under the lock — without taking the lock. Find such a
    // word from proc 0's trace so the store provably conflicts.
    let victim = traces[0]
        .events
        .iter()
        .find_map(|e| match e {
            Event::Ref(r) if r.class == DataClass::LockHash && r.write => Some(r.addr),
            _ => None,
        })
        .expect("Q6 writes lock-manager metadata");
    traces[1].events.insert(
        0,
        Event::Ref(MemRef {
            addr: victim,
            size: 8,
            write: true,
            class: DataClass::LockHash,
        }),
    );
    let report = detect_races(&traces).expect("still well-formed: no lock events touched");
    assert!(!report.is_clean(), "deliberate unlocked store not flagged");
    let race = &report.races[0];
    assert_eq!(race.class, DataClass::LockHash);
    assert!(
        race.first.proc_id == 1 || race.second.proc_id == 1,
        "the saboteur is one side of the race: {race}"
    );
}

#[test]
fn corrupted_directory_sharer_mask_is_caught() {
    let mut wb = workbench();
    let traces = wb.traces(3, 0);
    let mut machine = Machine::new(MachineConfig::baseline());
    machine.run(&traces);
    check_machine(&machine).expect("healthy run verifies clean");
    // Sabotage: claim some shared line is cached only by a node that does
    // not exist. Pick a line the directory actually tracks.
    let mut line = None;
    machine.for_each_directory_entry(|l, e| {
        if line.is_none() && e.sharers != 0 {
            line = Some(l);
        }
    });
    let line = line.expect("a query run leaves shared lines tracked");
    machine.corrupt_directory_sharers(line, 1 << 63);
    let violation = check_machine(&machine).expect_err("corruption must be caught");
    assert_eq!(violation.line, line);
}

/// Sabotage for the allocation audit: arm the test-only per-event allocation
/// probe on a fully warmed machine and prove the counting gate sees it. The
/// other tests in this binary share the process-global counters, so only the
/// lower bound is meaningful — but that bound (one allocation per simulated
/// event) is exactly what a hot-loop regression looks like.
#[cfg(feature = "alloc-probe")]
#[test]
fn injected_per_event_allocation_is_caught() {
    use dss_memsim::SimStats;

    let mut wb = workbench();
    let traces = wb.traces(6, 0);
    let mut machine = Machine::new(MachineConfig::baseline());
    let mut stats = SimStats::default();
    machine.run_into(&traces, &mut stats);

    machine.arm_alloc_probe();
    let gate = alloc::AllocGate::begin();
    machine.run_into(&traces, &mut stats);
    let report = gate.end();

    let events: u64 = traces.iter().map(|t| t.events.len() as u64).sum();
    assert!(events > 0, "Q6 traces must contain events");
    assert!(
        report.allocs >= events,
        "the gate saw {} allocation(s) for {events} probed event(s) — \
         an allocating hot loop would slip through",
        report.allocs
    );
}

/// Sabotage for the race detector's well-formedness gate: a trace cut short
/// (as a truncated trace file would be) leaves a lock held at end-of-trace,
/// and the detector must refuse to analyze it rather than replay a schedule
/// whose critical section never closes.
#[test]
fn truncated_trace_with_held_lock_is_rejected() {
    use dss_check::RaceAnalysisError;
    use dss_trace::LockDisciplineError;

    let mut wb = workbench();
    let traces = wb.traces(6, 0);
    let mut traces: Vec<Trace> = traces.to_vec();
    // Cut processor 1's trace right after its first lock acquire — the
    // in-memory shape of a file that ended before the release was written.
    let acquire_at = traces[1]
        .events
        .iter()
        .position(|e| matches!(e, Event::LockAcquire(_)))
        .expect("Q6 takes locks");
    traces[1].events.truncate(acquire_at + 1);

    match detect_races(&traces) {
        Err(RaceAnalysisError::Discipline {
            proc_id,
            error: LockDisciplineError::HeldAtEnd { index, .. },
        }) => {
            assert_eq!(proc_id, 1, "the cut trace is named");
            assert_eq!(index, acquire_at, "the unmatched acquire is named");
        }
        other => panic!("truncated trace not rejected as held-at-end: {other:?}"),
    }
}
