//! The allocation audit's zero-assert, as a plain integration test: a warmed
//! [`Machine::run`] performs no heap operations at all. `dss-check alloc`
//! proves this at the paper scale and ratchets the numbers; this test proves
//! it at the small scale on every `cargo test`.
//!
//! It lives alone in this test binary on purpose: the counting allocator's
//! counters are process-global, so a concurrently running test would pollute
//! the measured delta and break the exact-zero assertion.

#[path = "../src/alloc.rs"]
mod alloc;

use alloc::{AllocGate, AllocReport, CountingAlloc};
use dss_core::Workbench;
use dss_memsim::{Machine, MachineConfig, SimStats};

#[global_allocator]
static COUNTING_ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn warmed_machine_run_is_heap_silent() {
    let mut wb = Workbench::small();
    let traces = wb.traces(6, 0);
    let mut machine = Machine::new(MachineConfig::baseline());
    let mut stats = SimStats::default();
    // Warm-up: buffers grow, the caches' paged tables see the trace's whole
    // address footprint. Not measured — only the steady state is asserted.
    machine.run_into(&traces, &mut stats);

    let gate = AllocGate::begin();
    machine.run_into(&traces, &mut stats);
    let steady = gate.end();

    assert!(
        stats.exec_cycles() > 0,
        "the measured run must actually simulate something"
    );
    assert_eq!(
        steady,
        AllocReport::default(),
        "a warmed Machine::run touched the heap"
    );
}
