//! The allocation budget: the machine-readable report `dss-check alloc`
//! emits and CI ratchets.
//!
//! One [`RunBudget`] per audited run (query × protocol), split into the
//! warm-up phase (machine construction plus the first, buffer-growing
//! simulation) and the steady-state phase (an identical second simulation on
//! the warmed machine, which must not touch the heap at all). The committed
//! copy lives at `crates/check/alloc-budget.json`; [`AllocBudget::diff`]
//! compares a fresh measurement against it with ratchet semantics:
//!
//! * any steady-state heap activity is a hard failure (no allowlisting);
//! * a warm-up count *above* the committed budget is a regression;
//! * a warm-up count *below* it is an improvement that must be banked by
//!   regenerating the file (`dss-check alloc --update`), so the budget only
//!   ever tracks reality.
//!
//! The format is JSON for toolability, but constrained — one run object per
//! line — so this std-only parser can read it back line by line without a
//! JSON library.

use std::fmt;

/// Heap counters for one measured phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// Calls to `alloc`/`alloc_zeroed`.
    pub allocs: u64,
    /// Calls to `dealloc`.
    pub deallocs: u64,
    /// Calls to `realloc`.
    pub reallocs: u64,
    /// Bytes requested by allocations.
    pub bytes_allocated: u64,
    /// Peak live heap bytes above the phase's entry level.
    pub peak_bytes: u64,
}

impl Counts {
    /// True when the phase performed no heap operation at all.
    pub fn is_heap_silent(&self) -> bool {
        self.allocs == 0 && self.deallocs == 0 && self.reallocs == 0
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} alloc(s) / {} dealloc(s) / {} realloc(s), {} B allocated, {} B peak",
            self.allocs, self.deallocs, self.reallocs, self.bytes_allocated, self.peak_bytes
        )
    }
}

/// The audited phases of one run of the baseline suite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunBudget {
    /// Run label ("Q3 / MSI baseline").
    pub run: String,
    /// Machine construction plus the first simulation (buffers grow here).
    pub warmup: Counts,
    /// The second simulation on the warmed machine; must be heap-silent.
    pub steady: Counts,
}

/// The whole budget file: one [`RunBudget`] per audited run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AllocBudget {
    /// Budgets in suite order (queries × protocols).
    pub runs: Vec<RunBudget>,
}

/// Schema tag written into (and required from) the budget file.
pub const BUDGET_SCHEMA: &str = "dss-check-alloc/v1";

impl AllocBudget {
    /// Renders the budget as JSON, one run object per line.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{BUDGET_SCHEMA}\",\n"));
        out.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            let sep = if i + 1 == self.runs.len() { "" } else { "," };
            out.push_str(&format!(
                "    {{\"run\": \"{}\", {}, {}}}{sep}\n",
                r.run,
                phase_json("warmup", &r.warmup),
                phase_json("steady", &r.steady),
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses what [`AllocBudget::to_json`] wrote.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line; a missing or
    /// mismatched schema tag is an error so stale files fail loudly.
    pub fn parse(text: &str) -> Result<AllocBudget, String> {
        if !text.contains(BUDGET_SCHEMA) {
            return Err(format!("budget file lacks schema tag `{BUDGET_SCHEMA}`"));
        }
        let mut runs = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if !line.starts_with("{\"run\":") && !line.starts_with("{ \"run\":") {
                continue;
            }
            runs.push(parse_run(line)?);
        }
        Ok(AllocBudget { runs })
    }

    /// Ratchet comparison of `measured` against this committed budget.
    /// Returns human-readable problems; empty means the gate passes.
    pub fn diff(&self, measured: &AllocBudget) -> Vec<String> {
        let mut problems = Vec::new();
        for m in &measured.runs {
            if !m.steady.is_heap_silent() {
                problems.push(format!(
                    "{}: steady-state heap activity ({}) — Machine::run must not allocate once warmed",
                    m.run, m.steady
                ));
            }
            match self.runs.iter().find(|b| b.run == m.run) {
                None => problems.push(format!(
                    "{}: not in the committed budget — run `dss-check alloc --update` and commit",
                    m.run
                )),
                Some(b) => {
                    if worse(&m.warmup, &b.warmup) {
                        problems.push(format!(
                            "{}: warm-up regressed: measured {} vs budget {}",
                            m.run, m.warmup, b.warmup
                        ));
                    } else if m.warmup != b.warmup {
                        problems.push(format!(
                            "{}: warm-up improved ({} vs budget {}) — bank it: `dss-check alloc --update` and commit",
                            m.run, m.warmup, b.warmup
                        ));
                    }
                }
            }
        }
        for b in &self.runs {
            if !measured.runs.iter().any(|m| m.run == b.run) {
                problems.push(format!(
                    "{}: in the committed budget but not measured",
                    b.run
                ));
            }
        }
        problems
    }
}

/// Any counter above budget makes a phase worse.
fn worse(measured: &Counts, budget: &Counts) -> bool {
    measured.allocs > budget.allocs
        || measured.deallocs > budget.deallocs
        || measured.reallocs > budget.reallocs
        || measured.bytes_allocated > budget.bytes_allocated
        || measured.peak_bytes > budget.peak_bytes
}

fn phase_json(name: &str, c: &Counts) -> String {
    format!(
        "\"{name}\": {{\"allocs\": {}, \"deallocs\": {}, \"reallocs\": {}, \"bytes_allocated\": {}, \"peak_bytes\": {}}}",
        c.allocs, c.deallocs, c.reallocs, c.bytes_allocated, c.peak_bytes
    )
}

/// Extracts the string value of `"key"` from a single-line JSON object.
fn str_field<'a>(line: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\": \"");
    let start = line
        .find(&pat)
        .ok_or_else(|| format!("missing `{key}` in `{line}`"))?
        + pat.len();
    let end = line[start..]
        .find('"')
        .ok_or_else(|| format!("unterminated `{key}` in `{line}`"))?;
    Ok(&line[start..start + end])
}

/// Extracts the number after the `n`-th occurrence of `"key":`.
fn num_field(line: &str, key: &str, occurrence: usize) -> Result<u64, String> {
    let pat = format!("\"{key}\": ");
    let mut from = 0;
    for _ in 0..=occurrence {
        let at = line[from..]
            .find(&pat)
            .ok_or_else(|| format!("missing `{key}` #{occurrence} in `{line}`"))?;
        from += at + pat.len();
    }
    let digits: String = line[from..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|_| format!("bad `{key}` #{occurrence} in `{line}`"))
}

fn parse_phase(line: &str, occurrence: usize) -> Result<Counts, String> {
    Ok(Counts {
        allocs: num_field(line, "allocs", occurrence)?,
        deallocs: num_field(line, "deallocs", occurrence)?,
        reallocs: num_field(line, "reallocs", occurrence)?,
        bytes_allocated: num_field(line, "bytes_allocated", occurrence)?,
        peak_bytes: num_field(line, "peak_bytes", occurrence)?,
    })
}

fn parse_run(line: &str) -> Result<RunBudget, String> {
    Ok(RunBudget {
        run: str_field(line, "run")?.to_string(),
        warmup: parse_phase(line, 0)?,
        steady: parse_phase(line, 1)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AllocBudget {
        AllocBudget {
            runs: vec![
                RunBudget {
                    run: "Q3 / MSI baseline".into(),
                    warmup: Counts {
                        allocs: 120,
                        deallocs: 40,
                        reallocs: 8,
                        bytes_allocated: 1 << 20,
                        peak_bytes: 900_000,
                    },
                    steady: Counts::default(),
                },
                RunBudget {
                    run: "Q3 / MESI".into(),
                    warmup: Counts {
                        allocs: 110,
                        deallocs: 35,
                        reallocs: 7,
                        bytes_allocated: 1 << 19,
                        peak_bytes: 400_000,
                    },
                    steady: Counts::default(),
                },
            ],
        }
    }

    #[test]
    fn json_roundtrips() {
        let b = sample();
        let parsed = AllocBudget::parse(&b.to_json()).expect("parses its own output");
        assert_eq!(parsed, b);
    }

    #[test]
    fn schema_tag_is_required() {
        assert!(AllocBudget::parse("{\"runs\": []}").is_err());
    }

    #[test]
    fn identical_budgets_diff_clean() {
        assert!(sample().diff(&sample()).is_empty());
    }

    #[test]
    fn steady_state_activity_is_a_hard_failure() {
        let mut m = sample();
        m.runs[0].steady.allocs = 1;
        let problems = sample().diff(&m);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("steady-state heap activity"));
    }

    #[test]
    fn warmup_drift_fails_in_both_directions() {
        let mut worse = sample();
        worse.runs[0].warmup.allocs += 1;
        assert!(sample().diff(&worse)[0].contains("regressed"));

        let mut better = sample();
        better.runs[1].warmup.bytes_allocated -= 1;
        assert!(sample().diff(&better)[0].contains("improved"));
    }

    #[test]
    fn run_set_mismatches_are_reported() {
        let mut m = sample();
        m.runs.pop();
        m.runs.push(RunBudget {
            run: "Q99 / MSI baseline".into(),
            warmup: Counts::default(),
            steady: Counts::default(),
        });
        let problems = sample().diff(&m);
        assert!(problems
            .iter()
            .any(|p| p.contains("not in the committed budget")));
        assert!(problems.iter().any(|p| p.contains("not measured")));
    }
}
