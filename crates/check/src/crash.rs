//! The crash-recovery campaign: kill `repro` at every registered crash
//! site, resume, and require bit-identical output.
//!
//! The in-process fault campaign ([`dss_faultkit::run_campaign`]) proves
//! layers *classify* corrupt input; this campaign proves the durability
//! protocol *survives the process dying* — which no in-process test can
//! show, because the site under test calls [`std::process::abort`]. So the
//! checker becomes the harness: for each site in
//! [`dss_faultkit::crash::CRASH_SITES`] it
//!
//! 1. runs an uninterrupted baseline `repro` sweep and keeps its stdout and
//!    (normalized) benchmark report;
//! 2. spawns `repro` as a child with the site armed through the environment
//!    ([`dss_faultkit::crash::ENV_SITE`]) at a seed-chosen hit count, and
//!    requires the abort to actually kill it (SIGABRT);
//! 3. reruns `repro --resume` over the crashed state directory, unarmed,
//!    and requires exit 0, stdout byte-identical to the baseline, and a
//!    benchmark report equal after normalization (timings, RSS, and resume
//!    provenance are honest measurements and differ by design — everything
//!    deterministic must match).
//!
//! A site is **Recovered** only if all three hold; anything else — the
//! child surviving its own armed site, a resume failure, a single divergent
//! stdout byte — is a finding. Hit counts are drawn from the campaign
//! seed via [`dss_faultkit::FaultPlan::rng_for`], so `--seed N` replays the
//! exact kill schedule and different seeds kill at different block writes,
//! manifest appends, and point boundaries.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use dss_faultkit::crash::{CrashSite, CRASH_SITES, ENV_HITS, ENV_SITE};
use dss_faultkit::FaultPlan;
use rand::Rng;

/// The sweep the campaign exercises: small enough to rerun per site, big
/// enough to cross every crash site (streamed block writes, manifest
/// appends, many sweep points).
const REPRO_ARGS: &[&str] = &[
    "fig8",
    "--sf",
    "0.003",
    "--jobs",
    "2",
    "--trace-mode",
    "streamed",
];

/// One site's verdict.
#[derive(Clone, Debug)]
pub struct CrashOutcome {
    /// The crash site that was armed.
    pub site: &'static str,
    /// The durability mechanism under test.
    pub layer: &'static str,
    /// The 1-based hit at which the site fired.
    pub hit: u64,
    /// Whether the full kill→resume→compare cycle held.
    pub recovered: bool,
    /// What happened (the failure, or the recovery evidence).
    pub detail: String,
}

/// The campaign's result: per-site verdicts plus where the on-disk evidence
/// of a failed site was kept.
#[derive(Clone, Debug, Default)]
pub struct CrashReport {
    /// Per-site outcomes, in [`CRASH_SITES`] order.
    pub outcomes: Vec<CrashOutcome>,
    /// Work directories preserved for post-mortem (failed sites only).
    pub kept: Vec<PathBuf>,
}

impl CrashReport {
    /// Number of sites that did not recover.
    pub fn findings(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.recovered).count()
    }
}

/// Locates the `repro` binary the campaign drives: `DSS_CHECK_REPRO` if
/// set, else a sibling of the running `dss-check` executable (both live in
/// the same cargo target directory).
///
/// # Errors
///
/// When no binary exists at either location.
pub fn find_repro() -> Result<PathBuf, String> {
    if let Ok(path) = std::env::var("DSS_CHECK_REPRO") {
        let path = PathBuf::from(path);
        return if path.is_file() {
            Ok(path)
        } else {
            Err(format!("DSS_CHECK_REPRO={}: no such file", path.display()))
        };
    }
    let me = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let sibling = me.with_file_name(if cfg!(windows) { "repro.exe" } else { "repro" });
    if sibling.is_file() {
        Ok(sibling)
    } else {
        Err(format!(
            "repro binary not found at {} — build it first (`cargo build -p dss-bench --bin \
             repro`) or set DSS_CHECK_REPRO",
            sibling.display()
        ))
    }
}

/// Strips the honest-measurement fields from a `--bench-json` report,
/// keeping everything a resumed run must reproduce exactly: the schema and
/// run parameters, the degradation record, and each experiment's name.
/// Timings, heap counts, RSS, and the resume-provenance counters differ
/// between a fresh and a resumed run by construction.
pub fn normalize_bench(json: &str) -> String {
    let mut out = String::new();
    for line in json.lines() {
        let t = line.trim_start();
        let deterministic = [
            "\"schema\"",
            "\"jobs\"",
            "\"gen_jobs\"",
            "\"trace_mode\"",
            "\"scale\"",
            "\"point_errors\"",
            "\"failed_experiments\"",
        ]
        .iter()
        .any(|k| t.starts_with(k));
        if deterministic {
            out.push_str(t);
            out.push('\n');
        } else if let Some(rest) = t.strip_prefix("{\"name\": \"") {
            if let Some(name) = rest.split('"').next() {
                out.push_str(name);
                out.push('\n');
            }
        }
    }
    out
}

/// Runs `repro` with `extra` arguments appended to the campaign sweep and
/// optional crash arming, capturing output.
fn run_repro(
    repro: &Path,
    state: &Path,
    extra: &[&str],
    arm: Option<(&str, u64)>,
) -> Result<Output, String> {
    let mut cmd = Command::new(repro);
    cmd.args(REPRO_ARGS)
        .arg("--state-dir")
        .arg(state)
        .args(extra)
        // The child must not inherit an armed site from the checker's own
        // environment (or resume runs would crash too).
        .env_remove(ENV_SITE)
        .env_remove(ENV_HITS);
    if let Some((site, hit)) = arm {
        cmd.env(ENV_SITE, site).env(ENV_HITS, hit.to_string());
    }
    cmd.output()
        .map_err(|e| format!("spawning {}: {e}", repro.display()))
}

/// Whether the child was killed by the abort its armed crash site raised.
fn died_of_abort(out: &Output) -> bool {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        out.status.signal() == Some(libc_sigabrt())
    }
    #[cfg(not(unix))]
    {
        !out.status.success()
    }
}

/// SIGABRT's number, avoiding a libc dependency.
#[cfg(unix)]
fn libc_sigabrt() -> i32 {
    6
}

/// The last few lines of a child's stderr, for failure details.
fn stderr_tail(out: &Output) -> String {
    let text = String::from_utf8_lossy(&out.stderr);
    let lines: Vec<&str> = text.lines().rev().take(3).collect();
    lines.into_iter().rev().collect::<Vec<_>>().join(" | ")
}

/// Runs the campaign: every crash site (or just `only`) killed at a
/// seed-chosen hit, resumed, and compared against one shared uninterrupted
/// baseline. Work directories live under `work`; directories of failed
/// sites are kept for post-mortem, everything else is removed.
///
/// # Errors
///
/// Environment errors only (no baseline, unwritable work dir, unknown
/// `only` site); a site that fails to recover is a finding in the report,
/// not an error.
pub fn run_crash_campaign(
    repro: &Path,
    work: &Path,
    seed: u64,
    only: Option<&str>,
) -> Result<CrashReport, String> {
    let sites: Vec<&CrashSite> = match only {
        Some(name) => {
            let found: Vec<_> = CRASH_SITES.iter().filter(|s| s.name == name).collect();
            if found.is_empty() {
                return Err(format!("--site {name}: no such crash site"));
            }
            found
        }
        None => CRASH_SITES.iter().collect(),
    };
    std::fs::create_dir_all(work).map_err(|e| format!("creating {}: {e}", work.display()))?;

    // One uninterrupted run is the oracle every resumed run must match.
    let base_state = work.join("baseline");
    let base_json = work.join("baseline.json");
    let base = run_repro(
        repro,
        &base_state,
        &["--bench-json", &base_json.display().to_string()],
        None,
    )?;
    if !base.status.success() {
        return Err(format!(
            "baseline repro run failed ({}): {}",
            base.status,
            stderr_tail(&base)
        ));
    }
    let base_stdout = base.stdout;
    let base_bench = normalize_bench(
        &std::fs::read_to_string(&base_json)
            .map_err(|e| format!("reading {}: {e}", base_json.display()))?,
    );

    let plan = FaultPlan::new(seed);
    let mut report = CrashReport::default();
    for site in sites {
        // Early hits exist at every site (the sweep has 15 points and many
        // more block writes/manifest appends), so the schedule stays valid
        // for all of them while still varying with the seed.
        let hit = plan.rng_for(site.name).gen_range(1..=3u64);
        let dir = work.join(site.name.replace('.', "-"));
        let _ = std::fs::remove_dir_all(&dir);
        let state = dir.join("state");
        let bench = dir.join("resumed.json");

        let crashed = run_repro(repro, &state, &[], Some((site.name, hit)))?;
        if !died_of_abort(&crashed) {
            report.outcomes.push(CrashOutcome {
                site: site.name,
                layer: site.layer,
                hit,
                recovered: false,
                detail: format!(
                    "armed site did not kill the child (status {}): {}",
                    crashed.status,
                    stderr_tail(&crashed)
                ),
            });
            report.kept.push(dir);
            continue;
        }

        let resumed = run_repro(
            repro,
            &state,
            &["--resume", "--bench-json", &bench.display().to_string()],
            None,
        )?;
        let detail;
        let recovered;
        if !resumed.status.success() {
            recovered = false;
            detail = format!(
                "resume failed ({}): {}",
                resumed.status,
                stderr_tail(&resumed)
            );
        } else if resumed.stdout != base_stdout {
            recovered = false;
            detail = "resumed stdout diverged from the uninterrupted baseline".to_string();
        } else {
            let bench_text = std::fs::read_to_string(&bench)
                .map_err(|e| format!("reading {}: {e}", bench.display()))?;
            if normalize_bench(&bench_text) != base_bench {
                recovered = false;
                detail = "resumed benchmark report diverged after normalization".to_string();
            } else {
                recovered = true;
                detail = format!(
                    "killed at hit {hit}, resumed to bit-identical stdout and benchmark report"
                );
            }
        }
        if recovered {
            let _ = std::fs::remove_dir_all(&dir);
        } else {
            report.kept.push(dir);
        }
        report.outcomes.push(CrashOutcome {
            site: site.name,
            layer: site.layer,
            hit,
            recovered,
            detail,
        });
    }
    if report.findings() == 0 {
        let _ = std::fs::remove_dir_all(work);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_keeps_only_the_deterministic_fields() {
        let json = "{\n  \"schema\": \"dss-bench-repro/v6\",\n  \"jobs\": 2,\n  \
                    \"gen_jobs\": 0,\n  \"trace_mode\": \"streamed\",\n  \"scale\": 0.003,\n  \
                    \"resume\": {\"mode\": \"fresh\", \"crash_site\": null, \
                    \"points_loaded\": 0, \"points_computed\": 15},\n  \
                    \"total_wall_ns\": 12345,\n  \"point_errors\": [],\n  \
                    \"failed_experiments\": [],\n  \"experiments\": [\n    \
                    {\"name\": \"fig8/fig9\", \"wall_ns\": 999, \"points_loaded\": 0}\n  ]\n}\n";
        let norm = normalize_bench(json);
        assert!(norm.contains("\"schema\": \"dss-bench-repro/v6\","));
        assert!(norm.contains("\"scale\": 0.003,"));
        assert!(norm.contains("fig8/fig9"));
        assert!(!norm.contains("wall_ns"), "timings must be stripped");
        assert!(!norm.contains("resume"), "provenance must be stripped");
        assert!(!norm.contains("12345"));
    }

    #[test]
    fn normalization_is_insensitive_to_measurement_noise() {
        let a = "{\n  \"schema\": \"x\",\n  \"total_wall_ns\": 1,\n  \
                 \"experiments\": [\n    {\"name\": \"fig12\", \"wall_ns\": 7}\n  ]\n}\n";
        let b = "{\n  \"schema\": \"x\",\n  \"total_wall_ns\": 999999,\n  \
                 \"experiments\": [\n    {\"name\": \"fig12\", \"wall_ns\": 123456}\n  ]\n}\n";
        assert_eq!(normalize_bench(a), normalize_bench(b));
    }

    #[test]
    fn campaign_sweep_arguments_stay_streamed() {
        // The campaign only proves trace-file salvage if the sweep records
        // block files; materialized mode would silently weaken it.
        assert!(REPRO_ARGS.contains(&"--trace-mode"));
        assert!(REPRO_ARGS.contains(&"streamed"));
    }
}
