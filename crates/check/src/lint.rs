//! Custom workspace lint: project-specific rules no off-the-shelf linter
//! encodes, built on the hand-written Rust lexer in [`crate::lexer`].
//!
//! Rules match *token sequences*, not line substrings, so a `HashMap`
//! mentioned in a comment or a `.unwrap()` inside a string literal no longer
//! trips the gate, and inline `#[cfg(test)]` modules are recognized wherever
//! they appear (not just as a trailing suffix of the file). Rule families:
//!
//! 1. **Hot-loop allocation ban** — the simulator's per-event path
//!    (`crates/memsim`'s `machine`/`cache`/`directory`/`paged` modules) was
//!    deliberately rewritten hash-free and allocation-free; `HashMap`,
//!    `HashSet`, and `Vec::new()` reappearing there would silently regress
//!    the rewrite.
//! 2. **Library headers** — every library crate root must open with
//!    `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`.
//! 3. **Panic-free library code** — crates already converted to `Result`
//!    error paths must not reintroduce `unwrap()`/`expect()` outside tests.
//!    Also applied to the workspace's binaries and examples.
//! 4. **Panic surface** (hot-loop modules) — `panic!`-family macros are
//!    findings, and slice-indexing sites are counted and ratcheted so new
//!    unchecked indexing is a conscious decision.
//! 5. **Truncating casts** (hot-loop modules) — `as` casts to integer types
//!    narrower than the address/clock width, which silently drop bits.
//! 6. **`cfg` hygiene** — identifiers belonging to feature-gated machinery
//!    (the `check-invariants` observer, the `alloc-probe` test hook) must
//!    only appear inside regions guarded by their feature, so the observer
//!    can never leak into default builds.
//! 7. **Allow justification** — every `#[allow(…)]`/`#![allow(…)]` in the
//!    workspace's own source must carry an adjacent plain `//` comment
//!    saying *why* the lint is suppressed; an unexplained suppression is how
//!    real warnings get buried. Doc comments don't count — they document
//!    the item, not the exception.
//! 8. **Coherence-rule dedup** — the rule strings in `memsim::rules` are
//!    matched verbatim by the fault drills and the model/verify
//!    cross-checks; a string literal duplicating one of them anywhere else
//!    in memsim source is drift waiting to happen and is flagged.
//!
//! Grandfathered sites live in `crates/check/lint-allow.txt` (one `path
//! substring :: line substring` entry per line); the scanner reports any
//! allowlist entry that no longer matches so stale exceptions get removed.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, Token, TokenKind};

/// Crates whose non-test library code must stay free of
/// `unwrap()`/`expect()` (rule 3). Grows as crates are converted.
const PANIC_FREE_CRATES: &[&str] = &[
    "trace", "memsim", "shmem", "check", "sql", "query", "faultkit",
];

/// Binary and example roots also held to rule 3 (entry points should report
/// errors, not abort), relative to the workspace root.
const PANIC_FREE_DIRS: &[&str] = &["src/bin", "examples", "crates/bench/src/bin"];

/// Per-event simulator modules where allocation and hashing are banned
/// (rule 1) and the panic-surface / truncating-cast audits run (rules 4, 5).
const HOT_LOOP_FILES: &[&str] = &[
    "crates/memsim/src/machine.rs",
    "crates/memsim/src/cache.rs",
    "crates/memsim/src/directory.rs",
    "crates/memsim/src/paged.rs",
];

/// Macros that abort the process, banned from hot-loop modules (rule 4).
/// `assert!` stays legal: the hot loop's asserts encode trace-wellformedness
/// contracts the simulation cannot continue past.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Cast targets narrower than the 64-bit address/clock domain (rule 5).
const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Feature-gated identifier families (rule 6): in `file`, each identifier
/// may only appear inside a region guarded by `#[cfg(feature = "feature")]`.
const CFG_HYGIENE: &[(&str, &str, &[&str])] = &[
    (
        "crates/memsim/src/machine.rs",
        "check-invariants",
        &["observe", "first_violation", "take_violation", "violation"],
    ),
    (
        "crates/memsim/src/machine.rs",
        "alloc-probe",
        &["probe_allocs", "arm_alloc_probe"],
    ),
];

/// Headers every library crate root must declare.
const REQUIRED_HEADERS: &[&str] = &["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"];

/// Keywords that may legally precede `[` without it being an indexing site
/// (array literals and the like), for rule 4's audit.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn", "for",
    "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
    "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "{}: [{}] {}",
                self.file.display(),
                self.rule,
                self.message
            )
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file.display(),
                self.line,
                self.rule,
                self.message
            )
        }
    }
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
///
/// # Errors
///
/// Returns `NotFound` if no ancestor of `start` is a workspace root.
pub fn find_workspace_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() && fs::read_to_string(&manifest)?.contains("[workspace]") {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no workspace root above {}", start.display()),
            ));
        }
    }
}

/// An allowlist of grandfathered findings.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// `(path substring, line substring)` pairs, with a hit count so stale
    /// entries can be reported.
    entries: Vec<(String, String, u64)>,
}

impl Allowlist {
    /// Parses the `path substring :: line substring` format; `#` lines and
    /// blank lines are comments.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((path, pat)) = line.split_once("::") {
                entries.push((path.trim().to_string(), pat.trim().to_string(), 0));
            }
        }
        Allowlist { entries }
    }

    /// Loads `crates/check/lint-allow.txt` under `root` (empty if absent).
    ///
    /// # Errors
    ///
    /// Propagates read errors other than the file not existing.
    pub fn load(root: &Path) -> io::Result<Allowlist> {
        Allowlist::load_at(root, "crates/check/lint-allow.txt")
    }

    /// Loads an allowlist from `rel` under `root`; a missing file is empty,
    /// other ratchets (`determinism-allow.txt`) share the format.
    ///
    /// # Errors
    ///
    /// Propagates read errors other than the file not existing.
    pub fn load_at(root: &Path, rel: &str) -> io::Result<Allowlist> {
        match fs::read_to_string(root.join(rel)) {
            Ok(text) => Ok(Allowlist::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(e),
        }
    }

    /// Whether `file`/`text` is grandfathered; counts the hit.
    pub fn permits(&mut self, file: &Path, text: &str) -> bool {
        let file = file.to_string_lossy();
        for (path, pat, hits) in &mut self.entries {
            if file.contains(path.as_str()) && text.contains(pat.as_str()) {
                *hits += 1;
                return true;
            }
        }
        false
    }

    /// Entries that never matched a finding — stale grandfathering.
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(_, _, hits)| *hits == 0)
            .map(|(path, pat, _)| format!("{path} :: {pat}"))
            .collect()
    }
}

/// Rewrites allowlist text without the entries in `stale` (rendered
/// `path :: pattern`, exactly as [`Allowlist::unused`] returns them).
/// Comments, blank lines, and live entries keep their bytes and order —
/// `dss-check lint --prune` writes the result back.
pub fn prune_allowlist_text(text: &str, stale: &[String]) -> String {
    text.lines()
        .filter(|line| {
            let t = line.trim();
            if t.is_empty() || t.starts_with('#') {
                return true;
            }
            match t.split_once("::") {
                Some((p, pat)) => {
                    let rendered = format!("{} :: {}", p.trim(), pat.trim());
                    !stale.contains(&rendered)
                }
                None => true,
            }
        })
        .fold(String::with_capacity(text.len()), |mut out, line| {
            out.push_str(line);
            out.push('\n');
            out
        })
}

/// A token-sequence pattern element.
enum Pat<'p> {
    /// An identifier with exactly this text.
    I(&'p str),
    /// This punctuation character.
    P(char),
    /// An identifier whose text is any of these.
    AnyIdent(&'p [&'p str]),
}

/// One lexed source file, pre-masked for rule passes.
struct FileTokens<'a> {
    rel: PathBuf,
    /// Source lines, for allowlist matching and finding messages.
    lines: Vec<&'a str>,
    /// Code tokens only — comments stripped, order preserved.
    toks: Vec<Token<'a>>,
    /// Per-token: inside a `#[cfg(test)]`-attributed item.
    exempt: Vec<bool>,
    /// Per-token: the feature name of the innermost `#[cfg(feature = "…"))]`
    /// guard covering it, if any.
    feature: Vec<Option<&'a str>>,
}

impl<'a> FileTokens<'a> {
    fn new(rel: &str, text: &'a str) -> FileTokens<'a> {
        let toks: Vec<Token<'a>> = lex(text).into_iter().filter(|t| !t.is_comment()).collect();
        let exempt = attr_guard_mask_bool(&toks, match_cfg_test);
        let feature = attr_guard_mask(&toks, match_cfg_feature);
        FileTokens {
            rel: PathBuf::from(rel),
            lines: text.lines().collect(),
            toks,
            exempt,
            feature,
        }
    }

    /// The source line a token sits on (empty if out of range).
    fn line_text(&self, tok: &Token<'_>) -> &'a str {
        self.lines.get(tok.line - 1).copied().unwrap_or("")
    }

    /// Does `pats` match the code tokens starting at `i`?
    fn matches_at(&self, i: usize, pats: &[Pat<'_>]) -> bool {
        if i + pats.len() > self.toks.len() {
            return false;
        }
        pats.iter().zip(&self.toks[i..]).all(|(p, t)| match p {
            Pat::I(text) => t.is_ident(text),
            Pat::P(c) => t.is_punct(*c),
            Pat::AnyIdent(set) => t.kind == TokenKind::Ident && set.contains(&t.text),
        })
    }

    /// Reports every non-test match of `pats` as a finding under `rule`,
    /// consulting the allowlist with the match's source line.
    fn report_matches(
        &self,
        pats: &[Pat<'_>],
        rule: &'static str,
        what: &str,
        allow: &mut Allowlist,
        findings: &mut Vec<Finding>,
    ) {
        for i in 0..self.toks.len() {
            if self.exempt[i] || !self.matches_at(i, pats) {
                continue;
            }
            let tok = &self.toks[i];
            let line = self.line_text(tok);
            if !allow.permits(&self.rel, line) {
                findings.push(Finding {
                    file: self.rel.clone(),
                    line: tok.line,
                    rule,
                    message: format!("forbidden {what} in `{}`", line.trim()),
                });
            }
        }
    }
}

/// Matches `# [ cfg ( test ) ]` at `i`.
fn match_cfg_test(toks: &[Token<'_>], i: usize) -> bool {
    let p = |j: usize, c: char| toks.get(i + j).is_some_and(|t| t.is_punct(c));
    let id = |j: usize, s: &str| toks.get(i + j).is_some_and(|t| t.is_ident(s));
    p(0, '#') && p(1, '[') && id(2, "cfg") && p(3, '(') && id(4, "test") && p(5, ')') && p(6, ']')
}

/// Matches `# [ cfg ( feature = "…" ) ]` at `i`; returns the feature name
/// (quotes stripped).
fn match_cfg_feature<'a>(toks: &[Token<'a>], i: usize) -> Option<&'a str> {
    let p = |j: usize, c: char| toks.get(i + j).is_some_and(|t| t.is_punct(c));
    let id = |j: usize, s: &str| toks.get(i + j).is_some_and(|t| t.is_ident(s));
    if p(0, '#') && p(1, '[') && id(2, "cfg") && p(3, '(') && id(4, "feature") && p(5, '=') {
        let t = toks.get(i + 6)?;
        if t.kind == TokenKind::Str && p(7, ')') && p(8, ']') {
            return Some(t.text.trim_matches('"'));
        }
    }
    None
}

/// Index just past the `]` closing the attribute starting at `i` (which must
/// be `#`); brackets are depth-matched.
fn attr_end(toks: &[Token<'_>], i: usize) -> usize {
    let mut j = i + 1; // at `[`
    let mut depth = 0usize;
    while j < toks.len() {
        if toks[j].is_punct('[') {
            depth += 1;
        } else if toks[j].is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

/// Index just past the item starting at `j`: through the matching `}` of the
/// first top-level `{`, or past a top-level `;` or `,` (attribute on a
/// field, statement, or `use`).
fn item_end(toks: &[Token<'_>], mut j: usize) -> usize {
    let (mut paren, mut bracket) = (0i32, 0i32);
    while j < toks.len() {
        match toks[j].kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => bracket += 1,
            TokenKind::Punct(']') => bracket -= 1,
            TokenKind::Punct('{') => {
                let mut depth = 0i32;
                while j < toks.len() {
                    if toks[j].is_punct('{') {
                        depth += 1;
                    } else if toks[j].is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            return j + 1;
                        }
                    }
                    j += 1;
                }
                return toks.len();
            }
            TokenKind::Punct(';') | TokenKind::Punct(',') if paren == 0 && bracket == 0 => {
                return j + 1;
            }
            _ => {}
        }
        j += 1;
    }
    toks.len()
}

/// Generic guarded-region mask: wherever `matcher` recognizes an attribute
/// at a `#` token, the attribute plus the item it decorates (skipping any
/// further attributes in between) is marked with the matcher's value.
fn attr_guard_mask<'a, V: Copy>(
    toks: &[Token<'a>],
    matcher: impl Fn(&[Token<'a>], usize) -> Option<V>,
) -> Vec<Option<V>> {
    let mut mask = vec![None; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        let Some(value) = matcher(toks, i) else {
            i += 1;
            continue;
        };
        let start = i;
        let mut j = attr_end(toks, i);
        // Skip further attributes between the guard and its item.
        while j < toks.len()
            && toks[j].is_punct('#')
            && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            j = attr_end(toks, j);
        }
        let end = item_end(toks, j);
        for slot in &mut mask[start..end] {
            *slot = Some(value);
        }
        i = end;
    }
    mask
}

/// Boolean wrapper over [`attr_guard_mask`] for `#[cfg(test)]`.
fn attr_guard_mask_bool(
    toks: &[Token<'_>],
    matcher: impl Fn(&[Token<'_>], usize) -> bool,
) -> Vec<bool> {
    attr_guard_mask(toks, |t, i| matcher(t, i).then_some(()))
        .into_iter()
        .map(|g| g.is_some())
        .collect()
}

/// Runs all lint rules over the workspace at `root`, consulting (and
/// updating hit counts in) `allow`.
///
/// # Errors
///
/// Propagates filesystem errors; findings are data, not errors.
pub fn lint_workspace(root: &Path, allow: &mut Allowlist) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for rel in HOT_LOOP_FILES {
        let text = fs::read_to_string(root.join(rel))?;
        let ft = FileTokens::new(rel, &text);
        lint_hot_loop(&ft, allow, &mut findings);
        lint_panic_surface(&ft, allow, &mut findings);
        lint_trunc_casts(&ft, allow, &mut findings);
        lint_cfg_hygiene(&ft, &mut findings);
    }
    lint_headers(root, &mut findings)?;
    lint_panic_free(root, allow, &mut findings)?;
    lint_allow_justification(root, allow, &mut findings)?;
    lint_rule_dedup(root, &mut findings)?;
    Ok(findings)
}

/// Rule 8: every coherence rule string is defined exactly once, in
/// `memsim::rules`. The drill sites and the model/verify cross-checks match
/// the strings verbatim, so a re-typed copy elsewhere in memsim source would
/// silently decouple them; no allowlist — move the literal, don't excuse it.
fn lint_rule_dedup(root: &Path, findings: &mut Vec<Finding>) -> io::Result<()> {
    let mut files = Vec::new();
    let src = root.join("crates").join("memsim").join("src");
    if src.is_dir() {
        collect_rs_files(&src, &mut files)?;
    }
    files.sort();
    for path in files {
        if path.file_name().is_some_and(|f| f == "rules.rs") {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        for tok in lex(&text) {
            if tok.kind != TokenKind::Str {
                continue;
            }
            if dss_memsim::rules::ALL
                .iter()
                .any(|r| tok.text == format!("\"{r}\""))
            {
                findings.push(Finding {
                    file: rel.clone(),
                    line: tok.line,
                    rule: "rule-string-dedup",
                    message: format!(
                        "coherence rule literal duplicated outside memsim::rules: {}",
                        tok.text
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Rule 1: no hashing or per-event allocation in the simulator hot loop.
fn lint_hot_loop(ft: &FileTokens<'_>, allow: &mut Allowlist, findings: &mut Vec<Finding>) {
    ft.report_matches(
        &[Pat::AnyIdent(&["HashMap", "HashSet"])],
        "hot-loop-alloc",
        "hash container",
        allow,
        findings,
    );
    ft.report_matches(
        &[
            Pat::I("Vec"),
            Pat::P(':'),
            Pat::P(':'),
            Pat::I("new"),
            Pat::P('('),
            Pat::P(')'),
        ],
        "hot-loop-alloc",
        "`Vec::new()`",
        allow,
        findings,
    );
}

/// Rule 4: `panic!`-family macros are findings; slice-indexing sites are
/// counted per file and ratcheted through the allowlist (the count is the
/// finding text, so any change — up or down — surfaces until the entry is
/// updated).
fn lint_panic_surface(ft: &FileTokens<'_>, allow: &mut Allowlist, findings: &mut Vec<Finding>) {
    ft.report_matches(
        &[Pat::AnyIdent(PANIC_MACROS), Pat::P('!')],
        "panic-surface",
        "panicking macro",
        allow,
        findings,
    );
    let mut sites = 0usize;
    for i in 1..ft.toks.len() {
        if ft.exempt[i] || !ft.toks[i].is_punct('[') {
            continue;
        }
        let prev = &ft.toks[i - 1];
        let indexes = match prev.kind {
            TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text),
            TokenKind::Punct(')') | TokenKind::Punct(']') => true,
            _ => false,
        };
        if indexes {
            sites += 1;
        }
    }
    let message = format!(
        "{sites} slice-indexing site(s) in the per-event path; audit new sites, then update the ratchet entry"
    );
    if sites > 0 && !allow.permits(&ft.rel, &message) {
        findings.push(Finding {
            file: ft.rel.clone(),
            line: 0,
            rule: "panic-surface",
            message,
        });
    }
}

/// Rule 5: no truncating `as` casts on the 64-bit address/clock domain.
fn lint_trunc_casts(ft: &FileTokens<'_>, allow: &mut Allowlist, findings: &mut Vec<Finding>) {
    ft.report_matches(
        &[Pat::I("as"), Pat::AnyIdent(NARROW_CASTS)],
        "trunc-cast",
        "truncating cast",
        allow,
        findings,
    );
}

/// Rule 6: feature-gated identifiers never appear outside their guard.
fn lint_cfg_hygiene(ft: &FileTokens<'_>, findings: &mut Vec<Finding>) {
    let rel = ft.rel.to_string_lossy();
    for (file, feature, idents) in CFG_HYGIENE {
        if !rel.ends_with(*file) {
            continue;
        }
        for (i, tok) in ft.toks.iter().enumerate() {
            if tok.kind != TokenKind::Ident || !idents.contains(&tok.text) || ft.exempt[i] {
                continue;
            }
            if ft.feature[i] != Some(feature) {
                findings.push(Finding {
                    file: ft.rel.clone(),
                    line: tok.line,
                    rule: "cfg-hygiene",
                    message: format!(
                        "`{}` outside its `#[cfg(feature = \"{feature}\")]` guard in `{}`",
                        tok.text,
                        ft.line_text(tok).trim(),
                    ),
                });
            }
        }
    }
}

/// Rule 2: every library crate root carries both required headers.
fn lint_headers(root: &Path, findings: &mut Vec<Finding>) -> io::Result<()> {
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for dir in ["crates", "vendor"] {
        for entry in fs::read_dir(root.join(dir))? {
            let lib = entry?.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    for lib in roots {
        let text = fs::read_to_string(&lib)?;
        let rel = lib.strip_prefix(root).unwrap_or(&lib).to_path_buf();
        for header in REQUIRED_HEADERS {
            if !text.lines().any(|l| l.trim() == *header) {
                findings.push(Finding {
                    file: rel.clone(),
                    line: 0,
                    rule: "missing-header",
                    message: format!("library crate root lacks `{header}`"),
                });
            }
        }
    }
    Ok(())
}

/// Rule 3: converted crates, binaries, and examples stay
/// `unwrap()`/`expect()`-free outside tests.
fn lint_panic_free(
    root: &Path,
    allow: &mut Allowlist,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    let mut files = Vec::new();
    for krate in PANIC_FREE_CRATES {
        collect_rs_files(&root.join("crates").join(krate).join("src"), &mut files)?;
    }
    for dir in PANIC_FREE_DIRS {
        let dir = root.join(dir);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy();
        let ft = FileTokens::new(&rel, &text);
        ft.report_matches(
            &[Pat::P('.'), Pat::I("unwrap"), Pat::P('('), Pat::P(')')],
            "no-panic",
            "`.unwrap()`",
            allow,
            findings,
        );
        ft.report_matches(
            &[Pat::P('.'), Pat::I("expect"), Pat::P('(')],
            "no-panic",
            "`.expect(…)`",
            allow,
            findings,
        );
    }
    Ok(())
}

/// Rule 7: every `#[allow(…)]`/`#![allow(…)]` must carry an adjacent plain
/// `//`-comment justification — ending on the attribute's line or the line
/// directly above it, or trailing after the attribute on the same line.
/// Applies to the workspace root's `src/` and every crate's `src/` tree
/// (vendored code is exempt). Grandfathered sites ratchet through the
/// allowlist like every other rule.
fn lint_allow_justification(
    root: &Path,
    allow: &mut Allowlist,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs_files(&src, &mut files)?;
    }
    for entry in fs::read_dir(root.join("crates"))? {
        let dir = entry?.path().join("src");
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        scan_allow_attrs(&rel, &text, allow, findings);
    }
    Ok(())
}

/// A comment that can justify an `allow` attribute: either comment kind,
/// minus the doc flavors (`///`, `//!`, `/**`, `/*!`), which attach to the
/// item rather than explain the suppression.
fn is_justification_comment(tok: &Token<'_>) -> bool {
    tok.is_comment()
        && !tok.text.starts_with("///")
        && !tok.text.starts_with("//!")
        && !tok.text.starts_with("/**")
        && !tok.text.starts_with("/*!")
}

/// Scans one file's raw token stream (comments retained — [`FileTokens`]
/// strips them, so rule 7 lexes for itself) for unjustified `allow`
/// attributes.
fn scan_allow_attrs(rel: &Path, text: &str, allow: &mut Allowlist, findings: &mut Vec<Finding>) {
    let toks = lex(text);
    let lines: Vec<&str> = text.lines().collect();
    let p = |i: usize, c: char| toks.get(i).is_some_and(|t| t.is_punct(c));
    let id = |i: usize, s: &str| toks.get(i).is_some_and(|t| t.is_ident(s));
    for i in 0..toks.len() {
        // `# [ allow` (outer) or `# ! [ allow` (inner). `cfg_attr`-wrapped
        // allows put `cfg_attr` after the bracket, so they don't match.
        let outer = p(i, '#') && p(i + 1, '[') && id(i + 2, "allow");
        let inner = p(i, '#') && p(i + 1, '!') && p(i + 2, '[') && id(i + 3, "allow");
        if !(outer || inner) {
            continue;
        }
        let attr_line = toks[i].line;
        // A justifying comment either ends on the attribute's line or the
        // line directly above it (comment end = start line + embedded
        // newlines), or trails the attribute on the same line.
        let above = toks[..i].iter().any(|t| {
            is_justification_comment(t) && t.line + t.text.matches('\n').count() + 1 >= attr_line
        });
        let trailing = toks[i + 1..]
            .iter()
            .take_while(|t| t.line == attr_line)
            .any(is_justification_comment);
        if above || trailing {
            continue;
        }
        let line_text = lines.get(attr_line - 1).copied().unwrap_or("");
        if !allow.permits(rel, line_text) {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: attr_line,
                rule: "allow-justification",
                message: format!(
                    "`{}` lacks an adjacent `//` justification comment",
                    line_text.trim()
                ),
            });
        }
    }
}

/// Collects every `.rs` file under `dir`, recursively.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_loop_findings(src: &str, allow: &mut Allowlist) -> Vec<Finding> {
        let ft = FileTokens::new("x.rs", src);
        let mut findings = Vec::new();
        lint_hot_loop(&ft, allow, &mut findings);
        findings
    }

    #[test]
    fn prune_drops_exactly_the_stale_lines() {
        let text = "\
# explanation that must survive the prune
crates/foo.rs :: bar(

crates/baz.rs :: never_matches
";
        let mut allow = Allowlist::parse(text);
        // Only the foo entry gets a hit; baz goes stale.
        assert!(allow.permits(Path::new("crates/foo.rs"), "x = bar(1);"));
        let stale = allow.unused();
        assert_eq!(stale, vec!["crates/baz.rs :: never_matches".to_string()]);
        let pruned = prune_allowlist_text(text, &stale);
        assert_eq!(
            pruned,
            "# explanation that must survive the prune\ncrates/foo.rs :: bar(\n\n"
        );
        // Pruning again with nothing stale is byte-identical.
        assert_eq!(prune_allowlist_text(&pruned, &[]), pruned);
    }

    #[test]
    fn rule_dedup_flags_stray_copies_of_rule_strings() {
        let root = std::env::temp_dir().join(format!("dss-lint-dedup-{}", std::process::id()));
        let src = root.join("crates").join("memsim").join("src");
        std::fs::create_dir_all(&src).unwrap();
        let dup = format!(
            "fn f() -> &'static str {{ \"{}\" }}\n",
            dss_memsim::rules::RULE_TWO_WRITERS
        );
        std::fs::write(src.join("stray.rs"), &dup).unwrap();
        // rules.rs is the one home and is exempt.
        std::fs::write(src.join("rules.rs"), &dup).unwrap();
        let mut findings = Vec::new();
        lint_rule_dedup(&root, &mut findings).unwrap();
        std::fs::remove_dir_all(&root).ok();
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "rule-string-dedup");
        assert!(findings[0].file.ends_with("stray.rs"), "{findings:?}");
    }

    #[test]
    fn comments_and_strings_no_longer_trip_the_rules() {
        let src = "\
// a HashMap in a comment is fine
/* so is Vec::new() in a block comment */
fn f() -> &'static str { \"HashMap and .unwrap() in a string\" }
";
        let mut allow = Allowlist::default();
        assert!(hot_loop_findings(src, &mut allow).is_empty());
        let ft = FileTokens::new("x.rs", src);
        let mut findings = Vec::new();
        ft.report_matches(
            &[Pat::P('.'), Pat::I("unwrap"), Pat::P('('), Pat::P(')')],
            "no-panic",
            "`.unwrap()`",
            &mut allow,
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn real_tokens_still_fire_with_locations() {
        let src = "use std::collections::HashMap;\nfn f() { let v = Vec::new(); }\n";
        let findings = hot_loop_findings(src, &mut Allowlist::default());
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 2], "{findings:?}");
    }

    #[test]
    fn inline_test_modules_are_exempt_even_mid_file() {
        // The old line scanner treated everything after the first
        // `#[cfg(test)]` as tests; the lexer-based mask ends with the item,
        // so code AFTER an inline test module is still scanned.
        let src = "\
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
    fn g() { x.unwrap(); }
}
fn f() { let v = Vec::new(); }
";
        let findings = hot_loop_findings(src, &mut Allowlist::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 6);
    }

    #[test]
    fn unwrap_or_and_method_names_do_not_match() {
        let src = "let a = x.unwrap_or(3);\nlet b = y.unwrap();\nlet c = z.expect(\"m\");\n";
        let ft = FileTokens::new("x.rs", src);
        let mut allow = Allowlist::default();
        let mut findings = Vec::new();
        ft.report_matches(
            &[Pat::P('.'), Pat::I("unwrap"), Pat::P('('), Pat::P(')')],
            "no-panic",
            "`.unwrap()`",
            &mut allow,
            &mut findings,
        );
        ft.report_matches(
            &[Pat::P('.'), Pat::I("expect"), Pat::P('(')],
            "no-panic",
            "`.expect(…)`",
            &mut allow,
            &mut findings,
        );
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3]);
    }

    #[test]
    fn panic_surface_flags_macros_and_ratchets_indexing() {
        let src = "\
fn f(v: &[u64], i: usize) -> u64 {
    if i > v.len() { panic!(\"oob\"); }
    v[i] + v[i + 1]
}
";
        let ft = FileTokens::new("x.rs", src);
        let mut allow = Allowlist::default();
        let mut findings = Vec::new();
        lint_panic_surface(&ft, &mut allow, &mut findings);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].rule, "panic-surface");
        assert_eq!(findings[0].line, 2);
        assert!(findings[1].message.contains("2 slice-indexing site(s)"));

        // The ratchet entry keys on the exact count: it permits 2 sites…
        let mut allow = Allowlist::parse("x.rs :: 2 slice-indexing site(s)\n");
        let mut findings = Vec::new();
        lint_panic_surface(&ft, &mut allow, &mut findings);
        assert!(!findings.iter().any(|f| f.line == 0), "{findings:?}");
        // …and a third site both fires and strands the stale entry.
        let grown = src.replace("v[i + 1]", "v[i + 1] + v[0]");
        let ft = FileTokens::new("x.rs", &grown);
        let mut allow = Allowlist::parse("x.rs :: 2 slice-indexing site(s)\n");
        let mut findings = Vec::new();
        lint_panic_surface(&ft, &mut allow, &mut findings);
        assert!(
            findings
                .iter()
                .any(|f| f.message.contains("3 slice-indexing site(s)")),
            "{findings:?}"
        );
        assert_eq!(allow.unused().len(), 1);
    }

    #[test]
    fn array_types_and_attributes_are_not_indexing_sites() {
        let src = "\
#[derive(Clone)]
struct S { a: [u64; 4] }
fn f() -> [u8; 2] { [0; 2] }
";
        let ft = FileTokens::new("x.rs", src);
        let mut allow = Allowlist::default();
        let mut findings = Vec::new();
        lint_panic_surface(&ft, &mut allow, &mut findings);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn trunc_casts_flag_narrow_targets_only() {
        let src = "let a = x as u8;\nlet b = x as u64;\nlet c = y as usize;\n";
        let ft = FileTokens::new("x.rs", src);
        let mut allow = Allowlist::default();
        let mut findings = Vec::new();
        lint_trunc_casts(&ft, &mut allow, &mut findings);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1], "{findings:?}");
    }

    #[test]
    fn cfg_hygiene_requires_the_matching_guard() {
        let src = "\
struct M {
    #[cfg(feature = \"check-invariants\")]
    violation: Option<u8>,
}
impl M {
    #[cfg(feature = \"check-invariants\")]
    fn observe(&mut self) { self.violation = None; }
    fn bad(&mut self) { self.observe(); }
}
";
        let ft = FileTokens::new("crates/memsim/src/machine.rs", src);
        let mut findings = Vec::new();
        lint_cfg_hygiene(&ft, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 8);
        assert!(findings[0].message.contains("`observe`"));
    }

    #[test]
    fn allowlist_grandfathers_and_reports_stale_entries() {
        let mut allow = Allowlist::parse(
            "# comment\n\
             x.rs :: let v = Vec\n\
             y.rs :: never matches\n",
        );
        let findings = hot_loop_findings("fn f() { let v = Vec::new(); }\n", &mut allow);
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(allow.unused(), vec!["y.rs :: never matches".to_string()]);
    }

    #[test]
    fn findings_render_with_location() {
        let f = Finding {
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 7,
            rule: "no-panic",
            message: "bad".into(),
        };
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:7: [no-panic] bad");
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).expect("workspace above dss-check");
        assert!(root.join("crates/check").is_dir());
    }

    fn allow_findings(src: &str, allow: &mut Allowlist) -> Vec<Finding> {
        let mut findings = Vec::new();
        scan_allow_attrs(Path::new("crates/x/src/lib.rs"), src, allow, &mut findings);
        findings
    }

    #[test]
    fn bare_allow_attributes_are_findings() {
        let src = "#[allow(dead_code)]\nfn f() {}\n\n#![allow(unsafe_code)]\n";
        let findings = allow_findings(src, &mut Allowlist::default());
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].rule, "allow-justification");
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 4);
    }

    #[test]
    fn adjacent_plain_comments_justify_allows() {
        let above =
            "// the trait demands the arity\n#[allow(clippy::too_many_arguments)]\nfn f() {}\n";
        let trailing = "#[allow(dead_code)] // kept for schema v2 readers\nfn f() {}\n";
        let block = "/* generated table */ #[allow(missing_docs)]\npub struct S;\n";
        for src in [above, trailing, block] {
            assert!(
                allow_findings(src, &mut Allowlist::default()).is_empty(),
                "false positive on {src:?}"
            );
        }
    }

    #[test]
    fn doc_comments_and_distance_do_not_justify_allows() {
        let doc = "/// Documents the item, not the allow.\n#[allow(dead_code)]\nfn f() {}\n";
        let far = "// too far away\n\n\n#[allow(dead_code)]\nfn f() {}\n";
        for src in [doc, far] {
            assert_eq!(
                allow_findings(src, &mut Allowlist::default()).len(),
                1,
                "missed finding in {src:?}"
            );
        }
    }

    #[test]
    fn cfg_attr_wrapped_allows_are_not_matched() {
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn f() {}\n";
        assert!(allow_findings(src, &mut Allowlist::default()).is_empty());
    }

    #[test]
    fn allowlist_grandfathers_allow_attributes() {
        let src = "#[allow(dead_code)]\nfn f() {}\n";
        let mut allow = Allowlist::parse("crates/x/src :: allow(dead_code)\n");
        assert!(allow_findings(src, &mut allow).is_empty());
        assert!(allow.unused().is_empty(), "entry should count as used");
    }
}
