//! Custom workspace lint: project-specific rules no off-the-shelf linter
//! encodes, implemented with nothing but `std::fs` line scanning.
//!
//! Three rule families:
//!
//! 1. **Hot-loop allocation ban** — the simulator's per-event path
//!    (`crates/memsim`'s `machine`/`cache`/`directory`/`paged` modules) was
//!    deliberately rewritten hash-free and allocation-free; `HashMap`,
//!    `HashSet`, and `Vec::new()` reappearing there would silently regress
//!    the rewrite, so their tokens are forbidden outside test modules.
//! 2. **Library headers** — every library crate (workspace crates, the
//!    vendored stand-ins, and the root crate) must open with
//!    `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]`.
//! 3. **Panic-free library code** — crates already converted to `Result`
//!    error paths must not reintroduce `unwrap()`/`expect()` outside tests.
//!
//! Grandfathered sites live in `crates/check/lint-allow.txt` (one `path
//! substring :: line substring` entry per line); the scanner reports any
//! allowlist entry that no longer matches so stale exceptions get removed.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose non-test library code must stay free of
/// `unwrap()`/`expect()` (rule 3). Grows as crates are converted.
const PANIC_FREE_CRATES: &[&str] = &["trace", "memsim", "shmem", "check"];

/// Per-event simulator modules where allocation and hashing are banned
/// (rule 1).
const HOT_LOOP_FILES: &[&str] = &[
    "crates/memsim/src/machine.rs",
    "crates/memsim/src/cache.rs",
    "crates/memsim/src/directory.rs",
    "crates/memsim/src/paged.rs",
];

/// Tokens forbidden in hot-loop modules. Spelled with `concat!` so this
/// file's own scan (rule 3 covers `dss-check` too) never matches the rule
/// definitions themselves.
const HOT_LOOP_TOKENS: &[&str] = &[
    concat!("Hash", "Map"),
    concat!("Hash", "Set"),
    concat!("Vec::", "new()"),
];

/// Tokens forbidden by the panic-free rule.
const PANIC_TOKENS: &[&str] = &[concat!(".unw", "rap()"), concat!(".exp", "ect(")];

/// Headers every library crate root must declare.
const REQUIRED_HEADERS: &[&str] = &["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// The rule that fired.
    pub rule: &'static str,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(
                f,
                "{}: [{}] {}",
                self.file.display(),
                self.rule,
                self.message
            )
        } else {
            write!(
                f,
                "{}:{}: [{}] {}",
                self.file.display(),
                self.line,
                self.rule,
                self.message
            )
        }
    }
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
///
/// # Errors
///
/// Returns `NotFound` if no ancestor of `start` is a workspace root.
pub fn find_workspace_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() && fs::read_to_string(&manifest)?.contains("[workspace]") {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no workspace root above {}", start.display()),
            ));
        }
    }
}

/// An allowlist of grandfathered findings.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// `(path substring, line substring)` pairs, with a hit count so stale
    /// entries can be reported.
    entries: Vec<(String, String, u64)>,
}

impl Allowlist {
    /// Parses the `path substring :: line substring` format; `#` lines and
    /// blank lines are comments.
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((path, pat)) = line.split_once("::") {
                entries.push((path.trim().to_string(), pat.trim().to_string(), 0));
            }
        }
        Allowlist { entries }
    }

    /// Loads `crates/check/lint-allow.txt` under `root` (empty if absent).
    ///
    /// # Errors
    ///
    /// Propagates read errors other than the file not existing.
    pub fn load(root: &Path) -> io::Result<Allowlist> {
        match fs::read_to_string(root.join("crates/check/lint-allow.txt")) {
            Ok(text) => Ok(Allowlist::parse(&text)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Allowlist::default()),
            Err(e) => Err(e),
        }
    }

    /// Whether `file`/`text` is grandfathered; counts the hit.
    fn permits(&mut self, file: &Path, text: &str) -> bool {
        let file = file.to_string_lossy();
        for (path, pat, hits) in &mut self.entries {
            if file.contains(path.as_str()) && text.contains(pat.as_str()) {
                *hits += 1;
                return true;
            }
        }
        false
    }

    /// Entries that never matched a finding — stale grandfathering.
    pub fn unused(&self) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(_, _, hits)| *hits == 0)
            .map(|(path, pat, _)| format!("{path} :: {pat}"))
            .collect()
    }
}

/// The code portion of a source line: everything before a `//` comment.
fn code_of(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Runs all lint rules over the workspace at `root`, consulting (and
/// updating hit counts in) `allow`.
///
/// # Errors
///
/// Propagates filesystem errors; findings are data, not errors.
pub fn lint_workspace(root: &Path, allow: &mut Allowlist) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    lint_hot_loops(root, allow, &mut findings)?;
    lint_headers(root, &mut findings)?;
    lint_panic_free(root, allow, &mut findings)?;
    Ok(findings)
}

/// Rule 1: no hashing or per-event allocation in the simulator hot loop.
fn lint_hot_loops(
    root: &Path,
    allow: &mut Allowlist,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    for rel in HOT_LOOP_FILES {
        let path = root.join(rel);
        let text = fs::read_to_string(&path)?;
        scan_lines(
            rel,
            &text,
            HOT_LOOP_TOKENS,
            "hot-loop-alloc",
            allow,
            findings,
        );
    }
    Ok(())
}

/// Rule 2: every library crate root carries both required headers.
fn lint_headers(root: &Path, findings: &mut Vec<Finding>) -> io::Result<()> {
    let mut roots: Vec<PathBuf> = vec![root.join("src/lib.rs")];
    for dir in ["crates", "vendor"] {
        for entry in fs::read_dir(root.join(dir))? {
            let lib = entry?.path().join("src/lib.rs");
            if lib.is_file() {
                roots.push(lib);
            }
        }
    }
    for lib in roots {
        let text = fs::read_to_string(&lib)?;
        let rel = lib.strip_prefix(root).unwrap_or(&lib).to_path_buf();
        for header in REQUIRED_HEADERS {
            if !text.lines().any(|l| l.trim() == *header) {
                findings.push(Finding {
                    file: rel.clone(),
                    line: 0,
                    rule: "missing-header",
                    message: format!("library crate root lacks `{header}`"),
                });
            }
        }
    }
    Ok(())
}

/// Rule 3: converted crates stay `unwrap()`/`expect()`-free outside tests.
fn lint_panic_free(
    root: &Path,
    allow: &mut Allowlist,
    findings: &mut Vec<Finding>,
) -> io::Result<()> {
    for krate in PANIC_FREE_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for path in files {
            let text = fs::read_to_string(&path)?;
            let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy();
            scan_lines(&rel, &text, PANIC_TOKENS, "no-panic", allow, findings);
        }
    }
    Ok(())
}

/// Scans non-test, non-comment code lines of `text` for any of `tokens`.
fn scan_lines(
    rel: &str,
    text: &str,
    tokens: &[&str],
    rule: &'static str,
    allow: &mut Allowlist,
    findings: &mut Vec<Finding>,
) {
    let rel_path = PathBuf::from(rel);
    let mut in_tests = false;
    for (i, line) in text.lines().enumerate() {
        // Trailing test modules are exempt: the rules target shipped
        // library code, and tests legitimately panic and allocate.
        if line.trim_start().starts_with("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        let code = code_of(line);
        for token in tokens {
            if code.contains(token) && !allow.permits(&rel_path, line) {
                findings.push(Finding {
                    file: rel_path.clone(),
                    line: i + 1,
                    rule,
                    message: format!("forbidden `{token}` in `{}`", line.trim()),
                });
            }
        }
    }
}

/// Collects every `.rs` file under `dir`, recursively.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_test_modules_are_exempt() {
        let text = "\
use std::collections::HashMap; // banned
// a HashMap in a comment is fine
fn f() { let v = Vec::new(); }
#[cfg(test)]
mod tests {
    use std::collections::HashSet;
}
";
        let mut allow = Allowlist::default();
        let mut findings = Vec::new();
        scan_lines(
            "x.rs",
            text,
            HOT_LOOP_TOKENS,
            "hot-loop-alloc",
            &mut allow,
            &mut findings,
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].line, 1);
        assert_eq!(findings[1].line, 3);
    }

    #[test]
    fn allowlist_grandfathers_and_reports_stale_entries() {
        let mut allow = Allowlist::parse(
            "# comment\n\
             x.rs :: let v = Vec\n\
             y.rs :: never matches\n",
        );
        let mut findings = Vec::new();
        scan_lines(
            "src/x.rs",
            "fn f() { let v = Vec::new(); }\n",
            HOT_LOOP_TOKENS,
            "hot-loop-alloc",
            &mut allow,
            &mut findings,
        );
        assert!(findings.is_empty(), "{findings:?}");
        assert_eq!(allow.unused(), vec!["y.rs :: never matches".to_string()]);
    }

    #[test]
    fn panic_tokens_match_real_calls_only() {
        let text = "let a = x.unwrap_or(3);\nlet b = y.unwrap();\nlet c = z.expect(\"msg\");\n";
        let mut allow = Allowlist::default();
        let mut findings = Vec::new();
        scan_lines(
            "x.rs",
            text,
            PANIC_TOKENS,
            "no-panic",
            &mut allow,
            &mut findings,
        );
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3]);
    }

    #[test]
    fn findings_render_with_location() {
        let f = Finding {
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 7,
            rule: "no-panic",
            message: "bad".into(),
        };
        assert_eq!(f.to_string(), "crates/x/src/lib.rs:7: [no-panic] bad");
    }

    #[test]
    fn workspace_root_is_found_from_this_crate() {
        let here = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(&here).expect("workspace above dss-check");
        assert!(root.join("crates/check").is_dir());
    }
}
