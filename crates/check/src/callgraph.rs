//! Workspace call graph over the syntactic parser ([`crate::parse`]).
//!
//! Nodes are every function the parser recognizes in the workspace's own
//! source (`src/` plus each `crates/*/src/` tree — vendored stand-ins are
//! not our determinism surface and are excluded). Edges are resolved by
//! *name*, deliberately over-approximating:
//!
//! * `recv.m(…)` links to every workspace fn named `m` — the parser does not
//!   type receivers.
//! * `Type::f(…)` links to fns named `f` on a workspace type named `Type`;
//!   if the type is foreign (`Instant::now`), there is no edge — foreign
//!   calls are matched by the passes' own source patterns instead.
//! * `f(…)` links to every workspace fn named `f`.
//!
//! Extra edges can only create false paths, which the allowlists absorb;
//! missing edges would hide real ones. The one systematic miss — values
//! returned upward and passed sideways into a sink by a common caller — is
//! handled by the determinism pass treating a source *inside* a sink fn as
//! reaching it (see DESIGN.md §5i for the full approximation inventory).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::parse::{parse_file, Call, CallKind, ParseError};

/// One workspace source file, loaded whole so passes can re-lex it.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Workspace-relative path.
    pub rel: PathBuf,
    /// Full file contents.
    pub text: String,
}

/// Loads every `.rs` file the passes analyze: the workspace root's `src/`
/// tree and each `crates/*/src/` tree, in sorted order. `vendor/` is
/// excluded — the stand-ins there are not this project's determinism
/// surface.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut paths = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        collect_rs(&src, &mut paths)?;
    }
    for entry in fs::read_dir(root.join("crates"))? {
        let dir = entry?.path().join("src");
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        files.push(SourceFile { rel, text });
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One function node in the graph (owned — source text is not retained).
#[derive(Clone, Debug)]
pub struct FnNode {
    /// Index into the file list the graph was built from.
    pub file: usize,
    /// Module-qualified name within its file.
    pub qpath: String,
    /// Bare name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token range of the body in the file's comment-stripped token stream
    /// (re-derivable by re-parsing the file — parsing is deterministic).
    pub body: Range<usize>,
    /// Gated behind `#[cfg(test)]`.
    pub cfg_test: bool,
    /// Gated behind `#[cfg(feature = "…")]`.
    pub cfg_feature: Option<String>,
    /// The body's calls and macro uses, in token order.
    pub calls: Vec<Call>,
}

/// The workspace call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// All nodes; indices are stable identifiers.
    pub nodes: Vec<FnNode>,
    /// Per-file node indices, in parse order — the i-th fn that
    /// [`parse_file`] yields for file f is `by_file[f][i]`.
    pub by_file: Vec<Vec<usize>>,
    /// Resolved call edges (caller → callees), deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// Files the parser could not follow, with their structured errors.
    pub parse_errors: Vec<(usize, ParseError)>,
}

impl CallGraph {
    /// Parses every file and resolves name-based call edges.
    pub fn build(files: &[SourceFile]) -> CallGraph {
        let mut graph = CallGraph {
            by_file: vec![Vec::new(); files.len()],
            ..CallGraph::default()
        };
        for (fi, file) in files.iter().enumerate() {
            match parse_file(&file.text) {
                Ok(parsed) => {
                    for f in parsed.fns {
                        let idx = graph.nodes.len();
                        graph.by_file[fi].push(idx);
                        graph.nodes.push(FnNode {
                            file: fi,
                            qpath: f.qpath,
                            name: f.name,
                            self_ty: f.self_ty,
                            line: f.line,
                            body: f.body,
                            cfg_test: f.cfg_test,
                            cfg_feature: f.cfg_feature,
                            calls: f.calls,
                        });
                    }
                }
                Err(e) => graph.parse_errors.push((fi, e)),
            }
        }
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, n) in graph.nodes.iter().enumerate() {
            by_name.entry(&n.name).or_default().push(i);
            if let Some(ty) = &n.self_ty {
                by_type_method
                    .entry((ty.as_str(), &n.name))
                    .or_default()
                    .push(i);
            }
        }
        graph.edges = graph
            .nodes
            .iter()
            .map(|n| {
                let mut callees = Vec::new();
                for call in &n.calls {
                    resolve(call, &by_name, &by_type_method, &mut callees);
                }
                callees.sort_unstable();
                callees.dedup();
                callees
            })
            .collect();
        graph
    }

    /// Whether node `i` participates under the given enabled feature set:
    /// test-gated fns never do, feature-gated fns only when armed.
    pub fn enabled(&self, i: usize, features: &[&str]) -> bool {
        let n = &self.nodes[i];
        !n.cfg_test
            && match n.cfg_feature.as_deref() {
                None => true,
                Some(f) => features.contains(&f),
            }
    }

    /// Forward BFS from `roots` over call edges, restricted to enabled
    /// nodes. Returns per-node BFS parents: `None` for unreached nodes,
    /// `Some(self)` for roots, `Some(caller)` otherwise — enough to replay
    /// the shortest call path from a root to any reached node.
    pub fn reach_from(&self, roots: &[usize], features: &[&str]) -> Vec<Option<usize>> {
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if self.enabled(r, features) && parent[r].is_none() {
                parent[r] = Some(r);
                queue.push_back(r);
            }
        }
        while let Some(i) = queue.pop_front() {
            for &j in &self.edges[i] {
                if parent[j].is_none() && self.enabled(j, features) {
                    parent[j] = Some(i);
                    queue.push_back(j);
                }
            }
        }
        parent
    }

    /// The shortest root→`target` call chain recorded by [`Self::reach_from`],
    /// as node indices (root first). Empty if `target` was not reached.
    pub fn chain(&self, parents: &[Option<usize>], target: usize) -> Vec<usize> {
        let mut chain = Vec::new();
        let mut at = target;
        loop {
            match parents.get(at).copied().flatten() {
                None => return Vec::new(),
                Some(p) => {
                    chain.push(at);
                    if p == at {
                        break; // reached a root
                    }
                    at = p;
                }
            }
            if chain.len() > self.nodes.len() {
                return Vec::new(); // cycle in parents: malformed input
            }
        }
        chain.reverse();
        chain
    }

    /// Renders a call chain as `a -> b -> c` using qualified names.
    pub fn render_chain(&self, chain: &[usize]) -> String {
        let names: Vec<&str> = chain
            .iter()
            .map(|&i| self.nodes[i].qpath.as_str())
            .collect();
        names.join(" -> ")
    }
}

/// Resolves one call to workspace node candidates (see module docs for the
/// over-approximation rules).
fn resolve(
    call: &Call,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_type_method: &BTreeMap<(&str, &str), Vec<usize>>,
    out: &mut Vec<usize>,
) {
    match call.kind {
        CallKind::Macro => {}
        CallKind::Method => {
            if let Some(c) = by_name.get(call.name()) {
                out.extend_from_slice(c);
            }
        }
        CallKind::Path => {
            if call.path.len() >= 2 {
                let ty = &call.path[call.path.len() - 2];
                if ty.chars().next().is_some_and(char::is_uppercase) {
                    // `Type::f` — resolve against the type when we know it;
                    // a foreign type yields no edge (correct: its body is
                    // not workspace code).
                    if let Some(c) = by_type_method.get(&(ty.as_str(), call.name())) {
                        out.extend_from_slice(c);
                    }
                    return;
                }
            }
            if let Some(c) = by_name.get(call.name()) {
                out.extend_from_slice(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_of(srcs: &[&str]) -> CallGraph {
        let files: Vec<SourceFile> = srcs
            .iter()
            .enumerate()
            .map(|(i, s)| SourceFile {
                rel: PathBuf::from(format!("crates/x/src/f{i}.rs")),
                text: (*s).to_string(),
            })
            .collect();
        CallGraph::build(&files)
    }

    fn idx(g: &CallGraph, name: &str) -> usize {
        match g.nodes.iter().position(|n| n.name == name) {
            Some(i) => i,
            None => panic!("node {name} missing"),
        }
    }

    #[test]
    fn edges_resolve_across_files_by_name_and_type() {
        let g = graph_of(&[
            "pub fn entry() { helper(); Pool::pin(); x.walk(); }",
            "pub fn helper() {}\npub struct Pool;\nimpl Pool { pub fn pin() { probe(); } }\nfn probe() {}\nimpl Pool { fn walk(&self) {} }",
        ]);
        let e = idx(&g, "entry");
        let callees: Vec<&str> = g.edges[e]
            .iter()
            .map(|&i| g.nodes[i].name.as_str())
            .collect();
        assert_eq!(callees, vec!["helper", "pin", "walk"]);
        // Foreign `Type::f` resolves to nothing.
        let g2 = graph_of(&["fn f() { Instant::now(); }"]);
        assert!(g2.edges[idx(&g2, "f")].is_empty());
    }

    #[test]
    fn reachability_skips_tests_and_closed_feature_gates() {
        let g = graph_of(&["fn root() { mid(); }
             fn mid() { leaf(); gated(); }
             fn leaf() {}
             #[cfg(feature = \"drill\")]
             fn gated() { leaf2(); }
             fn leaf2() {}
             #[cfg(test)]
             fn test_only() { leaf(); }"]);
        let root = idx(&g, "root");
        let parents = g.reach_from(&[root], &[]);
        assert!(parents[idx(&g, "leaf")].is_some());
        assert!(parents[idx(&g, "gated")].is_none(), "gate closed");
        assert!(parents[idx(&g, "test_only")].is_none());
        let armed = g.reach_from(&[root], &["drill"]);
        assert!(armed[idx(&g, "gated")].is_some());
        assert!(armed[idx(&g, "leaf2")].is_some());
    }

    #[test]
    fn chains_replay_shortest_paths() {
        let g = graph_of(&["fn a() { b(); } fn b() { c(); } fn c() {}"]);
        let parents = g.reach_from(&[idx(&g, "a")], &[]);
        let chain = g.chain(&parents, idx(&g, "c"));
        assert_eq!(g.render_chain(&chain), "a -> b -> c");
        assert!(g.chain(&parents, idx(&g, "a")).len() == 1);
        // Unreached target → empty chain.
        let g2 = graph_of(&["fn a() {} fn z() {}"]);
        let p2 = g2.reach_from(&[idx(&g2, "a")], &[]);
        assert!(g2.chain(&p2, idx(&g2, "z")).is_empty());
    }

    #[test]
    fn parse_errors_are_collected_not_fatal() {
        let g = graph_of(&["fn ok() {}", "fn broken() { let x = "]);
        assert_eq!(g.nodes.len(), 1);
        assert_eq!(g.parse_errors.len(), 1);
    }
}
