//! Verification tooling for the DSS workbench.
//!
//! The reproduction's results all flow through hand-optimized simulator code
//! (paged tables, packed directory entries, bitmask invalidations) and rest
//! on an assumed property of the traced engine — that shared metadata is
//! serialized by the `LockMgrLock`/`BufMgrLock` spinlocks. This crate makes
//! both machine-checked, and adds a workspace lint so the optimizations and
//! conventions the codebase relies on cannot silently regress:
//!
//! * [`invariants`] — runs the baseline suite and sweeps the directory
//!   protocol's invariants over every touched line (with the
//!   `check-invariants` feature, also after every transaction mid-run).
//! * [`race`] — a vector-clock happens-before race detector over the query
//!   traces, treating `LockAcquire`/`LockRelease` as release/acquire edges.
//! * [`lint`] — source analysis for the project's own rules, built on the
//!   hand-written Rust lexer in [`lexer`]: no hashing or per-event
//!   allocation in the simulator hot loop, required library headers,
//!   panic-free converted crates, a panic-surface and truncating-cast audit
//!   of the per-event modules, and `cfg`-hygiene for feature-gated hooks.
//! * [`budget`] — the allocation-budget report `dss-check alloc` emits:
//!   per-run warm-up and steady-state heap counters with ratchet-diff
//!   semantics (the counting allocator itself lives in the binary, which may
//!   use `unsafe`; this library must not).
//! * [`model`] — exhaustive BFS reachability over the coherence-protocol
//!   transition kernel (`dss_memsim::protocol`) across {MSI, MESI} × 2–4
//!   processors × 1–2 lines, checking SWMR, directory–cache agreement, the
//!   data-value invariant, and quiescence at every reachable state, plus a
//!   litmus suite of pinned transaction shapes; violations come back as
//!   minimal replayable event sequences.
//! * [`parse`] + [`callgraph`] — a lightweight syntactic Rust parser over
//!   [`lexer`] (items, fn signatures, call/method expressions — no full
//!   expression grammar) feeding a workspace call graph, the substrate for
//!   the two whole-program passes:
//! * [`determinism`] — source→sink taint: classifies nondeterminism sources
//!   (wall-clock reads, hash-order iteration, thread identity, env reads,
//!   address casts) and reports any that sit inside the call tree of a
//!   byte-diffable sink (`repro` stdout/bench-json, trace codec writers),
//!   ratcheted by `determinism-allow.txt`.
//! * [`locks`] — static lock-order analysis: which fns acquire which
//!   `LockClass` while holding which, cycle detection over the order graph,
//!   cross-checked against the nesting the race detector's Q3/Q6/Q12
//!   replays actually observe.
//! * [`crash`] — the crash-recovery campaign (`dss-check crash`): spawns
//!   `repro` as a child with each `dss_faultkit::crash` site armed, requires
//!   the abort to kill it, resumes with `--resume`, and requires stdout
//!   byte-identical to an uninterrupted baseline. Not part of `all`: it
//!   needs the `repro` binary on disk and runs whole child sweeps.
//!
//! The `dss-check` binary runs any or all passes and exits non-zero on the
//! first finding; CI gates on `dss-check all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod callgraph;
pub mod crash;
pub mod determinism;
pub mod drill;
pub mod invariants;
pub mod lexer;
pub mod lint;
pub mod locks;
pub mod model;
pub mod parse;
pub mod race;

pub use budget::{AllocBudget, Counts, RunBudget};
pub use callgraph::{load_workspace, CallGraph, FnNode, SourceFile};
pub use determinism::{analyze_determinism, check_determinism, DetFinding, DetReport};
pub use invariants::{check_baseline_suite, check_machine, InvariantFailure, RunSummary};
pub use lexer::{lex, Token, TokenKind};
pub use lint::{find_workspace_root, lint_workspace, Allowlist, Finding};
pub use locks::{analyze_locks, check_locks, LockFinding, LockReport};
pub use model::{check_model, render_counterexample, LitmusOutcome, ModelReport, ModelRun};
pub use parse::{parse_file, Call, CallKind, FnDef, ParseError, ParsedFile};
pub use race::{detect_races, detect_races_source, Access, Race, RaceAnalysisError, RaceReport};
