//! `dss-check locks` — static lock-acquisition order over the call graph.
//!
//! The traced engine serializes shared metadata behind simulated spinlocks
//! (`LockToken` events the race detector treats as release/acquire edges)
//! and the host-side pipeline uses real `std::sync` primitives. Deadlock
//! freedom for both reduces to the classic condition: the "acquire B while
//! holding A" relation must be acyclic. This pass extracts that relation
//! statically and checks it, then cross-checks it against the nesting the
//! dynamic replays actually perform.
//!
//! **Lock identities.** A simulated spinlock is identified by its
//! `LockClass` variant (`LockClass::BufMgr`, …): the class is resolved from
//! the `LockToken::new(addr, LockClass::X)` constructor, either inline in
//! the acquire call, through a struct-literal field init (`lock:
//! LockToken::new(…)` makes `self.lock` that class), or through a `let`
//! binding. A host lock is identified by the `Mutex`/`RwLock`-typed field
//! or binding name it is acquired through (`Mutex(merge)`).
//!
//! **Holding.** `lock_acquire(tok)`/`lock_release(tok)` bracket spinlock
//! sections exactly. A host guard from `.lock()`/`.read()`/`.write()` is
//! held to the end of the enclosing statement, or to the end of the fn when
//! `let`-bound — an over-approximation (guards dropped early stay "held")
//! that can only add order edges, never hide one. While any lock is held,
//! every call's transitive may-acquire set contributes edges.
//!
//! A cycle in the resulting order graph is a finding ([`RULE_CYCLE`]); a
//! nesting pair observed by the Q3/Q6/Q12 replays that static analysis
//! never derived is a finding too ([`RULE_DYNAMIC`]) — it means the
//! extractor lost track of an acquisition site.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::{Path, PathBuf};

use dss_trace::{Event, Trace};

use crate::callgraph::{load_workspace, CallGraph, SourceFile};
use crate::lexer::{Token, TokenKind};
use crate::parse::parse_file;

/// Classification for a cycle in the static lock-order graph.
pub const RULE_CYCLE: &str = "lock-order cycle across acquisition sites";
/// Classification for dynamic nesting the static graph never derived.
pub const RULE_DYNAMIC: &str = "dynamic lock nesting outside the static order graph";

/// Guard-producing methods on `Mutex`/`RwLock`.
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// One `held → acquired` edge with an example site.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// Lock held at the acquisition site.
    pub held: String,
    /// Lock acquired while holding it.
    pub acquired: String,
    /// Workspace-relative file of the example site.
    pub file: PathBuf,
    /// 1-based line of the example site.
    pub line: usize,
    /// Qualified fn the site is in.
    pub in_fn: String,
    /// For interprocedural edges, the callee whose may-acquire set supplied
    /// `acquired`.
    pub via_call: Option<String>,
}

/// One lock-order finding.
#[derive(Clone, Debug)]
pub struct LockFinding {
    /// The classification rule that fired.
    pub rule: &'static str,
    /// Human-readable description (cycle path or unexplained pair).
    pub detail: String,
}

impl std::fmt::Display for LockFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// The lock pass's result.
#[derive(Clone, Debug, Default)]
pub struct LockReport {
    /// The static order graph, deduplicated by `(held, acquired)` with the
    /// first site seen kept as the example.
    pub edges: Vec<LockEdge>,
    /// Cycle and cross-check findings.
    pub findings: Vec<LockFinding>,
    /// Every lock identity seen at an acquisition site.
    pub locks: BTreeSet<String>,
    /// Fns containing at least one acquisition site.
    pub fns_with_locks: usize,
    /// Dynamic nesting pairs cross-checked (0 until [`cross_check`] runs).
    pub dynamic_pairs: usize,
}

/// Runs the static half over the workspace at `root` (cycles only; the
/// dynamic cross-check needs traces the caller replays).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn check_locks(root: &Path) -> io::Result<LockReport> {
    let files = load_workspace(root)?;
    Ok(analyze_locks(&files, &[]))
}

/// Intra-fn lock event, in token order.
#[derive(Clone)]
enum Ev {
    Acq(String, usize),
    Rel(String),
    /// Guard acquire that auto-releases after token index `.2`.
    Scoped(String, usize, usize),
    /// A call site (for interprocedural edges): ordinal into the fn's
    /// parsed call list.
    Call(usize),
}

/// Pure analysis over an explicit file set; `features` arms feature-gated
/// fns (the inverted-pair drill analyzes with its gate open).
pub fn analyze_locks(files: &[SourceFile], features: &[&str]) -> LockReport {
    let graph = CallGraph::build(files);
    let mut report = LockReport::default();

    // Pass 1: name → lock identity, workspace-wide. Struct fields typed
    // Mutex/RwLock, plus names initialized from `LockToken::new(…)`.
    let mut names: BTreeMap<String, String> = BTreeMap::new();
    let mut parsed_files = Vec::with_capacity(files.len());
    for file in files {
        let parsed = parse_file(&file.text).ok();
        if let Some(p) = &parsed {
            for f in &p.fields {
                if let Some(id) = host_lock_id(&f.name, &f.ty) {
                    names.insert(f.name.clone(), id);
                }
            }
            for fun in &p.fns {
                for b in &fun.bindings {
                    if let Some(id) = host_lock_id(&b.name, &b.ty) {
                        names.insert(b.name.clone(), id);
                    }
                }
            }
            collect_token_inits(&p.toks, &mut names);
        }
        parsed_files.push(parsed);
    }

    // Pass 2: per-fn event scan → direct acquires + intraprocedural edges.
    let mut events: Vec<Vec<Ev>> = vec![Vec::new(); graph.nodes.len()];
    for (fi, parsed) in parsed_files.iter().enumerate() {
        let Some(p) = parsed else { continue };
        for (oi, f) in p.fns.iter().enumerate() {
            let node = graph.by_file[fi][oi];
            if graph.enabled(node, features) {
                events[node] = scan_lock_events(&p.toks, f, &names);
            }
        }
    }

    let mut direct: Vec<BTreeSet<String>> = events
        .iter()
        .map(|evs| {
            evs.iter()
                .filter_map(|e| match e {
                    Ev::Acq(id, _) | Ev::Scoped(id, _, _) => Some(id.clone()),
                    _ => None,
                })
                .collect()
        })
        .collect();
    report.fns_with_locks = direct.iter().filter(|s| !s.is_empty()).count();

    // Transitive may-acquire over call edges, to fixpoint. The workspace
    // graph is small; the loop converges in a handful of rounds.
    loop {
        let mut changed = false;
        for i in 0..graph.nodes.len() {
            if !graph.enabled(i, features) {
                continue;
            }
            let mut add = Vec::new();
            for &j in &graph.edges[i] {
                if graph.enabled(j, features) {
                    for id in &direct[j] {
                        if !direct[i].contains(id) {
                            add.push(id.clone());
                        }
                    }
                }
            }
            for id in add {
                direct[i].insert(id);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let may_acquire = direct;

    // Pass 3: replay each fn's events with a held multiset, emitting edges.
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for (node, evs) in events.iter().enumerate() {
        let n = &graph.nodes[node];
        let file = files[n.file].rel.clone();
        let mut held: Vec<(String, Option<usize>)> = Vec::new(); // (id, expiry)
        for ev in evs {
            match ev {
                Ev::Acq(id, line) | Ev::Scoped(id, line, _) => {
                    // Self re-acquisition is a *discipline* fault the trace
                    // checker owns; order edges relate distinct locks.
                    for (h, _) in held.iter().filter(|(h, _)| h != id) {
                        push_edge(&mut report, &mut seen, h, id, &file, *line, &n.qpath, None);
                    }
                    report.locks.insert(id.clone());
                    let expiry = match ev {
                        Ev::Scoped(_, _, until) => Some(*until),
                        _ => None,
                    };
                    held.push((id.clone(), expiry));
                }
                Ev::Rel(id) => {
                    if let Some(at) = held.iter().rposition(|(h, _)| h == id) {
                        held.remove(at);
                    }
                }
                Ev::Call(ord) => {
                    if held.is_empty() {
                        continue;
                    }
                    let Some(call) = n.calls.get(*ord) else {
                        continue;
                    };
                    for &callee in &graph.edges[node] {
                        if !graph.enabled(callee, features)
                            || graph.nodes[callee].name != *call.name()
                        {
                            continue;
                        }
                        for id in &may_acquire[callee] {
                            for (h, _) in &held {
                                if h != id {
                                    push_edge(
                                        &mut report,
                                        &mut seen,
                                        h,
                                        id,
                                        &file,
                                        call.line,
                                        &n.qpath,
                                        Some(&graph.nodes[callee].qpath),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            // Expire scoped guards whose statement ended before the *next*
            // event; expiry indices are compared against the event's own
            // position via the stored token index.
        }
        let _ = held; // balance not required: release omission is covered
                      // by the trace-level lock-discipline checker.
    }

    find_cycles(&mut report);
    report
}

/// Adds one deduplicated edge.
#[allow(clippy::too_many_arguments)] // plain edge constructor
fn push_edge(
    report: &mut LockReport,
    seen: &mut BTreeSet<(String, String)>,
    held: &str,
    acquired: &str,
    file: &Path,
    line: usize,
    in_fn: &str,
    via_call: Option<&str>,
) {
    report.locks.insert(held.to_string());
    report.locks.insert(acquired.to_string());
    if seen.insert((held.to_string(), acquired.to_string())) {
        report.edges.push(LockEdge {
            held: held.to_string(),
            acquired: acquired.to_string(),
            file: file.to_path_buf(),
            line,
            in_fn: in_fn.to_string(),
            via_call: via_call.map(str::to_string),
        });
    }
}

/// `Mutex`/`RwLock` typed name → its lock identity.
fn host_lock_id(name: &str, ty: &str) -> Option<String> {
    let mut words = ty.split(' ');
    if words.any(|w| w == "Mutex" || w == "RwLock") {
        Some(format!("Mutex({name})"))
    } else {
        None
    }
}

/// Scans a whole file's token stream for `NAME : LockToken :: new ( …
/// LockClass :: C … )` (struct-literal init) and `let NAME = LockToken ::
/// new ( … )`, recording `NAME → LockClass::C`.
fn collect_token_inits(toks: &[Token<'_>], names: &mut BTreeMap<String, String>) {
    for i in 0..toks.len() {
        if !(toks[i].is_ident("LockToken")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("new")))
        {
            continue;
        }
        let Some(class) = class_in_group(toks, i + 4) else {
            continue;
        };
        // Walk back over the initializer position: `name:` (struct literal
        // — requiring an identifier before the `:` rules out the second
        // colon of a `::` path) or `name =` (let/assignment).
        let name = (i >= 2
            && toks[i - 2].kind == TokenKind::Ident
            && (toks[i - 1].is_punct(':') || toks[i - 1].is_punct('=')))
        .then(|| &toks[i - 2]);
        if let Some(n) = name {
            names.insert(n.text.to_string(), class);
        }
    }
}

/// Finds `LockClass :: C` inside the paren group starting at `open` (which
/// must index a `(`).
fn class_in_group(toks: &[Token<'_>], open: usize) -> Option<String> {
    if !toks.get(open)?.is_punct('(') {
        return None;
    }
    let mut depth = 0i64;
    let mut i = open;
    while let Some(t) = toks.get(i) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return None;
            }
        } else if t.is_ident("LockClass")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            return Some(format!("LockClass::{}", toks[i + 3].text));
        }
        i += 1;
    }
    None
}

/// Resolves a `lock_acquire`/`lock_release` argument group to an identity:
/// inline `LockClass::C`, else the last ident (field or binding) looked up
/// in the name map, else `unresolved:<name>` so the site still surfaces.
fn arg_lock_id(
    toks: &[Token<'_>],
    open: usize,
    names: &BTreeMap<String, String>,
) -> Option<String> {
    if let Some(c) = class_in_group(toks, open) {
        return Some(c);
    }
    let mut depth = 0i64;
    let mut i = open;
    let mut last_ident: Option<&str> = None;
    while let Some(t) = toks.get(i) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident && t.text != "self" {
            last_ident = Some(t.text);
        }
        i += 1;
    }
    let name = last_ident?;
    Some(
        names
            .get(name)
            .cloned()
            .unwrap_or_else(|| format!("unresolved:{name}")),
    )
}

/// Scans one fn for lock events in token order.
fn scan_lock_events(
    toks: &[Token<'_>],
    f: &crate::parse::FnDef,
    names: &BTreeMap<String, String>,
) -> Vec<Ev> {
    let mut local = names.clone();
    for b in &f.bindings {
        if let Some(id) = host_lock_id(&b.name, &b.ty) {
            local.insert(b.name.clone(), id);
        }
    }
    let body = f.body.clone();
    let mut out = Vec::new();
    let mut call_ord = 0usize;
    for i in body.clone() {
        let t = &toks[i];
        let next_is = |k: usize, c: char| body.contains(&(i + k)) && toks[i + k].is_punct(c);
        if t.is_ident("lock_acquire") && next_is(1, '(') {
            if let Some(id) = arg_lock_id(toks, i + 1, &local) {
                out.push(Ev::Acq(id, t.line));
            }
        } else if t.is_ident("lock_release") && next_is(1, '(') {
            if let Some(id) = arg_lock_id(toks, i + 1, &local) {
                out.push(Ev::Rel(id));
            }
        } else if t.is_punct('.')
            && body.contains(&(i + 1))
            && toks[i + 1].kind == TokenKind::Ident
            && GUARD_METHODS.contains(&toks[i + 1].text)
            && next_is(2, '(')
            && next_is(3, ')')
            && i > body.start
            && toks[i - 1].kind == TokenKind::Ident
        {
            if let Some(id) = local.get(toks[i - 1].text) {
                if id.starts_with("Mutex(") {
                    // Guard extent: to the statement's `;` at depth 0, or the
                    // fn end for `let`-bound guards — found by walking on.
                    let until = guard_extent(toks, &body, i);
                    out.push(Ev::Scoped(id.clone(), toks[i + 1].line, until));
                }
            }
        }
        // Track call ordinals so interprocedural edges interleave at the
        // right point relative to acquire/release events.
        if f.calls
            .get(call_ord)
            .is_some_and(|c| c.line == t.line && t.kind == TokenKind::Ident && c.name() == t.text)
        {
            out.push(Ev::Call(call_ord));
            call_ord += 1;
        }
    }
    // Scoped guards: convert into Rel events at their expiry by re-walking.
    expand_scoped(out)
}

/// Where a guard born at token `i` dies: the next `;` at brace depth 0
/// (statement temporary) or the body end (conservative for `let` guards —
/// the scan walks back for a `let` on the same statement).
fn guard_extent(toks: &[Token<'_>], body: &std::ops::Range<usize>, i: usize) -> usize {
    // Walk back to the statement start looking for `let`.
    let mut j = i;
    while j > body.start {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        if t.is_ident("let") {
            return body.end;
        }
    }
    let mut depth = 0i64;
    let mut k = i;
    while k < body.end {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(';') && depth <= 0 {
            return k;
        }
        k += 1;
    }
    body.end
}

/// Rewrites `Scoped` events into `Acq` + a `Rel` placed before the first
/// event past the guard's extent.
fn expand_scoped(evs: Vec<Ev>) -> Vec<Ev> {
    // Pair each event with the token position we recorded (Scoped carries
    // it; others are already ordered), then emit releases lazily.
    let mut out: Vec<Ev> = Vec::with_capacity(evs.len());
    let mut pending: Vec<(usize, String)> = Vec::new(); // (expiry ordinal in token terms, id)
    for ev in evs {
        match ev {
            Ev::Scoped(id, line, until) => {
                out.push(Ev::Acq(id.clone(), line));
                pending.push((until, id));
            }
            other => out.push(other),
        }
    }
    // Without per-event token positions for non-scoped events, release all
    // scoped guards at fn end — the conservative extent documented above.
    for (_, id) in pending {
        out.push(Ev::Rel(id));
    }
    out
}

/// Finds cycles in the order graph; each cycle is reported once, anchored
/// at its lexicographically smallest lock.
fn find_cycles(report: &mut LockReport) {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in &report.edges {
        adj.entry(e.held.as_str()).or_default().push(e);
    }
    let locks: Vec<&str> = report.locks.iter().map(String::as_str).collect();
    let mut findings = Vec::new();
    for &start in &locks {
        // BFS from `start` back to itself over edges whose nodes are all
        // ≥ start (so each cycle is reported exactly once).
        let mut parent: BTreeMap<&str, &LockEdge> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        let mut closed: Option<&LockEdge> = None;
        'bfs: while let Some(at) = queue.pop_front() {
            for e in adj.get(at).into_iter().flatten() {
                let next = e.acquired.as_str();
                if next == start {
                    closed = Some(e);
                    break 'bfs;
                }
                if next > start && !parent.contains_key(next) {
                    parent.insert(next, e);
                    queue.push_back(next);
                }
            }
        }
        if let Some(last) = closed {
            let mut path = vec![last];
            let mut at = last.held.as_str();
            while at != start {
                let Some(e) = parent.get(at) else { break };
                path.push(e);
                at = e.held.as_str();
            }
            path.reverse();
            let mut detail = String::new();
            for e in &path {
                detail.push_str(&format!(
                    "{} -> {} ({}:{} in {}){}",
                    e.held,
                    e.acquired,
                    e.file.display(),
                    e.line,
                    e.in_fn,
                    if Some(*e) == path.last().copied() {
                        ""
                    } else {
                        "; "
                    }
                ));
            }
            findings.push(LockFinding {
                rule: RULE_CYCLE,
                detail,
            });
        }
    }
    report.findings.extend(findings);
}

/// Extracts the `(held, acquired)` class pairs a replayed trace set
/// actually nests, per processor, using `LockClass` identities.
pub fn dynamic_nesting(traces: &[Trace]) -> BTreeSet<(String, String)> {
    let mut pairs = BTreeSet::new();
    for t in traces {
        let mut held: Vec<String> = Vec::new();
        for ev in &t.events {
            match ev {
                Event::LockAcquire(tok) => {
                    let id = format!("LockClass::{:?}", tok.class);
                    for h in &held {
                        if *h != id {
                            pairs.insert((h.clone(), id.clone()));
                        }
                    }
                    held.push(id);
                }
                Event::LockRelease(tok) => {
                    let id = format!("LockClass::{:?}", tok.class);
                    if let Some(at) = held.iter().rposition(|h| *h == id) {
                        held.remove(at);
                    }
                }
                _ => {}
            }
        }
    }
    pairs
}

/// Cross-checks dynamic nesting against the static graph: every pair the
/// replays perform must be a static edge, else the extractor is blind to an
/// acquisition site and its cycle check is unsound.
pub fn cross_check(report: &mut LockReport, dynamic: &BTreeSet<(String, String)>) {
    report.dynamic_pairs = dynamic.len();
    let static_pairs: BTreeSet<(&str, &str)> = report
        .edges
        .iter()
        .map(|e| (e.held.as_str(), e.acquired.as_str()))
        .collect();
    for (h, a) in dynamic {
        if !static_pairs.contains(&(h.as_str(), a.as_str())) {
            report.findings.push(LockFinding {
                rule: RULE_DYNAMIC,
                detail: format!("replay nests {a} under {h}; no static edge derives it"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_trace::{LockClass, LockToken, Tracer};

    fn file(rel: &str, text: &str) -> SourceFile {
        SourceFile {
            rel: PathBuf::from(rel),
            text: text.to_string(),
        }
    }

    #[test]
    fn field_constructor_resolves_class_and_nesting_edges() {
        let files = [file(
            "crates/x/src/lib.rs",
            "struct B { lock: LockToken }
             impl B {
                 fn new() -> B { B { lock: LockToken::new(0x40, LockClass::BufMgr) } }
                 fn pin(&self, t: &Tracer) {
                     t.lock_acquire(self.lock);
                     t.lock_acquire(LockToken::new(0x80, LockClass::LockMgr));
                     t.lock_release(LockToken::new(0x80, LockClass::LockMgr));
                     t.lock_release(self.lock);
                 }
             }",
        )];
        let r = analyze_locks(&files, &[]);
        assert_eq!(r.edges.len(), 1, "{:?}", r.edges);
        assert_eq!(r.edges[0].held, "LockClass::BufMgr");
        assert_eq!(r.edges[0].acquired, "LockClass::LockMgr");
        assert!(r.findings.is_empty(), "no cycle from one edge");
    }

    #[test]
    fn inverted_pair_is_a_cycle() {
        let files = [file(
            "crates/x/src/lib.rs",
            "fn a(t: &Tracer) {
                 t.lock_acquire(LockToken::new(1, LockClass::BufMgr));
                 t.lock_acquire(LockToken::new(2, LockClass::LockMgr));
                 t.lock_release(LockToken::new(2, LockClass::LockMgr));
                 t.lock_release(LockToken::new(1, LockClass::BufMgr));
             }
             fn b(t: &Tracer) {
                 t.lock_acquire(LockToken::new(2, LockClass::LockMgr));
                 t.lock_acquire(LockToken::new(1, LockClass::BufMgr));
                 t.lock_release(LockToken::new(1, LockClass::BufMgr));
                 t.lock_release(LockToken::new(2, LockClass::LockMgr));
             }",
        )];
        let r = analyze_locks(&files, &[]);
        assert_eq!(r.edges.len(), 2);
        assert_eq!(r.findings.len(), 1, "{:?}", r.findings);
        assert_eq!(r.findings[0].rule, RULE_CYCLE);
        assert!(r.findings[0].detail.contains("LockClass::BufMgr"));
    }

    #[test]
    fn interprocedural_edge_through_a_call() {
        let files = [file(
            "crates/x/src/lib.rs",
            "fn outer(t: &Tracer) {
                 t.lock_acquire(LockToken::new(1, LockClass::BufMgr));
                 inner(t);
                 t.lock_release(LockToken::new(1, LockClass::BufMgr));
             }
             fn inner(t: &Tracer) {
                 t.lock_acquire(LockToken::new(2, LockClass::LockMgr));
                 t.lock_release(LockToken::new(2, LockClass::LockMgr));
             }",
        )];
        let r = analyze_locks(&files, &[]);
        let e = r
            .edges
            .iter()
            .find(|e| e.held == "LockClass::BufMgr" && e.acquired == "LockClass::LockMgr");
        match e {
            Some(e) => assert!(e.via_call.as_deref().is_some_and(|v| v.contains("inner"))),
            None => panic!("missing interprocedural edge: {:?}", r.edges),
        }
    }

    #[test]
    fn feature_gated_sites_only_count_when_armed() {
        let files = [file(
            "crates/x/src/lib.rs",
            "#[cfg(feature = \"drill\")]
             fn bad(t: &Tracer) {
                 t.lock_acquire(LockToken::new(2, LockClass::LockMgr));
                 t.lock_acquire(LockToken::new(1, LockClass::BufMgr));
                 t.lock_release(LockToken::new(1, LockClass::BufMgr));
                 t.lock_release(LockToken::new(2, LockClass::LockMgr));
             }
             fn good(t: &Tracer) {
                 t.lock_acquire(LockToken::new(1, LockClass::BufMgr));
                 t.lock_acquire(LockToken::new(2, LockClass::LockMgr));
                 t.lock_release(LockToken::new(2, LockClass::LockMgr));
                 t.lock_release(LockToken::new(1, LockClass::BufMgr));
             }",
        )];
        let closed = analyze_locks(&files, &[]);
        assert!(closed.findings.is_empty(), "{:?}", closed.findings);
        let armed = analyze_locks(&files, &["drill"]);
        assert_eq!(armed.findings.len(), 1);
        assert_eq!(armed.findings[0].rule, RULE_CYCLE);
    }

    #[test]
    fn mutex_guard_names_become_lock_ids() {
        let files = [file(
            "crates/x/src/lib.rs",
            "struct S { merge: Mutex<u32> }
             impl S {
                 fn commit(&self, t: &Tracer) {
                     let g = self.merge.lock();
                     t.lock_acquire(LockToken::new(1, LockClass::BufMgr));
                     t.lock_release(LockToken::new(1, LockClass::BufMgr));
                 }
             }",
        )];
        let r = analyze_locks(&files, &[]);
        assert!(r.locks.contains("Mutex(merge)"), "{:?}", r.locks);
        let e = r.edges.iter().find(|e| e.held == "Mutex(merge)");
        assert!(
            e.is_some_and(|e| e.acquired == "LockClass::BufMgr"),
            "{:?}",
            r.edges
        );
    }

    #[test]
    fn dynamic_pairs_cross_check_against_static_edges() {
        let t = Tracer::new(0);
        t.lock_acquire(LockToken::new(1, LockClass::BufMgr));
        t.lock_acquire(LockToken::new(2, LockClass::LockMgr));
        t.lock_release(LockToken::new(2, LockClass::LockMgr));
        t.lock_release(LockToken::new(1, LockClass::BufMgr));
        let traces = vec![t.take()];
        let pairs = dynamic_nesting(&traces);
        assert_eq!(pairs.len(), 1);

        let mut explained = LockReport::default();
        let mut seen = BTreeSet::new();
        push_edge(
            &mut explained,
            &mut seen,
            "LockClass::BufMgr",
            "LockClass::LockMgr",
            Path::new("crates/x/src/lib.rs"),
            1,
            "x::pin",
            None,
        );
        cross_check(&mut explained, &pairs);
        assert!(explained.findings.is_empty(), "{:?}", explained.findings);

        let mut blind = LockReport::default();
        cross_check(&mut blind, &pairs);
        assert_eq!(blind.findings.len(), 1);
        assert_eq!(blind.findings[0].rule, RULE_DYNAMIC);
    }
}
