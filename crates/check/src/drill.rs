//! Fault-injection sites for the static-analysis passes.
//!
//! The campaign's rule is that every defense must demonstrably fire, and
//! the new whole-program passes are defenses like any other. They cannot be
//! rows of faultkit's static site table — faultkit sits *below* `dss-check`
//! in the crate graph — so they register through
//! [`dss_faultkit::run_campaign_with_extra`], drawing per-site RNG streams
//! from the same seeded plan:
//!
//! * `check.determinism.hash-order-leak` — synthesizes a small workspace
//!   where a `HashMap` iteration reaches the stdout sink through a
//!   seed-varied call chain, and demands the determinism pass classify it
//!   with exactly [`crate::determinism::RULE_HASH_ORDER`].
//! * `check.locks.inverted-pair` — analyzes the *real* workspace with the
//!   `lock-order-drill` feature gate armed, exposing the deliberately
//!   inverted `LockMgr`→`BufMgr` pair committed (dormant) in `bufcache`,
//!   and demands [`crate::locks::RULE_CYCLE`].

use std::path::PathBuf;

use dss_faultkit::{Outcome, Site};
use rand::rngs::StdRng;
use rand::Rng;

use crate::callgraph::SourceFile;
use crate::determinism::{analyze_determinism, RULE_HASH_ORDER};
use crate::lint::{find_workspace_root, Allowlist};
use crate::locks::{analyze_locks, RULE_CYCLE};

/// The feature gate hiding the inverted lock pair in `bufcache`.
pub const LOCK_DRILL_FEATURE: &str = "lock-order-drill";

/// The extra sites `dss-check fault` appends to the campaign.
pub fn sites() -> &'static [Site] {
    &[
        Site {
            name: "check.determinism.hash-order-leak",
            layer: "static analysis",
            expect: RULE_HASH_ORDER,
            run: hash_order_leak,
        },
        Site {
            name: "check.locks.inverted-pair",
            layer: "static analysis",
            expect: RULE_CYCLE,
            run: inverted_pair,
        },
    ]
}

/// Names the drill varies the leaking container over — the pass must catch
/// the pattern, not a particular identifier.
const FIELD_NAMES: &[&str] = &["groups", "cache", "seen", "index"];

fn hash_order_leak(rng: &mut StdRng) -> Outcome {
    let depth = rng.gen_range(1..=3usize);
    let field = FIELD_NAMES[rng.gen_range(0..FIELD_NAMES.len())];

    let mut files = vec![SourceFile {
        rel: PathBuf::from("crates/bench/src/bin/repro.rs"),
        text: "fn main() { println!(\"{}\", 0); hop0(); }".to_string(),
    }];
    let mut chain = String::new();
    for d in 0..depth {
        if d + 1 < depth {
            chain.push_str(&format!("fn hop{d}() {{ hop{}(); }}\n", d + 1));
        } else {
            chain.push_str(&format!(
                "struct Agg {{ {field}: HashMap<u64, u64> }}
                 impl Agg {{
                     fn emit(&self) {{ for (k, v) in self.{field}.iter() {{ show(k, v); }} }}
                 }}
                 fn hop{d}() {{ Agg::default().emit(); }}
                 fn show(_: &u64, _: &u64) {{}}\n"
            ));
        }
    }
    files.push(SourceFile {
        rel: PathBuf::from("crates/query/src/agg.rs"),
        text: chain,
    });

    let mut allow = Allowlist::default();
    let report = analyze_determinism(&files, &mut allow, &[]);
    match report.findings.iter().find(|f| f.rule == RULE_HASH_ORDER) {
        Some(f) if report.findings.iter().all(|f| f.rule == RULE_HASH_ORDER) => Outcome::Detected {
            classification: f.rule.to_string(),
        },
        Some(_) => Outcome::Absorbed {
            detail: format!(
                "leak found but with extra misclassified findings: {:?}",
                report.findings
            ),
        },
        None => Outcome::Absorbed {
            detail: format!(
                "depth-{depth} hash leak via `{field}` not classified ({} findings)",
                report.findings.len()
            ),
        },
    }
}

fn inverted_pair(_rng: &mut StdRng) -> Outcome {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            return Outcome::Skipped {
                reason: format!("no working directory: {e}"),
            }
        }
    };
    let root = match find_workspace_root(&cwd) {
        Ok(r) => r,
        Err(e) => {
            return Outcome::Skipped {
                reason: format!("workspace root not found: {e}"),
            }
        }
    };
    let files = match crate::callgraph::load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            return Outcome::Skipped {
                reason: format!("workspace unreadable: {e}"),
            }
        }
    };

    // Sanity: with the gate closed the workspace order graph must be clean,
    // otherwise "armed finds a cycle" proves nothing.
    let closed = analyze_locks(&files, &[]);
    if !closed.findings.is_empty() {
        return Outcome::Absorbed {
            detail: format!("order graph dirty before arming: {}", closed.findings[0]),
        };
    }
    let armed = analyze_locks(&files, &[LOCK_DRILL_FEATURE]);
    match armed.findings.iter().find(|f| f.rule == RULE_CYCLE) {
        Some(f) if f.detail.contains("bufcache") => Outcome::Detected {
            classification: f.rule.to_string(),
        },
        Some(f) => Outcome::Absorbed {
            detail: format!("cycle found but not at the drill site: {f}"),
        },
        None => Outcome::Absorbed {
            detail: "armed inverted pair produced no cycle finding".to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_faultkit::run_campaign_with_extra;

    #[test]
    fn drill_sites_detect_for_replay_seeds() {
        for seed in [0u64, 1, 0xD55] {
            let reports = run_campaign_with_extra(seed, sites());
            for site in sites() {
                let Some(r) = reports.iter().find(|r| r.site == site.name) else {
                    panic!("site {} missing from campaign", site.name);
                };
                match &r.outcome {
                    Outcome::Detected { classification } => {
                        assert_eq!(classification, site.expect, "seed {seed}, {}", site.name);
                    }
                    other => panic!("seed {seed}, {}: {other:?}", site.name),
                }
            }
        }
    }
}
