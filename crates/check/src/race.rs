//! Happens-before race detection over per-processor traces.
//!
//! The paper's metadata-sharing analysis rests on the premise that all
//! accesses to shared engine metadata (LockHash, XidHash, BufDesc, BufLookup)
//! are serialized by the `LockMgrLock` / `BufMgrLock` spinlocks. This module
//! machine-checks that premise: it replays a [`TraceSet`]-shaped slice of
//! traces under the same deterministic interleaving the simulator uses,
//! treats [`Event::LockAcquire`] / [`Event::LockRelease`] as acquire/release
//! synchronization edges, and reports any pair of conflicting accesses (two
//! accesses to the same word, at least one a write, from different
//! processors) that are not ordered by the resulting happens-before relation.
//!
//! The analysis is the classic vector-clock construction (Djit+/FastTrack
//! family): each processor carries a vector clock `C_p`, each lock carries
//! the clock its last holder released with, an acquire joins the lock's clock
//! into the acquirer's, and a release publishes the holder's clock and then
//! advances the holder's own component. Each shared word remembers its last
//! write epoch and the last read epoch per processor; an access races with a
//! prior one exactly when the prior epoch is not covered by the current
//! processor's clock.
//!
//! Soundness precondition: every trace must use its locks in the balanced,
//! nested discipline checked by [`check_lock_discipline`] — the detector
//! validates that first and refuses to analyze ill-formed traces.
//!
//! Two entry points share the replay: [`detect_races`] over materialized
//! traces (discipline pre-checked, trace by trace), and
//! [`detect_races_source`] over any [`TraceSource`] — it holds one event
//! block per processor and checks the discipline incrementally as events
//! stream past, so block files are analyzable without ever materializing a
//! trace. Both produce identical [`RaceReport`]s for the same events.

use std::collections::BTreeMap;
use std::fmt;

use dss_trace::{
    check_lock_discipline, DataClass, Event, EventStream, LockDisciplineError, Trace, TraceError,
    TraceSource,
};

/// Access granularity of the detector: 8-byte words, matching the engine's
/// field sizes (refcounts, pointers, hash buckets are all ≤ 8 bytes).
const WORD: u64 = 8;

/// One side of a racy pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Processor that performed the access.
    pub proc_id: usize,
    /// Index of the event in that processor's trace.
    pub index: usize,
    /// Whether the access was a write.
    pub write: bool,
}

/// A pair of conflicting accesses unordered by happens-before.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Race {
    /// Word address (8-byte aligned) both accesses touched.
    pub word: u64,
    /// Data class of the later access.
    pub class: DataClass,
    /// The earlier access (in the deterministic replay order).
    pub first: Access,
    /// The later access, which the detector flagged.
    pub second: Access,
}

impl fmt::Display for Race {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = |a: &Access| if a.write { "write" } else { "read" };
        write!(
            f,
            "race on {} word {:#x}: {} by proc {} (event {}) is concurrent with {} by proc {} (event {})",
            self.class,
            self.word,
            kind(&self.first),
            self.first.proc_id,
            self.first.index,
            kind(&self.second),
            self.second.proc_id,
            self.second.index,
        )
    }
}

/// Why a trace set could not be analyzed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RaceAnalysisError {
    /// A trace broke the lock discipline the vector clocks assume.
    Discipline {
        /// Processor whose trace is ill-formed.
        proc_id: usize,
        /// The discipline violation.
        error: LockDisciplineError,
    },
    /// The replay deadlocked: every unfinished trace is parked on a lock.
    /// With discipline-checked traces this indicates cross-processor lock
    /// cycles, which the engine's two global spinlocks cannot produce.
    Deadlock,
    /// A streamed source failed mid-analysis (truncated or corrupt block
    /// file, I/O error). Carries the rendered [`TraceError`], which is not
    /// itself comparable.
    Stream(String),
}

impl fmt::Display for RaceAnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaceAnalysisError::Discipline { proc_id, error } => {
                write!(f, "proc {proc_id}: {error}")
            }
            RaceAnalysisError::Deadlock => {
                write!(f, "replay deadlocked on lock acquisition order")
            }
            RaceAnalysisError::Stream(msg) => write!(f, "trace stream failed: {msg}"),
        }
    }
}

/// Result of a race analysis: the races found plus per-class coverage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RaceReport {
    /// All unordered conflicting pairs, in replay order (first per word pair).
    pub races: Vec<Race>,
    /// Shared accesses checked, per data class — evidence of what the
    /// "zero races" verdict actually covered.
    pub checked: BTreeMap<DataClass, u64>,
}

impl RaceReport {
    /// Whether the analysis found no races.
    pub fn is_clean(&self) -> bool {
        self.races.is_empty()
    }

    /// Total shared accesses checked across all classes.
    pub fn total_checked(&self) -> u64 {
        self.checked.values().sum()
    }
}

/// A processor's vector clock.
#[derive(Clone, Debug, Default)]
struct VClock(Vec<u64>);

impl VClock {
    fn new(n: usize) -> Self {
        VClock(vec![0; n])
    }

    fn join(&mut self, other: &VClock) {
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(*b);
        }
    }

    /// Whether an event at `epoch` on `proc` happened before this clock.
    fn covers(&self, proc_id: usize, epoch: u64) -> bool {
        self.0[proc_id] >= epoch
    }
}

/// Per-word access history: the last write epoch plus the last read epoch of
/// every processor since that write.
#[derive(Clone, Debug)]
struct WordState {
    class: DataClass,
    write: Option<(usize, u64, usize)>, // (proc, epoch, event index)
    reads: Vec<(u64, usize)>,           // per proc: (epoch, event index); 0 = none
}

/// A lock's replay state.
#[derive(Clone, Debug, Default)]
struct LockState {
    holder: Option<usize>,
    /// Clock released by the last holder (the detector's `L`).
    released: VClock,
    /// Parked processors, woken in park order at release.
    waiters: Vec<usize>,
}

/// Detects happens-before races over `traces` (one per processor).
///
/// Lock acquisition order — and therefore the synchronization edges — comes
/// from the same deterministic simulated-time interleaving the memory
/// simulator uses: processors advance by busy cycles and one cycle per
/// reference, and a contended acquire parks the processor until the holder's
/// release. The result is reproducible and matches what the simulated
/// machine actually interleaves.
///
/// # Errors
///
/// Returns [`RaceAnalysisError::Discipline`] if any trace breaks the lock
/// stack discipline (see [`check_lock_discipline`]), making vector-clock
/// analysis meaningless, and [`RaceAnalysisError::Deadlock`] if the replay
/// cannot make progress.
pub fn detect_races(traces: &[Trace]) -> Result<RaceReport, RaceAnalysisError> {
    for trace in traces {
        check_lock_discipline(trace).map_err(|error| RaceAnalysisError::Discipline {
            proc_id: trace.proc_id,
            error,
        })?;
    }
    let n = traces.len();
    let mut report = RaceReport::default();
    let mut clocks: Vec<VClock> = (0..n).map(|_| VClock::new(n)).collect();
    for (p, c) in clocks.iter_mut().enumerate() {
        c.0[p] = 1; // Epoch 0 means "no access recorded".
    }
    let mut pos = vec![0usize; n];
    let mut time = vec![0u64; n];
    let mut parked = vec![false; n];
    let mut locks: BTreeMap<u64, LockState> = BTreeMap::new();
    let mut words: BTreeMap<u64, WordState> = BTreeMap::new();

    loop {
        // Deterministic merge: the runnable processor with the least
        // (time, id) steps next, exactly like the simulator's event queue.
        let Some(p) = (0..n)
            .filter(|&p| pos[p] < traces[p].events.len() && !parked[p])
            .min_by_key(|&p| (time[p], p))
        else {
            if (0..n).any(|p| pos[p] < traces[p].events.len()) {
                return Err(RaceAnalysisError::Deadlock);
            }
            break;
        };
        let index = pos[p];
        match traces[p].events[index] {
            Event::Busy(cycles) => {
                time[p] += cycles as u64;
                pos[p] += 1;
            }
            Event::Ref(r) => {
                if r.class.is_shared() {
                    check_ref(p, index, &r, &clocks[p], &mut words, &mut report);
                    *report.checked.entry(r.class).or_insert(0) += 1;
                }
                time[p] += 1;
                pos[p] += 1;
            }
            Event::LockAcquire(tok) => {
                let lock = locks.entry(tok.addr).or_default();
                match lock.holder {
                    Some(holder) if holder != p => {
                        lock.waiters.push(p);
                        parked[p] = true;
                    }
                    _ => {
                        lock.holder = Some(p);
                        // Acquire edge: everything before the last release
                        // happened before this critical section.
                        let released = lock.released.clone();
                        clocks[p].join(&released);
                        time[p] += 1;
                        pos[p] += 1;
                    }
                }
            }
            Event::LockRelease(tok) => {
                let release_time = time[p] + 1;
                let released = clocks[p].clone();
                let lock = locks.entry(tok.addr).or_default();
                debug_assert_eq!(lock.holder, Some(p), "discipline checked above");
                lock.released = released;
                lock.holder = None;
                // Wake every waiter; they re-contend in deterministic order.
                for w in lock.waiters.drain(..) {
                    parked[w] = false;
                    time[w] = time[w].max(release_time);
                }
                clocks[p].0[p] += 1;
                time[p] = release_time;
                pos[p] += 1;
            }
        }
    }
    Ok(report)
}

/// One processor's replay cursor over a streamed trace: the current block,
/// the stream it refills from, and the incremental lock-discipline stack.
///
/// `base + pos` is the event's index within the processor's whole trace, so
/// races and discipline errors report the same indices as the materialized
/// detector.
struct Cursor<'a> {
    stream: Box<dyn EventStream + 'a>,
    buf: Vec<Event>,
    /// Position of the current event within `buf`.
    pos: usize,
    /// Trace-wide index of `buf[0]`.
    base: usize,
    /// The stream returned its zero-count end-of-stream block.
    done: bool,
    /// Locks currently held: `(addr, trace-wide acquire index)`, innermost
    /// last — the streaming equivalent of [`check_lock_discipline`]'s stack.
    held: Vec<(u64, usize)>,
}

impl Cursor<'_> {
    /// The current event, pulling the next block when this one is drained.
    /// `Ok(None)` means the stream is exhausted.
    fn current(&mut self) -> Result<Option<Event>, TraceError> {
        while self.pos >= self.buf.len() {
            if self.done {
                return Ok(None);
            }
            self.base += self.buf.len();
            self.pos = 0;
            if self.stream.next_block(&mut self.buf)? == 0 {
                self.done = true;
                self.buf.clear();
            }
        }
        Ok(Some(self.buf[self.pos]))
    }

    /// Trace-wide index of the current event.
    fn index(&self) -> usize {
        self.base + self.pos
    }
}

/// Detects happens-before races over a streamed [`TraceSource`], holding one
/// event block per processor — block files are analyzable at any trace
/// length without materializing.
///
/// The replay, the synchronization model, and the produced [`RaceReport`]
/// are identical to [`detect_races`] over the materialized equivalent. The
/// lock discipline is checked *incrementally* as events stream past instead
/// of up front, so when several violations exist the reported one is the
/// first encountered in replay order (the materialized detector reports the
/// first in processor order); a single violation is reported identically.
///
/// # Errors
///
/// [`RaceAnalysisError::Discipline`] and [`RaceAnalysisError::Deadlock`] as
/// for [`detect_races`], plus [`RaceAnalysisError::Stream`] when the source
/// fails mid-analysis (truncated or corrupt block files).
pub fn detect_races_source<S>(src: &S) -> Result<RaceReport, RaceAnalysisError>
where
    S: TraceSource + ?Sized,
{
    let stream_err = |e: TraceError| RaceAnalysisError::Stream(e.to_string());
    let streams = src.open().map_err(stream_err)?;
    let n = streams.len();
    let mut cursors: Vec<Cursor> = streams
        .into_iter()
        .map(|stream| Cursor {
            stream,
            buf: Vec::new(),
            pos: 0,
            base: 0,
            done: false,
            held: Vec::new(),
        })
        .collect();
    let discipline = |c: &Cursor, error: LockDisciplineError| RaceAnalysisError::Discipline {
        proc_id: c.stream.proc_id(),
        error,
    };

    let mut report = RaceReport::default();
    let mut clocks: Vec<VClock> = (0..n).map(|_| VClock::new(n)).collect();
    for (p, c) in clocks.iter_mut().enumerate() {
        c.0[p] = 1; // Epoch 0 means "no access recorded".
    }
    let mut time = vec![0u64; n];
    let mut parked = vec![false; n];
    let mut locks: BTreeMap<u64, LockState> = BTreeMap::new();
    let mut words: BTreeMap<u64, WordState> = BTreeMap::new();

    loop {
        // Deterministic merge, exactly as in [`detect_races`]: the runnable
        // processor with the least (time, id) steps next. A parked processor
        // is unfinished by definition; an unparked one is runnable when its
        // cursor still yields an event.
        let mut next: Option<(usize, Event)> = None;
        let mut unfinished = false;
        for p in 0..n {
            if parked[p] {
                unfinished = true;
                continue;
            }
            if let Some(event) = cursors[p].current().map_err(stream_err)? {
                unfinished = true;
                if next.is_none_or(|(b, _)| (time[p], p) < (time[b], b)) {
                    next = Some((p, event));
                }
            }
        }
        let Some((p, event)) = next else {
            if unfinished {
                return Err(RaceAnalysisError::Deadlock);
            }
            break;
        };
        let index = cursors[p].index();
        match event {
            Event::Busy(cycles) => {
                time[p] += cycles as u64;
                cursors[p].pos += 1;
            }
            Event::Ref(r) => {
                if r.class.is_shared() {
                    check_ref(p, index, &r, &clocks[p], &mut words, &mut report);
                    *report.checked.entry(r.class).or_insert(0) += 1;
                }
                time[p] += 1;
                cursors[p].pos += 1;
            }
            Event::LockAcquire(tok) => {
                if cursors[p].held.iter().any(|&(a, _)| a == tok.addr) {
                    return Err(discipline(
                        &cursors[p],
                        LockDisciplineError::Reacquired {
                            index,
                            addr: tok.addr,
                        },
                    ));
                }
                let lock = locks.entry(tok.addr).or_default();
                match lock.holder {
                    Some(holder) if holder != p => {
                        lock.waiters.push(p);
                        parked[p] = true;
                    }
                    _ => {
                        lock.holder = Some(p);
                        let released = lock.released.clone();
                        clocks[p].join(&released);
                        cursors[p].held.push((tok.addr, index));
                        time[p] += 1;
                        cursors[p].pos += 1;
                    }
                }
            }
            Event::LockRelease(tok) => {
                match cursors[p].held.last().copied() {
                    Some((innermost, _)) if innermost == tok.addr => {
                        cursors[p].held.pop();
                    }
                    Some((innermost, _)) => {
                        let error = if cursors[p].held.iter().any(|&(a, _)| a == tok.addr) {
                            LockDisciplineError::NotNested {
                                index,
                                addr: tok.addr,
                                innermost,
                            }
                        } else {
                            LockDisciplineError::ReleaseUnheld {
                                index,
                                addr: tok.addr,
                            }
                        };
                        return Err(discipline(&cursors[p], error));
                    }
                    None => {
                        return Err(discipline(
                            &cursors[p],
                            LockDisciplineError::ReleaseUnheld {
                                index,
                                addr: tok.addr,
                            },
                        ));
                    }
                }
                let release_time = time[p] + 1;
                let released = clocks[p].clone();
                let lock = locks.entry(tok.addr).or_default();
                lock.released = released;
                lock.holder = None;
                for w in lock.waiters.drain(..) {
                    parked[w] = false;
                    time[w] = time[w].max(release_time);
                }
                clocks[p].0[p] += 1;
                time[p] = release_time;
                cursors[p].pos += 1;
            }
        }
    }
    for c in &cursors {
        if let Some(&(addr, index)) = c.held.first() {
            return Err(discipline(
                c,
                LockDisciplineError::HeldAtEnd { index, addr },
            ));
        }
    }
    Ok(report)
}

/// Checks one shared reference against the per-word history and records it.
fn check_ref(
    p: usize,
    index: usize,
    r: &dss_trace::MemRef,
    clock: &VClock,
    words: &mut BTreeMap<u64, WordState>,
    report: &mut RaceReport,
) {
    let n = clock.0.len();
    let epoch = clock.0[p];
    let first_word = r.addr & !(WORD - 1);
    let last_word = (r.addr + r.size.max(1) as u64 - 1) & !(WORD - 1);
    let mut word = first_word;
    while word <= last_word {
        let state = words.entry(word).or_insert_with(|| WordState {
            class: r.class,
            write: None,
            reads: vec![(0, 0); n],
        });
        state.class = r.class;
        // Any access conflicts with a concurrent prior write.
        if let Some((wp, wepoch, windex)) = state.write {
            if wp != p && !clock.covers(wp, wepoch) {
                report.races.push(Race {
                    word,
                    class: r.class,
                    first: Access {
                        proc_id: wp,
                        index: windex,
                        write: true,
                    },
                    second: Access {
                        proc_id: p,
                        index,
                        write: r.write,
                    },
                });
            }
        }
        if r.write {
            // A write additionally conflicts with concurrent prior reads.
            for (q, &(repoch, rindex)) in state.reads.iter().enumerate() {
                if q != p && repoch != 0 && !clock.covers(q, repoch) {
                    report.races.push(Race {
                        word,
                        class: r.class,
                        first: Access {
                            proc_id: q,
                            index: rindex,
                            write: false,
                        },
                        second: Access {
                            proc_id: p,
                            index,
                            write: true,
                        },
                    });
                }
            }
            state.write = Some((p, epoch, index));
            state.reads.fill((0, 0));
        } else {
            state.reads[p] = (epoch, index);
        }
        word += WORD;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dss_trace::{write_trace_blocks, FileTraceSource, LockClass, LockToken, Tracer};

    const ADDR: u64 = 0x1_0000_0000;

    fn tok() -> LockToken {
        LockToken::new(0x40, LockClass::LockMgr)
    }

    #[test]
    fn locked_writers_do_not_race() {
        let mut traces = Vec::new();
        for p in 0..2 {
            let t = Tracer::new(p);
            t.busy(10 * (p as u32 + 1));
            t.lock_acquire(tok());
            t.read(ADDR, 8, DataClass::LockHash);
            t.write(ADDR, 8, DataClass::LockHash);
            t.lock_release(tok());
            traces.push(t.take());
        }
        let report = detect_races(&traces).expect("analyzable");
        assert!(report.is_clean(), "races: {:?}", report.races);
        assert_eq!(report.checked[&DataClass::LockHash], 4);
    }

    #[test]
    fn unlocked_conflicting_writes_race() {
        let mut traces = Vec::new();
        for p in 0..2 {
            let t = Tracer::new(p);
            t.busy(100);
            t.write(ADDR, 8, DataClass::BufDesc);
            traces.push(t.take());
        }
        let report = detect_races(&traces).expect("analyzable");
        assert_eq!(report.races.len(), 1);
        let race = &report.races[0];
        assert_eq!(race.word, ADDR);
        assert_eq!(race.class, DataClass::BufDesc);
        assert!(race.first.write && race.second.write);
        assert!(race.to_string().contains("BufDesc"));
    }

    #[test]
    fn store_outside_the_lock_races_with_locked_readers() {
        // Proc 0 updates under the lock; proc 1 stores without taking it.
        let t0 = Tracer::new(0);
        t0.lock_acquire(tok());
        t0.read(ADDR, 8, DataClass::LockHash);
        t0.write(ADDR, 8, DataClass::LockHash);
        t0.lock_release(tok());
        let t1 = Tracer::new(1);
        t1.busy(1000);
        t1.write(ADDR, 8, DataClass::LockHash);
        let report = detect_races(&[t0.take(), t1.take()]).expect("analyzable");
        assert!(!report.is_clean());
        assert!(report.races.iter().all(|r| r.second.proc_id == 1));
    }

    #[test]
    fn read_only_sharing_is_not_a_race() {
        let mut traces = Vec::new();
        for p in 0..4 {
            let t = Tracer::new(p);
            t.read(ADDR, 8, DataClass::Data);
            t.read(ADDR + 8, 8, DataClass::Index);
            traces.push(t.take());
        }
        let report = detect_races(&traces).expect("analyzable");
        assert!(report.is_clean());
        assert_eq!(report.total_checked(), 8);
    }

    #[test]
    fn private_accesses_are_ignored() {
        let mut traces = Vec::new();
        for p in 0..2 {
            let t = Tracer::new(p);
            t.write(0x4000_0000, 8, DataClass::PrivHeap);
            traces.push(t.take());
        }
        let report = detect_races(&traces).expect("analyzable");
        assert!(report.is_clean());
        assert_eq!(report.total_checked(), 0);
    }

    #[test]
    fn ill_formed_traces_are_rejected() {
        let t = Tracer::new(0);
        t.lock_acquire(tok());
        let err = detect_races(&[t.take()]).unwrap_err();
        assert!(matches!(
            err,
            RaceAnalysisError::Discipline { proc_id: 0, .. }
        ));
    }

    /// A contended workload with locked sections, unlocked racy stores, and
    /// enough events to span several small blocks.
    fn contended_traces(nprocs: usize) -> Vec<Trace> {
        (0..nprocs)
            .map(|p| {
                let t = Tracer::new(p);
                t.busy(3 * (p as u32 + 1));
                for i in 0..40u64 {
                    t.lock_acquire(tok());
                    t.read(ADDR + (i % 4) * 8, 8, DataClass::LockHash);
                    t.write(ADDR + (i % 4) * 8, 8, DataClass::LockHash);
                    t.lock_release(tok());
                    t.busy((i % 7) as u32);
                    // Unsynchronized shared store: a deliberate race.
                    t.write(ADDR + 0x100, 8, DataClass::BufDesc);
                }
                t.take()
            })
            .collect()
    }

    fn block_files(traces: &[Trace], dir: &std::path::Path, block: usize) -> FileTraceSource {
        std::fs::create_dir_all(dir).unwrap();
        let paths = traces
            .iter()
            .map(|t| {
                let path = FileTraceSource::proc_path(dir, "race", t.proc_id);
                let mut bytes = Vec::new();
                write_trace_blocks(t, &mut bytes, block).unwrap();
                std::fs::write(&path, bytes).unwrap();
                path
            })
            .collect();
        FileTraceSource::new(paths)
    }

    #[test]
    fn streamed_detection_matches_materialized() {
        let traces = contended_traces(3);
        let eager = detect_races(&traces).expect("analyzable");
        assert!(!eager.races.is_empty(), "workload must exercise the races");

        // The slice adapter and block files at several block sizes must all
        // reproduce the materialized report exactly — indices included.
        let via_slice = detect_races_source(&traces[..]).expect("analyzable");
        assert_eq!(eager, via_slice);

        let dir = std::env::temp_dir().join(format!("dss-race-src-{}", std::process::id()));
        for block in [7, 64, 4096] {
            let src = block_files(&traces, &dir, block);
            let streamed = detect_races_source(&src).expect("analyzable");
            assert_eq!(eager, streamed, "block_events={block}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_discipline_violations_are_reported() {
        // Held at the end of the stream.
        let t = Tracer::new(0);
        t.busy(5);
        t.lock_acquire(tok());
        let traces = [t.take()];
        let err = detect_races_source(&traces[..]).unwrap_err();
        assert_eq!(
            err,
            RaceAnalysisError::Discipline {
                proc_id: 0,
                error: dss_trace::LockDisciplineError::HeldAtEnd {
                    index: 1,
                    addr: 0x40
                }
            }
        );
        // Released while never held.
        let t = Tracer::new(0);
        t.lock_release(tok());
        let traces = [t.take()];
        let err = detect_races_source(&traces[..]).unwrap_err();
        assert!(matches!(
            err,
            RaceAnalysisError::Discipline {
                proc_id: 0,
                error: dss_trace::LockDisciplineError::ReleaseUnheld { index: 0, .. }
            }
        ));
    }

    #[test]
    fn truncated_block_file_is_a_stream_error() {
        let traces = contended_traces(2);
        let dir = std::env::temp_dir().join(format!("dss-race-trunc-{}", std::process::id()));
        let src = block_files(&traces, &dir, 16);
        // Cut the second processor's file mid-block.
        let victim = &src.paths()[1];
        let bytes = std::fs::read(victim).unwrap();
        std::fs::write(victim, &bytes[..bytes.len() - 9]).unwrap();
        let err = detect_races_source(&src).unwrap_err();
        match err {
            RaceAnalysisError::Stream(msg) => {
                assert!(msg.contains("race.p1.trb"), "names the file: {msg}")
            }
            other => panic!("expected a stream error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn release_after_contention_orders_the_next_section() {
        // Proc 1 contends, parks, and acquires after proc 0's release: its
        // critical-section accesses must be ordered, not racy.
        let t0 = Tracer::new(0);
        t0.lock_acquire(tok());
        t0.write(ADDR, 8, DataClass::XidHash);
        t0.busy(500);
        t0.lock_release(tok());
        let t1 = Tracer::new(1);
        t1.busy(10); // arrives while proc 0 holds the lock
        t1.lock_acquire(tok());
        t1.write(ADDR, 8, DataClass::XidHash);
        t1.lock_release(tok());
        let report = detect_races(&[t0.take(), t1.take()]).expect("analyzable");
        assert!(report.is_clean(), "races: {:?}", report.races);
    }
}
