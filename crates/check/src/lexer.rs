//! A minimal hand-written Rust lexer for the workspace lint.
//!
//! The PR-3 lint matched rule tokens as substrings of source lines, which
//! meant a `HashMap` mentioned in a comment or a `.unwrap()` inside a string
//! literal tripped the gate. This lexer tokenizes just enough of Rust to fix
//! that cleanly — comments and string/char literals become single tokens the
//! rules can skip, identifiers and punctuation become matchable atoms — while
//! staying std-only and a few hundred lines.
//!
//! Handled: line (`//`) and block (`/* */`, nested) comments, string /
//! raw-string / byte-string literals (`"…"`, `r#"…"#`, `b"…"`, `br#"…"#`),
//! char and byte-char literals, lifetimes, identifiers (keywords included —
//! rules match on text), numbers, and single-character punctuation. Compound
//! operators (`::`, `->`, `..`) appear as consecutive single-char `Punct`
//! tokens, which keeps sequence matching trivial.
//!
//! Deliberately *not* handled: anything requiring semantic context. The
//! lexer never fails — unexpected bytes become `Punct` tokens — so the lint
//! degrades to noise, never to a crash, on source it does not understand.

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`Vec`, `as`, `fn`, `r#type`).
    Ident,
    /// Numeric literal (`42`, `0xff_u64`, `1.5`).
    Number,
    /// String literal of any flavor, quotes included.
    Str,
    /// Char or byte-char literal, quotes included.
    Char,
    /// Lifetime (`'a`, `'_`, `'static`), leading `'` included.
    Lifetime,
    /// `//` comment, to end of line.
    LineComment,
    /// `/* */` comment, nesting respected.
    BlockComment,
    /// A single punctuation character (`::` is two `Punct` tokens).
    Punct(char),
}

/// One lexeme: its kind, the exact source text, and its 1-based line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token<'a> {
    /// Classification.
    pub kind: TokenKind,
    /// The token's exact slice of the source.
    pub text: &'a str,
    /// 1-based line number of the token's first character.
    pub line: usize,
}

impl Token<'_> {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True for this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }

    /// True for either comment kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `src`. Whitespace is dropped; comments are kept as tokens so
/// callers can choose to skip (lint rules) or inspect (doc checks) them.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Token<'a>>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: usize) {
        self.out.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line,
        });
    }

    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.bytes.len() {
            let (start, line) = (self.pos, self.line);
            let b = self.peek(0);
            match b {
                _ if b.is_ascii_whitespace() => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start, line);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment(start, line);
                }
                b'r' if self.peek(1) == b'"' || self.peek(1) == b'#' => {
                    // `r"…"` / `r#"…"#` raw string, or just the ident `r`
                    // followed by `#` (raw identifier `r#type` has no quote).
                    if !self.try_raw_string(start, line, 1) {
                        self.ident(start, line);
                    }
                }
                b'b' if self.peek(1) == b'"' => {
                    self.bump();
                    self.quoted(b'"');
                    self.emit(TokenKind::Str, start, line);
                }
                b'b' if self.peek(1) == b'\'' => {
                    self.bump();
                    self.quoted(b'\'');
                    self.emit(TokenKind::Char, start, line);
                }
                b'b' if self.peek(1) == b'r' && (self.peek(2) == b'"' || self.peek(2) == b'#') => {
                    if !self.try_raw_string(start, line, 2) {
                        self.ident(start, line);
                    }
                }
                _ if is_ident_start(b) => self.ident(start, line),
                _ if b.is_ascii_digit() => {
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    // Simple floats: `1.5` but not `1.method()` or `0..n`.
                    if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                        self.bump();
                        while is_ident_continue(self.peek(0)) {
                            self.bump();
                        }
                    }
                    self.emit(TokenKind::Number, start, line);
                }
                b'"' => {
                    self.quoted(b'"');
                    self.emit(TokenKind::Str, start, line);
                }
                b'\'' => self.char_or_lifetime(start, line),
                _ => {
                    // Consume a whole character so non-ASCII bytes (legal in
                    // comments/strings, odd elsewhere) never split a slice.
                    let ch = self.src[self.pos..].chars().next().unwrap_or('\u{fffd}');
                    for _ in 0..ch.len_utf8() {
                        self.bump();
                    }
                    self.emit(TokenKind::Punct(ch), start, line);
                }
            }
        }
        self.out
    }

    /// Consumes a `/* */` comment, honoring nesting. On entry `pos` is at
    /// the opening `/`. An unterminated comment runs to end of input.
    fn block_comment(&mut self, start: usize, line: usize) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        self.emit(TokenKind::BlockComment, start, line);
    }

    fn ident(&mut self, start: usize, line: usize) {
        // Raw identifier prefix `r#` (already know a quote does not follow).
        if self.peek(0) == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
            self.bump();
            self.bump();
        }
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        self.emit(TokenKind::Ident, start, line);
    }

    /// Consumes a `"…"` or `'…'` body including both quotes, honoring `\`
    /// escapes. On entry `pos` is at the opening quote.
    fn quoted(&mut self, quote: u8) {
        self.bump(); // opening quote
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    // The escaped byte may be missing entirely (input
                    // truncated right after the `\`); bumping past the end
                    // would make `emit` slice out of bounds.
                    if self.pos < self.bytes.len() {
                        self.bump();
                    }
                }
                b if b == quote => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Attempts `r#*"…"#*` starting `hashes_at` bytes in (past `r` or `br`).
    /// Returns false (consuming nothing) if no quote follows the hashes —
    /// the caller then lexes an identifier instead.
    fn try_raw_string(&mut self, start: usize, line: usize, hashes_at: usize) -> bool {
        let mut n = 0;
        while self.peek(hashes_at + n) == b'#' {
            n += 1;
        }
        if self.peek(hashes_at + n) != b'"' {
            return false;
        }
        for _ in 0..hashes_at + n + 1 {
            self.bump();
        }
        'body: while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                for i in 0..n {
                    if self.peek(1 + i) != b'#' {
                        self.bump();
                        continue 'body;
                    }
                }
                for _ in 0..n + 1 {
                    self.bump();
                }
                break;
            }
            self.bump();
        }
        self.emit(TokenKind::Str, start, line);
        true
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) at an opening `'`.
    fn char_or_lifetime(&mut self, start: usize, line: usize) {
        let next = self.peek(1);
        // `'\n'` — an escape is always a char literal. `'x'` — a closing
        // quote right after one character is a char literal (this also
        // classifies `'_'` correctly). Anything else (`'a,`, `'static`) is
        // a lifetime.
        if next == b'\\' || (next != b'\'' && self.peek(2) == b'\'') {
            self.quoted(b'\'');
            self.emit(TokenKind::Char, start, line);
        } else {
            self.bump(); // the `'`
            while is_ident_continue(self.peek(0)) {
                self.bump();
            }
            self.emit(TokenKind::Lifetime, start, line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        assert_eq!(
            kinds("let x = 42;"),
            vec![
                (TokenKind::Ident, "let"),
                (TokenKind::Ident, "x"),
                (TokenKind::Punct('='), "="),
                (TokenKind::Number, "42"),
                (TokenKind::Punct(';'), ";"),
            ]
        );
        assert_eq!(
            kinds("v[i].f(1.5, 0xff_u64)")
                .iter()
                .filter(|(k, _)| *k == TokenKind::Number)
                .count(),
            2
        );
    }

    #[test]
    fn comments_are_single_tokens_with_lines() {
        let toks = lex("a // HashMap here\n/* Vec::new()\n nested /* ok */ */ b");
        assert_eq!(toks[0].text, "a");
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert_eq!(toks[2].kind, TokenKind::BlockComment);
        assert!(toks[2].text.contains("nested"));
        let b = toks[3];
        assert!(b.is_ident("b"));
        assert_eq!(b.line, 3);
    }

    #[test]
    fn strings_swallow_their_contents() {
        let toks = lex(r#"let s = "a .unwrap() \" b"; t"#);
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert!(s.text.contains(".unwrap()"));
        assert!(toks.last().unwrap().is_ident("t"));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = lex(r###"r#"has "quotes" and # signs"# b"bytes" br"raw""###);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokenKind::Str).count(),
            3,
            "{toks:?}"
        );
        // `r` and `br` not followed by a quote stay identifiers.
        let toks = lex("r#type br_aw r");
        assert!(toks.iter().all(|t| t.kind == TokenKind::Ident));
    }

    #[test]
    fn chars_vs_lifetimes() {
        let toks = lex(r"'a' '\n' '_' 'static &'a mut b'x'");
        let got: Vec<TokenKind> = toks.iter().map(|t| t.kind).collect();
        assert_eq!(
            got,
            vec![
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Lifetime,
                TokenKind::Punct('&'),
                TokenKind::Lifetime,
                TokenKind::Ident,
                TokenKind::Char,
            ],
            "{toks:?}"
        );
    }

    #[test]
    fn line_numbers_track_every_token_form() {
        let toks = lex("a\n\"s\n s\"\nb");
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn never_panics_on_junk() {
        for src in [
            "'",
            "\"unterminated",
            "r#\"open",
            "/* open",
            "\\ ` ~ \u{fe}",
            // Truncated mid-escape: the `\` is the final byte (found by the
            // parse_fuzz corpus-truncation property).
            "\"ends with \\",
            "'\\",
            "b\"x\\",
        ] {
            let _ = lex(src);
        }
    }
}
