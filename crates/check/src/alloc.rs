//! A counting global allocator and RAII measurement scope.
//!
//! The audit's claim — "`Machine::run` is allocation-free once warmed" — is
//! only credible if it is *measured*, not pattern-matched from source. This
//! module wraps [`std::alloc::System`] with relaxed atomic counters for
//! every `alloc`/`dealloc`/`realloc` the process performs, and exposes
//! [`AllocGate`], a scope that snapshots the counters on entry and reports
//! the delta on exit.
//!
//! The module is deliberately *not* part of the `dss-check` library: the
//! library root keeps `#![forbid(unsafe_code)]` (its own lint requires the
//! header), while a `GlobalAlloc` impl is irreducibly unsafe. Instead the
//! binary and the test crates that need it include this file directly with
//! `mod alloc;` / `#[path = ...]` and install their own
//! `#[global_allocator]` instance:
//!
//! ```ignore
//! mod alloc;
//! #[global_allocator]
//! static COUNTER: alloc::CountingAlloc = alloc::CountingAlloc;
//! ```
//!
//! Counters are process-global, so concurrent threads pollute each other's
//! deltas. Measurement scopes are therefore only meaningful around
//! single-threaded code: `dss-check alloc` generates traces (the parallel
//! part) before opening its gates, and the zero-assert integration test
//! lives alone in its own test binary.
// GlobalAlloc is an unsafe trait; a counting allocator cannot exist without
// it. This module is the audited exception to the workspace-wide forbid.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
static BYTES_FREED: AtomicU64 = AtomicU64::new(0);
/// Live bytes right now (allocated minus freed).
static CURRENT: AtomicU64 = AtomicU64::new(0);
/// High-water mark of `CURRENT` since the last [`AllocGate::begin`].
static PEAK: AtomicU64 = AtomicU64::new(0);

/// A `#[global_allocator]` that counts every heap operation.
///
/// Forwards all requests to [`System`]; the counting is a handful of relaxed
/// atomic adds, cheap enough to leave installed for a whole audit binary.
pub struct CountingAlloc;

impl CountingAlloc {
    fn note_alloc(size: u64) {
        ALLOCS.fetch_add(1, Relaxed);
        BYTES_ALLOCATED.fetch_add(size, Relaxed);
        let live = CURRENT.fetch_add(size, Relaxed) + size;
        PEAK.fetch_max(live, Relaxed);
    }

    fn note_dealloc(size: u64) {
        DEALLOCS.fetch_add(1, Relaxed);
        BYTES_FREED.fetch_add(size, Relaxed);
        CURRENT.fetch_sub(size, Relaxed);
    }
}

// SAFETY: every method forwards verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates never touch the returned
// memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            Self::note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc_zeroed(layout) };
        if !p.is_null() {
            Self::note_alloc(layout.size() as u64);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        Self::note_dealloc(layout.size() as u64);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            REALLOCS.fetch_add(1, Relaxed);
            let (old, new) = (layout.size() as u64, new_size as u64);
            BYTES_ALLOCATED.fetch_add(new, Relaxed);
            BYTES_FREED.fetch_add(old, Relaxed);
            let live = CURRENT.fetch_add(new, Relaxed) + new;
            PEAK.fetch_max(live, Relaxed);
            CURRENT.fetch_sub(old, Relaxed);
        }
        p
    }
}

/// What one [`AllocGate`] scope observed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocReport {
    /// Calls to `alloc`/`alloc_zeroed` inside the scope.
    pub allocs: u64,
    /// Calls to `dealloc` inside the scope.
    pub deallocs: u64,
    /// Calls to `realloc` inside the scope.
    pub reallocs: u64,
    /// Bytes requested by allocations inside the scope.
    pub bytes_allocated: u64,
    /// Bytes returned by frees inside the scope.
    pub bytes_freed: u64,
    /// Peak live heap bytes reached inside the scope, measured from the
    /// scope's entry level (0 when nothing grew past where it started).
    pub peak_bytes: u64,
}

/// A measurement scope over the process-global counters.
///
/// `begin()` snapshots the counters (and resets the peak tracker to the
/// current live level); `end()` returns the delta as an [`AllocReport`].
/// Scopes must not nest or overlap across threads — the counters are global.
#[must_use = "an AllocGate measures nothing until end() is called"]
pub struct AllocGate {
    allocs: u64,
    deallocs: u64,
    reallocs: u64,
    bytes_allocated: u64,
    bytes_freed: u64,
    start_live: u64,
}

impl AllocGate {
    /// Opens a measurement scope at the current counter values.
    pub fn begin() -> AllocGate {
        let start_live = CURRENT.load(Relaxed);
        // Restart peak tracking from the present live level so the report's
        // peak is relative to this scope, not the process lifetime.
        PEAK.store(start_live, Relaxed);
        AllocGate {
            allocs: ALLOCS.load(Relaxed),
            deallocs: DEALLOCS.load(Relaxed),
            reallocs: REALLOCS.load(Relaxed),
            bytes_allocated: BYTES_ALLOCATED.load(Relaxed),
            bytes_freed: BYTES_FREED.load(Relaxed),
            start_live,
        }
    }

    /// Closes the scope and reports what happened inside it.
    pub fn end(self) -> AllocReport {
        AllocReport {
            allocs: ALLOCS.load(Relaxed) - self.allocs,
            deallocs: DEALLOCS.load(Relaxed) - self.deallocs,
            reallocs: REALLOCS.load(Relaxed) - self.reallocs,
            bytes_allocated: BYTES_ALLOCATED.load(Relaxed) - self.bytes_allocated,
            bytes_freed: BYTES_FREED.load(Relaxed) - self.bytes_freed,
            peak_bytes: PEAK.load(Relaxed).saturating_sub(self.start_live),
        }
    }
}
